#![forbid(unsafe_code)]
//! `metaverse-deluge` — umbrella crate re-exporting the cospace platform.
//!
//! See DESIGN.md for the system inventory and EXPERIMENTS.md for the
//! experiment index. Start with [`mv_core::Metaverse`] (re-exported as
//! [`core`] here) and the `examples/` directory.

pub use mv_assets as assets;
pub use mv_cloud as cloud;
pub use mv_collab as collab;
pub use mv_common as common;
pub use mv_core as core;
pub use mv_dissem as dissem;
pub use mv_fusion as fusion;
pub use mv_ledger as ledger;
pub use mv_net as net;
pub use mv_pubsub as pubsub;
pub use mv_query as query;
pub use mv_spatial as spatial;
pub use mv_storage as storage;
pub use mv_stream as stream;
pub use mv_txn as txn;
pub use mv_workloads as workloads;
