//! Offline substitute for the `bytes` crate (API subset).
//!
//! [`Bytes`] is an immutable, cheaply-cloneable byte buffer backed by an
//! `Arc<[u8]>` (upstream's zero-copy slicing of sub-ranges is not needed
//! by this workspace, so it is omitted). [`BytesMut`] + [`BufMut`] cover
//! the little-endian framing the storage layer writes.

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::Arc;

/// An immutable, reference-counted byte buffer.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Copy `slice` into a new buffer.
    pub fn copy_from_slice(slice: &[u8]) -> Self {
        Bytes { data: Arc::from(slice) }
    }

    /// Wrap a static slice (copies here; upstream aliases it).
    pub fn from_static(slice: &'static [u8]) -> Self {
        Self::copy_from_slice(slice)
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copy out to a `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        &self.data
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.data[..] == other.data[..]
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &self.data[..] == other
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.data[..].cmp(&other.data[..])
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.data[..].hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter() {
            if (0x20..0x7f).contains(&b) && b != b'"' && b != b'\\' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        write!(f, "\"")
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: Arc::from(v) }
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes::from(s.into_bytes())
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Bytes::copy_from_slice(s)
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Bytes::copy_from_slice(s.as_bytes())
    }
}

/// Append-only byte sink (upstream trait subset).
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

/// A growable byte buffer that freezes into [`Bytes`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut { data: Vec::with_capacity(cap) }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Convert into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_equality() {
        let a = Bytes::from(vec![1, 2, 3]);
        let b = Bytes::copy_from_slice(&[1, 2, 3]);
        assert_eq!(a, b);
        assert_eq!(a.len(), 3);
        assert_eq!(&a[..], &[1, 2, 3]);
        assert_eq!(a.to_vec(), vec![1, 2, 3]);
        assert!(Bytes::from("hi") < Bytes::from("hj"));
    }

    #[test]
    fn bytes_mut_framing() {
        let mut m = BytesMut::with_capacity(16);
        m.put_u32_le(7);
        m.put_u8(1);
        m.put_slice(b"xy");
        let frozen = m.freeze();
        assert_eq!(&frozen[..], &[7, 0, 0, 0, 1, b'x', b'y']);
    }

    #[test]
    fn debug_escapes_binary() {
        let b = Bytes::from(vec![b'a', 0x00]);
        assert_eq!(format!("{b:?}"), "b\"a\\x00\"");
    }
}
