//! Offline substitute for `crossbeam` (API subset).
//!
//! Scoped spawns delegate to `std::thread::scope` (stable since 1.63,
//! which made crossbeam's scoped threads largely redundant); channels are
//! thin wrappers over `std::sync::mpsc`. Only the surface the workspace
//! uses is provided.

/// Scoped threads.
pub mod thread {
    pub use std::thread::{scope, Scope, ScopedJoinHandle};
}

/// Multi-producer channels (mpsc-backed; upstream is also multi-consumer,
/// which the workspace does not rely on).
pub mod channel {
    use std::sync::mpsc;

    /// Sending half.
    #[derive(Debug, Clone)]
    pub struct Sender<T>(mpsc::Sender<T>);

    /// Receiving half.
    #[derive(Debug)]
    pub struct Receiver<T>(mpsc::Receiver<T>);

    /// Error: the receiving half disconnected.
    pub use std::sync::mpsc::{RecvError, SendError, TryRecvError};

    impl<T> Sender<T> {
        /// Send a value, blocking if bounded and full.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value)
        }
    }

    impl<T> Receiver<T> {
        /// Receive, blocking until a value or disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv()
        }

        /// Receive without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv()
        }

        /// Iterate until the channel disconnects.
        pub fn iter(&self) -> mpsc::Iter<'_, T> {
            self.0.iter()
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = mpsc::IntoIter<T>;
        fn into_iter(self) -> Self::IntoIter {
            self.0.into_iter()
        }
    }

    /// An unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(rx))
    }

    /// A "bounded" channel — backpressure is not modeled; this is an
    /// unbounded channel, which is the only behaviour the workspace
    /// relies on.
    pub fn bounded<T>(_cap: usize) -> (Sender<T>, Receiver<T>) {
        unbounded()
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_join_and_borrow() {
        let data = [1u64, 2, 3, 4];
        let total: u64 = crate::thread::scope(|s| {
            let handles: Vec<_> =
                data.chunks(2).map(|c| s.spawn(move || c.iter().sum::<u64>())).collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        });
        assert_eq!(total, 10);
    }

    #[test]
    fn channel_roundtrip() {
        let (tx, rx) = crate::channel::unbounded();
        tx.send(7).unwrap();
        drop(tx);
        let got: Vec<i32> = rx.into_iter().collect();
        assert_eq!(got, vec![7]);
    }
}
