//! Offline substitute for `proptest` (API subset).
//!
//! Provides what the workspace's property tests use: the [`proptest!`]
//! macro (including `#![proptest_config(...)]`), [`prop_assert!`] /
//! [`prop_assert_eq!`], numeric range strategies, tuple strategies,
//! [`collection::vec`], and string strategies from a small regex subset
//! (`[a-z]` classes, `{m,n}` repetition, literals, `(...)?` optional
//! groups). Differences from upstream: cases are generated from a fixed
//! deterministic seed per test (reproducible by construction, no
//! persistence files) and failing cases are reported but **not shrunk**.

use rand::rngs::StdRng;
use rand::Rng;

/// Strategy trait: something that can generate values from an RNG.
pub trait Strategy {
    /// Generated value type.
    type Value: std::fmt::Debug;

    /// Generate one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! numeric_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
numeric_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// A fixed value is its own strategy (upstream `Just` for the sizes the
/// collection module takes, e.g. `collection::vec(strat, 8)`).
pub struct Just<T: Clone + std::fmt::Debug>(pub T);

impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

/// String strategies from a regex subset.
pub mod string_regex {
    use super::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// One parsed regex element.
    #[derive(Debug, Clone)]
    enum Node {
        /// A literal character.
        Literal(char),
        /// A character class; generation picks uniformly.
        Class(Vec<char>),
        /// A grouped sequence.
        Group(Vec<(Node, Rep)>),
    }

    /// Repetition attached to a node.
    #[derive(Debug, Clone, Copy)]
    struct Rep {
        min: u32,
        max: u32,
    }

    const ONCE: Rep = Rep { min: 1, max: 1 };

    /// A compiled generator for a regex-subset pattern.
    #[derive(Debug, Clone)]
    pub struct RegexGen {
        seq: Vec<(Node, Rep)>,
    }

    impl RegexGen {
        /// Compile `pattern`.
        ///
        /// # Panics
        /// Panics on syntax outside the supported subset (alternation,
        /// anchors, escapes, `*`/`+` unbounded repetition).
        pub fn compile(pattern: &str) -> RegexGen {
            let chars: Vec<char> = pattern.chars().collect();
            let (seq, rest) = parse_seq(&chars, 0, false);
            assert_eq!(rest, chars.len(), "unbalanced group in pattern {pattern:?}");
            RegexGen { seq }
        }

        /// Generate one matching string.
        pub fn generate(&self, rng: &mut StdRng) -> String {
            let mut out = String::new();
            gen_seq(&self.seq, rng, &mut out);
            out
        }
    }

    fn gen_seq(seq: &[(Node, Rep)], rng: &mut StdRng, out: &mut String) {
        for (node, rep) in seq {
            let count = if rep.min == rep.max {
                rep.min
            } else {
                rng.gen_range(rep.min..=rep.max)
            };
            for _ in 0..count {
                match node {
                    Node::Literal(c) => out.push(*c),
                    Node::Class(chars) => out.push(chars[rng.gen_range(0..chars.len())]),
                    Node::Group(inner) => gen_seq(inner, rng, out),
                }
            }
        }
    }

    /// Parse a sequence until end (or `)` when `in_group`); returns the
    /// nodes and the index just past what was consumed.
    fn parse_seq(chars: &[char], mut i: usize, in_group: bool) -> (Vec<(Node, Rep)>, usize) {
        let mut seq = Vec::new();
        while i < chars.len() {
            let node = match chars[i] {
                ')' if in_group => return (seq, i),
                '[' => {
                    let (class, next) = parse_class(chars, i + 1);
                    i = next;
                    Node::Class(class)
                }
                '(' => {
                    let (inner, close) = parse_seq(chars, i + 1, true);
                    assert!(
                        close < chars.len() && chars[close] == ')',
                        "unterminated group in pattern"
                    );
                    i = close + 1;
                    Node::Group(inner)
                }
                c => {
                    assert!(
                        !"\\^$.|*+".contains(c),
                        "unsupported regex syntax {c:?} in pattern"
                    );
                    i += 1;
                    Node::Literal(c)
                }
            };
            let rep = match chars.get(i) {
                Some('{') => {
                    let (rep, next) = parse_counts(chars, i + 1);
                    i = next;
                    rep
                }
                Some('?') => {
                    i += 1;
                    Rep { min: 0, max: 1 }
                }
                _ => ONCE,
            };
            seq.push((node, rep));
        }
        assert!(!in_group, "unterminated group in pattern");
        (seq, i)
    }

    /// Parse `[...]` starting after the `[`; supports literals and `a-z`
    /// ranges.
    fn parse_class(chars: &[char], mut i: usize) -> (Vec<char>, usize) {
        let mut class = Vec::new();
        while i < chars.len() && chars[i] != ']' {
            if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                let (lo, hi) = (chars[i], chars[i + 2]);
                assert!(lo <= hi, "bad class range {lo}-{hi}");
                for c in lo..=hi {
                    class.push(c);
                }
                i += 3;
            } else {
                class.push(chars[i]);
                i += 1;
            }
        }
        assert!(i < chars.len(), "unterminated character class");
        assert!(!class.is_empty(), "empty character class");
        (class, i + 1)
    }

    /// Parse `{m}` or `{m,n}` starting after the `{`.
    fn parse_counts(chars: &[char], mut i: usize) -> (Rep, usize) {
        let read_num = |i: &mut usize| -> u32 {
            let start = *i;
            while *i < chars.len() && chars[*i].is_ascii_digit() {
                *i += 1;
            }
            assert!(*i > start, "expected digits in repetition");
            chars[start..*i].iter().collect::<String>().parse().expect("digits")
        };
        let min = read_num(&mut i);
        let max = if chars.get(i) == Some(&',') {
            i += 1;
            read_num(&mut i)
        } else {
            min
        };
        assert_eq!(chars.get(i), Some(&'}'), "unterminated repetition");
        assert!(min <= max, "bad repetition {{{min},{max}}}");
        (Rep { min, max }, i + 1)
    }

    impl Strategy for &str {
        type Value = String;
        fn generate(&self, rng: &mut StdRng) -> String {
            RegexGen::compile(self).generate(rng)
        }
    }
}

/// Collection strategies.
pub mod collection {
    use super::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Acceptable vec-length specifications: a fixed size or a range.
    pub trait SizeRange {
        /// Draw a length.
        fn pick(&self, rng: &mut StdRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut StdRng) -> usize {
            *self
        }
    }

    impl SizeRange for std::ops::Range<usize> {
        fn pick(&self, rng: &mut StdRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    impl SizeRange for std::ops::RangeInclusive<usize> {
        fn pick(&self, rng: &mut StdRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    pub struct VecStrategy<S, Z> {
        element: S,
        size: Z,
    }

    impl<S: Strategy, Z: SizeRange> Strategy for VecStrategy<S, Z> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let len = self.size.pick(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `vec(strategy, len)` — upstream `proptest::collection::vec`.
    pub fn vec<S: Strategy, Z: SizeRange>(element: S, size: Z) -> VecStrategy<S, Z> {
        VecStrategy { element, size }
    }
}

/// Test-runner plumbing used by the [`proptest!`] macro.
pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Per-test configuration.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl Config {
        /// Config with a custom case count.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            // Upstream defaults to 256; 64 keeps the (single-core) test
            // suite quick while still exercising varied inputs.
            Config { cases: 64 }
        }
    }

    /// A failed property case.
    #[derive(Debug)]
    pub struct TestCaseError {
        /// Human-readable reason.
        pub message: String,
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "{}", self.message)
        }
    }

    /// Drives the cases of one property.
    pub struct TestRunner {
        config: Config,
        name_seed: u64,
    }

    impl TestRunner {
        /// Build from a config and the property's name (for seed
        /// diversity across properties).
        pub fn new(config: Config, name: &str) -> Self {
            let mut seed = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                seed ^= b as u64;
                seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRunner { config, name_seed: seed }
        }

        /// Number of cases to run.
        pub fn cases(&self) -> u32 {
            self.config.cases
        }

        /// The deterministic RNG for `case`.
        pub fn rng_for(&self, case: u32) -> StdRng {
            StdRng::seed_from_u64(self.name_seed ^ (0x9E37_79B9_7F4A_7C15u64
                .wrapping_mul(case as u64 + 1)))
        }
    }
}

/// Everything a property test module needs.
pub mod prelude {
    pub use crate::collection;
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::test_runner::TestCaseError;
    pub use crate::Strategy;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

pub use test_runner::Config as ProptestConfig;

/// Define property tests (upstream macro subset: optional
/// `#![proptest_config(...)]` followed by `#[test] fn name(arg in strategy, …) { … }`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::test_runner::Config::default()); $($rest)* }
    };
}

/// Internal: expands each property fn. Not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    // `$arg:tt` admits both plain identifiers and parenthesized tuple
    // patterns of identifiers, which read back as expressions too (needed
    // for the debug-args formatting below).
    (($cfg:expr); $($(#[$meta:meta])+ fn $name:ident($($arg:tt in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])+
            fn $name() {
                let runner = $crate::test_runner::TestRunner::new($cfg, stringify!($name));
                for __case in 0..runner.cases() {
                    let mut __rng = runner.rng_for(__case);
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                    let __debug_args = format!(
                        concat!($(stringify!($arg), " = {:?}; ",)+),
                        $(&$arg),+
                    );
                    let __result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body Ok(()) })();
                    if let ::std::result::Result::Err(e) = __result {
                        panic!(
                            "property {} failed at case {}/{}: {}\n  inputs: {}",
                            stringify!($name), __case, runner.cases(), e, __debug_args,
                        );
                    }
                }
            }
        )*
    };
}

/// Assert inside a property; failure reports the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError {
                message: format!($($fmt)*),
            });
        }
    };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "{}\n  left: {:?}\n right: {:?}",
            format!($($fmt)*), l, r
        );
    }};
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($left), stringify!($right), l
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::string_regex::RegexGen;
    use rand::SeedableRng;

    proptest! {
        #[test]
        fn ranges_and_tuples(
            x in 0u64..100,
            (a, b) in (-1.0f64..1.0, 0usize..5),
            v in collection::vec(0u8..=255, 1..10),
        ) {
            prop_assert!(x < 100);
            prop_assert!((-1.0..1.0).contains(&a));
            prop_assert!(b < 5);
            prop_assert!(!v.is_empty() && v.len() < 10);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        #[test]
        fn config_cases_applies(s in "[a-c]{1,6}( [a-c]{1,6})?") {
            let head = s.split(' ').next().expect("nonempty");
            prop_assert!((1..=6).contains(&head.len()), "head {:?}", head);
            prop_assert!(head.chars().all(|c| ('a'..='c').contains(&c)));
        }

        #[test]
        fn second_fn_in_same_block(n in 1usize..4) {
            prop_assert!((1..4).contains(&n));
        }
    }

    #[test]
    fn regex_subset_shapes() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        for pattern in ["[a-d]{1,3}", "[x-z]{0,3}", "[a-z ]{0,12}", "x(y)?z"] {
            let g = RegexGen::compile(pattern);
            for _ in 0..50 {
                let s = g.generate(&mut rng);
                match pattern {
                    "[a-d]{1,3}" => {
                        assert!((1..=3).contains(&s.len()));
                        assert!(s.chars().all(|c| ('a'..='d').contains(&c)));
                    }
                    "[x-z]{0,3}" => assert!(s.len() <= 3),
                    "[a-z ]{0,12}" => assert!(s.len() <= 12),
                    "x(y)?z" => assert!(s == "xz" || s == "xyz"),
                    _ => unreachable!(),
                }
            }
        }
    }

    proptest! {
        #[test]
        #[should_panic(expected = "property")]
        fn failing_property_panics_with_inputs(x in 0u32..10) {
            prop_assert!(x < 5, "x too big: {}", x);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let runner = crate::test_runner::TestRunner::new(
            crate::test_runner::Config::with_cases(4),
            "det",
        );
        let a: Vec<u64> = (0..4)
            .map(|c| crate::Strategy::generate(&(0u64..1000), &mut runner.rng_for(c)))
            .collect();
        let b: Vec<u64> = (0..4)
            .map(|c| crate::Strategy::generate(&(0u64..1000), &mut runner.rng_for(c)))
            .collect();
        assert_eq!(a, b);
    }
}
