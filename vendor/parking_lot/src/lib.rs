//! Offline substitute for `parking_lot` (API subset).
//!
//! Wraps `std::sync` primitives behind parking_lot's non-poisoning API
//! (`lock()` returns the guard directly). A poisoned std lock — a thread
//! panicked while holding it — is treated as parking_lot treats it: the
//! data is handed over anyway.

use std::sync::{self, TryLockError};

/// A mutual-exclusion lock (non-poisoning API).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Wrap a value.
    pub const fn new(value: T) -> Self {
        Mutex { inner: sync::Mutex::new(value) }
    }

    /// Consume the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking.
    pub fn lock(&self) -> sync::MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Try to acquire without blocking.
    pub fn try_lock(&self) -> Option<sync::MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock (non-poisoning API).
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Wrap a value.
    pub const fn new(value: T) -> Self {
        RwLock { inner: sync::RwLock::new(value) }
    }

    /// Consume the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard, blocking.
    pub fn read(&self) -> sync::RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write guard, blocking.
    pub fn write(&self) -> sync::RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(*l.read(), vec![1, 2]);
    }
}
