//! Offline substitute for `criterion` (API subset).
//!
//! Preserves the authoring surface the workspace's benches use
//! (`criterion_group!`/`criterion_main!`, `Criterion::benchmark_group`,
//! `bench_function`, `bench_with_input`, `BenchmarkId`, `Throughput`,
//! `black_box`, `Bencher::iter`) but replaces the statistical engine with
//! a warmup pass plus mean-of-batches wall-clock timing — enough for the
//! per-op magnitudes EXPERIMENTS.md quotes, with no external deps.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation (printed, not analyzed).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A bench identifier: function name + parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { name: format!("{}/{}", name.into(), parameter) }
    }

    /// Parameter-only id (used inside a named group).
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { name: parameter.to_string() }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name)
    }
}

/// Times closures handed to [`Bencher::iter`].
pub struct Bencher {
    /// Mean wall time per iteration, filled by `iter`.
    mean_ns: f64,
    iters_done: u64,
}

impl Bencher {
    /// Run `f` repeatedly and record its mean wall-clock time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warmup: let caches/allocators settle and estimate per-op cost.
        let warmup_start = Instant::now();
        let mut warmup_iters = 0u64;
        while warmup_start.elapsed() < Duration::from_millis(50) {
            black_box(f());
            warmup_iters += 1;
        }
        let est_ns =
            (warmup_start.elapsed().as_nanos() as f64 / warmup_iters.max(1) as f64).max(1.0);
        // Measure for ~200 ms in one timed batch.
        let iters = ((200e6 / est_ns) as u64).clamp(10, 50_000_000);
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        self.mean_ns = start.elapsed().as_nanos() as f64 / iters as f64;
        self.iters_done = iters;
    }
}

/// A named group of related benches.
pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; sampling is time-based here.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Record the group's throughput annotation.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        println!("  (throughput: {t:?})");
        self
    }

    /// Run one bench.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { mean_ns: 0.0, iters_done: 0 };
        f(&mut b);
        println!(
            "{}/{}: {:>12.1} ns/iter  ({} iters)",
            self.name, id, b.mean_ns, b.iters_done
        );
        self
    }

    /// Run one bench that borrows an input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl std::fmt::Display,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// End the group.
    pub fn finish(&mut self) {}
}

/// The bench driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group {name}");
        BenchmarkGroup { name, _parent: self }
    }

    /// Run one stand-alone bench.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

/// Collect bench functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Entry point running every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher { mean_ns: 0.0, iters_done: 0 };
        b.iter(|| black_box(3u64).wrapping_mul(5));
        assert!(b.mean_ns > 0.0);
        assert!(b.iters_done >= 10);
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(10).throughput(Throughput::Elements(1));
        g.bench_function(BenchmarkId::new("f", 1), |b| b.iter(|| black_box(1)));
        g.bench_with_input(BenchmarkId::from_parameter(2), &2, |b, &x| {
            b.iter(|| black_box(x))
        });
        g.finish();
    }
}
