//! Offline substitute for the `rand` crate (API subset).
//!
//! The build container has no route to crates.io, so the workspace
//! vendors the slice of `rand` 0.8 it actually uses: [`Rng`]
//! (`gen`/`gen_range`/`gen_bool`), [`SeedableRng::seed_from_u64`],
//! [`rngs::StdRng`], and [`seq::SliceRandom::shuffle`]. The generator is
//! xoshiro256++ seeded through SplitMix64 — deterministic per seed, which
//! is all the workspace requires (every experiment seeds explicitly via
//! `mv_common::seeded_rng`). The *stream* differs from upstream
//! rand's ChaCha12-based `StdRng`, so absolute experiment numbers shift
//! versus a build against real `rand`; all workspace tests assert shapes
//! and invariants, not stream-exact values.

/// Low-level generator interface: a source of uniform `u64`s.
pub trait RngCore {
    /// Next uniform 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// Next uniform 32-bit value.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Deterministic construction from a seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// SplitMix64 step — used to expand a `u64` seed into generator state.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Generator implementations.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    ///
    /// Not the upstream ChaCha12 `StdRng`; see the crate docs for why the
    /// substitution is acceptable here.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // All-zero state would be a fixed point; SplitMix64 cannot
            // produce four zeros from any seed, but guard anyway.
            if s == [0, 0, 0, 0] {
                s[0] = 1;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Types producible by [`Rng::gen`] (the upstream `Standard` distribution).
pub trait StandardSample {
    /// Draw a uniform value of `Self`.
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for u64 {
    #[inline]
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}
impl StandardSample for u32 {
    #[inline]
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}
impl StandardSample for u16 {
    #[inline]
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 48) as u16
    }
}
impl StandardSample for u8 {
    #[inline]
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}
impl StandardSample for usize {
    #[inline]
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}
impl StandardSample for i64 {
    #[inline]
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}
impl StandardSample for i32 {
    #[inline]
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as i32
    }
}
impl StandardSample for bool {
    #[inline]
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}
impl StandardSample for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
impl StandardSample for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    #[inline]
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Types usable as `gen_range` endpoints.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)` (or `[lo, hi]` when `inclusive`).
    fn sample_uniform<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool)
        -> Self;
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_uniform<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                if inclusive {
                    assert!(lo <= hi, "gen_range: empty inclusive range");
                } else {
                    assert!(lo < hi, "gen_range: empty range");
                }
                // Span as u64 of representable offsets; an inclusive full-
                // domain span of exactly 2^64 only arises for 64-bit
                // endpoint types spanning the whole domain, where any u64
                // is a valid offset.
                let span = (hi as i128 - lo as i128) as u128 + if inclusive { 1 } else { 0 };
                if span == 0 || span > u64::MAX as u128 {
                    return (lo as i128 + rng.next_u64() as i128) as $t;
                }
                // Lemire-style widening multiply; the tiny modulo bias is
                // irrelevant for simulation workloads.
                let offset = ((rng.next_u64() as u128 * span) >> 64) as u64;
                (lo as i128 + offset as i128) as $t
            }
        }
    )*};
}
uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_uniform<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                if inclusive {
                    assert!(lo <= hi, "gen_range: empty inclusive range");
                } else {
                    assert!(lo < hi, "gen_range: empty range");
                }
                let u = <$t as StandardSample>::standard(rng);
                let v = lo + u * (hi - lo);
                // Guard against rounding up to the open upper bound.
                if !inclusive && v >= hi {
                    lo.max(hi - (hi - lo) * <$t>::EPSILON)
                } else {
                    v
                }
            }
        }
    )*};
}
uniform_float!(f32, f64);

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw a uniform value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_uniform(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_uniform(rng, *self.start(), *self.end(), true)
    }
}

/// The user-facing generator interface (blanket-implemented for every
/// [`RngCore`], mirroring upstream).
pub trait Rng: RngCore {
    /// Uniform value of `T` (upstream's `Standard` distribution).
    #[inline]
    fn gen<T: StandardSample>(&mut self) -> T {
        T::standard(self)
    }

    /// Uniform value in `range`.
    #[inline]
    fn gen_range<T: SampleUniform, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p={p} out of [0,1]");
        <f64 as StandardSample>::standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Slice utilities (upstream `rand::seq`).
pub mod seq {
    use super::{Rng, RngCore};

    /// Shuffling and choosing on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, `None` when empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::seq::SliceRandom;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(-5i64..17);
            assert!((-5..17).contains(&v));
            let f = rng.gen_range(-2.5f64..2.5);
            assert!((-2.5..2.5).contains(&f));
            let i = rng.gen_range(3u64..=5);
            assert!((3..=5).contains(&i));
        }
    }

    #[test]
    fn gen_range_covers_endpoints_of_small_ranges() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }

    #[test]
    fn unit_floats_in_unit_interval_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_bool_tracks_p() {
        let mut rng = StdRng::seed_from_u64(4);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((hits as f64 / 100_000.0 - 0.3).abs() < 0.01, "{hits}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        // And actually moved something.
        assert_ne!(v, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn works_through_unsized_bound() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen_range(0.0..1.0)
        }
        let mut rng = StdRng::seed_from_u64(6);
        assert!((0.0..1.0).contains(&draw(&mut rng)));
    }
}
