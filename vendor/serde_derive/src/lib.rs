//! No-op serde derives.
//!
//! The vendored `serde` crate blanket-implements its marker traits for
//! every type, so `#[derive(Serialize, Deserialize)]` only needs to be
//! *accepted*, not expanded. Both derives also accept (and ignore)
//! `#[serde(...)]` attributes.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]`; emits nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]`; emits nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
