//! Offline substitute for `serde`: marker traits only.
//!
//! The workspace hand-rolls the little serialization it needs
//! (DESIGN.md §2) and uses the serde derives purely as forward-compatible
//! annotations, so this substitute provides the trait *names* with
//! blanket impls and a no-op derive (`serde_derive`). If real
//! serialization is ever needed, swap this vendored crate for upstream
//! serde — call sites won't change.

/// Marker: the type is (conceptually) serializable.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker: the type is (conceptually) deserializable.
pub trait Deserialize<'de>: Sized {}
impl<'de, T> Deserialize<'de> for T {}

/// Marker: owned deserialization (upstream's `DeserializeOwned`).
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T> DeserializeOwned for T {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

#[cfg(test)]
mod tests {
    #[test]
    fn blanket_impls_cover_arbitrary_types() {
        fn takes_serialize<T: crate::Serialize>(_: &T) {}
        fn takes_deserialize<T: for<'de> crate::Deserialize<'de>>(_: &T) {}
        takes_serialize(&42u8);
        takes_serialize(&vec!["x"]);
        takes_deserialize(&(1, 2.0));
    }
}
