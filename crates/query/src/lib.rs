#![forbid(unsafe_code)]
//! `mv-query` — query processing and optimization for the co-space.
//!
//! §IV-G raises five challenges; this crate implements the four that are
//! algorithmic (the fifth, moving queries, lives in `mv-spatial::movingq`
//! next to its index):
//!
//! * [`predicate`] — ordering expensive predicates by rank
//!   `(selectivity − 1) / cost` (Hellerstein, the paper's reference
//!   \[39\]), with a measured executor comparing orderings (E11a);
//! * [`space_aware`] — "space"-aware execution: contended allocations
//!   (the last item both a physical and an online shopper want) resolved
//!   with physical-priority policies (E11b);
//! * [`planner`] — device-aware plan selection: the optimizer §IV-G asks
//!   for, choosing join strategies feasible within a device class's
//!   memory and compute budget;
//! * [`approx`] — approximate execution for virtual-space consumers
//!   ("approximate data may be tolerated"): uniform sampling with error
//!   accounting;
//! * [`sketch`] — HyperLogLog sketches for the fifth challenge: optimizer
//!   metadata "estimated locally at each site … to minimize information
//!   exchange".

pub mod approx;
pub mod planner;
pub mod predicate;
pub mod sketch;
pub mod space_aware;

pub use approx::ApproxAggregator;
pub use planner::{DeviceClass, JoinPlan, Planner};
pub use predicate::{optimal_order, PredicateSpec, PredicateExecutor};
pub use sketch::Hll;
pub use space_aware::{AllocPolicy, ContendedAllocator, PurchaseRequest};
