//! Sketch-based distributed metadata estimation (HyperLogLog).
//!
//! §IV-G, fifth challenge: *"ensure that meta-data that are required for
//! optimization can be estimated locally at each site/cluster to
//! minimize information exchange, while at the same time the quality of
//! the generated plan may not be significantly compromised."*
//!
//! Cardinalities are the optimizer metadata that matter most (join
//! ordering, distinct counts for group-by sizing). The classic answer is
//! a mergeable sketch: every site summarizes its local column into a
//! [`Hll`] (2^b byte registers), ships the sketch instead of the data,
//! and the coordinator merges sketches register-wise — union cardinality
//! at ~1.04/√m relative error for m-register sketches. E11e measures
//! bytes exchanged and estimate error against shipping raw values.

use mv_common::hash::fx_hash_one;
use std::hash::Hash;

/// The murmur3 64-bit finalizer: full-avalanche bit mixing.
#[inline]
fn mix64(mut h: u64) -> u64 {
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
    h ^= h >> 33;
    h = h.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    h ^= h >> 33;
    h
}

/// A HyperLogLog cardinality sketch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hll {
    /// log2 of the register count.
    b: u8,
    registers: Vec<u8>,
}

impl Hll {
    /// Create a sketch with `2^b` registers (`4 ≤ b ≤ 16`).
    pub fn new(b: u8) -> Self {
        assert!((4..=16).contains(&b), "b must be in 4..=16");
        Hll { b, registers: vec![0; 1 << b] }
    }

    /// Number of registers.
    pub fn m(&self) -> usize {
        self.registers.len()
    }

    /// Serialized size in bytes (what a site ships to the coordinator).
    pub fn bytes(&self) -> usize {
        self.registers.len() + 1
    }

    /// Add one value.
    pub fn insert<T: Hash>(&mut self, value: &T) {
        // FxHash is fast but its extreme bits are too structured for
        // register bucketing (sequential keys stride through buckets);
        // run the murmur3 finalizer to get avalanche behaviour.
        let h = mix64(fx_hash_one(value));
        let idx = (h >> (64 - self.b)) as usize;
        let rest = h << self.b;
        // Rank: leading zeros of the remaining bits + 1 (capped).
        let rank = (rest.leading_zeros() as u8 + 1).min(64 - self.b + 1);
        if rank > self.registers[idx] {
            self.registers[idx] = rank;
        }
    }

    /// Merge another sketch (register-wise max). Sketches must share `b`.
    ///
    /// # Panics
    /// Panics on mismatched register counts.
    pub fn merge(&mut self, other: &Hll) {
        assert_eq!(self.b, other.b, "cannot merge sketches of different precision");
        for (r, o) in self.registers.iter_mut().zip(&other.registers) {
            *r = (*r).max(*o);
        }
    }

    /// Estimate the distinct count.
    pub fn estimate(&self) -> f64 {
        let m = self.m() as f64;
        let alpha = match self.m() {
            16 => 0.673,
            32 => 0.697,
            64 => 0.709,
            _ => 0.7213 / (1.0 + 1.079 / m),
        };
        let sum: f64 = self.registers.iter().map(|&r| 2f64.powi(-(r as i32))).sum();
        let raw = alpha * m * m / sum;
        // Small-range correction: linear counting.
        let zeros = self.registers.iter().filter(|&&r| r == 0).count();
        if raw <= 2.5 * m && zeros > 0 {
            m * (m / zeros as f64).ln()
        } else {
            raw
        }
    }

    /// Theoretical relative standard error (~1.04/√m).
    pub fn expected_rel_error(&self) -> f64 {
        1.04 / (self.m() as f64).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mv_common::seeded_rng;
    use rand::Rng;

    #[test]
    fn estimates_within_expected_error() {
        for &n in &[100usize, 10_000, 200_000] {
            let mut h = Hll::new(12); // 4096 registers → ~1.6% error
            for i in 0..n {
                h.insert(&(i as u64));
            }
            let est = h.estimate();
            let rel = (est - n as f64).abs() / n as f64;
            assert!(rel < 5.0 * h.expected_rel_error(), "n={n}: est {est}, rel {rel}");
        }
    }

    #[test]
    fn duplicates_do_not_inflate() {
        let mut h = Hll::new(10);
        for _ in 0..50 {
            for i in 0..1000u64 {
                h.insert(&i);
            }
        }
        let est = h.estimate();
        assert!((est - 1000.0).abs() / 1000.0 < 0.2, "est {est}");
    }

    #[test]
    fn merge_equals_union() {
        let mut rng = seeded_rng(5);
        let mut a = Hll::new(12);
        let mut b = Hll::new(12);
        let mut union = Hll::new(12);
        let mut truth = std::collections::BTreeSet::new();
        for _ in 0..20_000 {
            let v: u64 = rng.gen_range(0..30_000);
            if rng.gen_bool(0.5) {
                a.insert(&v);
            } else {
                b.insert(&v);
            }
            union.insert(&v);
            truth.insert(v);
        }
        a.merge(&b);
        assert_eq!(a, union, "merge must equal inserting the union directly");
        let rel = (a.estimate() - truth.len() as f64).abs() / truth.len() as f64;
        assert!(rel < 0.1, "union estimate off by {rel}");
    }

    #[test]
    fn sketch_is_tiny_versus_the_data() {
        let h = Hll::new(12);
        assert_eq!(h.bytes(), 4097);
        // 200k 8-byte values would be 1.6 MB on the wire.
        assert!(h.bytes() * 100 < 200_000 * 8);
    }

    #[test]
    #[should_panic(expected = "different precision")]
    fn mismatched_merge_panics() {
        let mut a = Hll::new(10);
        a.merge(&Hll::new(12));
    }
}
