//! Expensive-predicate ordering.
//!
//! For a conjunction of independent predicates, the expected per-tuple
//! cost of evaluating them in order p₁…pₙ is
//! `c₁ + s₁c₂ + s₁s₂c₃ + …` — minimized by sorting on the classic rank
//! metric `(selectivity − 1) / cost` (ascending). The executor actually
//! evaluates synthetic predicates (spinning a calibrated cost) so the
//! experiment measures real work saved, not just the formula.

use mv_common::seeded_rng;
use rand::Rng;

/// A predicate's optimizer-visible statistics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PredicateSpec {
    /// Mnemonic used in plans.
    pub name: &'static str,
    /// Cost of one evaluation, in abstract work units.
    pub cost: f64,
    /// Fraction of tuples that pass.
    pub selectivity: f64,
}

impl PredicateSpec {
    /// Build a spec.
    ///
    /// # Panics
    /// Panics unless `cost > 0` and `selectivity ∈ [0, 1]`.
    pub fn new(name: &'static str, cost: f64, selectivity: f64) -> Self {
        assert!(cost > 0.0, "non-positive predicate cost");
        assert!((0.0..=1.0).contains(&selectivity), "selectivity out of range");
        PredicateSpec { name, cost, selectivity }
    }

    /// Hellerstein's rank.
    pub fn rank(&self) -> f64 {
        (self.selectivity - 1.0) / self.cost
    }
}

/// The optimal left-to-right order: ascending rank.
pub fn optimal_order(specs: &[PredicateSpec]) -> Vec<PredicateSpec> {
    let mut v = specs.to_vec();
    v.sort_by(|a, b| a.rank().total_cmp(&b.rank()));
    v
}

/// Expected per-tuple cost of an ordering.
pub fn expected_cost(order: &[PredicateSpec]) -> f64 {
    let mut cost = 0.0;
    let mut pass = 1.0;
    for p in order {
        cost += pass * p.cost;
        pass *= p.selectivity;
    }
    cost
}

/// Evaluates orderings over synthetic tuples, counting actual work.
#[derive(Debug)]
pub struct PredicateExecutor {
    /// Per-tuple, per-predicate pass bits, generated per the spec
    /// selectivities: `pass[t][i]`.
    pass: Vec<Vec<bool>>,
    specs: Vec<PredicateSpec>,
}

impl PredicateExecutor {
    /// Generate `tuples` synthetic tuples against `specs`.
    pub fn generate(specs: &[PredicateSpec], tuples: usize, seed: u64) -> Self {
        let mut rng = seeded_rng(seed);
        let pass = (0..tuples)
            .map(|_| specs.iter().map(|s| rng.gen_bool(s.selectivity)).collect())
            .collect();
        PredicateExecutor { pass, specs: specs.to_vec() }
    }

    fn index_of(&self, name: &str) -> usize {
        self.specs
            .iter()
            .position(|s| s.name == name)
            .expect("ordering references a generated predicate")
    }

    /// Run the conjunction in the given order; returns
    /// `(qualifying_tuples, total_work_units)`.
    pub fn run(&self, order: &[PredicateSpec]) -> (usize, f64) {
        let idx: Vec<usize> = order.iter().map(|p| self.index_of(p.name)).collect();
        let mut work = 0.0;
        let mut qualified = 0usize;
        for tuple in &self.pass {
            let mut ok = true;
            for (&i, spec) in idx.iter().zip(order) {
                work += spec.cost;
                if !tuple[i] {
                    ok = false;
                    break;
                }
            }
            if ok {
                qualified += 1;
            }
        }
        (qualified, work)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn specs() -> Vec<PredicateSpec> {
        vec![
            // An expensive, unselective UDF (e.g. image classification)…
            PredicateSpec::new("classify_image", 100.0, 0.9),
            // …a cheap, selective range check…
            PredicateSpec::new("in_region", 1.0, 0.1),
            // …and something in between (sentiment over review text).
            PredicateSpec::new("sentiment", 10.0, 0.5),
        ]
    }

    #[test]
    fn rank_orders_cheap_selective_first() {
        let order = optimal_order(&specs());
        let names: Vec<&str> = order.iter().map(|p| p.name).collect();
        assert_eq!(names, vec!["in_region", "sentiment", "classify_image"]);
    }

    #[test]
    fn expected_cost_matches_formula() {
        let order = optimal_order(&specs());
        // 1 + 0.1*10 + 0.1*0.5*100 = 7.0
        assert!((expected_cost(&order) - 7.0).abs() < 1e-9);
        // The naive order: 100 + 0.9*1 + 0.9*0.1*10 = 101.8
        assert!((expected_cost(&specs()) - 101.8).abs() < 1e-9);
    }

    #[test]
    fn executor_agrees_with_expectation() {
        let specs = specs();
        let exec = PredicateExecutor::generate(&specs, 20_000, 5);
        let (q_naive, w_naive) = exec.run(&specs);
        let (q_opt, w_opt) = exec.run(&optimal_order(&specs));
        // Same answers, drastically less work.
        assert_eq!(q_naive, q_opt, "ordering must not change semantics");
        assert!(w_opt * 5.0 < w_naive, "opt {w_opt} vs naive {w_naive}");
        // Measured per-tuple work tracks the analytic expectation within 5%.
        let per_tuple = w_opt / 20_000.0;
        let expected = expected_cost(&optimal_order(&specs));
        assert!((per_tuple - expected).abs() / expected < 0.05, "{per_tuple} vs {expected}");
    }

    #[test]
    fn qualified_count_matches_joint_selectivity() {
        let specs = specs();
        let exec = PredicateExecutor::generate(&specs, 50_000, 9);
        let (q, _) = exec.run(&specs);
        let joint = 0.9 * 0.1 * 0.5;
        let expected = 50_000.0 * joint;
        assert!((q as f64 - expected).abs() < expected * 0.15, "{q} vs {expected}");
    }

    #[test]
    fn degenerate_selectivities() {
        let all_pass = PredicateSpec::new("true", 1.0, 1.0);
        let none_pass = PredicateSpec::new("false", 1.0, 0.0);
        let order = optimal_order(&[all_pass, none_pass]);
        assert_eq!(order[0].name, "false", "zero-selectivity short-circuits first");
        let exec = PredicateExecutor::generate(&[all_pass, none_pass], 100, 1);
        let (q, w) = exec.run(&order);
        assert_eq!(q, 0);
        assert_eq!(w, 100.0, "only the first predicate ever runs");
    }

    #[test]
    #[should_panic(expected = "selectivity")]
    fn invalid_selectivity_rejected() {
        PredicateSpec::new("bad", 1.0, 1.5);
    }
}
