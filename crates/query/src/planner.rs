//! Device-aware plan selection.
//!
//! §IV-G: *"the optimizer may have to be device-aware so that a feasible
//! (and optimal for the device) plan can be generated"*. The planner
//! chooses a join strategy per device class: plans that don't fit the
//! device's memory are infeasible, and among the feasible ones the
//! cheapest under a simple cost model wins.

use mv_common::{MvError, MvResult};

/// Device classes of the disaggregated architecture (Fig. 7).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeviceClass {
    /// VR goggles / smart glasses: tiny memory, weak CPU.
    Headset,
    /// Mobile phone.
    Phone,
    /// Edge server.
    EdgeServer,
    /// Cloud executor: effectively unconstrained.
    CloudExecutor,
}

impl DeviceClass {
    /// Working memory available to a query, in rows it can hold.
    pub fn mem_rows(self) -> u64 {
        match self {
            DeviceClass::Headset => 2_000,
            DeviceClass::Phone => 50_000,
            DeviceClass::EdgeServer => 2_000_000,
            DeviceClass::CloudExecutor => u64::MAX,
        }
    }

    /// Relative CPU slowdown vs. a cloud executor.
    pub fn cpu_factor(self) -> f64 {
        match self {
            DeviceClass::Headset => 8.0,
            DeviceClass::Phone => 4.0,
            DeviceClass::EdgeServer => 1.5,
            DeviceClass::CloudExecutor => 1.0,
        }
    }
}

/// Join strategies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinPlan {
    /// Build a hash table on the smaller input. Needs the build side in
    /// memory; cost ≈ n + m.
    HashJoin,
    /// Sort both sides, then merge. Needs the larger side in memory (we
    /// model in-memory sorts only); cost ≈ n log n + m log m.
    SortMergeJoin,
    /// Nested loops: no memory needed; cost ≈ n × m.
    NestedLoop,
}

impl JoinPlan {
    /// All strategies.
    pub const ALL: [JoinPlan; 3] =
        [JoinPlan::HashJoin, JoinPlan::SortMergeJoin, JoinPlan::NestedLoop];

    /// Memory rows required for inputs of `n` and `m` rows.
    pub fn mem_rows(self, n: u64, m: u64) -> u64 {
        match self {
            JoinPlan::HashJoin => n.min(m),
            JoinPlan::SortMergeJoin => n.max(m),
            JoinPlan::NestedLoop => 1,
        }
    }

    /// Abstract CPU cost for inputs of `n` and `m` rows.
    pub fn cost(self, n: u64, m: u64) -> f64 {
        let (n, m) = (n as f64, m as f64);
        match self {
            JoinPlan::HashJoin => 1.2 * (n + m),
            JoinPlan::SortMergeJoin => {
                n * n.max(2.0).log2() + m * m.max(2.0).log2()
            }
            JoinPlan::NestedLoop => 0.25 * n * m,
        }
    }
}

/// The device-aware planner.
#[derive(Debug, Default)]
pub struct Planner;

impl Planner {
    /// Pick the cheapest plan feasible on `device` for a join of `n × m`
    /// rows; returns the plan and its device-adjusted cost.
    pub fn choose_join(device: DeviceClass, n: u64, m: u64) -> MvResult<(JoinPlan, f64)> {
        JoinPlan::ALL
            .iter()
            .filter(|p| p.mem_rows(n, m) <= device.mem_rows())
            .map(|&p| (p, p.cost(n, m) * device.cpu_factor()))
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .ok_or_else(|| MvError::Exhausted("no feasible plan".into()))
    }

    /// Should the device run the join locally or ship both inputs to the
    /// cloud? Shipping costs `ship_cost_per_row` per row; the cloud runs
    /// at factor 1. Returns `(run_in_cloud, total_cost)`.
    pub fn place_join(
        device: DeviceClass,
        n: u64,
        m: u64,
        ship_cost_per_row: f64,
    ) -> MvResult<(bool, f64)> {
        let local = Self::choose_join(device, n, m).map(|(_, c)| c);
        let (_, cloud_exec) = Self::choose_join(DeviceClass::CloudExecutor, n, m)?;
        let cloud = cloud_exec + ship_cost_per_row * (n + m) as f64;
        Ok(match local {
            Ok(local_cost) if local_cost <= cloud => (false, local_cost),
            _ => (true, cloud),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cloud_prefers_hash_join() {
        let (plan, _) = Planner::choose_join(DeviceClass::CloudExecutor, 100_000, 1_000_000)
            .unwrap();
        assert_eq!(plan, JoinPlan::HashJoin);
    }

    #[test]
    fn headset_falls_back_when_build_side_too_big() {
        // Build side (100k) exceeds headset memory (2k rows): hash join
        // and sort-merge are infeasible; nested loop remains.
        let (plan, _) = Planner::choose_join(DeviceClass::Headset, 100_000, 200_000).unwrap();
        assert_eq!(plan, JoinPlan::NestedLoop);
        // A small join fits and goes hash.
        let (plan, _) = Planner::choose_join(DeviceClass::Headset, 1_000, 1_000).unwrap();
        assert_eq!(plan, JoinPlan::HashJoin);
    }

    #[test]
    fn device_cpu_factor_scales_cost() {
        let (_, cloud) = Planner::choose_join(DeviceClass::CloudExecutor, 1_000, 1_000).unwrap();
        let (_, phone) = Planner::choose_join(DeviceClass::Phone, 1_000, 1_000).unwrap();
        assert!((phone / cloud - 4.0).abs() < 1e-9);
    }

    #[test]
    fn placement_ships_big_joins_off_weak_devices() {
        // Big join on a headset: local nested loop is ruinous; shipping wins.
        let (in_cloud, _) =
            Planner::place_join(DeviceClass::Headset, 50_000, 50_000, 1.0).unwrap();
        assert!(in_cloud);
        // Small join: stay local, save the shipping.
        let (in_cloud, _) = Planner::place_join(DeviceClass::Headset, 500, 500, 10.0).unwrap();
        assert!(!in_cloud);
    }

    #[test]
    fn plan_cost_model_orderings() {
        // For equal inputs, hash < sort-merge < nested loop at scale.
        let n = 100_000;
        assert!(JoinPlan::HashJoin.cost(n, n) < JoinPlan::SortMergeJoin.cost(n, n));
        assert!(JoinPlan::SortMergeJoin.cost(n, n) < JoinPlan::NestedLoop.cost(n, n));
        // At tiny sizes nested loop is competitive.
        assert!(JoinPlan::NestedLoop.cost(2, 2) < JoinPlan::HashJoin.cost(2, 2));
    }
}
