//! Approximate aggregation by uniform sampling.
//!
//! §IV-G: *"in the case of a cyber user, while real-time information is
//! highly desirable, approximate data may be tolerated … efficient
//! approximation techniques in the virtual space that do not sacrifice
//! the quality of the output significantly are highly desirable."*
//! Uniform sampling with a standard-error estimate: the virtual space
//! gets a cheap answer with a confidence band; the physical space can
//! insist on exact.

use mv_common::seeded_rng;
use rand::seq::SliceRandom;

/// An approximate (or exact) aggregate answer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ApproxAnswer {
    /// The estimate.
    pub value: f64,
    /// Estimated standard error (0 for exact answers).
    pub std_error: f64,
    /// Values actually touched (the cost metric).
    pub touched: usize,
}

/// Sampling aggregator over a value column.
#[derive(Debug)]
pub struct ApproxAggregator {
    values: Vec<f64>,
}

impl ApproxAggregator {
    /// Wrap a column.
    pub fn new(values: Vec<f64>) -> Self {
        ApproxAggregator { values }
    }

    /// Column length.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when the column is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Exact mean (touches everything).
    pub fn mean_exact(&self) -> ApproxAnswer {
        let n = self.values.len();
        let value = if n == 0 { 0.0 } else { self.values.iter().sum::<f64>() / n as f64 };
        ApproxAnswer { value, std_error: 0.0, touched: n }
    }

    /// Sampled mean over `fraction` of the column (clamped to (0, 1]).
    pub fn mean_sampled(&self, fraction: f64, seed: u64) -> ApproxAnswer {
        let n = self.values.len();
        if n == 0 {
            return ApproxAnswer { value: 0.0, std_error: 0.0, touched: 0 };
        }
        let k = ((n as f64 * fraction.clamp(1e-6, 1.0)).ceil() as usize).clamp(1, n);
        let mut rng = seeded_rng(seed);
        let mut idx: Vec<usize> = (0..n).collect();
        idx.shuffle(&mut rng);
        let sample: Vec<f64> = idx[..k].iter().map(|&i| self.values[i]).collect();
        let mean = sample.iter().sum::<f64>() / k as f64;
        let var = if k < 2 {
            0.0
        } else {
            sample.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / (k as f64 - 1.0)
        };
        // Finite-population-corrected standard error.
        let fpc = ((n - k) as f64 / (n as f64 - 1.0).max(1.0)).max(0.0);
        let std_error = (var / k as f64 * fpc).sqrt();
        ApproxAnswer { value: mean, std_error, touched: k }
    }

    /// Exact sum.
    pub fn sum_exact(&self) -> ApproxAnswer {
        let s = self.values.iter().sum::<f64>();
        ApproxAnswer { value: s, std_error: 0.0, touched: self.values.len() }
    }

    /// Sampled sum (scaled-up sample mean).
    pub fn sum_sampled(&self, fraction: f64, seed: u64) -> ApproxAnswer {
        let mean = self.mean_sampled(fraction, seed);
        ApproxAnswer {
            value: mean.value * self.values.len() as f64,
            std_error: mean.std_error * self.values.len() as f64,
            touched: mean.touched,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mv_common::sample::normal_sample;
    use rand::Rng;

    fn column(n: usize) -> Vec<f64> {
        let mut rng = seeded_rng(3);
        (0..n).map(|_| normal_sample(&mut rng, 50.0, 10.0)).collect()
    }

    #[test]
    fn exact_mean_baseline() {
        let agg = ApproxAggregator::new(vec![1.0, 2.0, 3.0, 4.0]);
        let a = agg.mean_exact();
        assert_eq!(a.value, 2.5);
        assert_eq!(a.std_error, 0.0);
        assert_eq!(a.touched, 4);
    }

    #[test]
    fn sample_estimate_within_error_bars() {
        let agg = ApproxAggregator::new(column(100_000));
        let exact = agg.mean_exact();
        let approx = agg.mean_sampled(0.01, 11);
        assert_eq!(approx.touched, 1000);
        // Within 4 standard errors (overwhelmingly likely).
        assert!(
            (approx.value - exact.value).abs() < 4.0 * approx.std_error,
            "estimate {} vs exact {} ± {}",
            approx.value,
            exact.value,
            approx.std_error
        );
    }

    #[test]
    fn error_shrinks_with_sample_size() {
        let agg = ApproxAggregator::new(column(100_000));
        let small = agg.mean_sampled(0.001, 5);
        let large = agg.mean_sampled(0.10, 5);
        assert!(large.std_error < small.std_error);
        assert!(large.touched > small.touched);
    }

    #[test]
    fn full_fraction_is_exact() {
        let agg = ApproxAggregator::new(vec![1.0, 5.0, 9.0]);
        let a = agg.mean_sampled(1.0, 1);
        assert_eq!(a.touched, 3);
        assert!((a.value - 5.0).abs() < 1e-12);
        assert!(a.std_error.abs() < 1e-12, "fpc zeroes the error at full sample");
    }

    #[test]
    fn sum_scales_mean() {
        let agg = ApproxAggregator::new(vec![2.0; 1000]);
        let s = agg.sum_sampled(0.1, 2);
        assert!((s.value - 2000.0).abs() < 1e-9);
        assert_eq!(agg.sum_exact().value, 2000.0);
    }

    #[test]
    fn empty_column_is_safe() {
        let agg = ApproxAggregator::new(vec![]);
        assert!(agg.is_empty());
        assert_eq!(agg.mean_exact().value, 0.0);
        assert_eq!(agg.mean_sampled(0.5, 1).touched, 0);
    }

    #[test]
    fn deterministic_given_seed() {
        let agg = ApproxAggregator::new(column(10_000));
        let a = agg.mean_sampled(0.05, 42);
        let b = agg.mean_sampled(0.05, 42);
        assert_eq!(a, b);
        // Different seed, different sample.
        let c = agg.mean_sampled(0.05, 43);
        assert_ne!(a.value, c.value);
        let _ = seeded_rng(0).gen::<u64>(); // keep the Rng import honest
    }
}
