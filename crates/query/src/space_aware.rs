//! Space-aware contended allocation.
//!
//! §IV-G: *"it is reasonable to prioritize sales for a shopper in a
//! physical mall than for an online shopper (when they both wanted the
//! last available item)"*. The allocator batches purchase requests over a
//! short decision window (requests racing within the window are
//! "simultaneous") and resolves each item's contention under a policy.

use mv_common::hash::FastMap;
use mv_common::id::ClientId;
use mv_common::metrics::Counters;
use mv_common::time::{SimDuration, SimTime};
use mv_common::Space;

/// A purchase request for one unit of an item.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PurchaseRequest {
    /// The shopper.
    pub client: ClientId,
    /// Which space the shopper is in.
    pub space: Space,
    /// Item id.
    pub item: u64,
    /// Arrival time.
    pub ts: SimTime,
}

/// Contention-resolution policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocPolicy {
    /// Strict arrival order (whoever's packet got in first).
    Fifo,
    /// Within a decision window, physical shoppers outrank virtual ones;
    /// ties by arrival.
    PhysicalFirst {
        /// Requests closer together than this are considered simultaneous.
        window: SimDuration,
    },
}

/// Outcome per request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PurchaseOutcome {
    /// Got the item.
    Won,
    /// Sold out (or outranked).
    Lost,
}

/// The allocator.
#[derive(Debug)]
pub struct ContendedAllocator {
    stock: FastMap<u64, u64>,
    policy: AllocPolicy,
    /// `sold`, `rejected`, `physical_wins`, `virtual_wins` counters.
    pub stats: Counters,
}

impl ContendedAllocator {
    /// Create with a policy.
    pub fn new(policy: AllocPolicy) -> Self {
        ContendedAllocator { stock: FastMap::default(), policy, stats: Counters::new() }
    }

    /// Set an item's stock.
    pub fn stock(&mut self, item: u64, qty: u64) {
        self.stock.insert(item, qty);
    }

    /// Remaining stock.
    pub fn remaining(&self, item: u64) -> u64 {
        self.stock.get(&item).copied().unwrap_or(0)
    }

    /// Resolve a batch of requests; returns outcomes aligned with the
    /// input order.
    pub fn resolve(&mut self, requests: &[PurchaseRequest]) -> Vec<PurchaseOutcome> {
        // Deterministic service order per policy.
        let mut order: Vec<usize> = (0..requests.len()).collect();
        match self.policy {
            AllocPolicy::Fifo => {
                order.sort_by_key(|&i| (requests[i].ts, requests[i].client));
            }
            AllocPolicy::PhysicalFirst { window } => {
                order.sort_by_key(|&i| {
                    let r = &requests[i];
                    // Quantize arrivals into decision windows; within a
                    // window physical outranks virtual.
                    let bucket = r.ts.as_micros() / window.as_micros().max(1);
                    let space_rank = match r.space {
                        Space::Physical => 0u8,
                        Space::Virtual => 1u8,
                    };
                    (bucket, space_rank, r.ts, r.client)
                });
            }
        }
        let mut outcomes = vec![PurchaseOutcome::Lost; requests.len()];
        for i in order {
            let r = &requests[i];
            let stock = self.stock.entry(r.item).or_insert(0);
            if *stock > 0 {
                *stock -= 1;
                outcomes[i] = PurchaseOutcome::Won;
                self.stats.incr("sold");
                match r.space {
                    Space::Physical => self.stats.incr("physical_wins"),
                    Space::Virtual => self.stats.incr("virtual_wins"),
                }
            } else {
                self.stats.incr("rejected");
            }
        }
        outcomes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(client: u64, space: Space, item: u64, us: u64) -> PurchaseRequest {
        PurchaseRequest {
            client: ClientId::new(client),
            space,
            item,
            ts: SimTime::from_micros(us),
        }
    }

    #[test]
    fn fifo_first_packet_wins() {
        let mut alloc = ContendedAllocator::new(AllocPolicy::Fifo);
        alloc.stock(1, 1);
        // The online shopper's packet arrives 1 µs earlier.
        let outcomes = alloc.resolve(&[
            req(1, Space::Virtual, 1, 100),
            req(2, Space::Physical, 1, 101),
        ]);
        assert_eq!(outcomes, vec![PurchaseOutcome::Won, PurchaseOutcome::Lost]);
    }

    #[test]
    fn physical_first_flips_the_race_within_the_window() {
        let mut alloc = ContendedAllocator::new(AllocPolicy::PhysicalFirst {
            window: SimDuration::from_millis(10),
        });
        alloc.stock(1, 1);
        let outcomes = alloc.resolve(&[
            req(1, Space::Virtual, 1, 100),
            req(2, Space::Physical, 1, 101),
        ]);
        assert_eq!(outcomes, vec![PurchaseOutcome::Lost, PurchaseOutcome::Won]);
        assert_eq!(alloc.stats.get("physical_wins"), 1);
    }

    #[test]
    fn physical_priority_does_not_cross_windows() {
        let mut alloc = ContendedAllocator::new(AllocPolicy::PhysicalFirst {
            window: SimDuration::from_micros(10),
        });
        alloc.stock(1, 1);
        // The virtual shopper arrived a full window earlier: FIFO applies.
        let outcomes = alloc.resolve(&[
            req(1, Space::Virtual, 1, 0),
            req(2, Space::Physical, 1, 50),
        ]);
        assert_eq!(outcomes, vec![PurchaseOutcome::Won, PurchaseOutcome::Lost]);
    }

    #[test]
    fn stock_depletes_across_batches() {
        let mut alloc = ContendedAllocator::new(AllocPolicy::Fifo);
        alloc.stock(1, 2);
        alloc.resolve(&[req(1, Space::Physical, 1, 0)]);
        alloc.resolve(&[req(2, Space::Physical, 1, 1)]);
        let out = alloc.resolve(&[req(3, Space::Physical, 1, 2)]);
        assert_eq!(out, vec![PurchaseOutcome::Lost]);
        assert_eq!(alloc.remaining(1), 0);
        assert_eq!(alloc.stats.get("sold"), 2);
        assert_eq!(alloc.stats.get("rejected"), 1);
    }

    #[test]
    fn independent_items_do_not_contend() {
        let mut alloc = ContendedAllocator::new(AllocPolicy::Fifo);
        alloc.stock(1, 1);
        alloc.stock(2, 1);
        let out = alloc.resolve(&[
            req(1, Space::Virtual, 1, 0),
            req(2, Space::Physical, 2, 0),
        ]);
        assert_eq!(out, vec![PurchaseOutcome::Won, PurchaseOutcome::Won]);
    }
}
