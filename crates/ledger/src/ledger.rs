//! A verifiable key-value ledger with deferred verification.
//!
//! GlassDB-flavoured (the paper's \[87\]): every committed write appends a
//! `(key, value)` digest entry to a transparency log; reads return the
//! value together with an inclusion *promise*. Verifying each promise
//! synchronously would put a Merkle proof on every read's critical path,
//! so clients batch promises and verify them against one fresh signed
//! head — the "deferred verification" trade GlassDB makes. E5 measures
//! both modes.

use crate::log::{TransparencyLog, TreeHead};
use crate::merkle::{verify_inclusion, InclusionProof};
use mv_common::hash::FastMap;
use mv_common::MvError;
use mv_common::MvResult;

/// A read receipt awaiting verification.
#[derive(Debug, Clone)]
pub struct ReadPromise {
    /// The serialized log entry the read claims to reflect.
    pub entry: Vec<u8>,
    /// Log index of that entry.
    pub index: u64,
}

fn encode_entry(key: &str, value: &[u8], version: u64) -> Vec<u8> {
    let mut buf = Vec::with_capacity(key.len() + value.len() + 16);
    buf.extend_from_slice(&(key.len() as u32).to_le_bytes());
    buf.extend_from_slice(key.as_bytes());
    buf.extend_from_slice(&version.to_le_bytes());
    buf.extend_from_slice(value);
    buf
}

/// The ledger server: a KV map backed by a transparency log.
pub struct VerifiableKv {
    log: TransparencyLog,
    /// key → (value, version, log index).
    store: FastMap<String, (Vec<u8>, u64, u64)>,
}

impl VerifiableKv {
    /// A ledger signing heads with `key`.
    pub fn new(signing_key: &[u8]) -> Self {
        VerifiableKv { log: TransparencyLog::new(signing_key), store: FastMap::default() }
    }

    /// Commit a write; the ledger entry is appended before the store is
    /// updated (log-ahead).
    pub fn put(&mut self, key: &str, value: &[u8]) -> u64 {
        let version = self.store.get(key).map(|(_, v, _)| v + 1).unwrap_or(0);
        let entry = encode_entry(key, value, version);
        let index = self.log.append(&entry);
        self.store.insert(key.to_string(), (value.to_vec(), version, index));
        index
    }

    /// Read with a verification promise (deferred mode).
    pub fn get(&self, key: &str) -> MvResult<(Vec<u8>, ReadPromise)> {
        let (value, version, index) = self
            .store
            .get(key)
            .cloned()
            .ok_or_else(|| MvError::InvalidArgument(format!("unknown key {key}")))?;
        let entry = encode_entry(key, &value, version);
        Ok((value, ReadPromise { entry, index }))
    }

    /// Read with an eagerly generated and verified proof (synchronous
    /// mode — the expensive baseline).
    pub fn get_verified(&mut self, key: &str) -> MvResult<Vec<u8>> {
        let (value, promise) = self.get(key)?;
        let head = self.log.head();
        let proof = self.log.prove_inclusion(promise.index);
        if !verify_inclusion(&promise.entry, &proof, &head.root) {
            return Err(MvError::VerificationFailed(format!("inclusion of key {key}")));
        }
        Ok(value)
    }

    /// Produce the proofs needed to settle a batch of promises against
    /// the current head: `(head, per-promise inclusion proofs)`.
    pub fn settle(&mut self, promises: &[ReadPromise]) -> (TreeHead, Vec<InclusionProof>) {
        let head = self.log.head();
        let proofs =
            promises.iter().map(|p| self.log.prove_inclusion(p.index)).collect();
        (head, proofs)
    }

    /// Current signed head.
    pub fn head(&mut self) -> TreeHead {
        self.log.head()
    }

    /// Consistency proof between heads (for the auditor).
    pub fn prove_consistency(&mut self, old: u64, new: u64) -> crate::merkle::ConsistencyProof {
        self.log.prove_consistency(old, new)
    }

    /// Number of committed log entries.
    pub fn log_size(&self) -> u64 {
        self.log.size()
    }

    /// Tamper with the *store* (not the log) — test hook modelling a
    /// compromised server returning a value that was never committed.
    #[doc(hidden)]
    pub fn tamper_store(&mut self, key: &str, fake_value: &[u8]) {
        if let Some(slot) = self.store.get_mut(key) {
            slot.0 = fake_value.to_vec();
        }
    }
}

/// Client-side deferred verifier: collects promises, settles in batches.
pub struct DeferredVerifier {
    promises: Vec<ReadPromise>,
}

impl DeferredVerifier {
    /// Empty batch.
    pub fn new() -> Self {
        DeferredVerifier { promises: Vec::new() }
    }

    /// Add a read's promise to the batch.
    pub fn collect(&mut self, p: ReadPromise) {
        self.promises.push(p);
    }

    /// Pending promise count.
    pub fn pending(&self) -> usize {
        self.promises.len()
    }

    /// Settle the batch against the server; returns Ok(n) with the number
    /// of verified reads or the first failure.
    pub fn settle(&mut self, server: &mut VerifiableKv) -> MvResult<usize> {
        let (head, proofs) = server.settle(&self.promises);
        for (promise, proof) in self.promises.iter().zip(&proofs) {
            if proof.tree_size != head.size
                || !verify_inclusion(&promise.entry, proof, &head.root)
            {
                return Err(MvError::VerificationFailed(format!(
                    "read at log index {}",
                    promise.index
                )));
            }
        }
        let n = self.promises.len();
        self.promises.clear();
        Ok(n)
    }
}

impl Default for DeferredVerifier {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::Auditor;

    #[test]
    fn put_get_roundtrip_with_sync_verification() {
        let mut kv = VerifiableKv::new(b"k");
        kv.put("price:42", b"19.99");
        kv.put("stock:42", b"7");
        assert_eq!(kv.get_verified("price:42").unwrap(), b"19.99");
        assert_eq!(kv.log_size(), 2);
        assert!(kv.get_verified("missing").is_err());
    }

    #[test]
    fn versions_append_new_entries() {
        let mut kv = VerifiableKv::new(b"k");
        kv.put("x", b"1");
        kv.put("x", b"2");
        kv.put("x", b"3");
        assert_eq!(kv.log_size(), 3);
        assert_eq!(kv.get_verified("x").unwrap(), b"3");
    }

    #[test]
    fn deferred_batch_verification() {
        let mut kv = VerifiableKv::new(b"k");
        for i in 0..50 {
            kv.put(&format!("k{i}"), format!("v{i}").as_bytes());
        }
        let mut verifier = DeferredVerifier::new();
        for i in 0..50 {
            let (v, promise) = kv.get(&format!("k{i}")).unwrap();
            assert_eq!(v, format!("v{i}").as_bytes());
            verifier.collect(promise);
        }
        assert_eq!(verifier.pending(), 50);
        assert_eq!(verifier.settle(&mut kv).unwrap(), 50);
        assert_eq!(verifier.pending(), 0);
    }

    #[test]
    fn tampered_store_value_fails_verification() {
        let mut kv = VerifiableKv::new(b"k");
        kv.put("balance", b"100");
        kv.tamper_store("balance", b"1000000");
        // Sync mode catches it.
        assert!(kv.get_verified("balance").is_err());
        // Deferred mode catches it at settlement.
        let (v, promise) = kv.get("balance").unwrap();
        assert_eq!(v, b"1000000"); // the lie is served…
        let mut verifier = DeferredVerifier::new();
        verifier.collect(promise);
        assert!(verifier.settle(&mut kv).is_err()); // …and caught.
    }

    #[test]
    fn auditor_integration() {
        let mut kv = VerifiableKv::new(b"shared");
        let mut auditor = Auditor::new(b"shared");
        kv.put("a", b"1");
        let h1 = kv.head();
        assert!(auditor.check_head(&h1, &kv.prove_consistency(0, h1.size)));
        kv.put("b", b"2");
        kv.put("c", b"3");
        let h2 = kv.head();
        assert!(auditor.check_head(&h2, &kv.prove_consistency(h1.size, h2.size)));
    }
}
