//! Append-only Merkle tree with inclusion and consistency proofs.
//!
//! Hashing follows RFC 6962 (Certificate Transparency): leaves are
//! `H(0x00 ‖ data)`, interior nodes `H(0x01 ‖ left ‖ right)`, and the
//! tree over `n` leaves splits at the largest power of two strictly
//! smaller than `n`. Inclusion proofs are the standard audit paths.
//!
//! Consistency proofs use an RFC-6962-*inspired* explicit-tile format:
//! the proof carries the hashes of the maximal aligned power-of-two
//! subtrees ("tiles") that decompose `[0, n0)` and tile `[n0, n1)`. The
//! verifier recomputes *both* roots from those committed tiles, so a
//! prover cannot claim consistency between unrelated trees. Proofs stay
//! O(log n), marginally larger than RFC 6962's, with a much simpler
//! verifier — a trade DESIGN.md documents.

use crate::sha256::{sha256, sha256_pair};
use mv_common::hash::FastMap;
use serde::{Deserialize, Serialize};

/// A 32-byte SHA-256 digest.
pub type Digest = [u8; 32];

const LEAF_PREFIX: u8 = 0x00;
const NODE_PREFIX: u8 = 0x01;

/// Hash a leaf (domain-separated).
pub fn leaf_hash(data: &[u8]) -> Digest {
    let mut buf = Vec::with_capacity(1 + data.len());
    buf.push(LEAF_PREFIX);
    buf.extend_from_slice(data);
    sha256(&buf)
}

/// Hash an interior node.
#[inline]
pub fn node_hash(left: &Digest, right: &Digest) -> Digest {
    sha256_pair(NODE_PREFIX, left, right)
}

/// An inclusion proof for one leaf against a tree root.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct InclusionProof {
    /// Leaf index.
    pub index: u64,
    /// Tree size the proof targets.
    pub tree_size: u64,
    /// Sibling hashes, bottom-up.
    pub path: Vec<Digest>,
}

impl InclusionProof {
    /// Proof size in bytes (for E5's proof-size table).
    pub fn size_bytes(&self) -> usize {
        16 + 32 * self.path.len()
    }
}

/// A consistency proof between two historical sizes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConsistencyProof {
    /// Old tree size.
    pub old_size: u64,
    /// New tree size.
    pub new_size: u64,
    /// Hashes of the tiles decomposing `[0, old_size)`, ascending offset.
    pub old_tiles: Vec<Digest>,
    /// Hashes of the tiles tiling `[old_size, new_size)`, ascending.
    pub new_tiles: Vec<Digest>,
}

impl ConsistencyProof {
    /// Proof size in bytes.
    pub fn size_bytes(&self) -> usize {
        16 + 32 * (self.old_tiles.len() + self.new_tiles.len())
    }
}

/// Decompose `[0, n)` into maximal aligned power-of-two tiles
/// (binary decomposition, descending sizes).
fn decompose_prefix(n: u64) -> Vec<(u64, u64)> {
    let mut out = Vec::new();
    let mut offset = 0u64;
    let mut bit = 63u32;
    loop {
        let size = 1u64 << bit;
        if n & size != 0 {
            out.push((offset, size));
            offset += size;
        }
        if bit == 0 {
            break;
        }
        bit -= 1;
    }
    out
}

/// Tile `[a, b)` greedily with aligned power-of-two tiles.
fn tile_range(a: u64, b: u64) -> Vec<(u64, u64)> {
    let mut out = Vec::new();
    let mut p = a;
    while p < b {
        let align = if p == 0 { u64::MAX } else { 1u64 << p.trailing_zeros() };
        let mut size = align.min(b - p);
        // Round size down to a power of two.
        size = if size.is_power_of_two() { size } else { 1u64 << (63 - size.leading_zeros()) };
        out.push((p, size));
        p += size;
    }
    out
}

/// Fold a set of contiguous aligned tiles (ascending offsets, tiling
/// `[0, n)`) into the RFC-6962 root: merge aligned sibling pairs
/// bottom-up, then right-fold the descending remainder.
fn fold_tiles(tiles: &[(u64, u64, Digest)]) -> Option<Digest> {
    let mut stack: Vec<(u64, u64, Digest)> = Vec::with_capacity(tiles.len());
    for &t in tiles {
        stack.push(t);
        loop {
            let n = stack.len();
            if n < 2 {
                break;
            }
            let (lo, ls, lh) = stack[n - 2];
            let (ro, rs, rh) = stack[n - 1];
            if ls == rs && lo + ls == ro && lo % (2 * ls) == 0 {
                let merged = (lo, 2 * ls, node_hash(&lh, &rh));
                stack.truncate(n - 2);
                stack.push(merged);
            } else {
                break;
            }
        }
    }
    let (_, _, mut acc) = *stack.last()?;
    for &(_, _, h) in stack.iter().rev().skip(1) {
        acc = node_hash(&h, &acc);
    }
    Some(acc)
}

/// The append-only tree.
#[derive(Debug, Default)]
pub struct MerkleTree {
    leaves: Vec<Digest>,
    /// Memo of complete power-of-two subtree hashes (stable forever in an
    /// append-only tree).
    memo: FastMap<(u64, u64), Digest>,
}

impl MerkleTree {
    /// An empty tree.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a leaf; returns its index.
    pub fn append(&mut self, data: &[u8]) -> u64 {
        self.leaves.push(leaf_hash(data));
        self.leaves.len() as u64 - 1
    }

    /// Number of leaves.
    pub fn size(&self) -> u64 {
        self.leaves.len() as u64
    }

    /// Hash of the subtree over `[start, start+n)` (RFC 6962 recursion).
    fn subtree(&mut self, start: u64, n: u64) -> Digest {
        debug_assert!(n >= 1 && start + n <= self.size());
        if n == 1 {
            return self.leaves[start as usize];
        }
        let memoizable = n.is_power_of_two();
        if memoizable {
            if let Some(h) = self.memo.get(&(start, n)) {
                return *h;
            }
        }
        let k = largest_pow2_below(n);
        let left = self.subtree(start, k);
        let right = self.subtree(start + k, n - k);
        let h = node_hash(&left, &right);
        if memoizable {
            self.memo.insert((start, n), h);
        }
        h
    }

    /// Root over the first `n` leaves (historical root).
    ///
    /// # Panics
    /// Panics if `n` exceeds the current size.
    pub fn root_at(&mut self, n: u64) -> Digest {
        assert!(n <= self.size(), "root_at({n}) beyond size {}", self.size());
        if n == 0 {
            return sha256(b"");
        }
        self.subtree(0, n)
    }

    /// Current root.
    pub fn root(&mut self) -> Digest {
        self.root_at(self.size())
    }

    /// Inclusion proof for leaf `index` in the tree of size `tree_size`.
    pub fn prove_inclusion(&mut self, index: u64, tree_size: u64) -> InclusionProof {
        assert!(index < tree_size && tree_size <= self.size());
        let mut path = Vec::new();
        self.path_rec(index, 0, tree_size, &mut path);
        InclusionProof { index, tree_size, path }
    }

    fn path_rec(&mut self, m: u64, start: u64, n: u64, out: &mut Vec<Digest>) {
        if n == 1 {
            return;
        }
        let k = largest_pow2_below(n);
        if m < k {
            self.path_rec(m, start, k, out);
            let sib = self.subtree(start + k, n - k);
            out.push(sib);
        } else {
            self.path_rec(m - k, start + k, n - k, out);
            let sib = self.subtree(start, k);
            out.push(sib);
        }
    }

    /// Consistency proof between historical sizes `old_size ≤ new_size`.
    pub fn prove_consistency(&mut self, old_size: u64, new_size: u64) -> ConsistencyProof {
        assert!(old_size <= new_size && new_size <= self.size());
        let old_tiles = decompose_prefix(old_size)
            .into_iter()
            .map(|(o, s)| self.subtree(o, s))
            .collect();
        let new_tiles = tile_range(old_size, new_size)
            .into_iter()
            .map(|(o, s)| self.subtree(o, s))
            .collect();
        ConsistencyProof { old_size, new_size, old_tiles, new_tiles }
    }
}

fn largest_pow2_below(n: u64) -> u64 {
    debug_assert!(n >= 2);
    let mut k = 1u64 << (63 - (n - 1).leading_zeros());
    if k == n {
        k >>= 1;
    }
    k
}

/// Verify an inclusion proof: does `data` live at `proof.index` under
/// `root` (a tree of `proof.tree_size` leaves)?
pub fn verify_inclusion(data: &[u8], proof: &InclusionProof, root: &Digest) -> bool {
    if proof.index >= proof.tree_size {
        return false;
    }
    fn climb(m: u64, n: u64, leaf: Digest, path: &[Digest]) -> Option<Digest> {
        if n == 1 {
            return if path.is_empty() { Some(leaf) } else { None };
        }
        let (&last, rest) = path.split_last()?;
        let k = largest_pow2_below(n);
        if m < k {
            let sub = climb(m, k, leaf, rest)?;
            Some(node_hash(&sub, &last))
        } else {
            let sub = climb(m - k, n - k, leaf, rest)?;
            Some(node_hash(&last, &sub))
        }
    }
    climb(proof.index, proof.tree_size, leaf_hash(data), &proof.path)
        .is_some_and(|computed| &computed == root)
}

/// Verify a consistency proof: `old_root` (over `old_size` leaves) is a
/// prefix of `new_root` (over `new_size`).
pub fn verify_consistency(proof: &ConsistencyProof, old_root: &Digest, new_root: &Digest) -> bool {
    if proof.old_size > proof.new_size {
        return false;
    }
    if proof.new_size == 0 {
        return proof.old_tiles.is_empty()
            && proof.new_tiles.is_empty()
            && old_root == new_root
            && *new_root == sha256(b"");
    }
    if proof.old_size == 0 {
        // Anything extends the empty tree; only the new root matters.
        let tiles = tile_range(0, proof.new_size);
        if tiles.len() != proof.new_tiles.len() {
            return false;
        }
        let tagged: Vec<(u64, u64, Digest)> = tiles
            .iter()
            .zip(&proof.new_tiles)
            .map(|(&(o, s), &h)| (o, s, h))
            .collect();
        return fold_tiles(&tagged).is_some_and(|r| &r == new_root) && proof.old_tiles.is_empty();
    }
    let old_shape = decompose_prefix(proof.old_size);
    let new_shape = tile_range(proof.old_size, proof.new_size);
    if old_shape.len() != proof.old_tiles.len() || new_shape.len() != proof.new_tiles.len() {
        return false;
    }
    let old_tagged: Vec<(u64, u64, Digest)> = old_shape
        .iter()
        .zip(&proof.old_tiles)
        .map(|(&(o, s), &h)| (o, s, h))
        .collect();
    let Some(computed_old) = fold_tiles(&old_tagged) else {
        return false;
    };
    if &computed_old != old_root {
        return false;
    }
    let mut all = old_tagged;
    all.extend(new_shape.iter().zip(&proof.new_tiles).map(|(&(o, s), &h)| (o, s, h)));
    fold_tiles(&all).is_some_and(|r| &r == new_root)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn build(n: u64) -> MerkleTree {
        let mut t = MerkleTree::new();
        for i in 0..n {
            t.append(format!("entry-{i}").as_bytes());
        }
        t
    }

    #[test]
    fn rfc6962_small_tree_shape() {
        // Root of a 2-leaf tree must be H(1, H(0,d0), H(0,d1)).
        let mut t = MerkleTree::new();
        t.append(b"d0");
        t.append(b"d1");
        let expected = node_hash(&leaf_hash(b"d0"), &leaf_hash(b"d1"));
        assert_eq!(t.root(), expected);
    }

    #[test]
    fn root_changes_with_every_append() {
        let mut t = MerkleTree::new();
        let mut seen = std::collections::BTreeSet::new();
        seen.insert(t.root());
        for i in 0..20u64 {
            t.append(&i.to_le_bytes());
            assert!(seen.insert(t.root()), "root repeated at size {}", i + 1);
        }
    }

    #[test]
    fn inclusion_proofs_verify_for_all_sizes() {
        let mut t = build(33);
        for n in 1..=33u64 {
            let root = t.root_at(n);
            for i in 0..n {
                let p = t.prove_inclusion(i, n);
                assert!(
                    verify_inclusion(format!("entry-{i}").as_bytes(), &p, &root),
                    "inclusion failed i={i} n={n}"
                );
            }
        }
    }

    #[test]
    fn inclusion_rejects_wrong_data_root_index() {
        let mut t = build(16);
        let root = t.root();
        let p = t.prove_inclusion(3, 16);
        assert!(verify_inclusion(b"entry-3", &p, &root));
        assert!(!verify_inclusion(b"entry-4", &p, &root));
        assert!(!verify_inclusion(b"entry-3", &p, &[0u8; 32]));
        let mut wrong_index = p.clone();
        wrong_index.index = 4;
        assert!(!verify_inclusion(b"entry-3", &wrong_index, &root));
        let mut truncated = p.clone();
        truncated.path.pop();
        assert!(!verify_inclusion(b"entry-3", &truncated, &root));
    }

    #[test]
    fn proof_size_is_logarithmic() {
        let mut t = build(1024);
        let p = t.prove_inclusion(0, 1024);
        assert_eq!(p.path.len(), 10);
        assert_eq!(p.size_bytes(), 16 + 320);
    }

    #[test]
    fn consistency_proofs_verify_across_growth() {
        let mut t = build(40);
        for n0 in [1u64, 2, 3, 7, 8, 13, 32, 40] {
            for n1 in [8u64, 13, 32, 33, 40] {
                if n0 > n1 {
                    continue;
                }
                let r0 = t.root_at(n0);
                let r1 = t.root_at(n1);
                let p = t.prove_consistency(n0, n1);
                assert!(verify_consistency(&p, &r0, &r1), "consistency failed {n0}→{n1}");
            }
        }
    }

    #[test]
    fn consistency_rejects_forked_history() {
        let mut honest = build(20);
        // A forked tree: same first 10 entries, then diverges.
        let mut forked = MerkleTree::new();
        for i in 0..10u64 {
            forked.append(format!("entry-{i}").as_bytes());
        }
        for i in 0..10u64 {
            forked.append(format!("tampered-{i}").as_bytes());
        }
        let r10 = honest.root_at(10);
        let forged_r20 = forked.root_at(20);
        let p = honest.prove_consistency(10, 20);
        // The honest proof cannot link the honest old root to a forked new root.
        assert!(!verify_consistency(&p, &r10, &forged_r20));
        // Nor can the forked tree produce a proof from a *different* old root.
        let p_forked = forked.prove_consistency(10, 20);
        assert!(verify_consistency(&p_forked, &r10, &forged_r20),
            "fork shares the first 10 entries, so this consistency is genuine");
        let r10_fake = honest.root_at(11);
        assert!(!verify_consistency(&p_forked, &r10_fake, &forged_r20));
    }

    #[test]
    fn empty_tree_root_is_hash_of_empty() {
        let mut t = MerkleTree::new();
        assert_eq!(t.root(), sha256(b""));
        let p = t.prove_consistency(0, 0);
        assert!(verify_consistency(&p, &sha256(b""), &sha256(b"")));
    }

    #[test]
    fn decompose_and_tile_shapes() {
        assert_eq!(decompose_prefix(6), vec![(0, 4), (4, 2)]);
        assert_eq!(decompose_prefix(1), vec![(0, 1)]);
        assert_eq!(tile_range(3, 6), vec![(3, 1), (4, 2)]);
        assert_eq!(tile_range(0, 8), vec![(0, 8)]);
        assert_eq!(tile_range(5, 5), vec![]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn prop_inclusion_roundtrip(n in 1u64..80, pick in 0u64..80) {
            let pick = pick % n;
            let mut t = build(n);
            let root = t.root();
            let p = t.prove_inclusion(pick, n);
            let data = format!("entry-{pick}");
            prop_assert!(verify_inclusion(data.as_bytes(), &p, &root));
            // Mutating any path element breaks it.
            if !p.path.is_empty() {
                let mut bad = p.clone();
                bad.path[0][0] ^= 0xff;
                prop_assert!(!verify_inclusion(data.as_bytes(), &bad, &root));
            }
        }

        #[test]
        fn prop_consistency_roundtrip(n0 in 0u64..60, extra in 0u64..60) {
            let n1 = n0 + extra;
            let mut t = build(n1.max(1));
            let r0 = t.root_at(n0);
            let r1 = t.root_at(n1);
            let p = t.prove_consistency(n0, n1);
            prop_assert!(verify_consistency(&p, &r0, &r1));
        }
    }
}
