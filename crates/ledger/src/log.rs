//! Transparency log with signed tree heads and a third-party auditor.
//!
//! The log wraps the Merkle tree: every batch of appends produces a new
//! [`TreeHead`] carrying the size, root, and a MAC-style signature (a
//! keyed hash — we have no asymmetric crypto on the allowed dependency
//! list, and for the §IV-D auditor model a shared-key MAC gives the same
//! experimental shape). The [`Auditor`] is the paper's "trusted third
//! party": it retains the last verified head and checks every new head's
//! consistency proof, catching history rewrites.

use crate::merkle::{
    verify_consistency, verify_inclusion, ConsistencyProof, Digest, InclusionProof, MerkleTree,
};
use crate::sha256::sha256;
use serde::{Deserialize, Serialize};

/// A signed tree head.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TreeHead {
    /// Number of entries covered.
    pub size: u64,
    /// Merkle root over those entries.
    pub root: Digest,
    /// Keyed hash over (size, root).
    pub signature: Digest,
}

fn sign(key: &[u8], size: u64, root: &Digest) -> Digest {
    let mut buf = Vec::with_capacity(key.len() + 8 + 32);
    buf.extend_from_slice(key);
    buf.extend_from_slice(&size.to_le_bytes());
    buf.extend_from_slice(root);
    sha256(&buf)
}

/// The log service.
pub struct TransparencyLog {
    tree: MerkleTree,
    key: Vec<u8>,
}

impl TransparencyLog {
    /// A log signing with `key`.
    pub fn new(key: &[u8]) -> Self {
        TransparencyLog { tree: MerkleTree::new(), key: key.to_vec() }
    }

    /// Append an entry; returns its index.
    pub fn append(&mut self, entry: &[u8]) -> u64 {
        self.tree.append(entry)
    }

    /// Entries currently in the log.
    pub fn size(&self) -> u64 {
        self.tree.size()
    }

    /// Produce the current signed head.
    pub fn head(&mut self) -> TreeHead {
        let size = self.tree.size();
        let root = self.tree.root();
        TreeHead { size, root, signature: sign(&self.key, size, &root) }
    }

    /// Inclusion proof for `index` against the current head.
    pub fn prove_inclusion(&mut self, index: u64) -> InclusionProof {
        let size = self.tree.size();
        self.tree.prove_inclusion(index, size)
    }

    /// Consistency proof between two historical sizes.
    pub fn prove_consistency(&mut self, old_size: u64, new_size: u64) -> ConsistencyProof {
        self.tree.prove_consistency(old_size, new_size)
    }

    /// Check a head's signature (clients and auditors do this first).
    pub fn verify_signature(key: &[u8], head: &TreeHead) -> bool {
        sign(key, head.size, &head.root) == head.signature
    }
}

/// The third-party auditor of §IV-D: retains the last good head and
/// demands a consistency proof for every successor.
pub struct Auditor {
    key: Vec<u8>,
    last: Option<TreeHead>,
    /// Heads accepted so far.
    pub heads_verified: u64,
    /// Violations caught (bad signature, inconsistent history, shrink).
    pub violations: u64,
}

impl Auditor {
    /// An auditor sharing the log's MAC key.
    pub fn new(key: &[u8]) -> Self {
        Auditor { key: key.to_vec(), last: None, heads_verified: 0, violations: 0 }
    }

    /// Present a new head plus a consistency proof from the last accepted
    /// head. Returns true when accepted.
    pub fn check_head(&mut self, head: &TreeHead, consistency: &ConsistencyProof) -> bool {
        if !TransparencyLog::verify_signature(&self.key, head) {
            self.violations += 1;
            return false;
        }
        if let Some(prev) = self.last {
            let shape_ok = consistency.old_size == prev.size && consistency.new_size == head.size;
            if !shape_ok
                || head.size < prev.size
                || !verify_consistency(consistency, &prev.root, &head.root)
            {
                self.violations += 1;
                return false;
            }
        }
        self.last = Some(*head);
        self.heads_verified += 1;
        true
    }

    /// Verify a client's inclusion proof against the auditor's last
    /// accepted head.
    pub fn check_inclusion(&self, data: &[u8], proof: &InclusionProof) -> bool {
        match self.last {
            Some(head) if proof.tree_size == head.size => {
                verify_inclusion(data, proof, &head.root)
            }
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const KEY: &[u8] = b"shared-auditor-key";

    #[test]
    fn auditor_accepts_honest_growth() {
        let mut log = TransparencyLog::new(KEY);
        let mut auditor = Auditor::new(KEY);
        let mut prev_size = 0u64;
        for batch in 0..5u64 {
            for i in 0..10u64 {
                log.append(format!("tx-{batch}-{i}").as_bytes());
            }
            let head = log.head();
            let proof = log.prove_consistency(prev_size, head.size);
            assert!(auditor.check_head(&head, &proof), "batch {batch}");
            prev_size = head.size;
        }
        assert_eq!(auditor.heads_verified, 5);
        assert_eq!(auditor.violations, 0);
    }

    #[test]
    fn auditor_catches_history_rewrite() {
        let mut log = TransparencyLog::new(KEY);
        let mut auditor = Auditor::new(KEY);
        for i in 0..10u64 {
            log.append(format!("tx-{i}").as_bytes());
        }
        let head = log.head();
        let proof = log.prove_consistency(0, head.size);
        assert!(auditor.check_head(&head, &proof));

        // The operator rewrites history: a fresh log with entry 3 changed.
        let mut evil = TransparencyLog::new(KEY);
        for i in 0..10u64 {
            let data =
                if i == 3 { "tx-EVIL".to_string() } else { format!("tx-{i}") };
            evil.append(data.as_bytes());
        }
        for i in 10..15u64 {
            evil.append(format!("tx-{i}").as_bytes());
        }
        let evil_head = evil.head();
        let evil_proof = evil.prove_consistency(10, 15);
        assert!(
            !auditor.check_head(&evil_head, &evil_proof),
            "rewrite must be rejected"
        );
        assert_eq!(auditor.violations, 1);
    }

    #[test]
    fn auditor_rejects_forged_signature_and_shrink() {
        let mut log = TransparencyLog::new(KEY);
        let mut auditor = Auditor::new(KEY);
        log.append(b"a");
        log.append(b"b");
        let head = log.head();
        let proof = log.prove_consistency(0, 2);
        assert!(auditor.check_head(&head, &proof));

        let mut forged = head;
        forged.root[0] ^= 1;
        assert!(!auditor.check_head(&forged, &proof));

        // A "shrunk" head signed with the right key still fails.
        let mut log2 = TransparencyLog::new(KEY);
        log2.append(b"a");
        let small_head = log2.head();
        let p = log2.prove_consistency(1, 1);
        assert!(!auditor.check_head(&small_head, &p));
        assert_eq!(auditor.violations, 2);
    }

    #[test]
    fn inclusion_against_audited_head() {
        let mut log = TransparencyLog::new(KEY);
        let mut auditor = Auditor::new(KEY);
        for i in 0..20u64 {
            log.append(format!("tx-{i}").as_bytes());
        }
        let head = log.head();
        auditor.check_head(&head, &log.prove_consistency(0, 20));
        let proof = log.prove_inclusion(7);
        assert!(auditor.check_inclusion(b"tx-7", &proof));
        assert!(!auditor.check_inclusion(b"tx-8", &proof));
    }

    #[test]
    fn wrong_key_signature_rejected() {
        let mut log = TransparencyLog::new(b"key-A");
        log.append(b"x");
        let head = log.head();
        assert!(TransparencyLog::verify_signature(b"key-A", &head));
        assert!(!TransparencyLog::verify_signature(b"key-B", &head));
    }
}
