//! SHA-256 (FIPS 180-4).
//!
//! Implemented in-crate because no cryptography crate is on the project's
//! allowed dependency list. The implementation is the textbook
//! compression function; correctness is pinned by the NIST test vectors
//! in the unit tests below. Performance is more than adequate for the
//! ledger experiments (~100 MB/s unoptimized).

/// Round constants (first 32 bits of the fractional parts of the cube
/// roots of the first 64 primes).
const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4,
    0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe,
    0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f,
    0x4a7484aa, 0x5cb0a9dc, 0x76f988da, 0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7,
    0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc,
    0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070, 0x19a4c116,
    0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7,
    0xc67178f2,
];

/// Initial hash state (first 32 bits of the fractional parts of the
/// square roots of the first 8 primes).
const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab,
    0x5be0cd19,
];

#[inline(always)]
fn small_sigma0(x: u32) -> u32 {
    x.rotate_right(7) ^ x.rotate_right(18) ^ (x >> 3)
}
#[inline(always)]
fn small_sigma1(x: u32) -> u32 {
    x.rotate_right(17) ^ x.rotate_right(19) ^ (x >> 10)
}
#[inline(always)]
fn big_sigma0(x: u32) -> u32 {
    x.rotate_right(2) ^ x.rotate_right(13) ^ x.rotate_right(22)
}
#[inline(always)]
fn big_sigma1(x: u32) -> u32 {
    x.rotate_right(6) ^ x.rotate_right(11) ^ x.rotate_right(25)
}

fn compress(state: &mut [u32; 8], block: &[u8]) {
    debug_assert_eq!(block.len(), 64);
    let mut w = [0u32; 64];
    for (i, chunk) in block.chunks_exact(4).enumerate() {
        w[i] = u32::from_be_bytes(chunk.try_into().expect("4-byte chunk"));
    }
    for i in 16..64 {
        w[i] = small_sigma1(w[i - 2])
            .wrapping_add(w[i - 7])
            .wrapping_add(small_sigma0(w[i - 15]))
            .wrapping_add(w[i - 16]);
    }
    let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = *state;
    for i in 0..64 {
        let t1 = h
            .wrapping_add(big_sigma1(e))
            .wrapping_add((e & f) ^ (!e & g))
            .wrapping_add(K[i])
            .wrapping_add(w[i]);
        let t2 = big_sigma0(a).wrapping_add((a & b) ^ (a & c) ^ (b & c));
        h = g;
        g = f;
        f = e;
        e = d.wrapping_add(t1);
        d = c;
        c = b;
        b = a;
        a = t1.wrapping_add(t2);
    }
    state[0] = state[0].wrapping_add(a);
    state[1] = state[1].wrapping_add(b);
    state[2] = state[2].wrapping_add(c);
    state[3] = state[3].wrapping_add(d);
    state[4] = state[4].wrapping_add(e);
    state[5] = state[5].wrapping_add(f);
    state[6] = state[6].wrapping_add(g);
    state[7] = state[7].wrapping_add(h);
}

/// Compute the SHA-256 digest of `data`.
pub fn sha256(data: &[u8]) -> [u8; 32] {
    let mut state = H0;
    let mut chunks = data.chunks_exact(64);
    for block in &mut chunks {
        compress(&mut state, block);
    }
    // Padding: 0x80, zeros, 64-bit big-endian bit length.
    let rem = chunks.remainder();
    let bit_len = (data.len() as u64).wrapping_mul(8);
    let mut tail = [0u8; 128];
    tail[..rem.len()].copy_from_slice(rem);
    tail[rem.len()] = 0x80;
    let tail_blocks = if rem.len() + 9 <= 64 { 1 } else { 2 };
    tail[tail_blocks * 64 - 8..tail_blocks * 64].copy_from_slice(&bit_len.to_be_bytes());
    for block in tail[..tail_blocks * 64].chunks_exact(64) {
        compress(&mut state, block);
    }
    let mut out = [0u8; 32];
    for (i, word) in state.iter().enumerate() {
        out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
    }
    out
}

/// Hash the concatenation of two byte strings (helper for Merkle nodes).
pub fn sha256_pair(prefix: u8, a: &[u8], b: &[u8]) -> [u8; 32] {
    let mut buf = Vec::with_capacity(1 + a.len() + b.len());
    buf.push(prefix);
    buf.extend_from_slice(a);
    buf.extend_from_slice(b);
    sha256(&buf)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(d: &[u8; 32]) -> String {
        d.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn nist_vector_empty() {
        assert_eq!(
            hex(&sha256(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
    }

    #[test]
    fn nist_vector_abc() {
        assert_eq!(
            hex(&sha256(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn nist_vector_two_blocks() {
        assert_eq!(
            hex(&sha256(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn million_a() {
        let data = vec![b'a'; 1_000_000];
        assert_eq!(
            hex(&sha256(&data)),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn boundary_lengths() {
        // 55 and 56 bytes straddle the one-vs-two padding-block boundary.
        let d55 = vec![0u8; 55];
        let d56 = vec![0u8; 56];
        let d64 = vec![0u8; 64];
        assert_ne!(sha256(&d55), sha256(&d56));
        assert_ne!(sha256(&d56), sha256(&d64));
        // Deterministic.
        assert_eq!(sha256(&d64), sha256(&d64));
    }

    #[test]
    fn pair_prefix_domain_separates() {
        assert_ne!(sha256_pair(0, b"a", b"b"), sha256_pair(1, b"a", b"b"));
        assert_ne!(sha256_pair(1, b"a", b"b"), sha256_pair(1, b"b", b"a"));
    }
}
