#![forbid(unsafe_code)]
//! `mv-ledger` — verifiable ledger structures.
//!
//! §IV-D: *"One possible solution is to use verifiable ledger database
//! systems \[90\], \[87\] with a trusted third party serving as the auditor.
//! … The system may combine efficient cryptographic techniques, often
//! found in authenticated data structures such as the Merkle Tree, and
//! transparency logs…"*. (Reference \[87\] is GlassDB.)
//!
//! This crate builds that stack from the hash function up — no external
//! crypto dependencies are on the allowed list, so SHA-256 is implemented
//! in-crate ([`sha256()`](sha256::sha256), FIPS 180-4, pinned to the standard test
//! vectors):
//!
//! * [`merkle`] — an append-only RFC-6962-style Merkle tree with
//!   inclusion proofs and consistency proofs between tree sizes;
//! * [`log`] — a transparency log issuing signed tree heads, plus the
//!   third-party [`log::Auditor`] that verifies head-to-head consistency;
//! * [`ledger`] — a verifiable key-value ledger with per-read inclusion
//!   proofs and GlassDB-style deferred (batched) verification;
//! * [`consensus`] — the §IV-D cost comparison: PBFT-style BFT
//!   replication vs. this crate's ledger-plus-auditor design point.

pub mod consensus;
pub mod ledger;
pub mod log;
pub mod merkle;
pub mod sha256;

pub use consensus::ReplicationModel;
pub use ledger::VerifiableKv;
pub use log::{Auditor, TransparencyLog, TreeHead};
pub use merkle::{ConsistencyProof, Digest, InclusionProof, MerkleTree};
pub use sha256::sha256;
