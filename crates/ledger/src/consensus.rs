//! Replication-cost model: BFT consensus vs. ledger-plus-auditor.
//!
//! §IV-D: *"decentralization requires the computation to be byzantine
//! faulty tolerance, which introduces a huge cost in replication and
//! consensus modeling. One possible solution is to use verifiable ledger
//! database systems with a trusted third party serving as the auditor."*
//!
//! This module makes that trade quantitative with standard cost models:
//!
//! * **PBFT-style BFT** over `n = 3f + 1` replicas: pre-prepare (leader →
//!   n−1), prepare (all-to-all), commit (all-to-all) → `O(n²)` messages
//!   and three wide-area one-way delays per commit. Safety holds under
//!   `f` byzantine replicas — misbehaviour is *prevented*.
//! * **Verifiable ledger + auditor** (the paper's alternative, E5's
//!   system): one server, one auditor; 2 messages per transaction plus an
//!   amortized head+consistency-proof message per audit batch.
//!   Misbehaviour is *detected* within one audit batch rather than
//!   prevented — the weaker guarantee that buys the constant factors.
//!
//! E5d tabulates both. The models are deliberately analytic (message and
//! latency counting) — the asymptotics, not a full PBFT implementation,
//! are what the paper's argument rests on; the ledger side *is* fully
//! implemented in this crate.

use mv_common::time::SimDuration;

/// The replication scheme under analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplicationModel {
    /// PBFT-style consensus tolerating `f` byzantine replicas.
    Bft {
        /// Byzantine fault budget; replica count is `3f + 1`.
        f: u32,
    },
    /// Verifiable ledger with a third-party auditor; heads audited every
    /// `batch` transactions.
    LedgerAudit {
        /// Transactions per audit batch.
        batch: u32,
    },
}

impl ReplicationModel {
    /// Display name.
    pub fn name(self) -> String {
        match self {
            ReplicationModel::Bft { f } => format!("pbft(f={f}, n={})", 3 * f + 1),
            ReplicationModel::LedgerAudit { batch } => format!("ledger+audit(batch={batch})"),
        }
    }

    /// Replicas/parties storing the data.
    pub fn replicas(self) -> u32 {
        match self {
            ReplicationModel::Bft { f } => 3 * f + 1,
            // Server + auditor (the auditor stores heads, not data; count
            // the parties involved in the protocol).
            ReplicationModel::LedgerAudit { .. } => 2,
        }
    }

    /// Protocol messages per committed transaction (amortized).
    pub fn messages_per_txn(self) -> f64 {
        match self {
            ReplicationModel::Bft { f } => {
                let n = (3 * f + 1) as f64;
                // client→leader + pre-prepare (n−1) + prepare (n(n−1)) +
                // commit (n(n−1)) + n replies.
                1.0 + (n - 1.0) + 2.0 * n * (n - 1.0) + n
            }
            ReplicationModel::LedgerAudit { batch } => {
                // client→server + server→client, plus the audit round
                // (head + consistency proof + ack = 2 messages) amortized.
                2.0 + 2.0 / batch.max(1) as f64
            }
        }
    }

    /// Commit latency given a one-way wide-area delay (client sees the
    /// result after this long).
    pub fn commit_latency(self, one_way: SimDuration) -> SimDuration {
        match self {
            // request + pre-prepare + prepare + commit + reply ≈ 5 one-way
            // delays on the critical path.
            ReplicationModel::Bft { .. } => one_way.mul_f64(5.0),
            // request + reply; auditing is off the critical path.
            ReplicationModel::LedgerAudit { .. } => one_way.mul_f64(2.0),
        }
    }

    /// What the scheme guarantees about a misbehaving operator.
    pub fn guarantee(self) -> &'static str {
        match self {
            ReplicationModel::Bft { .. } => "misbehaviour prevented (safety under f faults)",
            ReplicationModel::LedgerAudit { .. } => {
                "misbehaviour detected within one audit batch"
            }
        }
    }

    /// Worst-case transactions exposed before detection/prevention.
    pub fn exposure_txns(self) -> u32 {
        match self {
            ReplicationModel::Bft { .. } => 0,
            ReplicationModel::LedgerAudit { batch } => batch,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bft_messages_grow_quadratically() {
        let m1 = ReplicationModel::Bft { f: 1 }.messages_per_txn();
        let m2 = ReplicationModel::Bft { f: 2 }.messages_per_txn();
        let m4 = ReplicationModel::Bft { f: 4 }.messages_per_txn();
        // n goes 4 → 7 → 13; all-to-all dominates: ratios ≈ (7/4)² and (13/7)².
        assert!(m2 / m1 > 2.5 && m2 / m1 < 3.5, "ratio {}", m2 / m1);
        assert!(m4 / m2 > 2.8, "ratio {}", m4 / m2);
        // Concrete f=1 count: 1 + 3 + 2·4·3 + 4 = 32.
        assert_eq!(m1, 32.0);
    }

    #[test]
    fn ledger_messages_are_constant() {
        let a = ReplicationModel::LedgerAudit { batch: 1 }.messages_per_txn();
        let b = ReplicationModel::LedgerAudit { batch: 100 }.messages_per_txn();
        assert_eq!(a, 4.0);
        assert!(b < 2.1);
    }

    #[test]
    fn latency_gap_is_on_the_critical_path() {
        let ow = SimDuration::from_millis(40);
        let bft = ReplicationModel::Bft { f: 1 }.commit_latency(ow);
        let led = ReplicationModel::LedgerAudit { batch: 100 }.commit_latency(ow);
        assert_eq!(bft.as_micros(), 200_000);
        assert_eq!(led.as_micros(), 80_000);
    }

    #[test]
    fn the_trade_is_explicit() {
        assert_eq!(ReplicationModel::Bft { f: 1 }.exposure_txns(), 0);
        assert_eq!(ReplicationModel::LedgerAudit { batch: 100 }.exposure_txns(), 100);
        assert!(ReplicationModel::LedgerAudit { batch: 1 }
            .guarantee()
            .contains("detected"));
    }

    #[test]
    fn replica_counts() {
        assert_eq!(ReplicationModel::Bft { f: 3 }.replicas(), 10);
        assert_eq!(ReplicationModel::LedgerAudit { batch: 8 }.replicas(), 2);
    }
}
