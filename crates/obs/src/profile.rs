//! Per-tick scoped wall-clock profiling for engine loops.
//!
//! Unlike the tracer (which runs on *simulated* time), the profiler
//! measures real CPU: where does an engine tick actually spend its
//! microseconds? A [`TickProfiler`] is created once per loop; each tick
//! calls [`TickProfiler::tick`], and inside the tick, stages are timed
//! with [`TickProfiler::scope`] (RAII — the guard records on drop) or
//! [`TickProfiler::time`] (closure form). Stage durations accumulate
//! into [`LogHistogram`]s, so a million ticks cost the same memory as
//! ten.
//!
//! Wall-clock readings are inherently nondeterministic; keep profiler
//! output out of determinism-hashed artifacts (the exporters segregate
//! it for exactly this reason).

use crate::export::JsonlSink;
use crate::registry::LogHistogram;
use mv_common::table::{f3, Table};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::time::Instant;

/// Accumulates per-stage wall-clock histograms across engine ticks.
#[derive(Debug, Default)]
pub struct TickProfiler {
    ticks: u64,
    tick_start: Option<Instant>,
    tick_histo: LogHistogram,
    stages: BTreeMap<&'static str, LogHistogram>,
}

impl TickProfiler {
    /// A fresh profiler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Mark the start of a tick; the previous tick (if any) is closed
    /// and its total duration recorded.
    pub fn tick(&mut self) {
        let now = Instant::now();
        if let Some(start) = self.tick_start.replace(now) {
            self.tick_histo.record(now.duration_since(start).as_secs_f64());
        }
        self.ticks += 1;
    }

    /// Close the final tick (call once after the loop).
    pub fn finish(&mut self) {
        if let Some(start) = self.tick_start.take() {
            self.tick_histo.record(start.elapsed().as_secs_f64());
        }
    }

    /// Time a stage with an RAII guard; the elapsed wall time is
    /// recorded when the guard drops.
    pub fn scope<'a>(&'a mut self, stage: &'static str) -> StageGuard<'a> {
        StageGuard { profiler: self, stage, start: Instant::now() }
    }

    /// Time a closure as a stage and return its result.
    pub fn time<T>(&mut self, stage: &'static str, f: impl FnOnce() -> T) -> T {
        let start = Instant::now();
        let out = f();
        self.record(stage, start.elapsed().as_secs_f64());
        out
    }

    /// Record an externally measured stage duration (seconds).
    pub fn record(&mut self, stage: &'static str, secs: f64) {
        self.stages.entry(stage).or_default().record(secs);
    }

    /// Ticks started so far.
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    /// Whole-tick duration histogram (complete ticks only).
    pub fn tick_histogram(&self) -> &LogHistogram {
        &self.tick_histo
    }

    /// Stage histograms in name order.
    pub fn stages(&self) -> impl Iterator<Item = (&'static str, &LogHistogram)> + '_ {
        self.stages.iter().map(|(k, v)| (*k, v))
    }

    /// One stage's histogram, if it ever ran.
    pub fn stage(&self, name: &str) -> Option<&LogHistogram> {
        self.stages.get(name)
    }

    /// Render the profile as a table: one row per stage plus a
    /// whole-tick row, durations in microseconds.
    pub fn table(&self, title: impl Into<String>) -> Table {
        let mut t =
            Table::new(title, &["stage", "calls", "mean_us", "p95_us", "max_us", "total_ms"]);
        let us = 1_000_000.0;
        for (name, h) in &self.stages {
            t.row(&[
                name.to_string(),
                h.count().to_string(),
                f3(h.mean() * us),
                f3(h.quantile(0.95) * us),
                f3(h.max() * us),
                f3(h.sum() * 1_000.0),
            ]);
        }
        if !self.tick_histo.is_empty() {
            let h = &self.tick_histo;
            t.row(&[
                "(tick)".to_string(),
                h.count().to_string(),
                f3(h.mean() * us),
                f3(h.quantile(0.95) * us),
                f3(h.max() * us),
                f3(h.sum() * 1_000.0),
            ]);
        }
        t
    }

    /// Export the profile as JSONL through a reusable sink — the
    /// per-tick form (`{"kind":"tick_profile","stage":…,…}` lines).
    ///
    /// Unlike [`TickProfiler::table`], this allocates nothing of its
    /// own: everything is written into the sink's buffer, so a loop
    /// exporting every tick stays off its own profile once the sink
    /// has warmed up (assert with [`JsonlSink::grows`]).
    pub fn export_jsonl(&self, sink: &mut JsonlSink) {
        let us = 1_000_000.0;
        sink.write_with(|buf| {
            for (name, h) in &self.stages {
                let _ = writeln!(
                    buf,
                    "{{\"kind\":\"tick_profile\",\"stage\":\"{name}\",\"calls\":{},\
                     \"mean_us\":{:.3},\"max_us\":{:.3},\"total_ms\":{:.3}}}",
                    h.count(),
                    h.mean() * us,
                    h.max() * us,
                    h.sum() * 1_000.0,
                );
            }
            if !self.tick_histo.is_empty() {
                let h = &self.tick_histo;
                let _ = writeln!(
                    buf,
                    "{{\"kind\":\"tick_profile\",\"stage\":\"(tick)\",\"calls\":{},\
                     \"mean_us\":{:.3},\"max_us\":{:.3},\"total_ms\":{:.3}}}",
                    h.count(),
                    h.mean() * us,
                    h.max() * us,
                    h.sum() * 1_000.0,
                );
            }
        });
    }
}

/// RAII guard from [`TickProfiler::scope`]; records on drop.
pub struct StageGuard<'a> {
    profiler: &'a mut TickProfiler,
    stage: &'static str,
    start: Instant,
}

impl Drop for StageGuard<'_> {
    fn drop(&mut self) {
        let secs = self.start.elapsed().as_secs_f64();
        self.profiler.record(self.stage, secs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scopes_and_ticks_accumulate() {
        let mut p = TickProfiler::new();
        for _ in 0..3 {
            p.tick();
            {
                let _g = p.scope("apply");
            }
            p.time("flush", || std::hint::black_box(1 + 1));
        }
        p.finish();
        assert_eq!(p.ticks(), 3);
        assert_eq!(p.tick_histogram().count(), 3);
        assert_eq!(p.stage("apply").unwrap().count(), 3);
        assert_eq!(p.stage("flush").unwrap().count(), 3);
        assert!(p.stage("missing").is_none());
        let stage_names: Vec<&str> = p.stages().map(|(n, _)| n).collect();
        assert_eq!(stage_names, vec!["apply", "flush"]);
    }

    #[test]
    fn table_has_one_row_per_stage_plus_tick() {
        let mut p = TickProfiler::new();
        p.tick();
        p.record("a", 0.001);
        p.record("b", 0.002);
        p.finish();
        let t = p.table("profile");
        assert_eq!(t.len(), 3); // a, b, (tick)
        assert!(t.render().contains("(tick)"));
    }

    #[test]
    fn jsonl_export_reuses_the_sink_buffer() {
        let mut p = TickProfiler::new();
        let mut sink = JsonlSink::default();
        for _ in 0..200 {
            p.tick();
            p.record("apply", 0.001);
            sink.clear();
            p.export_jsonl(&mut sink);
        }
        p.finish();
        // Stage set is fixed after the first tick, so line lengths are
        // stable and the buffer stops growing almost immediately.
        let grows = sink.grows();
        sink.clear();
        p.export_jsonl(&mut sink);
        assert_eq!(sink.grows(), grows, "steady-state export must not reallocate");
        assert!(sink.as_str().contains("\"stage\":\"apply\""));
        assert!(sink.as_str().contains("\"stage\":\"(tick)\""));
    }

    #[test]
    fn finish_without_tick_is_harmless() {
        let mut p = TickProfiler::new();
        p.finish();
        assert_eq!(p.tick_histogram().count(), 0);
    }
}
