//! Declarative SLOs evaluated by multi-window burn-rate rules, plus
//! the [`HealthMonitor`] that glues windows, SLOs, and the flight
//! recorder into one per-tick pump.
//!
//! An [`SloSpec`] names an [`Objective`] — a latency objective over a
//! histogram, an availability/error-ratio objective over a counter
//! pair, or a staleness/divergence objective over a gauge — plus an
//! error *budget* (the tolerable bad fraction). Each tick the engine
//! computes the observed bad fraction over a **fast** and a **slow**
//! window and divides by the budget to get a *burn rate* (1.0 = burning
//! exactly at budget). An alert fires when **both** windows burn at or
//! above `burn_fire` — the SRE multi-window rule: the slow window
//! proves it is not a blip, the fast window proves it is still
//! happening — and clears when the fast window's burn drops below
//! `burn_clear` (hysteresis).
//!
//! Determinism: burn rates are IEEE divisions of windowed integers on
//! the sim clock, so the alert event log is seed-reproducible;
//! [`SloEngine::canonical_log`] renders it with fixed formatting and
//! E22 gates its byte-identity across same-seed runs. Evaluation is
//! also order-independent across shard-merged registries for counter
//! and histogram objectives (windowed sums commute); gauge objectives
//! inherit the registry's latest-wins gauge merge and are
//! order-sensitive by design.
//!
//! This file is in the `panic-path` lint scope: no unwraps, no `[]`
//! indexing.

use crate::recorder::{FlightRecorder, TickEvidence};
use crate::registry::{CounterId, GaugeId, SharedRegistry};
use crate::window::{MetricWindows, WindowHisto};
use mv_common::hash::fx_hash_one;
use mv_common::time::SimTime;
use std::fmt::Write as _;

/// What an SLO watches, and what fraction of badness its budget
/// tolerates.
#[derive(Debug, Clone)]
pub enum Objective {
    /// Fraction of `histo` samples at or above `threshold` must stay
    /// below `budget`. The threshold is bucketised by the log-scaled
    /// histogram — pick power-of-two thresholds for exact boundaries.
    Latency { histo: String, threshold: f64, budget: f64 },
    /// `errors / total` (windowed counter deltas) must stay below
    /// `budget`.
    ErrorRatio { errors: String, total: String, budget: f64 },
    /// Fraction of ticks where `gauge` exceeds `max` must stay below
    /// `budget`.
    Staleness { gauge: String, max: f64, budget: f64 },
}

/// One declarative SLO: an objective plus burn-rate windows and
/// thresholds.
#[derive(Debug, Clone)]
pub struct SloSpec {
    /// Canonical slug, e.g. `region.availability`.
    pub name: String,
    /// What is measured.
    pub objective: Objective,
    /// Fast window in ticks (detects "still happening").
    pub fast_window: usize,
    /// Slow window in ticks (proves "not a blip").
    pub slow_window: usize,
    /// Burn rate at or above which (on **both** windows) the alert
    /// fires.
    pub burn_fire: f64,
    /// Fast-window burn rate below which an active alert clears.
    pub burn_clear: f64,
    /// Minimum event count in a window before its burn is trusted
    /// (avoids firing off a handful of samples).
    pub min_events: u64,
}

impl SloSpec {
    fn with_defaults(name: &str, objective: Objective) -> Self {
        SloSpec {
            name: name.to_string(),
            objective,
            fast_window: 64,
            slow_window: 256,
            burn_fire: 2.0,
            burn_clear: 1.0,
            min_events: 8,
        }
    }

    /// Latency objective: fraction of `histo` samples ≥ `threshold`
    /// stays below `budget`.
    pub fn latency(name: &str, histo: &str, threshold: f64, budget: f64) -> Self {
        Self::with_defaults(
            name,
            Objective::Latency { histo: histo.to_string(), threshold, budget },
        )
    }

    /// Availability objective: `errors / total` stays below `budget`.
    pub fn availability(name: &str, errors: &str, total: &str, budget: f64) -> Self {
        Self::with_defaults(
            name,
            Objective::ErrorRatio { errors: errors.to_string(), total: total.to_string(), budget },
        )
    }

    /// Staleness/divergence objective: fraction of ticks with `gauge >
    /// max` stays below `budget`.
    pub fn staleness(name: &str, gauge: &str, max: f64, budget: f64) -> Self {
        Self::with_defaults(name, Objective::Staleness { gauge: gauge.to_string(), max, budget })
    }

    /// Override the fast/slow windows (ticks).
    pub fn windows(mut self, fast: usize, slow: usize) -> Self {
        self.fast_window = fast.max(1);
        self.slow_window = slow.max(self.fast_window);
        self
    }

    /// Override the fire/clear burn thresholds.
    pub fn burn(mut self, fire: f64, clear: f64) -> Self {
        self.burn_fire = fire;
        self.burn_clear = clear;
        self
    }

    /// Override the minimum trusted event count.
    pub fn min_events(mut self, n: u64) -> Self {
        self.min_events = n;
        self
    }
}

/// Fire or clear.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlertKind {
    /// Both windows burning at or above `burn_fire`.
    Fire,
    /// Fast window dropped below `burn_clear`.
    Clear,
}

impl AlertKind {
    /// Canonical lowercase tag.
    pub fn as_str(&self) -> &'static str {
        match self {
            AlertKind::Fire => "fire",
            AlertKind::Clear => "clear",
        }
    }
}

/// One entry in the canonical alert event log.
#[derive(Debug, Clone)]
pub struct AlertEvent {
    /// Log sequence number (0-based).
    pub seq: u64,
    /// Sim time of the evaluation tick.
    pub at: SimTime,
    /// The SLO's name.
    pub slo: String,
    /// Fire or clear.
    pub kind: AlertKind,
    /// Burn rate over the fast window at this tick.
    pub burn_fast: f64,
    /// Burn rate over the slow window at this tick.
    pub burn_slow: f64,
    /// Bad/total evidence behind `burn_fast`.
    pub fast_bad: u64,
    /// Total events in the fast window.
    pub fast_total: u64,
    /// Bad/total evidence behind `burn_slow`.
    pub slow_bad: u64,
    /// Total events in the slow window.
    pub slow_total: u64,
}

impl AlertEvent {
    /// Append the canonical one-line rendering (fixed `{:.3}` burn
    /// formatting — byte-stable across same-seed runs).
    pub fn render_into(&self, out: &mut String) {
        let _ = write!(
            out,
            "seq={} at_us={} slo={} kind={} burn_fast={:.3} burn_slow={:.3} fast={}/{} slow={}/{}",
            self.seq,
            self.at.as_micros(),
            self.slo,
            self.kind.as_str(),
            self.burn_fast,
            self.burn_slow,
            self.fast_bad,
            self.fast_total,
            self.slow_bad,
            self.slow_total,
        );
    }

    /// Allocating form of [`Self::render_into`].
    pub fn canonical_line(&self) -> String {
        let mut s = String::new();
        self.render_into(&mut s);
        s
    }
}

/// Windowed evidence for one (spec, window) pair.
#[derive(Debug, Clone, Copy, Default)]
struct WindowEval {
    bad: u64,
    total: u64,
    burn: f64,
}

/// The burn-rate evaluator: armed specs, per-spec active flags, and
/// the append-only alert event log.
#[derive(Debug, Default)]
pub struct SloEngine {
    specs: Vec<SloSpec>,
    active: Vec<bool>,
    events: Vec<AlertEvent>,
    fired_total: u64,
    cleared_total: u64,
    scratch: WindowHisto,
}

impl SloEngine {
    /// An engine with no specs armed.
    pub fn new() -> Self {
        Self::default()
    }

    /// Arm one SLO. The window ring evaluating it must be at least
    /// `slow_window` ticks long.
    pub fn arm(&mut self, spec: SloSpec) {
        self.specs.push(spec);
        self.active.push(false);
    }

    /// The armed specs.
    pub fn specs(&self) -> &[SloSpec] {
        &self.specs
    }

    /// Number of currently-firing alerts.
    pub fn active_count(&self) -> usize {
        self.active.iter().filter(|a| **a).count()
    }

    /// True when the named SLO is currently firing.
    pub fn is_active(&self, name: &str) -> bool {
        self.specs
            .iter()
            .zip(self.active.iter())
            .any(|(s, &a)| a && s.name == name)
    }

    /// Total fire events so far.
    pub fn fired_total(&self) -> u64 {
        self.fired_total
    }

    /// Total clear events so far.
    pub fn cleared_total(&self) -> u64 {
        self.cleared_total
    }

    /// The full alert event log, in emission order.
    pub fn events(&self) -> &[AlertEvent] {
        &self.events
    }

    /// Evaluate every armed spec against `w` at sim time `now`,
    /// appending fire/clear events. Returns how many events this tick
    /// produced (they are the log's tail).
    pub fn evaluate(&mut self, now: SimTime, w: &MetricWindows) -> usize {
        let before = self.events.len();
        for (i, spec) in self.specs.iter().enumerate() {
            let fast = eval_window(spec, w, spec.fast_window, &mut self.scratch);
            let slow = eval_window(spec, w, spec.slow_window, &mut self.scratch);
            let was_active = self.active.get(i).copied().unwrap_or(false);
            let next = if was_active {
                fast.burn >= spec.burn_clear
            } else {
                fast.burn >= spec.burn_fire && slow.burn >= spec.burn_fire
            };
            if next != was_active {
                let kind = if next { AlertKind::Fire } else { AlertKind::Clear };
                if next {
                    self.fired_total += 1;
                } else {
                    self.cleared_total += 1;
                }
                self.events.push(AlertEvent {
                    seq: self.events.len() as u64,
                    at: now,
                    slo: spec.name.clone(),
                    kind,
                    burn_fast: fast.burn,
                    burn_slow: slow.burn,
                    fast_bad: fast.bad,
                    fast_total: fast.total,
                    slow_bad: slow.bad,
                    slow_total: slow.total,
                });
                if let Some(a) = self.active.get_mut(i) {
                    *a = next;
                }
            }
        }
        self.events.len() - before
    }

    /// The canonical alert log: one [`AlertEvent::render_into`] line
    /// per event. Byte-identical across same-seed runs (E22's gate).
    pub fn canonical_log(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            e.render_into(&mut out);
            out.push('\n');
        }
        out
    }

    /// Fingerprint of [`Self::canonical_log`].
    pub fn log_hash(&self) -> u64 {
        fx_hash_one(&self.canonical_log())
    }
}

/// Burn over one window: bad fraction ÷ budget, zero until
/// `min_events` events exist.
fn eval_window(spec: &SloSpec, w: &MetricWindows, k: usize, scratch: &mut WindowHisto) -> WindowEval {
    let (bad, total, budget) = match &spec.objective {
        Objective::Latency { histo, threshold, budget } => {
            w.histo_window_into(histo, k, scratch);
            (scratch.at_or_above(*threshold), scratch.count(), *budget)
        }
        Objective::ErrorRatio { errors, total, budget } => {
            (w.counter_delta(errors, k), w.counter_delta(total, k), *budget)
        }
        Objective::Staleness { gauge, max, budget } => {
            (w.gauge_ticks_above(gauge, *max, k), w.window_ticks(k), *budget)
        }
    };
    if total < spec.min_events.max(1) || budget <= 0.0 {
        return WindowEval { bad, total, burn: 0.0 };
    }
    let frac = bad as f64 / total as f64;
    WindowEval { bad, total, burn: frac / budget }
}

/// The per-tick health pump: rolls a [`MetricWindows`] over a shared
/// registry, evaluates the [`SloEngine`], publishes `obs.slo.*` stats
/// back into the registry, feeds the [`FlightRecorder`], and dumps a
/// debug bundle on every alert fire.
#[derive(Debug)]
pub struct HealthMonitor {
    registry: SharedRegistry,
    /// The sliding windows (public: probes and tests may query).
    pub windows: MetricWindows,
    /// The burn-rate engine.
    pub engine: SloEngine,
    /// The flight recorder.
    pub recorder: FlightRecorder,
    pending_events: Vec<String>,
    fired_id: CounterId,
    cleared_id: CounterId,
    active_id: GaugeId,
    armed_id: GaugeId,
    published_fired: u64,
    published_cleared: u64,
}

impl HealthMonitor {
    /// A monitor over `registry` with a `window_len`-tick ring and a
    /// `recorder_ticks`-tick flight recorder.
    pub fn new(registry: &SharedRegistry, window_len: usize, recorder_ticks: usize) -> Self {
        let (fired_id, cleared_id, active_id, armed_id) = registry.with(|r| {
            (
                r.counter("obs.slo.fired"),
                r.counter("obs.slo.cleared"),
                r.gauge("obs.slo.active"),
                r.gauge("obs.slo.armed"),
            )
        });
        HealthMonitor {
            registry: registry.clone(),
            windows: MetricWindows::new(window_len),
            engine: SloEngine::new(),
            recorder: FlightRecorder::new(recorder_ticks),
            pending_events: Vec::new(),
            fired_id,
            cleared_id,
            active_id,
            armed_id,
            published_fired: 0,
            published_cleared: 0,
        }
    }

    /// The registry this monitor watches.
    pub fn registry(&self) -> &SharedRegistry {
        &self.registry
    }

    /// Arm one SLO.
    pub fn arm(&mut self, spec: SloSpec) {
        self.engine.arm(spec);
    }

    /// Feed one component event-log line (raft leader change, crash
    /// epoch, recovery summary) into the next tick's evidence.
    pub fn note_event(&mut self, line: String) {
        self.pending_events.push(line);
    }

    /// Manual dump trigger for invariant trips and crash-recovery
    /// paths.
    pub fn dump(&mut self, reason: &str, now: SimTime) -> bool {
        self.recorder.dump(reason, now.as_micros())
    }

    /// One health tick: roll, evaluate, publish, record. Returns the
    /// number of alert events this tick produced.
    pub fn tick(&mut self, now: SimTime) -> usize {
        let windows = &mut self.windows;
        self.registry.with(|r| windows.roll(r));
        let new_events = self.engine.evaluate(now, &self.windows);

        // Publish obs.slo.* so the health layer is visible through the
        // same registry it watches.
        let fired = self.engine.fired_total();
        let cleared = self.engine.cleared_total();
        let active = self.engine.active_count() as f64;
        let armed = self.engine.specs().len() as f64;
        let (d_fired, d_cleared) = (
            fired.saturating_sub(self.published_fired),
            cleared.saturating_sub(self.published_cleared),
        );
        self.published_fired = fired;
        self.published_cleared = cleared;
        let (fired_id, cleared_id, active_id, armed_id) =
            (self.fired_id, self.cleared_id, self.active_id, self.armed_id);
        self.registry.with(|r| {
            r.add(fired_id, d_fired);
            r.add(cleared_id, d_cleared);
            r.set_gauge(active_id, active);
            r.set_gauge(armed_id, armed);
        });

        // Evidence for the flight recorder.
        let mut ev = TickEvidence::at(now.as_micros());
        self.windows.for_each_last_counter_delta(|n, d| ev.counters.push((n.to_string(), d)));
        self.windows.for_each_gauge(|n, v| ev.gauges.push((n.to_string(), v)));
        ev.events.append(&mut self.pending_events);
        let tail = self.engine.events().len().saturating_sub(new_events);
        let mut fire_reasons: Vec<String> = Vec::new();
        for e in self.engine.events().iter().skip(tail) {
            ev.alerts.push(e.canonical_line());
            if e.kind == AlertKind::Fire {
                fire_reasons.push(format!("slo-fire:{}", e.slo));
            }
        }
        self.recorder.push(ev);
        for reason in fire_reasons {
            self.recorder.dump(&reason, now.as_micros());
        }
        new_events
    }

    /// See [`SloEngine::events`].
    pub fn alert_log(&self) -> &[AlertEvent] {
        self.engine.events()
    }

    /// See [`SloEngine::canonical_log`].
    pub fn canonical_alert_log(&self) -> String {
        self.engine.canonical_log()
    }

    /// See [`SloEngine::active_count`].
    pub fn active_alerts(&self) -> usize {
        self.engine.active_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    /// Drive an availability SLO through healthy → outage → recovery.
    #[test]
    fn availability_fires_and_clears() {
        let reg = SharedRegistry::new();
        let mut mon = HealthMonitor::new(&reg, 64, 16);
        mon.arm(
            SloSpec::availability("t.avail", "t.c.err", "t.c.total", 0.01)
                .windows(8, 32)
                .burn(2.0, 1.0)
                .min_events(4),
        );
        let (errs, total) = reg.with(|r| (r.counter("t.c.err"), r.counter("t.c.total")));
        let mut fired_at = None;
        let mut cleared_at = None;
        for ms in 0..200u64 {
            reg.with(|r| {
                r.incr(total);
                // Outage between ms 50 and 100: every request errors.
                if (50..100).contains(&ms) {
                    r.incr(errs);
                }
            });
            mon.tick(t(ms));
            if fired_at.is_none() && mon.active_alerts() > 0 {
                fired_at = Some(ms);
            }
            if fired_at.is_some() && cleared_at.is_none() && mon.active_alerts() == 0 {
                cleared_at = Some(ms);
            }
        }
        let fired_at = fired_at.expect("alert never fired");
        let cleared_at = cleared_at.expect("alert never cleared");
        assert!((50..=80).contains(&fired_at), "fired at {fired_at}");
        assert!(cleared_at > 100, "cleared at {cleared_at}");
        let log = mon.canonical_alert_log();
        assert!(log.contains("slo=t.avail kind=fire"), "{log}");
        assert!(log.contains("slo=t.avail kind=clear"), "{log}");
        // A fire dumps a bundle.
        assert_eq!(mon.recorder.bundles().len(), 1);
        assert!(mon.recorder.bundles()[0].reason.contains("t.avail"));
        // Registry-visible stats.
        assert_eq!(reg.counter_get("obs.slo.fired"), 1);
        assert_eq!(reg.counter_get("obs.slo.cleared"), 1);
        assert_eq!(reg.with(|r| r.gauge_get("obs.slo.armed")), 1.0);
    }

    #[test]
    fn healthy_baseline_never_fires() {
        let reg = SharedRegistry::new();
        let mut mon = HealthMonitor::new(&reg, 64, 16);
        mon.arm(SloSpec::availability("t.avail", "t.c.err", "t.c.total", 0.01).windows(8, 32));
        mon.arm(SloSpec::latency("t.lat", "t.h.ms", 64.0, 0.05).windows(8, 32).min_events(4));
        mon.arm(SloSpec::staleness("t.stale", "t.g.lag", 10.0, 0.1).windows(8, 32).min_events(4));
        let (total, h, g) =
            reg.with(|r| (r.counter("t.c.total"), r.histo("t.h.ms"), r.gauge("t.g.lag")));
        for ms in 0..300u64 {
            reg.with(|r| {
                r.incr(total);
                r.record(h, 2.0);
                r.set_gauge(g, 1.0);
            });
            mon.tick(t(ms));
        }
        assert_eq!(mon.alert_log().len(), 0, "{}", mon.canonical_alert_log());
        assert_eq!(mon.recorder.bundles().len(), 0);
    }

    #[test]
    fn latency_objective_burns_on_slow_tail() {
        let reg = SharedRegistry::new();
        let mut mon = HealthMonitor::new(&reg, 64, 16);
        mon.arm(SloSpec::latency("t.lat", "t.h.ms", 64.0, 0.05).windows(8, 32).min_events(4));
        let h = reg.with(|r| r.histo("t.h.ms"));
        for ms in 0..120u64 {
            reg.with(|r| {
                for _ in 0..10 {
                    // After ms 40, half the samples blow the 64 ms threshold.
                    let v = if ms >= 40 { 128.0 } else { 2.0 };
                    r.record(h, if ms >= 40 && ms % 2 == 0 { v } else { 2.0 });
                }
            });
            mon.tick(t(ms));
        }
        assert!(mon.engine.fired_total() >= 1, "{}", mon.canonical_alert_log());
        assert!(mon.engine.is_active("t.lat"));
    }

    #[test]
    fn staleness_objective_watches_gauges() {
        let reg = SharedRegistry::new();
        let mut mon = HealthMonitor::new(&reg, 64, 16);
        mon.arm(
            SloSpec::staleness("t.stale", "t.g.lag", 10.0, 0.25).windows(8, 16).min_events(4),
        );
        let g = reg.with(|r| r.gauge("t.g.lag"));
        for ms in 0..100u64 {
            reg.with(|r| r.set_gauge(g, if ms >= 30 { 50.0 } else { 0.0 }));
            mon.tick(t(ms));
        }
        assert!(mon.engine.is_active("t.stale"), "{}", mon.canonical_alert_log());
        // Gauge recovers → alert clears.
        for ms in 100..160u64 {
            reg.with(|r| r.set_gauge(g, 0.0));
            mon.tick(t(ms));
        }
        assert!(!mon.engine.is_active("t.stale"), "{}", mon.canonical_alert_log());
        assert_eq!(mon.engine.cleared_total(), 1);
    }

    #[test]
    fn min_events_gates_thin_windows() {
        let reg = SharedRegistry::new();
        let mut mon = HealthMonitor::new(&reg, 64, 16);
        mon.arm(
            SloSpec::availability("t.avail", "t.c.err", "t.c.total", 0.01)
                .windows(8, 32)
                .min_events(100),
        );
        let (errs, total) = reg.with(|r| (r.counter("t.c.err"), r.counter("t.c.total")));
        for ms in 0..50u64 {
            reg.with(|r| {
                r.incr(total);
                r.incr(errs); // 100% errors, but too few events to trust
            });
            mon.tick(t(ms));
        }
        assert_eq!(mon.alert_log().len(), 0);
    }

    #[test]
    fn canonical_log_is_reproducible() {
        let run = || {
            let reg = SharedRegistry::new();
            let mut mon = HealthMonitor::new(&reg, 64, 16);
            mon.arm(
                SloSpec::availability("t.avail", "t.c.err", "t.c.total", 0.01)
                    .windows(8, 32)
                    .min_events(4),
            );
            let (errs, total) = reg.with(|r| (r.counter("t.c.err"), r.counter("t.c.total")));
            for ms in 0..150u64 {
                reg.with(|r| {
                    r.incr(total);
                    if (50..90).contains(&ms) {
                        r.incr(errs);
                    }
                });
                mon.tick(t(ms));
            }
            (mon.canonical_alert_log(), mon.engine.log_hash(), mon.recorder.bundle_hash())
        };
        assert_eq!(run(), run());
    }
}
