//! JSONL export for experiment artifacts.
//!
//! The `experiments` binary renders pretty tables for humans; this
//! module emits the same data as JSON Lines for machines (one JSON
//! object per line — trivially greppable, diffable, and appendable).
//! The encoder is hand-rolled and tiny: metric names and table cells
//! are plain strings and numbers, so a full JSON stack is not worth a
//! dependency.
//!
//! Line shapes:
//! * table row — `{"kind":"table","table":<title>,"<header>":<cell>,…}`
//! * span — `{"kind":"span","trace":…,"span":…,"parent":…,"name":…,
//!   "start_us":…,"end_us":…,"status":…}`
//! * counter / gauge — `{"kind":"counter","name":…,"value":…}`
//! * histogram — `{"kind":"histogram","name":…,"count":…,"mean":…,
//!   "p50":…,"p95":…,"max":…}`

use crate::registry::Registry;
use crate::trace::SpanRecord;
use mv_common::table::Table;
use std::fmt::Write as _;

/// Escape a string for embedding in a JSON document.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// A cell rendered as a bare JSON number when it parses as one, else as
/// a quoted string — so `"12.5"` exports as `12.5` but `"3.42x"` stays
/// a string.
fn json_value(cell: &str) -> String {
    if !cell.is_empty() && cell.parse::<f64>().is_ok_and(f64::is_finite) {
        cell.to_string()
    } else {
        format!("\"{}\"", json_escape(cell))
    }
}

/// Export a rendered [`Table`] as JSONL: one object per data row, keyed
/// by the column headers.
pub fn table_to_jsonl(table: &Table) -> String {
    let mut out = String::new();
    for row in table.rows() {
        let mut line = format!("{{\"kind\":\"table\",\"table\":\"{}\"", json_escape(table.title()));
        for (header, cell) in table.headers().iter().zip(row) {
            let _ = write!(line, ",\"{}\":{}", json_escape(header), json_value(cell));
        }
        line.push('}');
        out.push_str(&line);
        out.push('\n');
    }
    out
}

/// Export span records as JSONL, one span per line, in the order given.
/// Feed it `Tracer::trace_records` output (sorted) for deterministic
/// files.
pub fn spans_to_jsonl(spans: &[SpanRecord]) -> String {
    let mut out = String::new();
    for s in spans {
        let _ = writeln!(
            out,
            "{{\"kind\":\"span\",\"trace\":{},\"span\":{},\"parent\":{},\"name\":\"{}\",\
             \"start_us\":{},\"end_us\":{},\"status\":\"{}\"}}",
            s.trace,
            s.span,
            s.parent,
            json_escape(s.name),
            s.start.as_micros(),
            s.end.as_micros(),
            json_escape(s.status),
        );
    }
    out
}

/// Export a registry snapshot as JSONL: counters, gauges, then
/// histogram summaries, each name-sorted.
pub fn registry_to_jsonl(reg: &Registry) -> String {
    let mut out = String::new();
    for (name, v) in reg.counters() {
        let _ = writeln!(out, "{{\"kind\":\"counter\",\"name\":\"{}\",\"value\":{v}}}", json_escape(name));
    }
    for (name, v) in reg.gauges() {
        let _ = writeln!(out, "{{\"kind\":\"gauge\",\"name\":\"{}\",\"value\":{v}}}", json_escape(name));
    }
    for (name, h) in reg.histograms() {
        let _ = writeln!(
            out,
            "{{\"kind\":\"histogram\",\"name\":\"{}\",\"count\":{},\"mean\":{},\"p50\":{},\
             \"p95\":{},\"max\":{}}}",
            json_escape(name),
            h.count(),
            h.mean(),
            h.quantile(0.5),
            h.quantile(0.95),
            h.max(),
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::Tracer;
    use mv_common::time::SimTime;

    #[test]
    fn escaping_covers_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
        assert_eq!(json_escape("plain"), "plain");
    }

    #[test]
    fn table_rows_become_objects() {
        let mut t = Table::new("e18 stages", &["stage", "mean_ms", "note"]);
        t.row(&["wal".into(), "1.25".into(), "3.42x".into()]);
        let j = table_to_jsonl(&t);
        assert_eq!(
            j,
            "{\"kind\":\"table\",\"table\":\"e18 stages\",\"stage\":\"wal\",\
             \"mean_ms\":1.25,\"note\":\"3.42x\"}\n"
        );
    }

    #[test]
    fn spans_export_in_given_order() {
        let mut tr = Tracer::new();
        let ctx = tr.start_trace("root", SimTime::from_millis(1));
        tr.close(ctx.span, SimTime::from_millis(3), "ok");
        let j = spans_to_jsonl(&tr.trace_records(ctx.trace));
        assert_eq!(
            j,
            "{\"kind\":\"span\",\"trace\":1,\"span\":1,\"parent\":0,\"name\":\"root\",\
             \"start_us\":1000,\"end_us\":3000,\"status\":\"ok\"}\n"
        );
    }

    #[test]
    fn registry_snapshot_exports_all_kinds() {
        let mut r = Registry::new();
        let c = r.counter("net.sent");
        r.add(c, 7);
        let g = r.gauge("core.live");
        r.set_gauge(g, 2.5);
        let h = r.histo("lat");
        r.record(h, 4.0);
        let j = registry_to_jsonl(&r);
        assert!(j.contains("{\"kind\":\"counter\",\"name\":\"net.sent\",\"value\":7}"));
        assert!(j.contains("{\"kind\":\"gauge\",\"name\":\"core.live\",\"value\":2.5}"));
        assert!(j.contains("\"kind\":\"histogram\",\"name\":\"lat\",\"count\":1"));
    }
}
