//! JSONL export for experiment artifacts.
//!
//! The `experiments` binary renders pretty tables for humans; this
//! module emits the same data as JSON Lines for machines (one JSON
//! object per line — trivially greppable, diffable, and appendable).
//! The encoder is hand-rolled and tiny: metric names and table cells
//! are plain strings and numbers, so a full JSON stack is not worth a
//! dependency.
//!
//! Line shapes:
//! * table row — `{"kind":"table","table":<title>,"<header>":<cell>,…}`
//! * span — `{"kind":"span","trace":…,"span":…,"parent":…,"name":…,
//!   "start_us":…,"end_us":…,"status":…}`
//! * counter / gauge — `{"kind":"counter","name":…,"value":…}`
//! * histogram — `{"kind":"histogram","name":…,"count":…,"mean":…,
//!   "p50":…,"p95":…,"max":…}`
//! * windowed metric — `{"kind":"window_counter","name":…,"ticks":…,
//!   "delta":…,"rate":…}` / `{"kind":"window_gauge","name":…,"last":…}`
//!   / `{"kind":"window_histo","name":…,"ticks":…,"count":…,"mean":…,
//!   "p50":…,"p99":…}`
//! * SLO status — `{"kind":"slo","slo":…,"active":…}` plus one
//!   `{"kind":"slo_totals",…}` summary
//! * alert event — `{"kind":"alert","seq":…,"slo":…,"alert":"fire",…}`

use crate::registry::Registry;
use crate::slo::{AlertEvent, SloEngine};
use crate::trace::SpanRecord;
use crate::window::{MetricWindows, WindowHisto};
use mv_common::table::Table;
use std::fmt::Write as _;

/// Escape a string for embedding in a JSON document.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    json_escape_into(&mut out, s);
    out
}

/// [`json_escape`] into a caller-owned buffer (no allocation when the
/// buffer has capacity) — the hot-loop form used by [`JsonlSink`].
pub fn json_escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// A cell rendered as a bare JSON number when it parses as one, else as
/// a quoted string — so `"12.5"` exports as `12.5` but `"3.42x"` stays
/// a string.
fn json_value_into(out: &mut String, cell: &str) {
    if !cell.is_empty() && cell.parse::<f64>().is_ok_and(f64::is_finite) {
        out.push_str(cell);
    } else {
        out.push('"');
        json_escape_into(out, cell);
        out.push('"');
    }
}

/// Export a rendered [`Table`] as JSONL: one object per data row, keyed
/// by the column headers.
pub fn table_to_jsonl(table: &Table) -> String {
    let mut out = String::new();
    table_to_jsonl_into(&mut out, table);
    out
}

/// [`table_to_jsonl`] into a caller-owned buffer.
pub fn table_to_jsonl_into(out: &mut String, table: &Table) {
    for row in table.rows() {
        out.push_str("{\"kind\":\"table\",\"table\":\"");
        json_escape_into(out, table.title());
        out.push('"');
        for (header, cell) in table.headers().iter().zip(row) {
            out.push_str(",\"");
            json_escape_into(out, header);
            out.push_str("\":");
            json_value_into(out, cell);
        }
        out.push_str("}\n");
    }
}

/// Export span records as JSONL, one span per line, in the order given.
/// Feed it `Tracer::trace_records` output (sorted) for deterministic
/// files.
pub fn spans_to_jsonl(spans: &[SpanRecord]) -> String {
    let mut out = String::new();
    spans_to_jsonl_into(&mut out, spans);
    out
}

/// [`spans_to_jsonl`] into a caller-owned buffer.
pub fn spans_to_jsonl_into(out: &mut String, spans: &[SpanRecord]) {
    for s in spans {
        out.push_str("{\"kind\":\"span\",\"trace\":");
        let _ = write!(out, "{}", s.trace);
        out.push_str(",\"span\":");
        let _ = write!(out, "{}", s.span);
        out.push_str(",\"parent\":");
        let _ = write!(out, "{}", s.parent);
        out.push_str(",\"name\":\"");
        json_escape_into(out, s.name);
        let _ = write!(out, "\",\"start_us\":{},\"end_us\":{},\"status\":\"", s.start.as_micros(), s.end.as_micros());
        json_escape_into(out, s.status);
        out.push_str("\"}\n");
    }
}

/// Export a registry snapshot as JSONL: counters, gauges, then
/// histogram summaries, each name-sorted.
pub fn registry_to_jsonl(reg: &Registry) -> String {
    let mut out = String::new();
    registry_to_jsonl_into(&mut out, reg);
    out
}

/// [`registry_to_jsonl`] into a caller-owned buffer.
pub fn registry_to_jsonl_into(out: &mut String, reg: &Registry) {
    for (name, v) in reg.counters() {
        out.push_str("{\"kind\":\"counter\",\"name\":\"");
        json_escape_into(out, name);
        let _ = writeln!(out, "\",\"value\":{v}}}");
    }
    for (name, v) in reg.gauges() {
        out.push_str("{\"kind\":\"gauge\",\"name\":\"");
        json_escape_into(out, name);
        let _ = writeln!(out, "\",\"value\":{v}}}");
    }
    for (name, h) in reg.histograms() {
        out.push_str("{\"kind\":\"histogram\",\"name\":\"");
        json_escape_into(out, name);
        let _ = writeln!(
            out,
            "\",\"count\":{},\"mean\":{},\"p50\":{},\"p95\":{},\"max\":{}}}",
            h.count(),
            h.mean(),
            h.quantile(0.5),
            h.quantile(0.95),
            h.max(),
        );
    }
}

/// Export the windowed view of every metric over the last `k` ticks:
/// counter deltas/rates, latest gauge values, and windowed histogram
/// quantiles. `scratch` is the reusable histogram accumulator — pass
/// the same one every tick and the encoder allocates nothing once warm
/// (the [`JsonlSink::windows`] form owns one for you).
pub fn windows_to_jsonl_into(
    out: &mut String,
    w: &MetricWindows,
    k: usize,
    scratch: &mut WindowHisto,
) {
    let ticks = w.window_ticks(k);
    for name in w.counter_names() {
        out.push_str("{\"kind\":\"window_counter\",\"name\":\"");
        json_escape_into(out, name);
        let _ = writeln!(
            out,
            "\",\"ticks\":{ticks},\"delta\":{},\"rate\":{}}}",
            w.counter_delta(name, k),
            w.rate(name, k),
        );
    }
    for name in w.gauge_names() {
        out.push_str("{\"kind\":\"window_gauge\",\"name\":\"");
        json_escape_into(out, name);
        let _ = writeln!(out, "\",\"last\":{}}}", w.gauge_last(name));
    }
    for name in w.histo_names() {
        w.histo_window_into(name, k, scratch);
        out.push_str("{\"kind\":\"window_histo\",\"name\":\"");
        json_escape_into(out, name);
        let _ = writeln!(
            out,
            "\",\"ticks\":{ticks},\"count\":{},\"mean\":{},\"p50\":{},\"p99\":{}}}",
            scratch.count(),
            scratch.mean(),
            scratch.quantile(0.5),
            scratch.quantile(0.99),
        );
    }
}

/// Allocating convenience form of [`windows_to_jsonl_into`].
pub fn windows_to_jsonl(w: &MetricWindows, k: usize) -> String {
    let mut out = String::new();
    let mut scratch = WindowHisto::new();
    windows_to_jsonl_into(&mut out, w, k, &mut scratch);
    out
}

/// Export an [`SloEngine`]'s current status: one `{"kind":"slo"}` line
/// per armed spec plus a `{"kind":"slo_totals"}` summary.
pub fn slo_to_jsonl_into(out: &mut String, engine: &SloEngine) {
    for spec in engine.specs() {
        out.push_str("{\"kind\":\"slo\",\"slo\":\"");
        json_escape_into(out, &spec.name);
        let _ = writeln!(out, "\",\"active\":{}}}", engine.is_active(&spec.name));
    }
    let _ = writeln!(
        out,
        "{{\"kind\":\"slo_totals\",\"armed\":{},\"active\":{},\"fired\":{},\"cleared\":{}}}",
        engine.specs().len(),
        engine.active_count(),
        engine.fired_total(),
        engine.cleared_total(),
    );
}

/// Allocating convenience form of [`slo_to_jsonl_into`].
pub fn slo_to_jsonl(engine: &SloEngine) -> String {
    let mut out = String::new();
    slo_to_jsonl_into(&mut out, engine);
    out
}

/// Export alert events as JSONL, one per line, in the order given —
/// pass [`SloEngine::events`] (or a tail slice for the current tick's
/// new events). Burn rates use the same fixed `{:.3}` formatting as the
/// canonical alert log, so the lines are byte-stable across same-seed
/// runs.
pub fn alerts_to_jsonl_into(out: &mut String, events: &[AlertEvent]) {
    for e in events {
        out.push_str("{\"kind\":\"alert\",\"seq\":");
        let _ = write!(out, "{},\"at_us\":{},\"slo\":\"", e.seq, e.at.as_micros());
        json_escape_into(out, &e.slo);
        let _ = writeln!(
            out,
            "\",\"alert\":\"{}\",\"burn_fast\":{:.3},\"burn_slow\":{:.3},\
             \"fast_bad\":{},\"fast_total\":{},\"slow_bad\":{},\"slow_total\":{}}}",
            e.kind.as_str(),
            e.burn_fast,
            e.burn_slow,
            e.fast_bad,
            e.fast_total,
            e.slow_bad,
            e.slow_total,
        );
    }
}

/// Allocating convenience form of [`alerts_to_jsonl_into`].
pub fn alerts_to_jsonl(events: &[AlertEvent]) -> String {
    let mut out = String::new();
    alerts_to_jsonl_into(&mut out, events);
    out
}

/// A reusable JSONL encode buffer for per-tick export loops.
///
/// Exporting the profiler or a span batch every tick used to allocate a
/// fresh `String` (and one more per escaped cell) per tick — the
/// profiler itself showed up on the profile it was producing. A sink is
/// allocated once, `clear`ed per tick (capacity kept), and written
/// through the `*_into` encoders above. [`JsonlSink::grows`] counts
/// buffer reallocations, so steady-state loops can *assert* the encode
/// path has stopped allocating (see the macro-benchmark, DESIGN.md §13).
#[derive(Debug, Default)]
pub struct JsonlSink {
    buf: String,
    grows: u64,
    /// Reused by [`Self::windows`] so windowed-histogram export never
    /// allocates a fresh accumulator per tick.
    histo_scratch: WindowHisto,
}

impl JsonlSink {
    /// A sink with a preallocated buffer.
    pub fn with_capacity(bytes: usize) -> Self {
        JsonlSink {
            buf: String::with_capacity(bytes),
            grows: 0,
            histo_scratch: WindowHisto::new(),
        }
    }

    /// Clear the buffer for the next tick, keeping its capacity.
    pub fn clear(&mut self) {
        self.buf.clear();
    }

    /// The encoded JSONL so far.
    pub fn as_str(&self) -> &str {
        &self.buf
    }

    /// Buffer length in bytes.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been encoded since the last clear.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// How many times a write outgrew the buffer and forced a
    /// reallocation. Zero after warm-up means the encode path is
    /// allocation-free in steady state.
    pub fn grows(&self) -> u64 {
        self.grows
    }

    fn track<R>(&mut self, f: impl FnOnce(&mut String) -> R) -> R {
        let before = self.buf.capacity();
        let r = f(&mut self.buf);
        if self.buf.capacity() != before {
            self.grows += 1;
        }
        r
    }

    /// Append a table's rows as JSONL.
    pub fn table(&mut self, table: &Table) {
        self.track(|buf| table_to_jsonl_into(buf, table));
    }

    /// Append span records as JSONL.
    pub fn spans(&mut self, spans: &[SpanRecord]) {
        self.track(|buf| spans_to_jsonl_into(buf, spans));
    }

    /// Append a registry snapshot as JSONL.
    pub fn registry(&mut self, reg: &Registry) {
        self.track(|buf| registry_to_jsonl_into(buf, reg));
    }

    /// Append the windowed view of every metric over the last `k`
    /// ticks (see [`windows_to_jsonl_into`]); the histogram scratch is
    /// owned by the sink, so steady-state streaming is allocation-free.
    pub fn windows(&mut self, w: &MetricWindows, k: usize) {
        let before = self.buf.capacity();
        windows_to_jsonl_into(&mut self.buf, w, k, &mut self.histo_scratch);
        if self.buf.capacity() != before {
            self.grows += 1;
        }
    }

    /// Append an SLO engine's status lines (see [`slo_to_jsonl_into`]).
    pub fn slo(&mut self, engine: &SloEngine) {
        self.track(|buf| slo_to_jsonl_into(buf, engine));
    }

    /// Append alert events (see [`alerts_to_jsonl_into`]).
    pub fn alerts(&mut self, events: &[AlertEvent]) {
        self.track(|buf| alerts_to_jsonl_into(buf, events));
    }

    /// Append one raw, pre-formed JSONL line (caller supplies valid
    /// JSON; a newline is added).
    pub fn raw_line(&mut self, line: &str) {
        self.track(|buf| {
            buf.push_str(line);
            buf.push('\n');
        });
    }

    /// Write through a closure with reallocation tracking — the hook
    /// custom encoders (e.g. [`crate::profile::TickProfiler::export_jsonl`])
    /// use to stay on the shared buffer.
    pub fn write_with(&mut self, f: impl FnOnce(&mut String)) {
        self.track(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::Tracer;
    use mv_common::time::SimTime;

    #[test]
    fn escaping_covers_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
        assert_eq!(json_escape("plain"), "plain");
    }

    #[test]
    fn table_rows_become_objects() {
        let mut t = Table::new("e18 stages", &["stage", "mean_ms", "note"]);
        t.row(&["wal".into(), "1.25".into(), "3.42x".into()]);
        let j = table_to_jsonl(&t);
        assert_eq!(
            j,
            "{\"kind\":\"table\",\"table\":\"e18 stages\",\"stage\":\"wal\",\
             \"mean_ms\":1.25,\"note\":\"3.42x\"}\n"
        );
    }

    #[test]
    fn spans_export_in_given_order() {
        let mut tr = Tracer::new();
        let ctx = tr.start_trace("root", SimTime::from_millis(1));
        tr.close(ctx.span, SimTime::from_millis(3), "ok");
        let j = spans_to_jsonl(&tr.trace_records(ctx.trace));
        assert_eq!(
            j,
            "{\"kind\":\"span\",\"trace\":1,\"span\":1,\"parent\":0,\"name\":\"root\",\
             \"start_us\":1000,\"end_us\":3000,\"status\":\"ok\"}\n"
        );
    }

    #[test]
    fn sink_reuse_stops_allocating_after_warmup() {
        // The satellite-2 claim: a per-tick export loop through one sink
        // reallocates only while warming up; once the buffer has grown to
        // the per-tick high-water mark, steady state is allocation-free.
        let mut t = Table::new("profile", &["stage", "mean_us"]);
        t.row(&["ingest".into(), "12.5".into()]);
        t.row(&["fanout".into(), "3.25".into()]);
        let mut sink = JsonlSink::default();
        for _ in 0..3 {
            sink.clear();
            sink.table(&t);
            sink.raw_line("{\"kind\":\"tick\",\"n\":1}");
        }
        let after_warmup = sink.grows();
        for _ in 0..1000 {
            sink.clear();
            sink.table(&t);
            sink.raw_line("{\"kind\":\"tick\",\"n\":1}");
        }
        assert_eq!(sink.grows(), after_warmup, "steady-state export must not reallocate");
        assert!(sink.as_str().contains("\"stage\":\"ingest\""));
        assert_eq!(sink.as_str(), table_to_jsonl(&t) + "{\"kind\":\"tick\",\"n\":1}\n");
    }

    #[test]
    fn preallocated_sink_never_grows() {
        let mut sink = JsonlSink::with_capacity(1 << 16);
        let mut t = Table::new("x", &["a"]);
        t.row(&["1".into()]);
        for _ in 0..100 {
            sink.clear();
            sink.table(&t);
        }
        assert_eq!(sink.grows(), 0);
    }

    #[test]
    fn windowed_and_slo_lines_have_expected_shapes() {
        use crate::slo::SloSpec;

        let mut r = Registry::new();
        let c = r.counter("net.transport.sent");
        let g = r.gauge("core.replicated.commit_lag");
        let h = r.histo("core.replicated.ack_ms");
        let mut w = MetricWindows::new(4);
        for i in 1..=4u64 {
            r.add(c, 2);
            r.set_gauge(g, i as f64);
            r.record(h, 8.0);
            w.roll(&r);
        }
        let j = windows_to_jsonl(&w, 4);
        assert!(j.contains(
            "{\"kind\":\"window_counter\",\"name\":\"net.transport.sent\",\
             \"ticks\":4,\"delta\":8,\"rate\":2}"
        ));
        assert!(
            j.contains("{\"kind\":\"window_gauge\",\"name\":\"core.replicated.commit_lag\",\"last\":4}")
        );
        assert!(j.contains("\"kind\":\"window_histo\",\"name\":\"core.replicated.ack_ms\",\"ticks\":4,\"count\":4"));

        let mut engine = SloEngine::new();
        engine.arm(SloSpec::availability("t.avail", "t.c.err", "t.c.total", 0.01));
        let s = slo_to_jsonl(&engine);
        assert!(s.contains("{\"kind\":\"slo\",\"slo\":\"t.avail\",\"active\":false}"));
        assert!(s.contains(
            "{\"kind\":\"slo_totals\",\"armed\":1,\"active\":0,\"fired\":0,\"cleared\":0}"
        ));
        assert!(alerts_to_jsonl(engine.events()).is_empty());
    }

    #[test]
    fn alert_events_export_canonical_fields() {
        use crate::slo::{HealthMonitor, SloSpec};
        use crate::registry::SharedRegistry;

        let reg = SharedRegistry::new();
        let mut mon = HealthMonitor::new(&reg, 64, 16);
        mon.arm(
            SloSpec::availability("t.avail", "t.c.err", "t.c.total", 0.01)
                .windows(8, 32)
                .min_events(4),
        );
        let (errs, total) = reg.with(|r| (r.counter("t.c.err"), r.counter("t.c.total")));
        for ms in 0..150u64 {
            reg.with(|r| {
                r.incr(total);
                if (50..90).contains(&ms) {
                    r.incr(errs);
                }
            });
            mon.tick(SimTime::from_millis(ms));
        }
        let j = alerts_to_jsonl(mon.alert_log());
        assert!(j.contains("\"kind\":\"alert\",\"seq\":0,"), "{j}");
        assert!(j.contains("\"slo\":\"t.avail\",\"alert\":\"fire\""), "{j}");
        assert!(j.contains("\"alert\":\"clear\""), "{j}");
        // One line per event, every line a JSON object.
        assert_eq!(j.lines().count(), mon.alert_log().len());
        assert!(j.lines().all(|l| l.starts_with('{') && l.ends_with('}')));
    }

    #[test]
    fn health_streaming_stops_allocating_after_warmup() {
        // The satellite-6 claim: streaming windowed metrics + SLO
        // status + new alert events through one sink every tick stops
        // reallocating once the buffer and the histogram scratch have
        // warmed up — the exporter never becomes per-tick allocation
        // pressure on the loop it is observing.
        use crate::slo::SloSpec;

        let mut r = Registry::new();
        let c = r.counter("t.c.total");
        let e = r.counter("t.c.err");
        let g = r.gauge("t.g.lag");
        let h = r.histo("t.h.ms");
        let mut w = MetricWindows::new(16);
        let mut engine = SloEngine::new();
        engine.arm(
            SloSpec::availability("t.avail", "t.c.err", "t.c.total", 0.05)
                .windows(4, 16)
                .min_events(4),
        );
        let mut sink = JsonlSink::default();
        let mut step = |tick: u64, sink: &mut JsonlSink| {
            r.add(c, 3);
            // A burst of errors during warmup so the alert path (fire
            // and clear events, active status flips) is exercised and
            // its buffer high-water mark is established before the
            // steady-state measurement starts.
            if (10..30).contains(&tick) {
                r.add(e, 3);
            }
            r.set_gauge(g, (tick % 7) as f64);
            r.record(h, (tick % 32) as f64 + 1.0);
            w.roll(&r);
            let before = engine.events().len();
            engine.evaluate(SimTime::from_millis(tick), &w);
            sink.clear();
            sink.windows(&w, 8);
            sink.slo(&engine);
            sink.alerts(&engine.events()[before..]);
        };
        for tick in 0..40u64 {
            step(tick, &mut sink);
        }
        let after_warmup = sink.grows();
        for tick in 40..1000u64 {
            step(tick, &mut sink);
        }
        assert!(engine.fired_total() >= 1, "alert path never exercised");
        assert_eq!(
            sink.grows(),
            after_warmup,
            "steady-state health export must not reallocate"
        );
        assert!(sink.as_str().contains("\"kind\":\"window_counter\""));
        assert!(sink.as_str().contains("\"kind\":\"slo_totals\""));
    }

    #[test]
    fn registry_snapshot_exports_all_kinds() {
        let mut r = Registry::new();
        let c = r.counter("net.sent");
        r.add(c, 7);
        let g = r.gauge("core.live");
        r.set_gauge(g, 2.5);
        let h = r.histo("lat");
        r.record(h, 4.0);
        let j = registry_to_jsonl(&r);
        assert!(j.contains("{\"kind\":\"counter\",\"name\":\"net.sent\",\"value\":7}"));
        assert!(j.contains("{\"kind\":\"gauge\",\"name\":\"core.live\",\"value\":2.5}"));
        assert!(j.contains("\"kind\":\"histogram\",\"name\":\"lat\",\"count\":1"));
    }
}
