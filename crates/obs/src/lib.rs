#![forbid(unsafe_code)]
//! `mv-obs` — the observability layer for the cospace platform.
//!
//! The paper's §IV challenges all hinge on *measuring* the deluge: the
//! device–cloud–storage disaggregation of Fig. 7 only works if every
//! layer can report where time and bytes go, and edge/cloud placement
//! decisions (Lim et al., "Realizing the Metaverse with Edge
//! Intelligence") need per-hop latency accounting. This crate is the
//! substrate every performance claim in EXPERIMENTS.md reports against:
//!
//! * [`registry`] — a mergeable [`registry::Registry`] of named
//!   counters, gauges, and fixed-bucket log-scaled histograms
//!   ([`registry::LogHistogram`]: bounded memory, mergeable across
//!   shards), plus [`registry::StatSet`], the registry-backed drop-in
//!   for the ad-hoc counter structs the lower crates used to carry.
//!   Metric names follow `<crate>.<component>.<metric>` (DESIGN.md §8).
//! * [`trace`] — causal span tracing on the *virtual* clock: a
//!   [`trace::TraceCtx`] minted at op ingest rides every payload through
//!   transport retries, outbox replays, broker delivery, and WAL group
//!   commit; the collected [`trace::SpanRecord`]s are deterministic
//!   (seed-stable ids, sim-time stamps), so a single update's critical
//!   path is reconstructible — and two same-seed runs hash identically.
//! * [`profile`] — a per-tick scoped wall-clock profiler for engine
//!   loops ([`profile::TickProfiler`]), reporting into the same
//!   log-scaled histograms.
//! * [`export`] — JSONL + pretty-table export used by the `experiments`
//!   binary for every `exp_*` bench.
//! * [`window`] — sliding-window aggregation over a registry: a fixed
//!   ring of per-tick buckets turning cumulative counters and
//!   histograms into windowed rates and windowed p50/p99, with a
//!   merge that commutes with [`registry::Registry::merge`].
//! * [`slo`] — declarative SLOs (latency, availability, staleness)
//!   evaluated by multi-window burn-rate rules, emitting a canonical
//!   seed-reproducible alert log; [`slo::HealthMonitor`] is the
//!   per-tick pump gluing windows, SLOs, and the recorder together.
//! * [`recorder`] — a black-box flight recorder: a bounded ring of
//!   recent metric deltas, alerts, and component events, dumped as a
//!   schema-versioned JSONL debug bundle when an alert fires, an
//!   invariant trips, or crash recovery runs.
//!
//! Everything here is deterministic where it touches simulation state
//! (span ids, sim timestamps, counter iteration order) and wall-clock
//! only where it measures real CPU (the profiler).

pub mod export;
pub mod profile;
pub mod recorder;
pub mod registry;
pub mod slo;
pub mod trace;
pub mod window;

pub use profile::TickProfiler;
pub use recorder::{DebugBundle, FlightRecorder, TickEvidence, BUNDLE_SCHEMA};
pub use registry::{CounterId, GaugeId, HistoId, LogHistogram, Registry, SharedRegistry, StatSet};
pub use slo::{AlertEvent, AlertKind, HealthMonitor, Objective, SloEngine, SloSpec};
pub use trace::{SharedTracer, SpanRecord, TraceCtx, Tracer};
pub use window::{MetricWindows, WindowHisto};
