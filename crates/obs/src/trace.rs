//! Causal span tracing on the simulated clock.
//!
//! A [`TraceCtx`] is minted where an operation enters the system (op
//! ingest in `DurableMetaverse`/`ShardedMetaverse`, or a bench driver)
//! and rides inside every payload the op turns into: transport frames,
//! outbox entries, broker publications, WAL records. Each stage opens a
//! *span* (a named child with a start time), and closes it when the
//! stage completes — or aborts it when a crash destroys the state that
//! would have closed it. The result is a per-run log of
//! [`SpanRecord`]s from which a single update's end-to-end critical
//! path — including retransmissions and replays under `FaultPlan`
//! faults — is reconstructible as a tree.
//!
//! Everything is deterministic: ids are sequential (so seed-stable in a
//! deterministic simulation), timestamps are sim-clock, and
//! [`Tracer::canonical_bytes`] sorts by `(trace, span)` — two same-seed
//! runs produce byte-identical span logs ([`Tracer::log_hash`]).

use crate::registry::LogHistogram;
use mv_common::hash::fx_hash_one;
use mv_common::time::SimTime;
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The causal context an in-flight operation carries: which trace it
/// belongs to and which span is its current parent. `Copy` so payload
/// structs can embed it without ceremony.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceCtx {
    /// Trace id: one per traced operation, sequential from 1.
    pub trace: u64,
    /// Parent span id for the next child this context spawns.
    pub span: u64,
}

impl TraceCtx {
    /// The same trace with a different parent span (what a stage passes
    /// downstream after opening its own span).
    pub fn with_span(self, span: u64) -> TraceCtx {
        TraceCtx { trace: self.trace, span }
    }
}

/// One completed (or aborted) span. `end == start` with a non-`"ok"`
/// status marks an instant event or an abort.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Trace this span belongs to.
    pub trace: u64,
    /// This span's id (unique per tracer, sequential from 1).
    pub span: u64,
    /// Parent span id (0 = root).
    pub parent: u64,
    /// Stage name, `<crate>.<component>.<stage>`.
    pub name: &'static str,
    /// Sim time the stage began.
    pub start: SimTime,
    /// Sim time the stage ended (== start for events/aborts).
    pub end: SimTime,
    /// Outcome: `"ok"`, `"acked"`, `"timeout"`, `"expired"`,
    /// `"crashed"`, `"sealed"`, `"lost"`, …
    pub status: &'static str,
}

#[derive(Debug, Clone)]
struct OpenSpan {
    trace: u64,
    parent: u64,
    name: &'static str,
    start: SimTime,
}

/// Collects spans for one run. Single-threaded by design (the
/// simulations are); wrap in [`SharedTracer`] to hand one instance to
/// several components.
#[derive(Debug, Default)]
pub struct Tracer {
    next_trace: u64,
    next_span: u64,
    /// Mint a root for every k-th `maybe_trace` call (0 ⇒ trace all).
    sample_every: u64,
    /// Calls seen by `maybe_trace` (the sampling counter).
    minted_calls: u64,
    open: BTreeMap<u64, OpenSpan>,
    closed: Vec<SpanRecord>,
}

impl Tracer {
    /// A tracer that traces every operation.
    pub fn new() -> Self {
        Self::default()
    }

    /// A tracer that mints a root for one in every `k` `maybe_trace`
    /// calls (`k == 0` or `1` ⇒ every call). Spans opened under an
    /// already-minted context are always recorded regardless of `k`.
    pub fn sampled(k: u64) -> Self {
        Tracer { sample_every: k, ..Self::default() }
    }

    /// Sampling root mint: returns a context for every k-th call.
    pub fn maybe_trace(&mut self, name: &'static str, at: SimTime) -> Option<TraceCtx> {
        self.minted_calls += 1;
        if self.sample_every > 1 && !(self.minted_calls - 1).is_multiple_of(self.sample_every) {
            return None;
        }
        Some(self.start_trace(name, at))
    }

    /// Unconditionally mint a new trace whose root span is open at `at`.
    pub fn start_trace(&mut self, name: &'static str, at: SimTime) -> TraceCtx {
        self.next_trace += 1;
        let trace = self.next_trace;
        self.next_span += 1;
        let span = self.next_span;
        self.open.insert(span, OpenSpan { trace, parent: 0, name, start: at });
        TraceCtx { trace, span }
    }

    /// Open a child span under `ctx`; returns its span id for `close`.
    pub fn child(&mut self, ctx: TraceCtx, name: &'static str, at: SimTime) -> u64 {
        self.next_span += 1;
        let span = self.next_span;
        self.open.insert(span, OpenSpan { trace: ctx.trace, parent: ctx.span, name, start: at });
        span
    }

    /// Close an open span at `at` with `status`. Unknown ids are
    /// ignored — a span may legitimately be closed by whichever of two
    /// racing paths (ack vs. expiry) gets there first.
    pub fn close(&mut self, span: u64, at: SimTime, status: &'static str) {
        if let Some(o) = self.open.remove(&span) {
            self.closed.push(SpanRecord {
                trace: o.trace,
                span,
                parent: o.parent,
                name: o.name,
                start: o.start,
                end: at.max(o.start),
                status,
            });
        }
    }

    /// Close an open span *at its own start time* — for crash paths
    /// where no meaningful end time exists (the state that would have
    /// closed it is gone). Keeps the no-leaked-spans invariant.
    pub fn abort(&mut self, span: u64, status: &'static str) {
        if let Some(o) = self.open.remove(&span) {
            self.closed.push(SpanRecord {
                trace: o.trace,
                span,
                parent: o.parent,
                name: o.name,
                start: o.start,
                end: o.start,
                status,
            });
        }
    }

    /// Record an instant event (zero-duration span) under `ctx`.
    pub fn event(&mut self, ctx: TraceCtx, name: &'static str, at: SimTime, status: &'static str) {
        self.next_span += 1;
        self.closed.push(SpanRecord {
            trace: ctx.trace,
            span: self.next_span,
            parent: ctx.span,
            name,
            start: at,
            end: at,
            status,
        });
    }

    /// Number of spans still open (must be 0 at sim end — leaked spans
    /// mean a stage lost track of an in-flight operation).
    pub fn open_count(&self) -> usize {
        self.open.len()
    }

    /// Number of traces minted so far.
    pub fn trace_count(&self) -> u64 {
        self.next_trace
    }

    /// All completed spans, in completion order.
    pub fn records(&self) -> &[SpanRecord] {
        &self.closed
    }

    /// Completed spans of one trace, sorted `(start, span)` so parents
    /// precede children at equal times.
    pub fn trace_records(&self, trace: u64) -> Vec<SpanRecord> {
        let mut v: Vec<SpanRecord> =
            self.closed.iter().filter(|r| r.trace == trace).cloned().collect();
        v.sort_by_key(|r| (r.start, r.span));
        v
    }

    /// The canonical byte encoding of the span log: records sorted by
    /// `(trace, span)`, each as LE `trace, span, parent, start, end,
    /// name-hash, status-hash`. Two same-seed runs must produce
    /// byte-identical output (the CI determinism gate hashes this).
    pub fn canonical_bytes(&self) -> Vec<u8> {
        let mut recs: Vec<&SpanRecord> = self.closed.iter().collect();
        recs.sort_by_key(|r| (r.trace, r.span));
        let mut out = Vec::with_capacity(recs.len() * 56);
        for r in recs {
            out.extend_from_slice(&r.trace.to_le_bytes());
            out.extend_from_slice(&r.span.to_le_bytes());
            out.extend_from_slice(&r.parent.to_le_bytes());
            out.extend_from_slice(&r.start.as_micros().to_le_bytes());
            out.extend_from_slice(&r.end.as_micros().to_le_bytes());
            out.extend_from_slice(&fx_hash_one(&r.name).to_le_bytes());
            out.extend_from_slice(&fx_hash_one(&r.status).to_le_bytes());
        }
        out
    }

    /// Hash of [`Self::canonical_bytes`] — the determinism fingerprint.
    pub fn log_hash(&self) -> u64 {
        fx_hash_one(&self.canonical_bytes())
    }

    /// Per-stage latency histograms: span durations (seconds) keyed by
    /// span name, merged across all traces.
    pub fn stage_histograms(&self) -> BTreeMap<&'static str, LogHistogram> {
        let mut out: BTreeMap<&'static str, LogHistogram> = BTreeMap::new();
        for r in &self.closed {
            out.entry(r.name).or_default().record((r.end - r.start).as_secs_f64());
        }
        out
    }

    /// Render one trace as an indented tree, children under parents,
    /// siblings in `(start, span)` order. Purely sim-time data, so the
    /// output is deterministic and safe to embed in golden files.
    pub fn render_trace(&self, trace: u64) -> Vec<String> {
        let recs = self.trace_records(trace);
        let mut children: BTreeMap<u64, Vec<&SpanRecord>> = BTreeMap::new();
        for r in &recs {
            children.entry(r.parent).or_default().push(r);
        }
        let mut lines = Vec::new();
        fn walk(
            span: u64,
            depth: usize,
            children: &BTreeMap<u64, Vec<&SpanRecord>>,
            lines: &mut Vec<String>,
        ) {
            if let Some(kids) = children.get(&span) {
                for r in kids {
                    lines.push(format!(
                        "{}{} [{:.3}ms +{:.3}ms] {}",
                        "  ".repeat(depth),
                        r.name,
                        r.start.as_millis_f64(),
                        (r.end - r.start).as_millis_f64(),
                        r.status,
                    ));
                    walk(r.span, depth + 1, children, lines);
                }
            }
        }
        walk(0, 0, &children, &mut lines);
        lines
    }
}

/// A cloneable handle to one [`Tracer`], so the transport, the WAL, the
/// engine, and the bench driver all write into the same span log.
///
/// Sampling is decided *outside* the lock: the rate is cached at
/// construction and the call counter is an atomic, so a sampled-out
/// [`Self::maybe_trace`] on a hot ingest path costs one fetch-add — the
/// lock is only taken for roots that are actually minted.
#[derive(Debug, Clone, Default)]
pub struct SharedTracer {
    inner: Arc<Mutex<Tracer>>,
    /// Cached sampling rate (0/1 ⇒ trace every call).
    sample_every: u64,
    /// Lock-free `maybe_trace` call counter.
    calls: Arc<AtomicU64>,
}

impl SharedTracer {
    /// A shared tracer that traces every operation.
    pub fn new() -> Self {
        Self::default()
    }

    /// A shared tracer sampling one in every `k` root mints.
    pub fn sampled(k: u64) -> Self {
        SharedTracer {
            inner: Arc::new(Mutex::new(Tracer::sampled(k))),
            sample_every: k,
            calls: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Run `f` with the tracer locked.
    pub fn with<T>(&self, f: impl FnOnce(&mut Tracer) -> T) -> T {
        f(&mut self.inner.lock())
    }

    /// See [`Tracer::maybe_trace`] — here the sampled-out case never
    /// takes the lock. (The sims are single-threaded, so the relaxed
    /// counter is deterministic.)
    pub fn maybe_trace(&self, name: &'static str, at: SimTime) -> Option<TraceCtx> {
        // lint:allow(relaxed-ordering): sampled-out fast path must not synchronize; the sims are single-threaded so the count stays deterministic
        let call = self.calls.fetch_add(1, Ordering::Relaxed);
        if self.sample_every > 1 && !call.is_multiple_of(self.sample_every) {
            return None;
        }
        Some(self.inner.lock().start_trace(name, at))
    }

    /// See [`Tracer::start_trace`].
    pub fn start_trace(&self, name: &'static str, at: SimTime) -> TraceCtx {
        self.inner.lock().start_trace(name, at)
    }

    /// See [`Tracer::child`].
    pub fn child(&self, ctx: TraceCtx, name: &'static str, at: SimTime) -> u64 {
        self.inner.lock().child(ctx, name, at)
    }

    /// See [`Tracer::close`].
    pub fn close(&self, span: u64, at: SimTime, status: &'static str) {
        self.inner.lock().close(span, at, status)
    }

    /// See [`Tracer::abort`].
    pub fn abort(&self, span: u64, status: &'static str) {
        self.inner.lock().abort(span, status)
    }

    /// See [`Tracer::event`].
    pub fn event(&self, ctx: TraceCtx, name: &'static str, at: SimTime, status: &'static str) {
        self.inner.lock().event(ctx, name, at, status)
    }

    /// See [`Tracer::open_count`].
    pub fn open_count(&self) -> usize {
        self.inner.lock().open_count()
    }

    /// See [`Tracer::trace_count`].
    pub fn trace_count(&self) -> u64 {
        self.inner.lock().trace_count()
    }

    /// See [`Tracer::log_hash`].
    pub fn log_hash(&self) -> u64 {
        self.inner.lock().log_hash()
    }

    /// See [`Tracer::canonical_bytes`].
    pub fn canonical_bytes(&self) -> Vec<u8> {
        self.inner.lock().canonical_bytes()
    }

    /// Snapshot of all completed spans.
    pub fn records(&self) -> Vec<SpanRecord> {
        self.inner.lock().records().to_vec()
    }

    /// See [`Tracer::trace_records`].
    pub fn trace_records(&self, trace: u64) -> Vec<SpanRecord> {
        self.inner.lock().trace_records(trace)
    }

    /// See [`Tracer::render_trace`].
    pub fn render_trace(&self, trace: u64) -> Vec<String> {
        self.inner.lock().render_trace(trace)
    }

    /// True when two handles share one tracer.
    pub fn same_as(&self, other: &SharedTracer) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn spans_nest_and_close() {
        let mut tr = Tracer::new();
        let ctx = tr.start_trace("e.root", t(0));
        let child = tr.child(ctx, "net.transport.send", t(1));
        let retry = tr.child(ctx.with_span(child), "net.transport.retry", t(5));
        tr.close(retry, t(7), "ok");
        tr.close(child, t(8), "acked");
        tr.close(ctx.span, t(10), "ok");
        assert_eq!(tr.open_count(), 0);
        let recs = tr.trace_records(ctx.trace);
        assert_eq!(recs.len(), 3);
        assert_eq!(recs[0].name, "e.root");
        assert_eq!(recs[0].parent, 0);
        assert_eq!(recs[1].parent, ctx.span);
        assert_eq!(recs[2].parent, child);
        let tree = tr.render_trace(ctx.trace);
        assert_eq!(tree.len(), 3);
        assert!(tree[0].starts_with("e.root"));
        assert!(tree[1].starts_with("  net.transport.send"));
        assert!(tree[2].starts_with("    net.transport.retry"));
    }

    #[test]
    fn close_is_idempotent_and_abort_zero_duration() {
        let mut tr = Tracer::new();
        let ctx = tr.start_trace("r", t(3));
        tr.close(ctx.span, t(9), "ok");
        tr.close(ctx.span, t(99), "late"); // no-op
        assert_eq!(tr.records().len(), 1);
        assert_eq!(tr.records()[0].end, t(9));

        let ctx2 = tr.start_trace("r2", t(5));
        tr.abort(ctx2.span, "crashed");
        let r = &tr.trace_records(ctx2.trace)[0];
        assert_eq!(r.start, r.end);
        assert_eq!(r.status, "crashed");
        assert_eq!(tr.open_count(), 0);
    }

    #[test]
    fn close_never_ends_before_start() {
        let mut tr = Tracer::new();
        let ctx = tr.start_trace("r", t(10));
        tr.close(ctx.span, t(2), "ok"); // out-of-order close clamps
        assert_eq!(tr.records()[0].end, t(10));
    }

    #[test]
    fn sampling_mints_every_kth() {
        let mut tr = Tracer::sampled(4);
        let minted: Vec<bool> =
            (0..8).map(|i| tr.maybe_trace("in", t(i)).is_some()).collect();
        assert_eq!(minted, vec![true, false, false, false, true, false, false, false]);
        assert_eq!(tr.trace_count(), 2);
        // k=0 and k=1 trace everything.
        let mut all = Tracer::sampled(1);
        assert!(all.maybe_trace("in", t(0)).is_some());
        assert!(all.maybe_trace("in", t(1)).is_some());
    }

    #[test]
    fn events_are_instant_and_recorded() {
        let mut tr = Tracer::new();
        let ctx = tr.start_trace("r", t(0));
        tr.event(ctx, "net.transport.deliver", t(4), "duplicate");
        tr.close(ctx.span, t(5), "ok");
        let recs = tr.trace_records(ctx.trace);
        assert_eq!(recs.len(), 2);
        let ev = recs.iter().find(|r| r.name == "net.transport.deliver").unwrap();
        assert_eq!(ev.start, ev.end);
        assert_eq!(ev.parent, ctx.span);
    }

    #[test]
    fn log_hash_is_order_insensitive_but_content_sensitive() {
        let build = |close_first: bool| {
            let mut tr = Tracer::new();
            let a = tr.start_trace("a", t(0));
            let b = tr.start_trace("b", t(1));
            if close_first {
                tr.close(a.span, t(2), "ok");
                tr.close(b.span, t(3), "ok");
            } else {
                tr.close(b.span, t(3), "ok");
                tr.close(a.span, t(2), "ok");
            }
            tr.log_hash()
        };
        // Same spans, different completion order → same canonical hash.
        assert_eq!(build(true), build(false));

        let mut other = Tracer::new();
        let a = other.start_trace("a", t(0));
        other.close(a.span, t(2), "expired");
        assert_ne!(build(true), other.log_hash());
    }

    #[test]
    fn stage_histograms_aggregate_by_name() {
        let mut tr = Tracer::new();
        for i in 0..3 {
            let ctx = tr.start_trace("root", t(i * 10));
            let s = tr.child(ctx, "stage", t(i * 10));
            tr.close(s, t(i * 10 + 2), "ok");
            tr.close(ctx.span, t(i * 10 + 5), "ok");
        }
        let h = tr.stage_histograms();
        assert_eq!(h["stage"].count(), 3);
        assert!((h["stage"].mean() - 0.002).abs() < 1e-9);
        assert_eq!(h["root"].count(), 3);
    }

    #[test]
    fn shared_tracer_is_one_log() {
        let st = SharedTracer::new();
        let st2 = st.clone();
        let ctx = st.start_trace("r", t(0));
        st2.close(ctx.span, t(1), "ok");
        assert_eq!(st.open_count(), 0);
        assert_eq!(st.records().len(), 1);
        assert!(st.same_as(&st2));
    }
}
