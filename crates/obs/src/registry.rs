//! A mergeable metrics registry: counters, gauges, log-scaled histograms.
//!
//! Hot paths pre-intern a metric name into a typed handle
//! ([`CounterId`], [`GaugeId`], [`HistoId`]) and then update by index —
//! no string hashing per update. Iteration, merge, and export all walk
//! names in sorted order, so registry output is deterministic.
//!
//! [`LogHistogram`] replaces the raw-sample `mv_common::metrics::
//! Histogram` on hot paths: 64 power-of-two buckets plus exact
//! count/sum/min/max, so memory is bounded regardless of sample volume
//! and two shards' histograms merge bucket-wise. The raw-sample type
//! stays around for bench post-processing where exact quantiles matter.
//!
//! [`StatSet`] is the registry-backed drop-in for the ad-hoc
//! `Counters` fields that `Network`, `ReliableTransport`, and
//! `ReliableBroker` used to carry: same `incr`/`add`/`get` surface,
//! deterministic `Debug`, but the values live in a [`Registry`] under
//! `<prefix>.<name>` — attach all three components to one
//! [`SharedRegistry`] and a single snapshot reports every layer without
//! hand-merging (and without double counting across crash-epoch
//! resets: endpoint state resets, the registry does not).

use mv_common::hash::FastMap;
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// Number of power-of-two buckets in a [`LogHistogram`].
pub const LOG_BUCKETS: usize = 64;
/// Bucket 0 covers everything below `2^-BUCKET_OFFSET`.
const BUCKET_OFFSET: i32 = 32;

/// A fixed-memory histogram over positive `f64` samples: 64
/// power-of-two buckets spanning `[2^-32, 2^32)` (seconds, bytes,
/// microseconds — any unit fits), plus exact count/sum/min/max.
/// Mergeable bucket-wise across shards and threads.
#[derive(Clone)]
pub struct LogHistogram {
    buckets: [u64; LOG_BUCKETS],
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram {
            buckets: [0; LOG_BUCKETS],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }
}

impl fmt::Debug for LogHistogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "LogHistogram {{ n={} mean={:.3} p50={:.3} p95={:.3} max={:.3} }}",
            self.count,
            self.mean(),
            self.quantile(0.5),
            self.quantile(0.95),
            self.max()
        )
    }
}

fn bucket_of(v: f64) -> usize {
    if v <= 0.0 || v.is_nan() {
        return 0;
    }
    let idx = v.log2().floor() as i32 + BUCKET_OFFSET;
    idx.clamp(0, LOG_BUCKETS as i32 - 1) as usize
}

/// Lower bound of bucket `i` (0 for the underflow bucket).
fn bucket_lo(i: usize) -> f64 {
    if i == 0 {
        0.0
    } else {
        ((i as i32 - BUCKET_OFFSET) as f64).exp2()
    }
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one sample (non-positive values land in the underflow
    /// bucket but still count toward mean/min/max exactly).
    #[inline]
    pub fn record(&mut self, v: f64) {
        self.buckets[bucket_of(v)] += 1;
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Sum of all samples (exact).
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Arithmetic mean (exact; 0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Smallest sample (exact; 0 when empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest sample (exact; 0 when empty).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Approximate quantile `q in [0,1]`: nearest-rank to a bucket, then
    /// linear interpolation inside it, clamped to the exact min/max.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        if q == 0.0 {
            return self.min;
        }
        if q == 1.0 {
            return self.max;
        }
        // Rank in [1, count].
        let rank = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            if b == 0 {
                continue;
            }
            if seen + b >= rank {
                let lo = bucket_lo(i);
                let hi = bucket_lo(i + 1).max(lo);
                let frac = (rank - seen) as f64 / b as f64;
                let est = lo + (hi - lo) * frac;
                return est.clamp(self.min, self.max);
            }
            seen += b;
        }
        self.max()
    }

    /// The raw per-bucket counts (index `i` covers `[bucket_floor(i),
    /// bucket_floor(i + 1))`). The window layer diffs these per tick.
    pub fn bucket_counts(&self) -> &[u64; LOG_BUCKETS] {
        &self.buckets
    }

    /// Lower bound of bucket `i` (0 for the underflow bucket). Public so
    /// the window layer can reconstruct quantiles from bucket deltas.
    pub fn bucket_floor(i: usize) -> f64 {
        bucket_lo(i)
    }

    /// Index of the bucket a sample `v` lands in.
    pub fn bucket_index(v: f64) -> usize {
        bucket_of(v)
    }

    /// Merge another histogram into this one, bucket-wise.
    pub fn merge(&mut self, other: &LogHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Drop all samples.
    pub fn clear(&mut self) {
        *self = Self::default();
    }
}

/// Handle to a counter in a [`Registry`] (O(1) updates).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterId(u32);
/// Handle to a gauge in a [`Registry`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GaugeId(u32);
/// Handle to a histogram in a [`Registry`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistoId(u32);

/// A registry of named metrics with interned-handle hot paths and
/// deterministic (name-sorted) iteration. Memory is bounded by the
/// number of *names*, never the number of updates.
#[derive(Debug, Default)]
pub struct Registry {
    counter_index: BTreeMap<String, u32>,
    counters: Vec<u64>,
    counter_names: Vec<String>,
    gauge_index: BTreeMap<String, u32>,
    gauges: Vec<f64>,
    gauge_names: Vec<String>,
    histo_index: BTreeMap<String, u32>,
    histos: Vec<LogHistogram>,
    histo_names: Vec<String>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern a counter name into a handle (idempotent).
    pub fn counter(&mut self, name: &str) -> CounterId {
        if let Some(&i) = self.counter_index.get(name) {
            return CounterId(i);
        }
        let i = self.counters.len() as u32;
        self.counter_index.insert(name.to_string(), i);
        self.counters.push(0);
        self.counter_names.push(name.to_string());
        CounterId(i)
    }

    /// Add `delta` to a counter by handle.
    #[inline]
    pub fn add(&mut self, id: CounterId, delta: u64) {
        // lint:allow(panic-path): CounterId handles are only minted by counter() after pushing the slot; typed-handle invariant
        self.counters[id.0 as usize] += delta;
    }

    /// Increment a counter by handle.
    #[inline]
    pub fn incr(&mut self, id: CounterId) {
        self.add(id, 1);
    }

    /// Read a counter by handle.
    pub fn counter_value(&self, id: CounterId) -> u64 {
        self.counters[id.0 as usize]
    }

    /// Read a counter by name (0 if never interned).
    pub fn counter_get(&self, name: &str) -> u64 {
        self.counter_index.get(name).map_or(0, |&i| self.counters[i as usize])
    }

    /// Intern a gauge name into a handle (idempotent).
    pub fn gauge(&mut self, name: &str) -> GaugeId {
        if let Some(&i) = self.gauge_index.get(name) {
            return GaugeId(i);
        }
        let i = self.gauges.len() as u32;
        self.gauge_index.insert(name.to_string(), i);
        self.gauges.push(0.0);
        self.gauge_names.push(name.to_string());
        GaugeId(i)
    }

    /// Set a gauge by handle.
    #[inline]
    pub fn set_gauge(&mut self, id: GaugeId, v: f64) {
        // lint:allow(panic-path): GaugeId handles are only minted by gauge() after pushing the slot; typed-handle invariant
        self.gauges[id.0 as usize] = v;
    }

    /// Read a gauge by handle.
    pub fn gauge_value(&self, id: GaugeId) -> f64 {
        self.gauges[id.0 as usize]
    }

    /// Read a gauge by name (0 if never interned).
    pub fn gauge_get(&self, name: &str) -> f64 {
        // lint:allow(panic-path): gauge_index stores indices this registry interned; the two grow in lockstep
        self.gauge_index.get(name).map_or(0.0, |&i| self.gauges[i as usize])
    }

    /// Intern a histogram name into a handle (idempotent).
    pub fn histo(&mut self, name: &str) -> HistoId {
        if let Some(&i) = self.histo_index.get(name) {
            return HistoId(i);
        }
        let i = self.histos.len() as u32;
        self.histo_index.insert(name.to_string(), i);
        self.histos.push(LogHistogram::new());
        self.histo_names.push(name.to_string());
        HistoId(i)
    }

    /// Record into a histogram by handle.
    #[inline]
    pub fn record(&mut self, id: HistoId, v: f64) {
        self.histos[id.0 as usize].record(v);
    }

    /// Borrow a histogram by handle.
    pub fn histo_ref(&self, id: HistoId) -> &LogHistogram {
        &self.histos[id.0 as usize]
    }

    /// Merge a whole histogram into the one behind `id`, bucket-wise.
    pub fn merge_histo(&mut self, id: HistoId, other: &LogHistogram) {
        // lint:allow(panic-path): HistoId handles are only minted by histo() after pushing the slot; typed-handle invariant
        self.histos[id.0 as usize].merge(other);
    }

    /// Borrow a histogram by name, if interned.
    pub fn histo_get(&self, name: &str) -> Option<&LogHistogram> {
        self.histo_index.get(name).map(|&i| &self.histos[i as usize])
    }

    /// Counter `(name, value)` pairs in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> + '_ {
        // lint:allow(panic-path): counter_index stores indices this registry interned; the two grow in lockstep
        self.counter_index.iter().map(|(k, &i)| (k.as_str(), self.counters[i as usize]))
    }

    /// Counter pairs under `prefix.` with the prefix stripped, in name
    /// order (what [`StatSet`]'s `Debug` prints).
    pub fn counters_under<'a>(
        &'a self,
        prefix: &'a str,
    ) -> impl Iterator<Item = (&'a str, u64)> + 'a {
        self.counters().filter_map(move |(name, v)| {
            if prefix.is_empty() {
                return Some((name, v));
            }
            name.strip_prefix(prefix).and_then(|rest| rest.strip_prefix('.')).map(|n| (n, v))
        })
    }

    /// Gauge `(name, value)` pairs in name order.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, f64)> + '_ {
        // lint:allow(panic-path): gauge_index stores indices this registry interned; the two grow in lockstep
        self.gauge_index.iter().map(|(k, &i)| (k.as_str(), self.gauges[i as usize]))
    }

    /// Histogram `(name, histogram)` pairs in name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &LogHistogram)> + '_ {
        // lint:allow(panic-path): histo_index stores indices this registry interned; the two grow in lockstep
        self.histo_index.iter().map(|(k, &i)| (k.as_str(), &self.histos[i as usize]))
    }

    /// Merge another registry into this one: counters sum, gauges take
    /// the other's value (latest wins), histograms merge bucket-wise.
    pub fn merge(&mut self, other: &Registry) {
        for (name, v) in other.counters() {
            let id = self.counter(name);
            self.add(id, v);
        }
        for (name, v) in other.gauges() {
            let id = self.gauge(name);
            self.set_gauge(id, v);
        }
        let pairs: Vec<(String, LogHistogram)> =
            other.histograms().map(|(n, h)| (n.to_string(), h.clone())).collect();
        for (name, h) in pairs {
            let id = self.histo(&name);
            self.histos[id.0 as usize].merge(&h);
        }
    }
}

/// A cloneable, thread-shareable handle to one [`Registry`].
#[derive(Debug, Clone, Default)]
pub struct SharedRegistry(Arc<Mutex<Registry>>);

impl SharedRegistry {
    /// A fresh shared registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Run `f` with the registry locked.
    pub fn with<T>(&self, f: impl FnOnce(&mut Registry) -> T) -> T {
        f(&mut self.0.lock())
    }

    /// Read a counter by full name.
    pub fn counter_get(&self, name: &str) -> u64 {
        self.0.lock().counter_get(name)
    }

    /// Counter snapshot in name order.
    pub fn counter_snapshot(&self) -> Vec<(String, u64)> {
        self.0.lock().counters().map(|(n, v)| (n.to_string(), v)).collect()
    }

    /// True when two handles share one registry.
    pub fn same_as(&self, other: &SharedRegistry) -> bool {
        Arc::ptr_eq(&self.0, &other.0)
    }
}

/// A component-scoped view of a [`SharedRegistry`]: the drop-in for the
/// ad-hoc `Counters` fields on `Network`, `ReliableTransport`, and
/// `ReliableBroker`. Keeps the `incr`/`add`/`get` surface and a
/// deterministic `Debug`, but the values live under
/// `<prefix>.<name>` in the registry, so components sharing one
/// registry report through one snapshot — no hand-merging, no double
/// counting across crash-epoch endpoint resets.
pub struct StatSet {
    prefix: &'static str,
    registry: SharedRegistry,
    /// Leaf-name → interned handle, cached per component.
    ids: FastMap<&'static str, CounterId>,
    /// Leaf-name → interned gauge handle.
    gauge_ids: FastMap<&'static str, GaugeId>,
    /// Leaf-name → interned histogram handle.
    histo_ids: FastMap<&'static str, HistoId>,
}

impl Default for StatSet {
    fn default() -> Self {
        StatSet::new("")
    }
}

impl StatSet {
    /// A stat set over its own private registry, namespaced by `prefix`
    /// (e.g. `"net.transport"`).
    pub fn new(prefix: &'static str) -> Self {
        StatSet {
            prefix,
            registry: SharedRegistry::new(),
            ids: FastMap::default(),
            gauge_ids: FastMap::default(),
            histo_ids: FastMap::default(),
        }
    }

    /// A stat set writing into an existing shared registry.
    pub fn in_registry(prefix: &'static str, registry: &SharedRegistry) -> Self {
        StatSet {
            prefix,
            registry: registry.clone(),
            ids: FastMap::default(),
            gauge_ids: FastMap::default(),
            histo_ids: FastMap::default(),
        }
    }

    /// The namespace prefix.
    pub fn prefix(&self) -> &'static str {
        self.prefix
    }

    /// The backing registry handle.
    pub fn registry(&self) -> &SharedRegistry {
        &self.registry
    }

    /// Re-home this stat set onto `registry`, carrying current values
    /// over (so attaching after the fact loses nothing).
    pub fn attach(&mut self, registry: &SharedRegistry) {
        if self.registry.same_as(registry) {
            return;
        }
        let moved: Vec<(String, u64)> = self
            .registry
            .with(|r| r.counters().map(|(n, v)| (n.to_string(), v)).collect());
        let moved_gauges: Vec<(String, f64)> =
            self.registry.with(|r| r.gauges().map(|(n, v)| (n.to_string(), v)).collect());
        let moved_histos: Vec<(String, LogHistogram)> =
            self.registry.with(|r| r.histograms().map(|(n, h)| (n.to_string(), h.clone())).collect());
        registry.with(|r| {
            for (name, v) in moved {
                let id = r.counter(&name);
                r.add(id, v);
            }
            for (name, v) in moved_gauges {
                let id = r.gauge(&name);
                r.set_gauge(id, v);
            }
            for (name, h) in moved_histos {
                let id = r.histo(&name);
                r.merge_histo(id, &h);
            }
        });
        self.registry = registry.clone();
        self.ids.clear();
        self.gauge_ids.clear();
        self.histo_ids.clear();
    }

    fn full_name(&self, name: &str) -> String {
        if self.prefix.is_empty() {
            name.to_string()
        } else {
            format!("{}.{}", self.prefix, name)
        }
    }

    fn id(&mut self, name: &'static str) -> CounterId {
        if let Some(&id) = self.ids.get(name) {
            return id;
        }
        let full = self.full_name(name);
        let id = self.registry.with(|r| r.counter(&full));
        self.ids.insert(name, id);
        id
    }

    /// Add `delta` to counter `name` (created at zero on first use).
    #[inline]
    pub fn add(&mut self, name: &'static str, delta: u64) {
        let id = self.id(name);
        self.registry.with(|r| r.add(id, delta));
    }

    /// Increment counter `name` by one.
    #[inline]
    pub fn incr(&mut self, name: &'static str) {
        self.add(name, 1);
    }

    /// Read counter `name` (0 if never touched).
    pub fn get(&self, name: &str) -> u64 {
        self.registry.counter_get(&self.full_name(name))
    }

    fn gauge_id(&mut self, name: &'static str) -> GaugeId {
        if let Some(&id) = self.gauge_ids.get(name) {
            return id;
        }
        let full = self.full_name(name);
        let id = self.registry.with(|r| r.gauge(&full));
        self.gauge_ids.insert(name, id);
        id
    }

    /// Set gauge `name` (created at zero on first use).
    #[inline]
    pub fn set_gauge(&mut self, name: &'static str, v: f64) {
        let id = self.gauge_id(name);
        self.registry.with(|r| r.set_gauge(id, v));
    }

    /// Read gauge `name` (0 if never touched).
    pub fn gauge(&self, name: &str) -> f64 {
        self.registry.with(|r| r.gauge_get(&self.full_name(name)))
    }

    fn histo_id(&mut self, name: &'static str) -> HistoId {
        if let Some(&id) = self.histo_ids.get(name) {
            return id;
        }
        let full = self.full_name(name);
        let id = self.registry.with(|r| r.histo(&full));
        self.histo_ids.insert(name, id);
        id
    }

    /// Record one sample into histogram `name` (created on first use).
    #[inline]
    pub fn observe(&mut self, name: &'static str, v: f64) {
        let id = self.histo_id(name);
        self.registry.with(|r| r.record(id, v));
    }

    /// Clone of histogram `name`, if ever observed.
    pub fn histo_snapshot(&self, name: &str) -> Option<LogHistogram> {
        self.registry.with(|r| r.histo_get(&self.full_name(name)).cloned())
    }

    /// Snapshot of this component's counters (prefix stripped), in name
    /// order.
    pub fn snapshot(&self) -> Vec<(String, u64)> {
        self.registry
            .with(|r| r.counters_under(self.prefix).map(|(n, v)| (n.to_string(), v)).collect())
    }
}

impl fmt::Debug for StatSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "StatSet({})", self)
    }
}

impl fmt::Display for StatSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (k, v) in self.snapshot() {
            if !first {
                write!(f, " ")?;
            }
            write!(f, "{k}={v}")?;
            first = false;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_histogram_tracks_exact_aggregates() {
        let mut h = LogHistogram::new();
        for v in [1.0, 2.0, 4.0, 8.0] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 15.0);
        assert_eq!(h.mean(), 3.75);
        assert_eq!(h.min(), 1.0);
        assert_eq!(h.max(), 8.0);
        assert!(!h.is_empty());
    }

    #[test]
    fn log_histogram_quantiles_bracket_the_data() {
        let mut h = LogHistogram::new();
        for i in 1..=1000 {
            h.record(i as f64);
        }
        let p50 = h.quantile(0.5);
        let p99 = h.quantile(0.99);
        // Power-of-two buckets: estimates are within one bucket of truth
        // and clamped to the observed range.
        assert!((250.0..=1000.0).contains(&p50), "p50 {p50}");
        assert!(p99 >= p50 && p99 <= 1000.0, "p99 {p99}");
        assert_eq!(h.quantile(0.0).max(1.0), 1.0);
        assert_eq!(h.quantile(1.0), 1000.0);
    }

    #[test]
    fn log_histogram_empty_and_underflow() {
        let h = LogHistogram::new();
        assert_eq!(h.quantile(0.5), 0.0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), 0.0);
        assert_eq!(h.max(), 0.0);
        let mut h = LogHistogram::new();
        h.record(0.0);
        h.record(-3.0);
        assert_eq!(h.count(), 2);
        assert_eq!(h.min(), -3.0);
    }

    #[test]
    fn log_histogram_merge_is_bucketwise() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        for i in 0..100 {
            a.record(i as f64 + 1.0);
            b.record((i as f64 + 1.0) * 1000.0);
        }
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.count(), 200);
        assert_eq!(merged.min(), 1.0);
        assert_eq!(merged.max(), 100_000.0);
        assert!((merged.sum() - (a.sum() + b.sum())).abs() < 1e-9);
    }

    #[test]
    fn registry_handles_are_o1_and_idempotent() {
        let mut r = Registry::new();
        let c1 = r.counter("net.transport.sent");
        let c2 = r.counter("net.transport.sent");
        assert_eq!(c1, c2);
        r.incr(c1);
        r.add(c2, 4);
        assert_eq!(r.counter_value(c1), 5);
        assert_eq!(r.counter_get("net.transport.sent"), 5);
        assert_eq!(r.counter_get("missing"), 0);

        let g = r.gauge("core.engine.live");
        r.set_gauge(g, 42.0);
        assert_eq!(r.gauge_value(g), 42.0);
        assert_eq!(r.gauge_get("core.engine.live"), 42.0);

        let h = r.histo("storage.wal.batch_bytes");
        r.record(h, 128.0);
        assert_eq!(r.histo_ref(h).count(), 1);
        assert!(r.histo_get("storage.wal.batch_bytes").is_some());
    }

    #[test]
    fn registry_iteration_is_name_sorted() {
        let mut r = Registry::new();
        r.counter("z.last");
        r.counter("a.first");
        r.counter("m.mid");
        let names: Vec<&str> = r.counters().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["a.first", "m.mid", "z.last"]);
    }

    #[test]
    fn registry_merge_sums_counters_and_merges_histos() {
        let mut a = Registry::new();
        let mut b = Registry::new();
        let ca = a.counter("x");
        a.add(ca, 3);
        let cb = b.counter("x");
        b.add(cb, 4);
        let cy = b.counter("y");
        b.incr(cy);
        let ha = a.histo("lat");
        a.record(ha, 1.0);
        let hb = b.histo("lat");
        b.record(hb, 2.0);
        a.merge(&b);
        assert_eq!(a.counter_get("x"), 7);
        assert_eq!(a.counter_get("y"), 1);
        assert_eq!(a.histo_get("lat").unwrap().count(), 2);
    }

    #[test]
    fn statset_is_counters_compatible() {
        let mut s = StatSet::new("net.test");
        s.incr("sent");
        s.add("sent", 2);
        s.add("bytes", 100);
        assert_eq!(s.get("sent"), 3);
        assert_eq!(s.get("missing"), 0);
        assert_eq!(s.to_string(), "bytes=100 sent=3");
        // Debug is deterministic (the fault harness hashes it).
        assert_eq!(format!("{s:?}"), "StatSet(bytes=100 sent=3)");
    }

    #[test]
    fn statsets_consolidate_into_one_registry() {
        let reg = SharedRegistry::new();
        let mut net = StatSet::in_registry("net.network", &reg);
        let mut tx = StatSet::in_registry("net.transport", &reg);
        net.incr("msgs_sent");
        tx.incr("sent");
        tx.incr("endpoint_resets"); // a crash-epoch reset…
        net.incr("faults_node_crash"); // …and the fault layer's view of it
        let snap = reg.counter_snapshot();
        let names: Vec<&str> = snap.iter().map(|(n, _)| n.as_str()).collect();
        // One namespaced counter each: nothing is counted twice.
        assert_eq!(
            names,
            vec![
                "net.network.faults_node_crash",
                "net.network.msgs_sent",
                "net.transport.endpoint_resets",
                "net.transport.sent"
            ]
        );
        assert!(snap.iter().all(|(_, v)| *v == 1));
    }

    #[test]
    fn statset_gauges_and_histos() {
        let reg = SharedRegistry::new();
        let mut s = StatSet::in_registry("raft.test", &reg);
        s.set_gauge("commit_lag", 7.0);
        assert_eq!(s.gauge("commit_lag"), 7.0);
        s.observe("election_ms", 120.0);
        s.observe("election_ms", 240.0);
        let h = s.histo_snapshot("election_ms").unwrap();
        assert_eq!(h.count(), 2);
        assert_eq!(reg.with(|r| r.gauge_get("raft.test.commit_lag")), 7.0);
        assert!(reg.with(|r| r.histo_get("raft.test.election_ms").is_some()));
    }

    #[test]
    fn statset_attach_carries_gauges_and_histos() {
        let mut s = StatSet::new("raft.test");
        s.set_gauge("term", 3.0);
        s.observe("lat", 8.0);
        let reg = SharedRegistry::new();
        s.attach(&reg);
        assert_eq!(reg.with(|r| r.gauge_get("raft.test.term")), 3.0);
        assert_eq!(reg.with(|r| r.histo_get("raft.test.lat").map(|h| h.count())), Some(1));
        s.observe("lat", 16.0);
        assert_eq!(reg.with(|r| r.histo_get("raft.test.lat").map(|h| h.count())), Some(2));
    }

    #[test]
    fn statset_attach_carries_values_over() {
        let mut s = StatSet::new("net.t");
        s.add("sent", 9);
        let reg = SharedRegistry::new();
        s.attach(&reg);
        s.incr("sent");
        assert_eq!(s.get("sent"), 10);
        assert_eq!(reg.counter_get("net.t.sent"), 10);
        // Re-attaching to the same registry is a no-op.
        s.attach(&reg);
        assert_eq!(s.get("sent"), 10);
    }
}
