//! Sliding-window aggregation over a [`Registry`] snapshot stream.
//!
//! The registry's counters and histograms are *cumulative*: perfect for
//! totals, useless for "is the error rate elevated *right now*". This
//! module turns cumulative metrics into windowed ones: a
//! [`MetricWindows`] is rolled once per sim tick against a registry and
//! keeps a fixed ring of per-tick deltas — counter increments, histogram
//! bucket increments, gauge samples — so any suffix window of up to
//! `len` ticks can be queried in O(window) time with memory bounded by
//! `names × len`, never by update volume.
//!
//! Determinism: everything here is integer bucket arithmetic plus IEEE
//! divisions of integers, driven by the sim clock. Two same-seed runs
//! roll identical registries and therefore produce identical windowed
//! values; the SLO layer (`crate::slo`) builds its reproducible alert
//! log on top of that.
//!
//! Merging: [`MetricWindows::merge_from`] mirrors [`Registry::merge`]
//! — counters and histogram buckets sum slot-wise, gauges take the
//! other side's value (latest wins). For windows of the same length
//! rolled in lockstep (one `roll` per sim tick on every shard), merging
//! windows commutes with merging registries: `window(merge(r1, r2)) ≡
//! merge(window(r1), window(r2))` — property-tested in
//! `tests/window_merge.rs`.
//!
//! This file is in the `panic-path` lint scope: no unwraps, no `[]`
//! indexing — a malformed query degrades to zero, it never panics.

use crate::registry::{LogHistogram, Registry, LOG_BUCKETS};
use std::collections::BTreeMap;

/// Per-counter state: last seen cumulative total plus a ring of
/// per-tick deltas.
#[derive(Debug, Clone)]
struct CounterTrack {
    total: u64,
    ring: Vec<u64>,
}

/// Per-histogram state: cumulative bucket counts plus flattened rings
/// of per-tick bucket/count/sum deltas (slot `s` owns
/// `ring[s*LOG_BUCKETS .. (s+1)*LOG_BUCKETS]`).
#[derive(Debug, Clone)]
struct HistoTrack {
    cum_buckets: Vec<u64>,
    cum_count: u64,
    cum_sum: f64,
    ring: Vec<u64>,
    counts: Vec<u64>,
    sums: Vec<f64>,
}

/// Per-gauge state: the latest value plus a ring of per-tick samples
/// (carried forward on ticks where the gauge is not written).
#[derive(Debug, Clone)]
struct GaugeTrack {
    last: f64,
    ring: Vec<f64>,
}

/// Aggregated view of one histogram over a window of recent ticks:
/// merged bucket counts plus count/sum. Quantiles interpolate inside
/// the power-of-two buckets (no exact min/max is available for a
/// window, so unlike [`LogHistogram::quantile`] estimates are clamped
/// only to bucket bounds).
#[derive(Debug, Clone, Default)]
pub struct WindowHisto {
    buckets: Vec<u64>,
    count: u64,
    sum: f64,
}

impl WindowHisto {
    /// An empty window view (reusable across fills — see
    /// [`MetricWindows::histo_window_into`]).
    pub fn new() -> Self {
        Self::default()
    }

    fn reset(&mut self) {
        self.buckets.clear();
        self.buckets.resize(LOG_BUCKETS, 0);
        self.count = 0;
        self.sum = 0.0;
    }

    fn add_chunk(&mut self, chunk: &[u64], count: u64, sum: f64) {
        for (a, b) in self.buckets.iter_mut().zip(chunk.iter()) {
            *a += b;
        }
        self.count += count;
        self.sum += sum;
    }

    /// Number of samples in the window.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of samples in the window.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean sample in the window (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Approximate quantile `q in [0,1]` from the windowed buckets:
    /// nearest-rank to a bucket, then linear interpolation inside it.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            if b == 0 {
                continue;
            }
            if seen + b >= rank {
                let lo = LogHistogram::bucket_floor(i);
                let hi = LogHistogram::bucket_floor(i + 1).max(lo);
                let frac = (rank - seen) as f64 / b as f64;
                return lo + (hi - lo) * frac;
            }
            seen += b;
        }
        0.0
    }

    /// Samples whose bucket lower bound is at or above `threshold` —
    /// i.e. samples *provably* ≥ threshold. The threshold is
    /// effectively rounded up to a bucket boundary; SLO latency
    /// objectives should pick power-of-two thresholds to make the
    /// boundary exact.
    pub fn at_or_above(&self, threshold: f64) -> u64 {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(i, _)| LogHistogram::bucket_floor(*i) >= threshold)
            .map(|(_, &b)| b)
            .sum()
    }
}

/// Sliding-window aggregation over a registry: a fixed ring of `len`
/// per-tick buckets per metric. Roll once per sim tick with
/// [`MetricWindows::roll`], then query any suffix window of `k ≤ len`
/// ticks.
#[derive(Debug, Clone)]
pub struct MetricWindows {
    len: usize,
    ticks: u64,
    counters: BTreeMap<String, CounterTrack>,
    histos: BTreeMap<String, HistoTrack>,
    gauges: BTreeMap<String, GaugeTrack>,
}

impl MetricWindows {
    /// A window ring of `len` ticks (clamped to at least 1).
    pub fn new(len: usize) -> Self {
        MetricWindows {
            len: len.max(1),
            ticks: 0,
            counters: BTreeMap::new(),
            histos: BTreeMap::new(),
            gauges: BTreeMap::new(),
        }
    }

    /// Ring length in ticks.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True before the first roll.
    pub fn is_empty(&self) -> bool {
        self.ticks == 0
    }

    /// Number of ticks rolled so far.
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    /// Ticks of data a `k`-tick query actually covers (less than `k`
    /// until the ring has filled).
    pub fn window_ticks(&self, k: usize) -> u64 {
        k.max(1).min(self.valid()) as u64
    }

    fn valid(&self) -> usize {
        self.ticks.min(self.len as u64) as usize
    }

    /// Ring slot of the `j`-th most recent tick (0 = the last rolled
    /// tick); `None` when fewer than `j + 1` ticks exist.
    fn slot_back(&self, j: usize) -> Option<usize> {
        let t = self.ticks.checked_sub(1 + j as u64)?;
        Some((t % self.len as u64) as usize)
    }

    /// Ingest one tick: diff the registry's cumulative state against
    /// the last roll and store the deltas in this tick's ring slot.
    pub fn roll(&mut self, reg: &Registry) {
        let slot = (self.ticks % self.len as u64) as usize;
        // Zero this tick's slot in every known track first: a metric
        // the registry no longer moves still owns a stale slot from
        // `len` ticks ago, and a gauge carries its last value forward.
        for t in self.counters.values_mut() {
            if let Some(s) = t.ring.get_mut(slot) {
                *s = 0;
            }
        }
        for t in self.histos.values_mut() {
            let start = slot * LOG_BUCKETS;
            if let Some(chunk) = t.ring.get_mut(start..start + LOG_BUCKETS) {
                for b in chunk {
                    *b = 0;
                }
            }
            if let Some(c) = t.counts.get_mut(slot) {
                *c = 0;
            }
            if let Some(s) = t.sums.get_mut(slot) {
                *s = 0.0;
            }
        }
        for t in self.gauges.values_mut() {
            let last = t.last;
            if let Some(s) = t.ring.get_mut(slot) {
                *s = last;
            }
        }
        for (name, v) in reg.counters() {
            match self.counters.get_mut(name) {
                Some(t) => {
                    let d = v.saturating_sub(t.total);
                    t.total = v;
                    if let Some(s) = t.ring.get_mut(slot) {
                        *s = d;
                    }
                }
                None => {
                    // First sighting: the whole total is this tick's delta.
                    let mut t = CounterTrack { total: v, ring: vec![0; self.len] };
                    if let Some(s) = t.ring.get_mut(slot) {
                        *s = v;
                    }
                    self.counters.insert(name.to_string(), t);
                }
            }
        }
        for (name, h) in reg.histograms() {
            match self.histos.get_mut(name) {
                Some(t) => {
                    let start = slot * LOG_BUCKETS;
                    if let Some(chunk) = t.ring.get_mut(start..start + LOG_BUCKETS) {
                        for ((d, cur), cum) in chunk
                            .iter_mut()
                            .zip(h.bucket_counts().iter())
                            .zip(t.cum_buckets.iter_mut())
                        {
                            *d = cur.saturating_sub(*cum);
                            *cum = *cur;
                        }
                    }
                    let dc = h.count().saturating_sub(t.cum_count);
                    let ds = h.sum() - t.cum_sum;
                    t.cum_count = h.count();
                    t.cum_sum = h.sum();
                    if let Some(c) = t.counts.get_mut(slot) {
                        *c = dc;
                    }
                    if let Some(s) = t.sums.get_mut(slot) {
                        *s = ds;
                    }
                }
                None => {
                    let mut t = HistoTrack {
                        cum_buckets: h.bucket_counts().to_vec(),
                        cum_count: h.count(),
                        cum_sum: h.sum(),
                        ring: vec![0; self.len * LOG_BUCKETS],
                        counts: vec![0; self.len],
                        sums: vec![0.0; self.len],
                    };
                    let start = slot * LOG_BUCKETS;
                    if let Some(chunk) = t.ring.get_mut(start..start + LOG_BUCKETS) {
                        for (d, cur) in chunk.iter_mut().zip(h.bucket_counts().iter()) {
                            *d = *cur;
                        }
                    }
                    if let Some(c) = t.counts.get_mut(slot) {
                        *c = h.count();
                    }
                    if let Some(s) = t.sums.get_mut(slot) {
                        *s = h.sum();
                    }
                    self.histos.insert(name.to_string(), t);
                }
            }
        }
        for (name, v) in reg.gauges() {
            match self.gauges.get_mut(name) {
                Some(t) => {
                    t.last = v;
                    if let Some(s) = t.ring.get_mut(slot) {
                        *s = v;
                    }
                }
                None => {
                    let mut t = GaugeTrack { last: v, ring: vec![0.0; self.len] };
                    if let Some(s) = t.ring.get_mut(slot) {
                        *s = v;
                    }
                    self.gauges.insert(name.to_string(), t);
                }
            }
        }
        self.ticks += 1;
    }

    /// Sum of counter `name`'s increments over the last `k` ticks
    /// (0 for an unknown counter).
    pub fn counter_delta(&self, name: &str, k: usize) -> u64 {
        let Some(t) = self.counters.get(name) else {
            return 0;
        };
        let n = k.max(1).min(self.valid());
        let mut sum = 0u64;
        for j in 0..n {
            if let Some(slot) = self.slot_back(j) {
                sum += t.ring.get(slot).copied().unwrap_or(0);
            }
        }
        sum
    }

    /// Per-tick rate of counter `name` over the last `k` ticks.
    pub fn rate(&self, name: &str, k: usize) -> f64 {
        let ticks = self.window_ticks(k);
        if ticks == 0 {
            return 0.0;
        }
        self.counter_delta(name, k) as f64 / ticks as f64
    }

    /// Fill `out` with histogram `name`'s windowed view over the last
    /// `k` ticks, reusing `out`'s buffers. Returns false (and leaves
    /// `out` empty) for an unknown histogram.
    pub fn histo_window_into(&self, name: &str, k: usize, out: &mut WindowHisto) -> bool {
        out.reset();
        let Some(t) = self.histos.get(name) else {
            return false;
        };
        let n = k.max(1).min(self.valid());
        for j in 0..n {
            if let Some(slot) = self.slot_back(j) {
                let start = slot * LOG_BUCKETS;
                if let Some(chunk) = t.ring.get(start..start + LOG_BUCKETS) {
                    out.add_chunk(
                        chunk,
                        t.counts.get(slot).copied().unwrap_or(0),
                        t.sums.get(slot).copied().unwrap_or(0.0),
                    );
                }
            }
        }
        true
    }

    /// Allocating convenience form of [`Self::histo_window_into`].
    pub fn histo_window(&self, name: &str, k: usize) -> WindowHisto {
        let mut out = WindowHisto::new();
        self.histo_window_into(name, k, &mut out);
        out
    }

    /// Latest value of gauge `name` (0 if unknown).
    pub fn gauge_last(&self, name: &str) -> f64 {
        self.gauges.get(name).map_or(0.0, |t| t.last)
    }

    /// Ticks among the last `k` where gauge `name` exceeded
    /// `threshold`.
    pub fn gauge_ticks_above(&self, name: &str, threshold: f64, k: usize) -> u64 {
        let Some(t) = self.gauges.get(name) else {
            return 0;
        };
        let n = k.max(1).min(self.valid());
        let mut above = 0u64;
        for j in 0..n {
            if let Some(slot) = self.slot_back(j) {
                if t.ring.get(slot).copied().unwrap_or(0.0) > threshold {
                    above += 1;
                }
            }
        }
        above
    }

    /// Counter names seen so far, sorted.
    pub fn counter_names(&self) -> impl Iterator<Item = &str> + '_ {
        self.counters.keys().map(String::as_str)
    }

    /// Histogram names seen so far, sorted.
    pub fn histo_names(&self) -> impl Iterator<Item = &str> + '_ {
        self.histos.keys().map(String::as_str)
    }

    /// Gauge names seen so far, sorted.
    pub fn gauge_names(&self) -> impl Iterator<Item = &str> + '_ {
        self.gauges.keys().map(String::as_str)
    }

    /// Visit every counter with a non-zero delta on the most recent
    /// tick, in name order (the flight recorder's per-tick evidence).
    pub fn for_each_last_counter_delta(&self, mut f: impl FnMut(&str, u64)) {
        let Some(slot) = self.slot_back(0) else {
            return;
        };
        for (name, t) in &self.counters {
            let d = t.ring.get(slot).copied().unwrap_or(0);
            if d > 0 {
                f(name, d);
            }
        }
    }

    /// Visit every gauge's latest value, in name order.
    pub fn for_each_gauge(&self, mut f: impl FnMut(&str, f64)) {
        for (name, t) in &self.gauges {
            f(name, t.last);
        }
    }

    /// Merge another window into this one, mirroring
    /// [`Registry::merge`]: counters and histogram buckets sum
    /// slot-wise, gauges take `other`'s values. Both windows must have
    /// the same ring length and be rolled in lockstep (same tick
    /// count) for slot-exact alignment; slots are paired by recency.
    /// Merging into a freshly-constructed window copies `other`.
    pub fn merge_from(&mut self, other: &MetricWindows) {
        if self.ticks == 0 {
            *self = other.clone();
            return;
        }
        let n = self.valid().min(other.valid());
        for (name, ot) in &other.counters {
            let st = self
                .counters
                .entry(name.clone())
                .or_insert_with(|| CounterTrack { total: 0, ring: vec![0; self.len] });
            st.total += ot.total;
            for j in 0..n {
                let (Some(ss), Some(os)) = (slot_back_of(self.ticks, self.len, j), slot_back_of(other.ticks, other.len, j)) else {
                    continue;
                };
                let d = ot.ring.get(os).copied().unwrap_or(0);
                if let Some(s) = st.ring.get_mut(ss) {
                    *s += d;
                }
            }
        }
        for (name, ot) in &other.histos {
            let len = self.len;
            let st = self.histos.entry(name.clone()).or_insert_with(|| HistoTrack {
                cum_buckets: vec![0; LOG_BUCKETS],
                cum_count: 0,
                cum_sum: 0.0,
                ring: vec![0; len * LOG_BUCKETS],
                counts: vec![0; len],
                sums: vec![0.0; len],
            });
            for (a, b) in st.cum_buckets.iter_mut().zip(ot.cum_buckets.iter()) {
                *a += b;
            }
            st.cum_count += ot.cum_count;
            st.cum_sum += ot.cum_sum;
            for j in 0..n {
                let (Some(ss), Some(os)) = (slot_back_of(self.ticks, self.len, j), slot_back_of(other.ticks, other.len, j)) else {
                    continue;
                };
                let (sstart, ostart) = (ss * LOG_BUCKETS, os * LOG_BUCKETS);
                if let (Some(schunk), Some(ochunk)) = (
                    st.ring.get_mut(sstart..sstart + LOG_BUCKETS),
                    ot.ring.get(ostart..ostart + LOG_BUCKETS),
                ) {
                    for (a, b) in schunk.iter_mut().zip(ochunk.iter()) {
                        *a += b;
                    }
                }
                let dc = ot.counts.get(os).copied().unwrap_or(0);
                if let Some(c) = st.counts.get_mut(ss) {
                    *c += dc;
                }
                let dsum = ot.sums.get(os).copied().unwrap_or(0.0);
                if let Some(s) = st.sums.get_mut(ss) {
                    *s += dsum;
                }
            }
        }
        for (name, ot) in &other.gauges {
            let st = self
                .gauges
                .entry(name.clone())
                .or_insert_with(|| GaugeTrack { last: 0.0, ring: vec![0.0; self.len] });
            st.last = ot.last;
            for j in 0..n {
                let (Some(ss), Some(os)) = (slot_back_of(self.ticks, self.len, j), slot_back_of(other.ticks, other.len, j)) else {
                    continue;
                };
                let v = ot.ring.get(os).copied().unwrap_or(0.0);
                if let Some(s) = st.ring.get_mut(ss) {
                    *s = v;
                }
            }
        }
    }
}

/// Free-standing form of [`MetricWindows::slot_back`], usable while a
/// track is mutably borrowed.
fn slot_back_of(ticks: u64, len: usize, j: usize) -> Option<usize> {
    let t = ticks.checked_sub(1 + j as u64)?;
    Some((t % len as u64) as usize)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reg_with(counter: u64) -> Registry {
        let mut r = Registry::new();
        let c = r.counter("t.c.x");
        r.add(c, counter);
        r
    }

    #[test]
    fn windowed_counter_rates_slide() {
        let mut w = MetricWindows::new(4);
        let mut r = Registry::new();
        let c = r.counter("t.c.x");
        for i in 0..10u64 {
            r.add(c, i); // deltas 0,1,2,…,9
            w.roll(&r);
        }
        // Last 4 deltas: 6+7+8+9 = 30.
        assert_eq!(w.counter_delta("t.c.x", 4), 30);
        assert_eq!(w.counter_delta("t.c.x", 2), 17);
        assert_eq!(w.rate("t.c.x", 4), 30.0 / 4.0);
        // Ask for more than the ring holds: clamped to 4.
        assert_eq!(w.counter_delta("t.c.x", 100), 30);
        assert_eq!(w.window_ticks(100), 4);
    }

    #[test]
    fn first_sighting_counts_whole_total() {
        let mut w = MetricWindows::new(8);
        w.roll(&reg_with(5));
        assert_eq!(w.counter_delta("t.c.x", 8), 5);
        w.roll(&reg_with(7));
        assert_eq!(w.counter_delta("t.c.x", 8), 7);
        assert_eq!(w.counter_delta("t.c.x", 1), 2);
    }

    #[test]
    fn windowed_histogram_quantiles() {
        let mut w = MetricWindows::new(4);
        let mut r = Registry::new();
        let h = r.histo("t.h.lat");
        // Two ticks of fast samples, then two of slow ones.
        for _ in 0..2 {
            for _ in 0..100 {
                r.record(h, 1.0);
            }
            w.roll(&r);
        }
        for _ in 0..2 {
            for _ in 0..100 {
                r.record(h, 512.0);
            }
            w.roll(&r);
        }
        let last2 = w.histo_window("t.h.lat", 2);
        assert_eq!(last2.count(), 200);
        assert!(last2.quantile(0.5) >= 512.0, "{}", last2.quantile(0.5));
        assert_eq!(last2.at_or_above(512.0), 200);
        let all = w.histo_window("t.h.lat", 4);
        assert_eq!(all.count(), 400);
        assert_eq!(all.at_or_above(512.0), 200);
        // A window older than the ring: only the retained 4 ticks.
        assert!(w.histo_window("t.h.lat", 99).count() == 400);
    }

    #[test]
    fn gauges_carry_forward_and_count_above() {
        let mut w = MetricWindows::new(8);
        let mut r = Registry::new();
        let g = r.gauge("t.g.lag");
        r.set_gauge(g, 10.0);
        w.roll(&r);
        // Gauge not rewritten: carried forward.
        w.roll(&r);
        r.set_gauge(g, 0.0);
        w.roll(&r);
        assert_eq!(w.gauge_last("t.g.lag"), 0.0);
        assert_eq!(w.gauge_ticks_above("t.g.lag", 5.0, 8), 2);
        assert_eq!(w.gauge_ticks_above("t.g.lag", 5.0, 1), 0);
    }

    #[test]
    fn merge_matches_registry_merge() {
        // Roll two shards in lockstep, and a third window over the
        // merged registry; merged windows must agree with the window
        // of the merge.
        let mut wa = MetricWindows::new(4);
        let mut wb = MetricWindows::new(4);
        let mut wm = MetricWindows::new(4);
        let mut ra = Registry::new();
        let mut rb = Registry::new();
        let ca = ra.counter("t.c.x");
        let cb = rb.counter("t.c.x");
        let ha = ra.histo("t.h.l");
        let hb = rb.histo("t.h.l");
        for i in 0..6u64 {
            ra.add(ca, i);
            rb.add(cb, 2 * i);
            ra.record(ha, (i + 1) as f64);
            rb.record(hb, ((i + 1) * 100) as f64);
            wa.roll(&ra);
            wb.roll(&rb);
            let mut merged_reg = Registry::new();
            merged_reg.merge(&ra);
            merged_reg.merge(&rb);
            wm.roll(&merged_reg);
        }
        let mut combined = MetricWindows::new(4);
        combined.merge_from(&wa);
        combined.merge_from(&wb);
        for k in [1, 2, 4] {
            assert_eq!(combined.counter_delta("t.c.x", k), wm.counter_delta("t.c.x", k), "k={k}");
            let a = combined.histo_window("t.h.l", k);
            let b = wm.histo_window("t.h.l", k);
            assert_eq!(a.count(), b.count(), "k={k}");
            assert_eq!(a.quantile(0.5).to_bits(), b.quantile(0.5).to_bits(), "k={k}");
            assert_eq!(a.quantile(0.99).to_bits(), b.quantile(0.99).to_bits(), "k={k}");
        }
    }

    #[test]
    fn unknown_names_degrade_to_zero() {
        let w = MetricWindows::new(4);
        assert_eq!(w.counter_delta("no.such.counter", 4), 0);
        assert_eq!(w.rate("no.such.counter", 4), 0.0);
        assert_eq!(w.gauge_last("no.such.gauge"), 0.0);
        let mut out = WindowHisto::new();
        assert!(!w.histo_window_into("no.such.histo", 4, &mut out));
        assert_eq!(out.count(), 0);
        assert_eq!(out.quantile(0.5), 0.0);
    }
}
