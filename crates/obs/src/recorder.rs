//! Black-box flight recorder: the last `N` ticks of evidence, dumped
//! as a schema-versioned JSONL "debug bundle" when something goes
//! wrong.
//!
//! Counters tell you *that* the error budget burned; the recorder
//! tells you *what the system looked like while it burned*. A
//! [`FlightRecorder`] keeps a bounded ring of [`TickEvidence`] — the
//! per-tick metric deltas and gauge values extracted from
//! `crate::window`, the canonical alert lines from `crate::slo`, and
//! any component event-log lines fed in (raft leader changes, crash
//! epochs, recovery summaries). On a trigger — an SLO alert firing, an
//! invariant tripping, or a crash-recovery path running — [`dump`]
//! freezes the ring into a [`DebugBundle`] whose first line names the
//! [`BUNDLE_SCHEMA`].
//!
//! Determinism: evidence is sim-clock-stamped and name-sorted, so two
//! same-seed runs produce byte-identical bundles
//! ([`FlightRecorder::bundle_hash`] is CI-gated by E22). Memory is
//! bounded by `cap_ticks × per-tick line caps × bundle cap` — the
//! recorder can run armed forever.
//!
//! This file is in the `panic-path` lint scope: no unwraps, no `[]`
//! indexing.
//!
//! [`dump`]: FlightRecorder::dump

use crate::export::json_escape_into;
use mv_common::hash::fx_hash_one;
use std::collections::VecDeque;
use std::fmt::Write as _;

/// Schema tag on every bundle's header line. Bump on layout changes;
/// `bench_check` validates it.
pub const BUNDLE_SCHEMA: &str = "mv-debug-bundle/v1";

/// One tick's worth of evidence: metric deltas, gauge values, alert
/// lines, and component event-log lines.
#[derive(Debug, Clone, Default)]
pub struct TickEvidence {
    /// Sim timestamp of the tick, microseconds.
    pub at_us: u64,
    /// Counters that moved this tick: `(name, delta)`, name-sorted.
    pub counters: Vec<(String, u64)>,
    /// Gauge values as of this tick, name-sorted.
    pub gauges: Vec<(String, f64)>,
    /// Canonical alert lines emitted this tick (`crate::slo`).
    pub alerts: Vec<String>,
    /// Component event-log lines observed this tick.
    pub events: Vec<String>,
    /// Rendered span lines closed this tick (optional).
    pub spans: Vec<String>,
}

impl TickEvidence {
    /// Empty evidence stamped at `at_us`.
    pub fn at(at_us: u64) -> Self {
        TickEvidence { at_us, ..Default::default() }
    }
}

/// A frozen snapshot of the recorder's ring, rendered as JSONL.
#[derive(Debug, Clone)]
pub struct DebugBundle {
    /// Bundle sequence number within this recorder (0-based).
    pub seq: u64,
    /// Why the dump happened (e.g. `slo-fire:region.availability`,
    /// `invariant:divergence`, `recovery:n2`).
    pub reason: String,
    /// Sim timestamp of the trigger, microseconds.
    pub at_us: u64,
    /// The rendered bundle: one header line, then one line per
    /// buffered tick, oldest first.
    pub jsonl: String,
}

/// Bounded ring of recent evidence plus the bundles dumped so far.
#[derive(Debug)]
pub struct FlightRecorder {
    cap_ticks: usize,
    max_bundles: usize,
    max_lines: usize,
    ring: VecDeque<TickEvidence>,
    bundles: Vec<DebugBundle>,
    dropped_bundles: u64,
}

impl FlightRecorder {
    /// A recorder keeping the last `cap_ticks` ticks, at most 8
    /// bundles, and at most 64 lines per evidence category per tick.
    pub fn new(cap_ticks: usize) -> Self {
        Self::with_limits(cap_ticks, 8, 64)
    }

    /// Fully parameterised constructor (all caps clamped to ≥ 1).
    pub fn with_limits(cap_ticks: usize, max_bundles: usize, max_lines: usize) -> Self {
        FlightRecorder {
            cap_ticks: cap_ticks.max(1),
            max_bundles: max_bundles.max(1),
            max_lines: max_lines.max(1),
            ring: VecDeque::new(),
            bundles: Vec::new(),
            dropped_bundles: 0,
        }
    }

    /// Number of ticks currently buffered.
    pub fn ticks_buffered(&self) -> usize {
        self.ring.len()
    }

    /// Bundles dumped so far, oldest first.
    pub fn bundles(&self) -> &[DebugBundle] {
        &self.bundles
    }

    /// Dumps refused because the bundle cap was reached.
    pub fn dropped_bundles(&self) -> u64 {
        self.dropped_bundles
    }

    /// Append one tick of evidence, evicting the oldest tick when the
    /// ring is full. Over-long line lists are truncated with a
    /// `(+n more)` marker so memory stays bounded.
    pub fn push(&mut self, mut ev: TickEvidence) {
        truncate_lines(&mut ev.alerts, self.max_lines);
        truncate_lines(&mut ev.events, self.max_lines);
        truncate_lines(&mut ev.spans, self.max_lines);
        if self.ring.len() == self.cap_ticks {
            self.ring.pop_front();
        }
        self.ring.push_back(ev);
    }

    /// Freeze the ring into a bundle. Returns false (and counts a
    /// dropped bundle) once `max_bundles` have been dumped — an alert
    /// storm must not turn the recorder into the memory problem.
    pub fn dump(&mut self, reason: &str, at_us: u64) -> bool {
        if self.bundles.len() >= self.max_bundles {
            self.dropped_bundles += 1;
            return false;
        }
        let seq = self.bundles.len() as u64;
        let mut out = String::new();
        out.push_str("{\"schema\":\"");
        out.push_str(BUNDLE_SCHEMA);
        out.push_str("\",\"seq\":");
        let _ = write!(out, "{seq}");
        out.push_str(",\"reason\":\"");
        json_escape_into(&mut out, reason);
        out.push_str("\",\"at_us\":");
        let _ = write!(out, "{at_us}");
        out.push_str(",\"ticks\":");
        let _ = write!(out, "{}", self.ring.len());
        out.push_str("}\n");
        for ev in &self.ring {
            render_tick(&mut out, ev);
        }
        self.bundles.push(DebugBundle { seq, reason: reason.to_string(), at_us, jsonl: out });
        true
    }

    /// All bundles concatenated — the byte string E22's determinism
    /// gate compares across same-seed runs.
    pub fn bundle_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        for b in &self.bundles {
            out.extend_from_slice(b.jsonl.as_bytes());
        }
        out
    }

    /// Fingerprint of [`Self::bundle_bytes`].
    pub fn bundle_hash(&self) -> u64 {
        fx_hash_one(&self.bundle_bytes())
    }
}

fn truncate_lines(lines: &mut Vec<String>, cap: usize) {
    if lines.len() > cap {
        let extra = lines.len() - cap;
        lines.truncate(cap);
        lines.push(format!("(+{extra} more)"));
    }
}

fn render_tick(out: &mut String, ev: &TickEvidence) {
    out.push_str("{\"kind\":\"tick\",\"at_us\":");
    let _ = write!(out, "{}", ev.at_us);
    out.push_str(",\"counters\":{");
    for (i, (name, d)) in ev.counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        json_escape_into(out, name);
        out.push_str("\":");
        let _ = write!(out, "{d}");
    }
    out.push_str("},\"gauges\":{");
    for (i, (name, v)) in ev.gauges.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        json_escape_into(out, name);
        out.push_str("\":");
        let _ = write!(out, "{v}");
    }
    out.push('}');
    render_str_list(out, "alerts", &ev.alerts);
    render_str_list(out, "events", &ev.events);
    render_str_list(out, "spans", &ev.spans);
    out.push_str("}\n");
}

fn render_str_list(out: &mut String, key: &str, lines: &[String]) {
    out.push_str(",\"");
    out.push_str(key);
    out.push_str("\":[");
    for (i, line) in lines.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        json_escape_into(out, line);
        out.push('"');
    }
    out.push(']');
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tick(at_us: u64, counter: u64) -> TickEvidence {
        let mut ev = TickEvidence::at(at_us);
        ev.counters.push(("t.c.x".to_string(), counter));
        ev.gauges.push(("t.g.y".to_string(), 1.5));
        ev
    }

    #[test]
    fn ring_is_bounded_and_fifo() {
        let mut fr = FlightRecorder::new(3);
        for i in 0..5 {
            fr.push(tick(i * 1000, i));
        }
        assert_eq!(fr.ticks_buffered(), 3);
        assert!(fr.dump("test", 5000));
        let b = &fr.bundles()[0];
        // Oldest retained tick is #2.
        assert!(b.jsonl.contains("\"at_us\":2000"), "{}", b.jsonl);
        assert!(!b.jsonl.contains("\"at_us\":1000"));
        assert!(b.jsonl.starts_with("{\"schema\":\"mv-debug-bundle/v1\""));
        assert!(b.jsonl.contains("\"ticks\":3"));
    }

    #[test]
    fn bundle_cap_drops_excess_dumps() {
        let mut fr = FlightRecorder::with_limits(2, 2, 8);
        fr.push(tick(0, 1));
        assert!(fr.dump("a", 1));
        assert!(fr.dump("b", 2));
        assert!(!fr.dump("c", 3));
        assert_eq!(fr.bundles().len(), 2);
        assert_eq!(fr.dropped_bundles(), 1);
    }

    #[test]
    fn long_line_lists_truncate_with_marker() {
        let mut fr = FlightRecorder::with_limits(4, 4, 2);
        let mut ev = TickEvidence::at(0);
        ev.events = (0..5).map(|i| format!("event {i}")).collect();
        fr.push(ev);
        fr.dump("t", 0);
        let b = &fr.bundles()[0];
        assert!(b.jsonl.contains("(+3 more)"), "{}", b.jsonl);
        assert!(!b.jsonl.contains("event 4"));
    }

    #[test]
    fn bundles_hash_deterministically() {
        let build = || {
            let mut fr = FlightRecorder::new(4);
            fr.push(tick(1000, 7));
            fr.push(tick(2000, 9));
            fr.dump("slo-fire:x", 2000);
            fr
        };
        assert_eq!(build().bundle_hash(), build().bundle_hash());
        assert_eq!(build().bundle_bytes(), build().bundle_bytes());
    }

    #[test]
    fn escaping_survives_hostile_reasons() {
        let mut fr = FlightRecorder::new(1);
        fr.push(TickEvidence::at(0));
        fr.dump("quote\" and \\ backslash", 0);
        let b = &fr.bundles()[0];
        assert!(b.jsonl.contains("quote\\\" and \\\\ backslash"), "{}", b.jsonl);
    }
}
