//! Property harness for the sliding-window layer: windowing must
//! commute with the registry's shard merge, and burn-rate evaluation
//! must be order-independent across shard-merged windows.
//!
//! The platform's registries merge shard-wise (`Registry::merge`:
//! counters sum, histograms merge bucket-wise), and
//! `MetricWindows::merge_from` claims the windowed view commutes with
//! that merge when the rings are the same length and rolled in
//! lockstep. These properties pin the claim down over random op
//! sequences:
//!
//! * **merge-then-window ≡ window-then-merge** — rolling one window
//!   over a combined registry produces exactly the windowed deltas,
//!   rates, and histogram quantiles of merging the per-shard windows.
//! * **burn-rate order independence** — an `SloEngine` armed with
//!   counter and histogram objectives emits a byte-identical alert log
//!   whether shard windows merge left-into-right or right-into-left.
//!   (Gauge objectives are excluded by design: gauges merge
//!   latest-wins, which is order-sensitive — see `mv_obs::slo` docs.)

use mv_common::time::SimTime;
use mv_obs::registry::Registry;
use mv_obs::window::MetricWindows;
use mv_obs::{SloEngine, SloSpec};
use proptest::prelude::*;

/// One generated op: `(shard, kind, value)`. Kind 0/1 bump the error /
/// total counters, kind 2 observes `value` ms in the latency histogram.
type Op = (u8, u8, u16);

const WINDOW: usize = 8;

/// Apply `ops` tick-by-tick (chunks of `per_tick`) to two shard
/// registries and a combined registry, rolling all three windows in
/// lockstep. Returns `(shard_windows, combined_window, tick_count)`.
fn drive(ops: &[Op], per_tick: usize) -> ([MetricWindows; 2], MetricWindows, usize) {
    let mut shards = [Registry::default(), Registry::default()];
    let mut combined = Registry::default();
    let mut shard_windows = [MetricWindows::new(WINDOW), MetricWindows::new(WINDOW)];
    let mut combined_window = MetricWindows::new(WINDOW);
    let mut ticks = 0usize;
    for chunk in ops.chunks(per_tick.max(1)) {
        for &(shard, kind, value) in chunk {
            let shard = usize::from(shard) % 2;
            let regs: [&mut Registry; 2] = match shard {
                0 => [&mut shards[0], &mut combined],
                _ => [&mut shards[1], &mut combined],
            };
            for r in regs {
                match kind % 3 {
                    0 => {
                        let id = r.counter("t.c.err");
                        r.incr(id);
                    }
                    1 => {
                        let id = r.counter("t.c.total");
                        r.incr(id);
                    }
                    _ => {
                        let id = r.histo("t.h.ms");
                        r.record(id, f64::from(value) + 0.5);
                    }
                }
            }
        }
        for (w, r) in shard_windows.iter_mut().zip(shards.iter()) {
            w.roll(r);
        }
        combined_window.roll(&combined);
        ticks += 1;
    }
    (shard_windows, combined_window, ticks)
}

fn merged(a: &MetricWindows, b: &MetricWindows) -> MetricWindows {
    let mut m = a.clone();
    m.merge_from(b);
    m
}

/// The SLO set used for the order-independence property: counter and
/// histogram objectives only (gauges are order-sensitive by design).
fn armed_engine() -> SloEngine {
    let mut engine = SloEngine::new();
    engine.arm(
        SloSpec::availability("p.avail", "t.c.err", "t.c.total", 0.05)
            .windows(2, WINDOW)
            .burn(2.0, 1.0)
            .min_events(2),
    );
    engine.arm(
        SloSpec::latency("p.lat", "t.h.ms", 64.0, 0.10)
            .windows(2, WINDOW)
            .burn(2.0, 1.0)
            .min_events(2),
    );
    engine
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn window_commutes_with_registry_merge(
        ops in proptest::collection::vec((0u8..2, 0u8..3, 0u16..512), 1..160),
        per_tick in 1usize..12,
    ) {
        let (shard_windows, combined_window, _) = drive(&ops, per_tick);
        let m = merged(&shard_windows[0], &shard_windows[1]);

        // Windowed counter deltas and rates agree for every window
        // length up to the ring size.
        for name in ["t.c.err", "t.c.total"] {
            for k in 1..=WINDOW {
                prop_assert_eq!(
                    m.counter_delta(name, k),
                    combined_window.counter_delta(name, k),
                    "counter {} over {} ticks", name, k
                );
            }
        }
        // Windowed histograms agree bit-exactly: counts, sums, and the
        // quantiles the SLO layer reads.
        for k in 1..=WINDOW {
            let a = m.histo_window("t.h.ms", k);
            let b = combined_window.histo_window("t.h.ms", k);
            prop_assert_eq!(a.count(), b.count(), "histo count over {} ticks", k);
            prop_assert_eq!(a.sum().to_bits(), b.sum().to_bits(), "histo sum over {} ticks", k);
            for q in [0.5, 0.99] {
                prop_assert_eq!(
                    a.quantile(q).to_bits(),
                    b.quantile(q).to_bits(),
                    "p{} over {} ticks", q * 100.0, k
                );
            }
        }
    }

    #[test]
    fn burn_rate_evaluation_is_merge_order_independent(
        ops in proptest::collection::vec((0u8..2, 0u8..3, 0u16..512), 1..160),
        per_tick in 1usize..12,
    ) {
        let (shard_windows, combined_window, ticks) = drive(&ops, per_tick);
        let ab = merged(&shard_windows[0], &shard_windows[1]);
        let ba = merged(&shard_windows[1], &shard_windows[0]);

        let mut eng_ab = armed_engine();
        let mut eng_ba = armed_engine();
        let mut eng_combined = armed_engine();
        let now = SimTime::from_millis(ticks as u64);
        eng_ab.evaluate(now, &ab);
        eng_ba.evaluate(now, &ba);
        eng_combined.evaluate(now, &combined_window);

        // Merge order must not change the alert log…
        prop_assert_eq!(eng_ab.canonical_log(), eng_ba.canonical_log());
        prop_assert_eq!(eng_ab.log_hash(), eng_ba.log_hash());
        // …and shard-merged evaluation must match the combined registry.
        prop_assert_eq!(eng_ab.canonical_log(), eng_combined.canonical_log());
    }
}
