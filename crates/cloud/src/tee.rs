//! Trusted-execution-environment cost model.
//!
//! §IV-D/E3: TEEs promise confidentiality but *"current implementations
//! like Intel SGX fall short of … performance (large overhead)"*, and the
//! partitioned design ("a trusted part, which runs inside the TEE
//! enclave, and an untrusted part that interacts with the OS") pays a
//! transition cost per enclave boundary crossing. The model exposes all
//! three knobs — in-enclave slowdown, transition cost, and paging
//! overhead beyond the enclave memory budget — so E8b can reproduce the
//! qualitative claim: partition when transitions are cheap relative to
//! the untrusted share; stay full-enclave when they are not.

use mv_common::time::SimDuration;

/// Deployment configurations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TeeConfig {
    /// No TEE: fast, but the cloud must be trusted.
    Untrusted,
    /// Whole application inside the enclave.
    FullEnclave,
    /// Trusted core inside, rest outside, transitions at every call.
    Partitioned,
}

impl TeeConfig {
    /// All configurations.
    pub const ALL: [TeeConfig; 3] =
        [TeeConfig::Untrusted, TeeConfig::FullEnclave, TeeConfig::Partitioned];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            TeeConfig::Untrusted => "untrusted",
            TeeConfig::FullEnclave => "full-enclave",
            TeeConfig::Partitioned => "partitioned",
        }
    }
}

/// The cost model.
#[derive(Debug, Clone)]
pub struct TeeCostModel {
    /// Multiplier on CPU time executed inside the enclave (SGX-era ~1.2–2×).
    pub enclave_slowdown: f64,
    /// Cost per enclave boundary transition (ECALL/OCALL pair).
    pub transition_cost: SimDuration,
    /// Enclave memory budget in bytes (EPC); working sets beyond it page.
    pub enclave_memory: u64,
    /// Extra multiplier applied to enclave time when the working set
    /// exceeds the budget (EPC paging is catastrophic on real SGX).
    pub paging_penalty: f64,
}

impl Default for TeeCostModel {
    fn default() -> Self {
        TeeCostModel {
            enclave_slowdown: 1.4,
            transition_cost: SimDuration::from_micros(8),
            enclave_memory: 96 << 20, // 96 MiB EPC, SGX v1 flavour
            paging_penalty: 3.0,
        }
    }
}

/// A task profile to be costed.
#[derive(Debug, Clone, Copy)]
pub struct TaskProfile {
    /// Total CPU time of the task on untrusted hardware.
    pub cpu: SimDuration,
    /// Fraction of the CPU time that touches sensitive data (must run
    /// trusted when a TEE is used).
    pub trusted_fraction: f64,
    /// Enclave boundary crossings a partitioned implementation makes.
    pub transitions: u64,
    /// Working-set size in bytes.
    pub working_set: u64,
}

impl TeeCostModel {
    /// Wall time to execute `task` under `config`.
    pub fn execute(&self, task: &TaskProfile, config: TeeConfig) -> SimDuration {
        let cpu_us = task.cpu.as_micros() as f64;
        let paging = |inside_bytes: u64| -> f64 {
            if inside_bytes > self.enclave_memory {
                self.paging_penalty
            } else {
                1.0
            }
        };
        let total_us = match config {
            TeeConfig::Untrusted => cpu_us,
            TeeConfig::FullEnclave => {
                cpu_us * self.enclave_slowdown * paging(task.working_set)
            }
            TeeConfig::Partitioned => {
                let trusted = cpu_us * task.trusted_fraction;
                let untrusted = cpu_us * (1.0 - task.trusted_fraction);
                // Only the trusted share's working set lives in the enclave.
                let trusted_ws =
                    (task.working_set as f64 * task.trusted_fraction) as u64;
                trusted * self.enclave_slowdown * paging(trusted_ws)
                    + untrusted
                    + task.transitions as f64 * self.transition_cost.as_micros() as f64
            }
        };
        SimDuration::from_micros(total_us.round() as u64)
    }

    /// Throughput (tasks/sec) under a configuration.
    pub fn throughput(&self, task: &TaskProfile, config: TeeConfig) -> f64 {
        let t = self.execute(task, config);
        if t.as_micros() == 0 {
            f64::INFINITY
        } else {
            1e6 / t.as_micros() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn task() -> TaskProfile {
        TaskProfile {
            cpu: SimDuration::from_millis(10),
            trusted_fraction: 0.3,
            transitions: 20,
            working_set: 32 << 20,
        }
    }

    #[test]
    fn untrusted_is_fastest() {
        let m = TeeCostModel::default();
        let t = task();
        let plain = m.execute(&t, TeeConfig::Untrusted);
        for cfg in [TeeConfig::FullEnclave, TeeConfig::Partitioned] {
            assert!(m.execute(&t, cfg) > plain, "{}", cfg.name());
        }
    }

    #[test]
    fn partitioning_wins_when_transitions_are_cheap() {
        let m = TeeCostModel::default();
        let t = task(); // 30% trusted, few transitions
        let full = m.execute(&t, TeeConfig::FullEnclave);
        let part = m.execute(&t, TeeConfig::Partitioned);
        assert!(part < full, "partitioned {part} vs full {full}");
    }

    #[test]
    fn chatty_partitioning_loses() {
        let m = TeeCostModel::default();
        let mut t = task();
        t.transitions = 2_000_000; // pathological ECALL storm
        let full = m.execute(&t, TeeConfig::FullEnclave);
        let part = m.execute(&t, TeeConfig::Partitioned);
        assert!(part > full, "transition storm must dominate");
    }

    #[test]
    fn epc_paging_punishes_big_working_sets() {
        let m = TeeCostModel::default();
        let mut big = task();
        big.working_set = 1 << 30; // 1 GiB ≫ EPC
        let small_t = m.execute(&task(), TeeConfig::FullEnclave);
        let big_t = m.execute(&big, TeeConfig::FullEnclave);
        assert!(big_t.as_micros() as f64 >= small_t.as_micros() as f64 * 2.5);
        // Partitioning shrinks the in-enclave working set below the EPC.
        let big_part = m.execute(&big, TeeConfig::Partitioned);
        assert!(big_part < big_t);
    }

    #[test]
    fn throughput_is_inverse_latency() {
        let m = TeeCostModel::default();
        let t = task();
        let tput = m.throughput(&t, TeeConfig::Untrusted);
        assert!((tput - 100.0).abs() < 1.0, "10 ms task → ~100/s, got {tput}");
    }
}
