//! Serverless executor pool simulation.
//!
//! Requests arrive on a virtual timeline; each runs for its execution
//! duration on a function instance. A request grabs the warm instance
//! that has been idle longest; if none exists, a new instance pays the
//! cold-start penalty (unless the instance cap queues it). Instances are
//! reclaimed after sitting idle past the keep-alive window. Billing is
//! per-busy-microsecond — "fine-grained pricing" per §IV-E3 — and the
//! report contrasts it against provisioning `peak_concurrency` servers
//! for the whole run.

use mv_common::metrics::Histogram;
use mv_common::time::{SimDuration, SimTime};

/// Pool configuration.
#[derive(Debug, Clone)]
pub struct ServerlessPool {
    /// Cold-start penalty added to the first request on a new instance.
    pub cold_start: SimDuration,
    /// Idle window after which a warm instance is reclaimed.
    pub keep_alive: SimDuration,
    /// Optional cap on simultaneous instances (None = unbounded).
    pub max_instances: Option<usize>,
}

impl Default for ServerlessPool {
    fn default() -> Self {
        ServerlessPool {
            cold_start: SimDuration::from_millis(250),
            keep_alive: SimDuration::from_secs(60),
            max_instances: None,
        }
    }
}

/// One request: arrival time and execution duration.
pub type Request = (SimTime, SimDuration);

/// A workload: a list of requests (generators live in `mv-workloads`).
#[derive(Debug, Clone, Default)]
pub struct WorkloadSpec {
    /// The requests, any order.
    pub requests: Vec<Request>,
}

/// Run results.
#[derive(Debug)]
pub struct ServerlessReport {
    /// End-to-end latency (queue + cold start + execution), ms.
    pub latency_ms: Histogram,
    /// Requests that paid a cold start.
    pub cold_starts: u64,
    /// Requests served warm.
    pub warm_starts: u64,
    /// Peak simultaneous instances.
    pub peak_instances: usize,
    /// Billed busy time (µs) across instances — the pay-per-use bill.
    pub busy_us: u64,
    /// Fixed-provisioning cost (µs): peak instances held for the whole
    /// makespan.
    pub fixed_provision_us: u64,
    /// Time of last completion.
    pub makespan: SimTime,
}

impl ServerlessReport {
    /// Pay-per-use bill as a fraction of fixed peak provisioning.
    pub fn cost_ratio(&self) -> f64 {
        if self.fixed_provision_us == 0 {
            0.0
        } else {
            self.busy_us as f64 / self.fixed_provision_us as f64
        }
    }

    /// Fraction of requests that paid a cold start.
    pub fn cold_fraction(&self) -> f64 {
        let total = self.cold_starts + self.warm_starts;
        if total == 0 {
            0.0
        } else {
            self.cold_starts as f64 / total as f64
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Instance {
    /// When the instance finishes its current request (busy until then).
    free_at: SimTime,
}

impl ServerlessPool {
    /// Simulate the workload through the pool.
    pub fn run(&self, workload: &WorkloadSpec) -> ServerlessReport {
        let mut requests = workload.requests.clone();
        requests.sort_by_key(|&(t, d)| (t, d));
        let mut instances: Vec<Instance> = Vec::new();
        let mut report = ServerlessReport {
            latency_ms: Histogram::with_capacity(requests.len()),
            cold_starts: 0,
            warm_starts: 0,
            peak_instances: 0,
            busy_us: 0,
            fixed_provision_us: 0,
            makespan: SimTime::ZERO,
        };
        for (arrival, exec) in requests {
            // Reclaim instances idle past keep-alive.
            instances.retain(|inst| arrival.since(inst.free_at) <= self.keep_alive);
            // Prefer the warm instance free the longest (most likely to
            // be reclaimed next — keeps the fleet small).
            let warm_idx = instances
                .iter()
                .enumerate()
                .filter(|(_, inst)| inst.free_at <= arrival)
                .min_by_key(|(_, inst)| inst.free_at)
                .map(|(i, _)| i);
            let (start, cold) = match warm_idx {
                Some(i) => {
                    // Warm start, immediate.
                    let inst = &mut instances[i];
                    let start = arrival;
                    inst.free_at = start + exec;
                    (start, false)
                }
                None => {
                    let at_cap = self
                        .max_instances
                        .is_some_and(|cap| instances.len() >= cap);
                    if at_cap {
                        // Queue on the instance that frees earliest.
                        let inst = instances
                            .iter_mut()
                            .min_by_key(|inst| inst.free_at)
                            .expect("cap > 0 implies instances exist");
                        let start = inst.free_at.max(arrival);
                        inst.free_at = start + exec;
                        (start, false)
                    } else {
                        // Cold start a new instance.
                        let start = arrival + self.cold_start;
                        instances.push(Instance { free_at: start + exec });
                        (start, true)
                    }
                }
            };
            if cold {
                report.cold_starts += 1;
                report.busy_us += self.cold_start.as_micros();
            } else {
                report.warm_starts += 1;
            }
            report.busy_us += exec.as_micros();
            let finish = start + exec;
            report.latency_ms.record(finish.since(arrival).as_millis_f64());
            report.makespan = report.makespan.max(finish);
            report.peak_instances = report.peak_instances.max(instances.len());
        }
        report.fixed_provision_us =
            report.peak_instances as u64 * report.makespan.as_micros();
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }
    fn at(v: u64) -> SimTime {
        SimTime::from_millis(v)
    }

    #[test]
    fn first_request_pays_cold_start() {
        let pool = ServerlessPool { cold_start: ms(100), ..Default::default() };
        let r = pool.run(&WorkloadSpec { requests: vec![(at(0), ms(10))] });
        assert_eq!(r.cold_starts, 1);
        let mut lat = r.latency_ms;
        assert_eq!(lat.p50(), 110.0);
    }

    #[test]
    fn sequential_requests_reuse_warm_instance() {
        let pool = ServerlessPool { cold_start: ms(100), keep_alive: ms(1000), ..Default::default() };
        let reqs = (0..10).map(|i| (at(200 * i), ms(10))).collect();
        let r = pool.run(&WorkloadSpec { requests: reqs });
        assert_eq!(r.cold_starts, 1);
        assert_eq!(r.warm_starts, 9);
        assert_eq!(r.peak_instances, 1);
    }

    #[test]
    fn keep_alive_expiry_forces_new_cold_start() {
        let pool = ServerlessPool { cold_start: ms(100), keep_alive: ms(50), ..Default::default() };
        let r = pool.run(&WorkloadSpec {
            requests: vec![(at(0), ms(10)), (at(1000), ms(10))],
        });
        assert_eq!(r.cold_starts, 2);
    }

    #[test]
    fn burst_scales_out_then_bills_less_than_peak() {
        let pool = ServerlessPool { cold_start: ms(50), keep_alive: ms(500), ..Default::default() };
        // 100 simultaneous requests, then a long quiet tail request.
        let mut reqs: Vec<Request> = (0..100).map(|_| (at(0), ms(20))).collect();
        reqs.push((at(10_000), ms(20)));
        let r = pool.run(&WorkloadSpec { requests: reqs });
        assert_eq!(r.peak_instances, 100);
        // Pay-per-use bill ≪ holding 100 instances for 10 s.
        assert!(r.cost_ratio() < 0.02, "cost ratio {}", r.cost_ratio());
    }

    #[test]
    fn instance_cap_queues_instead_of_scaling() {
        let pool = ServerlessPool {
            cold_start: ms(0),
            keep_alive: ms(10_000),
            max_instances: Some(2),
        };
        let reqs: Vec<Request> = (0..6).map(|_| (at(0), ms(10))).collect();
        let r = pool.run(&WorkloadSpec { requests: reqs });
        assert_eq!(r.peak_instances, 2);
        // Third wave of requests waits 2 service times.
        let mut lat = r.latency_ms;
        assert_eq!(lat.quantile(1.0), 30.0);
    }

    #[test]
    fn empty_workload() {
        let pool = ServerlessPool::default();
        let r = pool.run(&WorkloadSpec::default());
        assert_eq!(r.cold_starts + r.warm_starts, 0);
        assert_eq!(r.cost_ratio(), 0.0);
    }
}
