#![forbid(unsafe_code)]
//! `mv-cloud` — the cloud-computing layer of Fig. 7.
//!
//! Three §IV-E concerns, each a module:
//!
//! * [`serverless`] — §IV-E3's serverless model: elastic function
//!   instances with cold starts and keep-alive, fine-grained
//!   resource-second billing, and the comparison against fixed peak
//!   provisioning (experiment E8 runs this on the flash-sale burst);
//! * [`tee`] — the §IV-D/E3 trusted-execution cost model: full-enclave
//!   vs. partitioned execution with per-transition overheads ("the code
//!   base still need to be optimized for efficiency and reducing
//!   frequent reloading");
//! * [`offload`] — §IV-E2's device-side computation: *"these devices …
//!   enabl\[e\] part of the computation to be further separated from the
//!   cloud side to the device side"* — device-side window aggregation
//!   against ship-everything baselines (experiment E7).

pub mod offload;
pub mod serverless;
pub mod tee;

pub use offload::{OffloadParams, OffloadReport};
pub use serverless::{ServerlessPool, ServerlessReport, WorkloadSpec};
pub use tee::{TeeConfig, TeeCostModel};
