//! Device-side computation offload (Fig. 7's device layer).
//!
//! Without offload, every raw sensor sample crosses the cellular uplink
//! and the cloud aggregates. With offload, each device aggregates a
//! window locally (its "increasingly powerful processor") and ships one
//! summary per window. The report accounts uplink bytes, cloud CPU time,
//! device CPU time, and freshness (age of the data the cloud sees) on an
//! actual [`mv_net::DisaggTopology`] — experiment E7's engine.

use mv_common::seeded_rng;
use mv_common::time::{SimDuration, SimTime};
use mv_net::topology::DisaggTopology;

/// Scenario parameters.
#[derive(Debug, Clone)]
pub struct OffloadParams {
    /// Number of metaverse devices.
    pub devices: usize,
    /// Raw samples per device per simulated second.
    pub samples_per_sec: u64,
    /// Bytes per raw sample on the wire.
    pub sample_bytes: u64,
    /// Device-side aggregation window.
    pub window: SimDuration,
    /// Bytes per shipped aggregate.
    pub aggregate_bytes: u64,
    /// Cloud CPU time to process one raw sample.
    pub cloud_cpu_per_sample: SimDuration,
    /// Device CPU time to fold one sample into the local window.
    pub device_cpu_per_sample: SimDuration,
    /// Cloud CPU time to merge one aggregate.
    pub cloud_cpu_per_aggregate: SimDuration,
    /// Simulated duration of the run.
    pub duration: SimDuration,
}

impl Default for OffloadParams {
    fn default() -> Self {
        OffloadParams {
            devices: 1000,
            samples_per_sec: 30, // pose updates
            sample_bytes: 64,
            window: SimDuration::from_millis(500),
            aggregate_bytes: 96,
            cloud_cpu_per_sample: SimDuration::from_micros(5),
            device_cpu_per_sample: SimDuration::from_micros(8),
            cloud_cpu_per_aggregate: SimDuration::from_micros(10),
            duration: SimDuration::from_secs(10),
        }
    }
}

/// Accounting for one configuration.
#[derive(Debug, Clone, Copy)]
pub struct OffloadReport {
    /// Total bytes over device uplinks.
    pub uplink_bytes: u64,
    /// Total cloud CPU time, µs.
    pub cloud_cpu_us: u64,
    /// Total device CPU time, µs.
    pub device_cpu_us: u64,
    /// Mean end-to-end freshness of cloud state, ms (uplink latency, plus
    /// half a window of batching delay when offloading).
    pub freshness_ms: f64,
    /// Messages sent over the uplink.
    pub messages: u64,
}

/// Run both configurations on a fresh disaggregated topology.
pub fn run(params: &OffloadParams) -> (OffloadReport, OffloadReport) {
    // A small representative topology: latency is per-path, so device
    // count factors in analytically rather than via 1000 sim nodes.
    let mut topo = DisaggTopology::build(4, 2, 2);
    let mut rng = seeded_rng(7);
    // Measure mean device→executor latency empirically over transfers.
    let mut lat_sum_ms = 0.0;
    let samples = 100;
    for i in 0..samples {
        let d = topo.devices[i % topo.devices.len()];
        let e = topo.executor_for(i);
        // Retry lost transfers — we want latency of delivered messages.
        let t = loop {
            match topo
                .net
                .transfer(d, e, params.sample_bytes, SimTime::ZERO, &mut rng)
                .expect("topology connected")
                .time()
            {
                Some(t) => break t,
                None => continue,
            }
        };
        lat_sum_ms += t.as_millis_f64();
    }
    let uplink_ms = lat_sum_ms / samples as f64;

    let secs = params.duration.as_secs_f64();
    let total_samples =
        (params.devices as u64) * params.samples_per_sec * secs as u64;
    let windows_per_device = (secs / params.window.as_secs_f64()).ceil() as u64;
    let total_aggregates = params.devices as u64 * windows_per_device;

    let raw = OffloadReport {
        uplink_bytes: total_samples * params.sample_bytes,
        cloud_cpu_us: total_samples * params.cloud_cpu_per_sample.as_micros(),
        device_cpu_us: 0,
        freshness_ms: uplink_ms,
        messages: total_samples,
    };
    let offloaded = OffloadReport {
        uplink_bytes: total_aggregates * params.aggregate_bytes,
        cloud_cpu_us: total_aggregates * params.cloud_cpu_per_aggregate.as_micros(),
        device_cpu_us: total_samples * params.device_cpu_per_sample.as_micros(),
        // Batching delays data by half a window on average.
        freshness_ms: uplink_ms + params.window.as_millis_f64() / 2.0,
        messages: total_aggregates,
    };
    (raw, offloaded)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn offload_slashes_uplink_and_cloud_cpu() {
        let (raw, off) = run(&OffloadParams::default());
        assert!(
            off.uplink_bytes * 5 < raw.uplink_bytes,
            "uplink {} vs {}",
            off.uplink_bytes,
            raw.uplink_bytes
        );
        assert!(off.cloud_cpu_us * 5 < raw.cloud_cpu_us);
        assert!(off.messages < raw.messages);
    }

    #[test]
    fn offload_costs_device_cpu_and_freshness() {
        let (raw, off) = run(&OffloadParams::default());
        assert_eq!(raw.device_cpu_us, 0);
        assert!(off.device_cpu_us > 0);
        assert!(off.freshness_ms > raw.freshness_ms, "batching delays freshness");
    }

    #[test]
    fn window_size_trades_bytes_for_freshness() {
        let small = OffloadParams { window: SimDuration::from_millis(100), ..Default::default() };
        let large = OffloadParams { window: SimDuration::from_secs(2), ..Default::default() };
        let (_, off_small) = run(&small);
        let (_, off_large) = run(&large);
        assert!(off_large.uplink_bytes < off_small.uplink_bytes);
        assert!(off_large.freshness_ms > off_small.freshness_ms);
    }
}
