//! Stream operators.
//!
//! Operators are push-based: `process` consumes one input record and
//! appends zero or more outputs; `flush` force-closes any buffered state
//! (open windows) at end-of-stream. All operators are deterministic.

use crate::record::StreamRecord;
use mv_common::hash::FastMap;
use mv_common::time::{SimDuration, SimTime};

/// A single-input stream operator.
pub trait Operator: Send {
    /// Consume one record, appending outputs to `out`.
    fn process(&mut self, rec: StreamRecord, out: &mut Vec<StreamRecord>);

    /// Close buffered state (open windows) as of `now`.
    fn flush(&mut self, _now: SimTime, _out: &mut Vec<StreamRecord>) {}

    /// A short name for plans and diagnostics.
    fn name(&self) -> &'static str;
}

/// Stateless 1→1 transformation via a user-defined function.
pub struct MapOp {
    f: Box<dyn Fn(StreamRecord) -> StreamRecord + Send>,
}

impl MapOp {
    /// Wrap a UDF.
    pub fn new(f: impl Fn(StreamRecord) -> StreamRecord + Send + 'static) -> Self {
        MapOp { f: Box::new(f) }
    }
}

impl Operator for MapOp {
    fn process(&mut self, rec: StreamRecord, out: &mut Vec<StreamRecord>) {
        out.push((self.f)(rec));
    }
    fn name(&self) -> &'static str {
        "map"
    }
}

/// Stateless filter via a user-defined predicate.
pub struct FilterOp {
    pred: Box<dyn Fn(&StreamRecord) -> bool + Send>,
}

impl FilterOp {
    /// Wrap a predicate.
    pub fn new(pred: impl Fn(&StreamRecord) -> bool + Send + 'static) -> Self {
        FilterOp { pred: Box::new(pred) }
    }
}

impl Operator for FilterOp {
    fn process(&mut self, rec: StreamRecord, out: &mut Vec<StreamRecord>) {
        if (self.pred)(&rec) {
            out.push(rec);
        }
    }
    fn name(&self) -> &'static str {
        "filter"
    }
}

/// The interpolation operator §IV-G calls for: when a key's consecutive
/// samples are further apart than `max_gap`, emit linearly interpolated
/// samples every `step` so the virtual space sees a smooth signal.
pub struct InterpolateOp {
    step: SimDuration,
    max_gap: SimDuration,
    last: FastMap<u64, StreamRecord>,
}

impl InterpolateOp {
    /// Interpolate gaps larger than `max_gap` at `step` resolution.
    ///
    /// # Panics
    /// Panics if `step` is zero.
    pub fn new(step: SimDuration, max_gap: SimDuration) -> Self {
        assert!(step.as_micros() > 0, "interpolation step must be positive");
        InterpolateOp { step, max_gap, last: FastMap::default() }
    }
}

impl Operator for InterpolateOp {
    fn process(&mut self, rec: StreamRecord, out: &mut Vec<StreamRecord>) {
        if let Some(prev) = self.last.get(&rec.key).copied() {
            let gap = rec.ts.since(prev.ts);
            if gap > self.max_gap && gap.as_micros() > 0 {
                // Emit intermediate samples strictly between prev and rec.
                let mut t = prev.ts + self.step;
                while t < rec.ts {
                    let frac = t.since(prev.ts).as_micros() as f64 / gap.as_micros() as f64;
                    let v = prev.value + (rec.value - prev.value) * frac;
                    out.push(StreamRecord { ts: t, key: rec.key, value: v, space: rec.space });
                    t += self.step;
                }
            }
        }
        self.last.insert(rec.key, rec);
        out.push(rec);
    }
    fn name(&self) -> &'static str {
        "interpolate"
    }
}

/// Aggregation kind for window operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggKind {
    /// Sum of values.
    Sum,
    /// Arithmetic mean.
    Avg,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
    /// Count of records.
    Count,
}

impl AggKind {
    fn finish(self, sum: f64, min: f64, max: f64, n: u64) -> f64 {
        match self {
            AggKind::Sum => sum,
            AggKind::Avg => {
                if n == 0 {
                    0.0
                } else {
                    sum / n as f64
                }
            }
            AggKind::Min => min,
            AggKind::Max => max,
            AggKind::Count => n as f64,
        }
    }
}

/// Window shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WindowKind {
    /// Non-overlapping windows of the given length.
    Tumbling(SimDuration),
    /// Overlapping windows of `len`, advancing by `slide`.
    Sliding {
        /// Window length.
        len: SimDuration,
        /// Advance between window starts; must divide evenly into sensible
        /// window boundaries (`slide <= len`).
        slide: SimDuration,
    },
}

#[derive(Debug, Clone, Copy)]
struct WindowAcc {
    sum: f64,
    min: f64,
    max: f64,
    n: u64,
}

impl WindowAcc {
    fn new() -> Self {
        WindowAcc { sum: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY, n: 0 }
    }
    fn add(&mut self, v: f64) {
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.n += 1;
    }
}

/// Per-key event-time window aggregation. Emits one record per closed
/// window per key, timestamped at the window end. Records are assumed
/// in-order per key (the fusion layer reorders late data upstream).
pub struct WindowAggOp {
    kind: WindowKind,
    agg: AggKind,
    /// Open windows: (key, window_start_us) → accumulator.
    open: FastMap<(u64, u64), WindowAcc>,
    /// High-water mark of event time seen.
    watermark: SimTime,
}

impl WindowAggOp {
    /// Create a window aggregation.
    ///
    /// # Panics
    /// Panics on zero-length windows or `slide > len` / zero slide.
    pub fn new(kind: WindowKind, agg: AggKind) -> Self {
        match kind {
            WindowKind::Tumbling(len) => assert!(len.as_micros() > 0, "zero window"),
            WindowKind::Sliding { len, slide } => {
                assert!(len.as_micros() > 0 && slide.as_micros() > 0, "zero window/slide");
                assert!(slide <= len, "slide must not exceed window length");
            }
        }
        WindowAggOp { kind, agg, open: FastMap::default(), watermark: SimTime::ZERO }
    }

    /// Window starts containing timestamp `t`.
    fn windows_for(&self, t: SimTime) -> Vec<u64> {
        match self.kind {
            WindowKind::Tumbling(len) => {
                let l = len.as_micros();
                vec![(t.as_micros() / l) * l]
            }
            WindowKind::Sliding { len, slide } => {
                let l = len.as_micros();
                let s = slide.as_micros();
                let ts = t.as_micros();
                // Starts w with w <= ts < w + l and w ≡ 0 (mod s).
                let first = (ts.saturating_sub(l.saturating_sub(s)) / s) * s;
                let mut out = Vec::new();
                let mut w = first;
                while w <= ts {
                    if ts < w + l {
                        out.push(w);
                    }
                    w += s;
                }
                out
            }
        }
    }

    fn window_len(&self) -> u64 {
        match self.kind {
            WindowKind::Tumbling(len) => len.as_micros(),
            WindowKind::Sliding { len, .. } => len.as_micros(),
        }
    }

    fn emit_closed(&mut self, out: &mut Vec<StreamRecord>) {
        let len = self.window_len();
        let wm = self.watermark.as_micros();
        let mut closed: Vec<(u64, u64)> = self
            .open
            .keys()
            .filter(|(_, start)| start + len <= wm)
            .copied()
            .collect();
        // Deterministic emission order: by window end then key.
        closed.sort_by_key(|&(k, s)| (s, k));
        for key @ (k, start) in closed {
            let acc = self.open.remove(&key).expect("listed above");
            out.push(StreamRecord {
                ts: SimTime::from_micros(start + len),
                key: k,
                value: self.agg.finish(acc.sum, acc.min, acc.max, acc.n),
                space: mv_common::Space::Physical,
            });
        }
    }
}

impl Operator for WindowAggOp {
    fn process(&mut self, rec: StreamRecord, out: &mut Vec<StreamRecord>) {
        for w in self.windows_for(rec.ts) {
            self.open.entry((rec.key, w)).or_insert_with(WindowAcc::new).add(rec.value);
        }
        if rec.ts > self.watermark {
            self.watermark = rec.ts;
            self.emit_closed(out);
        }
    }

    fn flush(&mut self, _now: SimTime, out: &mut Vec<StreamRecord>) {
        // End-of-stream: close every open window.
        self.watermark = SimTime::MAX;
        self.emit_closed(out);
    }

    fn name(&self) -> &'static str {
        "window_agg"
    }
}

/// A symmetric hash join between two streams over a time window: records
/// from either side join with opposite-side records of the same key whose
/// timestamps differ by at most `window`. Outputs carry the later
/// timestamp and the *product* has value `left.value + right.value`
/// mapped through a combiner.
pub struct JoinOp {
    window: SimDuration,
    combiner: Box<dyn Fn(f64, f64) -> f64 + Send>,
    left: FastMap<u64, Vec<StreamRecord>>,
    right: FastMap<u64, Vec<StreamRecord>>,
}

impl JoinOp {
    /// Create a window join with the given combiner (e.g. `|l, r| l - r`
    /// for divergence between a physical and a virtual reading).
    pub fn new(window: SimDuration, combiner: impl Fn(f64, f64) -> f64 + Send + 'static) -> Self {
        JoinOp {
            window,
            combiner: Box::new(combiner),
            left: FastMap::default(),
            right: FastMap::default(),
        }
    }

    fn expire(buf: &mut Vec<StreamRecord>, now: SimTime, window: SimDuration) {
        buf.retain(|r| now.since(r.ts) <= window);
    }

    /// Push a left-side record, emitting joined outputs.
    pub fn push_left(&mut self, rec: StreamRecord, out: &mut Vec<StreamRecord>) {
        let window = self.window;
        if let Some(matches) = self.right.get_mut(&rec.key) {
            Self::expire(matches, rec.ts, window);
            for m in matches.iter() {
                out.push(StreamRecord {
                    ts: rec.ts.max(m.ts),
                    key: rec.key,
                    value: (self.combiner)(rec.value, m.value),
                    space: rec.space,
                });
            }
        }
        self.left.entry(rec.key).or_default().push(rec);
    }

    /// Push a right-side record, emitting joined outputs.
    pub fn push_right(&mut self, rec: StreamRecord, out: &mut Vec<StreamRecord>) {
        let window = self.window;
        if let Some(matches) = self.left.get_mut(&rec.key) {
            Self::expire(matches, rec.ts, window);
            for m in matches.iter() {
                out.push(StreamRecord {
                    ts: rec.ts.max(m.ts),
                    key: rec.key,
                    value: (self.combiner)(m.value, rec.value),
                    space: rec.space,
                });
            }
        }
        self.right.entry(rec.key).or_default().push(rec);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mv_common::Space;

    fn rec(ms: u64, key: u64, v: f64) -> StreamRecord {
        StreamRecord::physical(SimTime::from_millis(ms), key, v)
    }

    #[test]
    fn map_and_filter_compose() {
        let mut m = MapOp::new(|r| r.with_value(r.value * 2.0));
        let mut f = FilterOp::new(|r| r.value > 5.0);
        let mut out = Vec::new();
        m.process(rec(1, 1, 2.0), &mut out);
        m.process(rec(2, 1, 4.0), &mut out);
        let mut final_out = Vec::new();
        for r in out.drain(..) {
            f.process(r, &mut final_out);
        }
        assert_eq!(final_out.len(), 1);
        assert_eq!(final_out[0].value, 8.0);
    }

    #[test]
    fn interpolate_fills_gaps() {
        let mut op =
            InterpolateOp::new(SimDuration::from_millis(10), SimDuration::from_millis(15));
        let mut out = Vec::new();
        op.process(rec(0, 1, 0.0), &mut out);
        assert_eq!(out.len(), 1); // first sample passes through
        out.clear();
        // 40 ms gap > 15 ms max: expect samples at 10, 20, 30 + original.
        op.process(rec(40, 1, 4.0), &mut out);
        assert_eq!(out.len(), 4);
        assert_eq!(out[0].ts, SimTime::from_millis(10));
        assert!((out[0].value - 1.0).abs() < 1e-9);
        assert!((out[1].value - 2.0).abs() < 1e-9);
        assert!((out[2].value - 3.0).abs() < 1e-9);
        assert_eq!(out[3], rec(40, 1, 4.0));
    }

    #[test]
    fn interpolate_ignores_small_gaps_and_other_keys() {
        let mut op =
            InterpolateOp::new(SimDuration::from_millis(10), SimDuration::from_millis(50));
        let mut out = Vec::new();
        op.process(rec(0, 1, 0.0), &mut out);
        op.process(rec(20, 1, 2.0), &mut out); // gap below max_gap
        op.process(rec(100, 2, 5.0), &mut out); // different key, first sample
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn tumbling_window_sums() {
        let mut op =
            WindowAggOp::new(WindowKind::Tumbling(SimDuration::from_millis(10)), AggKind::Sum);
        let mut out = Vec::new();
        op.process(rec(1, 1, 1.0), &mut out);
        op.process(rec(5, 1, 2.0), &mut out);
        op.process(rec(12, 1, 4.0), &mut out); // closes [0,10)
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].ts, SimTime::from_millis(10));
        assert_eq!(out[0].value, 3.0);
        op.flush(SimTime::from_millis(100), &mut out);
        assert_eq!(out.len(), 2);
        assert_eq!(out[1].value, 4.0);
    }

    #[test]
    fn tumbling_window_multiple_keys() {
        let mut op =
            WindowAggOp::new(WindowKind::Tumbling(SimDuration::from_millis(10)), AggKind::Count);
        let mut out = Vec::new();
        op.process(rec(1, 1, 1.0), &mut out);
        op.process(rec(2, 2, 1.0), &mut out);
        op.process(rec(3, 2, 1.0), &mut out);
        op.flush(SimTime::from_millis(10), &mut out);
        assert_eq!(out.len(), 2);
        // Deterministic order: by (window end, key).
        assert_eq!((out[0].key, out[0].value), (1, 1.0));
        assert_eq!((out[1].key, out[1].value), (2, 2.0));
    }

    #[test]
    fn sliding_windows_overlap() {
        let mut op = WindowAggOp::new(
            WindowKind::Sliding {
                len: SimDuration::from_millis(20),
                slide: SimDuration::from_millis(10),
            },
            AggKind::Sum,
        );
        let mut out = Vec::new();
        op.process(rec(5, 1, 1.0), &mut out); // in windows [0,20) and... only [0,20) (window starting at -10 doesn't exist)
        op.process(rec(15, 1, 2.0), &mut out); // in [0,20) and [10,30)
        op.process(rec(35, 1, 4.0), &mut out); // closes [0,20) and [10,30)
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].ts, SimTime::from_millis(20));
        assert_eq!(out[0].value, 3.0);
        assert_eq!(out[1].ts, SimTime::from_millis(30));
        assert_eq!(out[1].value, 2.0);
    }

    #[test]
    fn avg_min_max_aggregations() {
        for (agg, expect) in [(AggKind::Avg, 2.0), (AggKind::Min, 1.0), (AggKind::Max, 3.0)] {
            let mut op =
                WindowAggOp::new(WindowKind::Tumbling(SimDuration::from_millis(10)), agg);
            let mut out = Vec::new();
            op.process(rec(1, 1, 1.0), &mut out);
            op.process(rec(2, 1, 3.0), &mut out);
            op.flush(SimTime::from_millis(10), &mut out);
            assert_eq!(out.len(), 1);
            assert_eq!(out[0].value, expect, "{agg:?}");
        }
    }

    #[test]
    fn join_matches_within_window() {
        let mut j = JoinOp::new(SimDuration::from_millis(10), |l, r| l - r);
        let mut out = Vec::new();
        j.push_left(rec(0, 1, 10.0), &mut out);
        assert!(out.is_empty());
        j.push_right(rec(5, 1, 4.0), &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].value, 6.0);
        assert_eq!(out[0].ts, SimTime::from_millis(5));
        // Outside the window: no match.
        out.clear();
        j.push_right(rec(50, 1, 1.0), &mut out);
        assert!(out.is_empty());
        // Different key: no match.
        j.push_right(rec(52, 2, 1.0), &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn join_preserves_space_of_probe_side() {
        let mut j = JoinOp::new(SimDuration::from_millis(10), |l, r| l + r);
        let mut out = Vec::new();
        j.push_left(rec(0, 1, 1.0), &mut out);
        j.push_right(
            StreamRecord { ts: SimTime::from_millis(1), key: 1, value: 2.0, space: Space::Virtual },
            &mut out,
        );
        assert_eq!(out[0].space, Space::Virtual);
        assert_eq!(out[0].value, 3.0);
    }
}
