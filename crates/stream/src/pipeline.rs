//! Operator chains and the key-partitioned parallel executor.

use crate::ops::Operator;
use crate::record::StreamRecord;
use mv_common::hash::fx_hash_one;
use mv_common::time::SimTime;

/// A linear chain of operators, pushed one record at a time.
pub struct Pipeline {
    ops: Vec<Box<dyn Operator>>,
    /// Records pushed in.
    pub records_in: u64,
    /// Records emitted out.
    pub records_out: u64,
}

impl Default for Pipeline {
    fn default() -> Self {
        Self::new()
    }
}

impl Pipeline {
    /// An empty pipeline (records pass straight through).
    pub fn new() -> Self {
        Pipeline { ops: Vec::new(), records_in: 0, records_out: 0 }
    }

    /// Append an operator to the chain.
    pub fn then(mut self, op: impl Operator + 'static) -> Self {
        self.ops.push(Box::new(op));
        self
    }

    /// Names of the operators, in order (diagnostics / plan display).
    pub fn plan(&self) -> Vec<&'static str> {
        self.ops.iter().map(|o| o.name()).collect()
    }

    /// Push one record through the whole chain, returning the outputs.
    pub fn push(&mut self, rec: StreamRecord) -> Vec<StreamRecord> {
        self.records_in += 1;
        let mut current = vec![rec];
        let mut next = Vec::new();
        for op in &mut self.ops {
            for r in current.drain(..) {
                op.process(r, &mut next);
            }
            std::mem::swap(&mut current, &mut next);
        }
        self.records_out += current.len() as u64;
        current
    }

    /// Push a batch, concatenating outputs.
    pub fn push_batch(&mut self, recs: impl IntoIterator<Item = StreamRecord>) -> Vec<StreamRecord> {
        let mut out = Vec::new();
        for r in recs {
            out.extend(self.push(r));
        }
        out
    }

    /// Flush all operators (cascading: operator i's flush output flows
    /// through operators i+1..).
    pub fn flush(&mut self, now: SimTime) -> Vec<StreamRecord> {
        let n = self.ops.len();
        let mut collected = Vec::new();
        for i in 0..n {
            let mut flushed = Vec::new();
            self.ops[i].flush(now, &mut flushed);
            // Route through downstream operators.
            let mut current = flushed;
            let mut next = Vec::new();
            for op in self.ops.iter_mut().skip(i + 1) {
                for r in current.drain(..) {
                    op.process(r, &mut next);
                }
                std::mem::swap(&mut current, &mut next);
            }
            collected.extend(current);
        }
        self.records_out += collected.len() as u64;
        collected
    }
}

/// A key-partitioned parallel executor: `workers` threads each own a
/// private pipeline instance (operator replication, §IV-G: *"data
/// processing operators have to be replicated and run in parallel
/// threads"*); records are routed to workers by key hash so stateful
/// per-key operators stay correct.
pub struct ParallelPipeline {
    workers: usize,
}

impl ParallelPipeline {
    /// Plan a parallel execution over `workers` threads.
    ///
    /// # Panics
    /// Panics if `workers == 0`.
    pub fn new(workers: usize) -> Self {
        assert!(workers > 0, "need at least one worker");
        ParallelPipeline { workers }
    }

    /// Execute: build one pipeline per worker via `factory`, scatter
    /// `records` by key hash, run, gather all outputs (order is
    /// deterministic per key but interleaving across keys is not —
    /// callers sort if they need total order).
    pub fn run<F>(&self, factory: F, records: Vec<StreamRecord>, flush_at: SimTime) -> Vec<StreamRecord>
    where
        F: Fn() -> Pipeline + Send + Sync,
    {
        let n = self.workers;
        // Pre-partition so each worker gets a contiguous owned batch.
        let mut partitions: Vec<Vec<StreamRecord>> = (0..n).map(|_| Vec::new()).collect();
        for r in records {
            let w = (fx_hash_one(&r.key) as usize) % n;
            partitions[w].push(r);
        }
        let outputs = std::sync::Mutex::new(Vec::new());
        std::thread::scope(|scope| {
            for part in partitions {
                let factory = &factory;
                let outputs = &outputs;
                scope.spawn(move || {
                    let mut pipe = factory();
                    let mut local = pipe.push_batch(part);
                    local.extend(pipe.flush(flush_at));
                    outputs.lock().expect("no poisoned worker").extend(local);
                });
            }
        });
        outputs.into_inner().expect("threads joined")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{AggKind, FilterOp, MapOp, WindowAggOp, WindowKind};
    use mv_common::time::SimDuration;

    fn rec(ms: u64, key: u64, v: f64) -> StreamRecord {
        StreamRecord::physical(SimTime::from_millis(ms), key, v)
    }

    fn doubler_filter() -> Pipeline {
        Pipeline::new()
            .then(MapOp::new(|r| r.with_value(r.value * 2.0)))
            .then(FilterOp::new(|r| r.value >= 4.0))
    }

    #[test]
    fn chain_applies_in_order() {
        let mut p = doubler_filter();
        assert_eq!(p.plan(), vec!["map", "filter"]);
        assert!(p.push(rec(1, 1, 1.0)).is_empty()); // 2.0 < 4.0 filtered
        let out = p.push(rec(2, 1, 3.0));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].value, 6.0);
        assert_eq!(p.records_in, 2);
        assert_eq!(p.records_out, 1);
    }

    #[test]
    fn flush_cascades_through_downstream_ops() {
        // window sum -> map(*10). Flush must route window output through map.
        let mut p = Pipeline::new()
            .then(WindowAggOp::new(WindowKind::Tumbling(SimDuration::from_millis(10)), AggKind::Sum))
            .then(MapOp::new(|r| r.with_value(r.value * 10.0)));
        p.push(rec(1, 1, 1.0));
        p.push(rec(2, 1, 2.0));
        let out = p.flush(SimTime::from_millis(100));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].value, 30.0);
    }

    #[test]
    fn parallel_matches_sequential() {
        let make = || {
            Pipeline::new().then(WindowAggOp::new(
                WindowKind::Tumbling(SimDuration::from_millis(10)),
                AggKind::Sum,
            ))
        };
        // Monotone event time (the operator contract): one record per ms.
        let records: Vec<StreamRecord> =
            (0..1000u64).map(|i| rec(i, i % 17, (i % 7) as f64)).collect();

        let mut seq = make();
        let mut expected = seq.push_batch(records.clone());
        expected.extend(seq.flush(SimTime::from_millis(100)));

        let par = ParallelPipeline::new(4);
        let got = par.run(make, records, SimTime::from_millis(100));

        let norm = |mut v: Vec<StreamRecord>| {
            v.sort_by_key(|r| (r.key, r.ts.as_micros()));
            v.into_iter().map(|r| (r.key, r.ts.as_micros(), r.value)).collect::<Vec<_>>()
        };
        assert_eq!(norm(expected), norm(got));
    }

    #[test]
    fn parallel_single_worker_is_sequential() {
        let make = doubler_filter;
        let records: Vec<StreamRecord> = (0..100u64).map(|i| rec(i, i, i as f64)).collect();
        let par = ParallelPipeline::new(1);
        let got = par.run(make, records.clone(), SimTime::ZERO);
        let mut seq = make();
        let expected = seq.push_batch(records);
        assert_eq!(got.len(), expected.len());
    }
}
