//! Multi-query QoS scheduling.
//!
//! §IV-C: *"it may also be necessary to develop techniques to schedule
//! multiple (continuous) queries that meet different Quality of Service
//! (QoS) metrics. While techniques developed in \[69\] provided some
//! insights…"*. Reference \[69\] is Sharaf et al., "Algorithms and metrics
//! for processing multiple heterogeneous continuous queries" (TODS'08).
//!
//! This module simulates a single-core continuous-query executor serving
//! many registered queries whose input batches arrive over virtual time,
//! under five policies. Metrics follow Sharaf et al.: per-batch *response
//! time* (finish − arrival) and per-query *output staleness* (gap between
//! consecutive outputs), plus deadline misses for deadline-bearing
//! queries. Experiment E14 sweeps these policies.

use mv_common::metrics::Histogram;
use mv_common::time::{SimDuration, SimTime};
use std::collections::VecDeque;

/// A registered continuous query.
#[derive(Debug, Clone)]
pub struct QuerySpec {
    /// Processing cost of one input batch.
    pub cost: SimDuration,
    /// QoS weight (freshness-weighted policy favours high weights).
    pub weight: f64,
    /// Optional relative deadline for each batch.
    pub deadline: Option<SimDuration>,
}

impl QuerySpec {
    /// A plain query with unit weight and no deadline.
    pub fn new(cost: SimDuration) -> Self {
        QuerySpec { cost, weight: 1.0, deadline: None }
    }

    /// Builder: set weight.
    pub fn with_weight(mut self, w: f64) -> Self {
        self.weight = w;
        self
    }

    /// Builder: set relative deadline.
    pub fn with_deadline(mut self, d: SimDuration) -> Self {
        self.deadline = Some(d);
        self
    }
}

/// Scheduling policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Policy {
    /// First come, first served across all queries.
    Fcfs,
    /// Round-robin over queries with pending work.
    RoundRobin,
    /// Shortest (per-batch) job first.
    Sjf,
    /// Earliest deadline first (queries without deadlines sort last).
    Edf,
    /// Serve the query with the greatest `weight × staleness`.
    FreshnessWeighted,
}

impl Policy {
    /// All policies, for sweeps.
    pub const ALL: [Policy; 5] =
        [Policy::Fcfs, Policy::RoundRobin, Policy::Sjf, Policy::Edf, Policy::FreshnessWeighted];

    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            Policy::Fcfs => "fcfs",
            Policy::RoundRobin => "round-robin",
            Policy::Sjf => "sjf",
            Policy::Edf => "edf",
            Policy::FreshnessWeighted => "freshness",
        }
    }
}

/// Results of one scheduling run.
#[derive(Debug)]
pub struct SchedReport {
    /// Batch response times, milliseconds.
    pub response_ms: Histogram,
    /// Output staleness samples (gap between consecutive outputs of the
    /// same query), milliseconds.
    pub staleness_ms: Histogram,
    /// Batches that finished after their deadline.
    pub deadline_misses: u64,
    /// Total batches processed.
    pub batches: u64,
    /// Virtual time when the last batch finished.
    pub makespan: SimTime,
}

/// The multi-query executor simulation.
#[derive(Debug)]
pub struct MultiQueryScheduler {
    specs: Vec<QuerySpec>,
}

impl MultiQueryScheduler {
    /// Create an executor serving the given queries.
    pub fn new(specs: Vec<QuerySpec>) -> Self {
        assert!(!specs.is_empty(), "no queries registered");
        MultiQueryScheduler { specs }
    }

    /// Run the simulation: `arrivals` is a list of `(time, query_index)`
    /// batch arrivals (need not be sorted). Returns the QoS report.
    pub fn run(&self, mut arrivals: Vec<(SimTime, usize)>, policy: Policy) -> SchedReport {
        for &(_, q) in &arrivals {
            assert!(q < self.specs.len(), "arrival for unknown query {q}");
        }
        arrivals.sort_by_key(|&(t, q)| (t, q));
        let n = self.specs.len();
        let mut pending: Vec<VecDeque<SimTime>> = vec![VecDeque::new(); n];
        let mut last_output: Vec<SimTime> = vec![SimTime::ZERO; n];
        let mut next_arrival = 0usize;
        let mut now = SimTime::ZERO;
        let mut rr_cursor = 0usize;

        let mut report = SchedReport {
            response_ms: Histogram::new(),
            staleness_ms: Histogram::new(),
            deadline_misses: 0,
            batches: 0,
            makespan: SimTime::ZERO,
        };

        loop {
            // Admit everything that has arrived by `now`.
            while next_arrival < arrivals.len() && arrivals[next_arrival].0 <= now {
                let (t, q) = arrivals[next_arrival];
                pending[q].push_back(t);
                next_arrival += 1;
            }
            let any_pending = pending.iter().any(|p| !p.is_empty());
            if !any_pending {
                if next_arrival >= arrivals.len() {
                    break; // done
                }
                // Idle until the next arrival.
                now = arrivals[next_arrival].0;
                continue;
            }
            // Pick a query per policy.
            let q = self.pick(policy, &pending, &last_output, now, &mut rr_cursor);
            let arrival = pending[q].pop_front().expect("picked query has work");
            let finish = now.max(arrival) + self.specs[q].cost;
            report.batches += 1;
            report.response_ms.record(finish.since(arrival).as_millis_f64());
            report.staleness_ms.record(finish.since(last_output[q]).as_millis_f64());
            if let Some(d) = self.specs[q].deadline {
                if finish > arrival + d {
                    report.deadline_misses += 1;
                }
            }
            last_output[q] = finish;
            now = finish;
            report.makespan = finish;
        }
        report
    }

    fn pick(
        &self,
        policy: Policy,
        pending: &[VecDeque<SimTime>],
        last_output: &[SimTime],
        now: SimTime,
        rr_cursor: &mut usize,
    ) -> usize {
        let candidates: Vec<usize> =
            (0..pending.len()).filter(|&q| !pending[q].is_empty()).collect();
        debug_assert!(!candidates.is_empty());
        match policy {
            Policy::Fcfs => candidates
                .into_iter()
                .min_by_key(|&q| (pending[q][0], q))
                .expect("nonempty"),
            Policy::RoundRobin => {
                let n = pending.len();
                for step in 0..n {
                    let q = (*rr_cursor + step) % n;
                    if !pending[q].is_empty() {
                        *rr_cursor = (q + 1) % n;
                        return q;
                    }
                }
                unreachable!("candidates nonempty")
            }
            Policy::Sjf => candidates
                .into_iter()
                .min_by_key(|&q| (self.specs[q].cost, q))
                .expect("nonempty"),
            Policy::Edf => candidates
                .into_iter()
                .min_by_key(|&q| {
                    let dl = match self.specs[q].deadline {
                        Some(d) => pending[q][0] + d,
                        None => SimTime::MAX,
                    };
                    (dl, q)
                })
                .expect("nonempty"),
            Policy::FreshnessWeighted => candidates
                .into_iter()
                .max_by(|&a, &b| {
                    let sa = self.specs[a].weight * now.since(last_output[a]).as_millis_f64();
                    let sb = self.specs[b].weight * now.since(last_output[b]).as_millis_f64();
                    sa.total_cmp(&sb).then(b.cmp(&a))
                })
                .expect("nonempty"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mv_common::sample::exp_sample;
    use mv_common::seeded_rng;

    fn ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    /// Heavy-tailed mixed workload: one slow query, several fast ones.
    fn mixed_arrivals() -> (Vec<QuerySpec>, Vec<(SimTime, usize)>) {
        let specs = vec![
            QuerySpec::new(ms(50)),
            QuerySpec::new(ms(2)),
            QuerySpec::new(ms(2)),
            QuerySpec::new(ms(2)),
        ];
        let mut rng = seeded_rng(31);
        let mut arrivals = Vec::new();
        let mut t = 0.0f64;
        for i in 0..400 {
            t += exp_sample(&mut rng, 15.0); // ~66 batches/sec vs capacity
            arrivals.push((SimTime::from_micros((t * 1000.0) as u64), i % 4));
        }
        (specs, arrivals)
    }

    #[test]
    fn all_policies_process_every_batch() {
        let (specs, arrivals) = mixed_arrivals();
        let sched = MultiQueryScheduler::new(specs);
        for p in Policy::ALL {
            let r = sched.run(arrivals.clone(), p);
            assert_eq!(r.batches, 400, "{}", p.name());
            assert!(r.makespan > SimTime::ZERO);
        }
    }

    #[test]
    fn identical_work_makes_identical_makespan() {
        // Total busy time is policy-independent.
        let (specs, arrivals) = mixed_arrivals();
        let sched = MultiQueryScheduler::new(specs);
        let spans: Vec<u64> = Policy::ALL
            .iter()
            .map(|&p| sched.run(arrivals.clone(), p).makespan.as_micros())
            .collect();
        // Makespan can differ slightly only due to idle gaps; with a
        // saturated tail they should coincide.
        let mx = *spans.iter().max().unwrap();
        let mn = *spans.iter().min().unwrap();
        assert!(mx - mn < 100_000, "spans {spans:?}");
    }

    #[test]
    fn sjf_beats_fcfs_on_mean_response_with_heavy_tails() {
        let (specs, arrivals) = mixed_arrivals();
        let sched = MultiQueryScheduler::new(specs);
        let fcfs = sched.run(arrivals.clone(), Policy::Fcfs);
        let sjf = sched.run(arrivals, Policy::Sjf);
        assert!(
            sjf.response_ms.mean() < fcfs.response_ms.mean(),
            "sjf {} vs fcfs {}",
            sjf.response_ms.mean(),
            fcfs.response_ms.mean()
        );
    }

    #[test]
    fn edf_reduces_deadline_misses() {
        // One urgent query with a tight deadline competing with bulk work.
        let specs = vec![
            QuerySpec::new(ms(5)).with_deadline(ms(20)),
            QuerySpec::new(ms(30)),
            QuerySpec::new(ms(30)),
        ];
        let mut arrivals = Vec::new();
        for i in 0..60u64 {
            arrivals.push((SimTime::from_millis(i * 20), 0));
            if i % 2 == 0 {
                arrivals.push((SimTime::from_millis(i * 20), 1));
                arrivals.push((SimTime::from_millis(i * 20 + 1), 2));
            }
        }
        let sched = MultiQueryScheduler::new(specs);
        let fcfs = sched.run(arrivals.clone(), Policy::Fcfs);
        let edf = sched.run(arrivals, Policy::Edf);
        assert!(
            edf.deadline_misses < fcfs.deadline_misses,
            "edf {} vs fcfs {}",
            edf.deadline_misses,
            fcfs.deadline_misses
        );
    }

    #[test]
    fn freshness_policy_prefers_heavy_weights() {
        // Two identical queries, one with 10x weight; under saturation the
        // weighted one should show lower staleness.
        let specs = vec![
            QuerySpec::new(ms(10)).with_weight(10.0),
            QuerySpec::new(ms(10)).with_weight(1.0),
        ];
        let mut arrivals = Vec::new();
        for i in 0..200u64 {
            arrivals.push((SimTime::from_millis(i * 9), (i % 2) as usize));
        }
        let sched = MultiQueryScheduler::new(specs);
        let r = sched.run(arrivals, Policy::FreshnessWeighted);
        assert_eq!(r.batches, 200);
        // Not directly separable from the aggregate histogram; this test
        // just pins down that the policy runs to completion and keeps
        // staleness bounded.
        let mut st = r.staleness_ms.clone();
        assert!(st.p99() < 2000.0, "p99 staleness {}", st.p99());
    }

    #[test]
    fn rr_cycles_fairly() {
        let specs = vec![QuerySpec::new(ms(1)); 3];
        // All arrive at t=0; RR must process 0,1,2,0,1,2…
        let arrivals: Vec<(SimTime, usize)> =
            (0..9).map(|i| (SimTime::ZERO, i % 3)).collect();
        let sched = MultiQueryScheduler::new(specs);
        let r = sched.run(arrivals, Policy::RoundRobin);
        assert_eq!(r.batches, 9);
        // With equal costs and simultaneous arrivals every query's k-th
        // output lands at 3k+offset ms — mean staleness must equal 3 ms
        // steady-state; just sanity-check the mean is below FCFS-worst.
        assert!(r.staleness_ms.mean() <= 4.0);
    }

    #[test]
    #[should_panic(expected = "unknown query")]
    fn arrival_for_unknown_query_panics() {
        let sched = MultiQueryScheduler::new(vec![QuerySpec::new(ms(1))]);
        sched.run(vec![(SimTime::ZERO, 5)], Policy::Fcfs);
    }
}
