#![forbid(unsafe_code)]
//! `mv-stream` — the stream-processing engine.
//!
//! §III observes that the metaverse generates data that "may break the
//! 3Vs", and §IV-G closes with: *"the metaverse produces huge amounts of
//! data, in the form of data streams. … To sustain high stream ingress
//! traffic, data processing operators have to be replicated and run in
//! parallel threads."* This crate provides:
//!
//! * [`record`] — the stream record type flowing through every operator
//!   (timestamped, keyed, space-tagged — the §IV-F unified organization);
//! * [`ops`] — composable operators: map, filter, **interpolate** (the
//!   new operator §IV-G explicitly calls for: *"sensor data may have to
//!   be interpolated … for them to be consumed by the virtual space"*),
//!   tumbling/sliding window aggregation, and a symmetric hash window
//!   join;
//! * [`pipeline`] — single-threaded operator chains plus a key-partitioned
//!   parallel executor built on `crossbeam` channels (operator replication
//!   across threads);
//! * [`sched`] — multi-query QoS scheduling in the style of Sharaf et al.
//!   (the paper's reference \[69\]): FCFS, round-robin, shortest-job-first,
//!   earliest-deadline-first and freshness-weighted policies, with
//!   response-time and staleness accounting (experiment E14).

pub mod ops;
pub mod pipeline;
pub mod record;
pub mod sched;

pub use ops::{AggKind, FilterOp, InterpolateOp, JoinOp, MapOp, Operator, WindowAggOp, WindowKind};
pub use pipeline::{ParallelPipeline, Pipeline};
pub use record::StreamRecord;
pub use sched::{MultiQueryScheduler, Policy, QuerySpec};
