//! The record type flowing through the stream engine.

use mv_common::time::SimTime;
use mv_common::Space;
use serde::{Deserialize, Serialize};

/// One stream element: a timestamped, keyed measurement tagged with the
/// space it originated from.
///
/// The `key` identifies the logical sub-stream (a sensor id, a product id,
/// a player id); operators that group (windows, joins) group by it. The
/// single `value` keeps the engine concrete without a full row model —
/// richer payloads travel through `mv-fusion`'s record model instead.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StreamRecord {
    /// Event time.
    pub ts: SimTime,
    /// Logical sub-stream (sensor/product/player…).
    pub key: u64,
    /// The measurement.
    pub value: f64,
    /// Originating space.
    pub space: Space,
}

impl StreamRecord {
    /// Construct a physical-space record (the common case for sensed data).
    pub fn physical(ts: SimTime, key: u64, value: f64) -> Self {
        StreamRecord { ts, key, value, space: Space::Physical }
    }

    /// Construct a virtual-space record.
    pub fn virtual_(ts: SimTime, key: u64, value: f64) -> Self {
        StreamRecord { ts, key, value, space: Space::Virtual }
    }

    /// Copy with a different value (operators transform immutably).
    pub fn with_value(mut self, value: f64) -> Self {
        self.value = value;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_tag_space() {
        let p = StreamRecord::physical(SimTime::from_millis(1), 7, 3.5);
        assert_eq!(p.space, Space::Physical);
        let v = StreamRecord::virtual_(SimTime::from_millis(1), 7, 3.5);
        assert_eq!(v.space, Space::Virtual);
        assert_eq!(p.with_value(9.0).value, 9.0);
    }
}
