//! Fixture-driven self-tests: every rule against its positive, negative,
//! and `lint:allow` cases, plus the lexer torture file.
//!
//! Expectations live in the fixtures themselves as trailing markers —
//! `//~DENY(rule)` on lines the lint must flag, `//~ALLOWED(rule)` on
//! lines whose finding must be suppressed by a directive — so the tests
//! never hardcode line numbers. A marker comment is not a directive (it
//! contains no `lint:allow`), so it cannot perturb what it annotates.

use mv_lint::rules::lint_source;
use std::collections::BTreeSet;
use std::path::Path;

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures").join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// Parse `//~DENY(rule)` / `//~ALLOWED(rule)` markers into
/// `(line, rule)` sets.
fn markers(src: &str, tag: &str) -> BTreeSet<(usize, String)> {
    let needle = format!("//~{tag}(");
    src.lines()
        .enumerate()
        .filter_map(|(i, text)| {
            let at = text.find(&needle)?;
            let rest = &text[at + needle.len()..];
            let end = rest.find(')')?;
            Some((i + 1, rest[..end].to_string()))
        })
        .collect()
}

/// Lint `name` under `fake_path` and check findings against the markers.
fn check(name: &str, fake_path: &str) {
    let src = fixture(name);
    let findings = lint_source(fake_path, &src);
    let denied: BTreeSet<(usize, String)> = findings
        .iter()
        .filter(|f| !f.is_allowed())
        .map(|f| (f.line as usize, f.rule.to_string()))
        .collect();
    let allowed: BTreeSet<(usize, String)> = findings
        .iter()
        .filter(|f| f.is_allowed())
        .map(|f| (f.line as usize, f.rule.to_string()))
        .collect();
    assert_eq!(denied, markers(&src, "DENY"), "{name}: denied findings vs //~DENY markers");
    assert_eq!(allowed, markers(&src, "ALLOWED"), "{name}: allowed findings vs //~ALLOWED markers");
}

#[test]
fn nondet_iter_positive_negative_and_allow() {
    check("nondet_iter.rs", "crates/fake/src/lib.rs");
}

#[test]
fn wall_clock_positive_negative_and_allow() {
    check("wall_clock.rs", "crates/fake/src/lib.rs");
}

#[test]
fn panic_path_positive_negative_and_allow() {
    // The fake path puts the fixture inside panic-path's scope.
    check("panic_path.rs", "crates/storage/src/wal.rs");
}

#[test]
fn panic_path_is_scoped_to_recovery_paths() {
    // The same violations outside the scoped paths produce nothing —
    // the unused directive inside would fire `unused-allow`, though.
    let src = fixture("panic_path.rs");
    let findings = lint_source("crates/fake/src/lib.rs", &src);
    assert!(
        findings.iter().all(|f| f.rule == "unused-allow"),
        "only the now-unused allow should fire out of scope: {findings:?}"
    );
    assert_eq!(findings.len(), 1);
}

#[test]
fn relaxed_ordering_positive_negative_and_allow() {
    check("relaxed_ordering.rs", "crates/fake/src/lib.rs");
}

#[test]
fn unscoped_spawn_positive_negative_and_allow() {
    check("unscoped_spawn.rs", "crates/fake/src/lib.rs");
}

#[test]
fn float_key_positive_negative_and_allow() {
    check("float_key.rs", "crates/fake/src/lib.rs");
}

#[test]
fn lexer_torture_file_is_finding_free() {
    // Violations hidden in strings, raw strings, char literals, and
    // (nested) comments — plus a directive inside a string literal —
    // must produce nothing at all.
    let src = fixture("lexer_torture.rs");
    let findings = lint_source("crates/fake/src/lib.rs", &src);
    assert!(findings.is_empty(), "lexer leaked a token: {findings:?}");
}

#[test]
fn fixtures_in_test_regions_are_exempt() {
    // The same hash-iteration violation inside #[cfg(test)] is exempt.
    let body = r#"
    use mv_common::hash::FastMap;
    struct S { m: FastMap<u64, u64> }
    impl S {
        fn dump(&self, out: &mut Vec<u64>) {
            for (_, v) in &self.m {
                out.push(*v);
            }
        }
    }
"#;
    let in_test = format!("#[cfg(test)]\nmod tests {{ {body} }}");
    assert!(lint_source("crates/fake/src/lib.rs", &in_test).is_empty());
    // The identical code outside a test region IS flagged — the
    // exemption, not the matcher, is what the first assert exercised.
    let in_prod = format!("mod prod {{ {body} }}");
    let findings = lint_source("crates/fake/src/lib.rs", &in_prod);
    assert!(
        findings.iter().any(|f| f.rule == "nondet-iter"),
        "twin outside cfg(test) must be flagged: {findings:?}"
    );
}
