//! Fixture-driven self-tests: every rule against its positive, negative,
//! and `lint:allow` cases, plus the lexer torture file.
//!
//! Expectations live in the fixtures themselves as trailing markers —
//! `//~DENY(rule)` on lines the lint must flag, `//~ALLOWED(rule)` on
//! lines whose finding must be suppressed by a directive — so the tests
//! never hardcode line numbers. A marker comment is not a directive (it
//! contains no `lint:allow`), so it cannot perturb what it annotates.

use mv_lint::rules::{lint_source, lint_workspace};
use std::collections::BTreeSet;
use std::path::Path;

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures").join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// Parse `//~DENY(rule)` / `//~ALLOWED(rule)` markers into
/// `(line, rule)` sets.
fn markers(src: &str, tag: &str) -> BTreeSet<(usize, String)> {
    let needle = format!("//~{tag}(");
    src.lines()
        .enumerate()
        .filter_map(|(i, text)| {
            let at = text.find(&needle)?;
            let rest = &text[at + needle.len()..];
            let end = rest.find(')')?;
            Some((i + 1, rest[..end].to_string()))
        })
        .collect()
}

/// Lint `name` under `fake_path` and check findings against the markers.
fn check(name: &str, fake_path: &str) {
    let src = fixture(name);
    let findings = lint_source(fake_path, &src);
    let denied: BTreeSet<(usize, String)> = findings
        .iter()
        .filter(|f| !f.is_allowed())
        .map(|f| (f.line as usize, f.rule.to_string()))
        .collect();
    let allowed: BTreeSet<(usize, String)> = findings
        .iter()
        .filter(|f| f.is_allowed())
        .map(|f| (f.line as usize, f.rule.to_string()))
        .collect();
    assert_eq!(denied, markers(&src, "DENY"), "{name}: denied findings vs //~DENY markers");
    assert_eq!(allowed, markers(&src, "ALLOWED"), "{name}: allowed findings vs //~ALLOWED markers");
}

#[test]
fn nondet_iter_positive_negative_and_allow() {
    check("nondet_iter.rs", "crates/fake/src/lib.rs");
}

#[test]
fn wall_clock_positive_negative_and_allow() {
    check("wall_clock.rs", "crates/fake/src/lib.rs");
}

#[test]
fn panic_path_positive_negative_and_allow() {
    // The fake path puts the fixture inside panic-path's scope.
    check("panic_path.rs", "crates/storage/src/wal.rs");
}

#[test]
fn panic_path_is_scoped_to_recovery_paths() {
    // The same violations outside the scoped paths produce nothing —
    // the unused directive inside would fire `unused-allow`, though.
    let src = fixture("panic_path.rs");
    let findings = lint_source("crates/fake/src/lib.rs", &src);
    assert!(
        findings.iter().all(|f| f.rule == "unused-allow"),
        "only the now-unused allow should fire out of scope: {findings:?}"
    );
    assert_eq!(findings.len(), 1);
}

#[test]
fn relaxed_ordering_positive_negative_and_allow() {
    check("relaxed_ordering.rs", "crates/fake/src/lib.rs");
}

#[test]
fn unscoped_spawn_positive_negative_and_allow() {
    check("unscoped_spawn.rs", "crates/fake/src/lib.rs");
}

#[test]
fn float_key_positive_negative_and_allow() {
    check("float_key.rs", "crates/fake/src/lib.rs");
}

#[test]
fn lexer_torture_file_is_finding_free() {
    // Violations hidden in strings, raw strings, char literals, and
    // (nested) comments — plus a directive inside a string literal —
    // must produce nothing at all.
    let src = fixture("lexer_torture.rs");
    let findings = lint_source("crates/fake/src/lib.rs", &src);
    assert!(findings.is_empty(), "lexer leaked a token: {findings:?}");
}

#[test]
fn fixtures_in_test_regions_are_exempt() {
    // The same hash-iteration violation inside #[cfg(test)] is exempt.
    let body = r#"
    use mv_common::hash::FastMap;
    struct S { m: FastMap<u64, u64> }
    impl S {
        fn dump(&self, out: &mut Vec<u64>) {
            for (_, v) in &self.m {
                out.push(*v);
            }
        }
    }
"#;
    let in_test = format!("#[cfg(test)]\nmod tests {{ {body} }}");
    assert!(lint_source("crates/fake/src/lib.rs", &in_test).is_empty());
    // The identical code outside a test region IS flagged — the
    // exemption, not the matcher, is what the first assert exercised.
    let in_prod = format!("mod prod {{ {body} }}");
    let findings = lint_source("crates/fake/src/lib.rs", &in_prod);
    assert!(
        findings.iter().any(|f| f.rule == "nondet-iter"),
        "twin outside cfg(test) must be flagged: {findings:?}"
    );
}

#[test]
fn lock_order_positive_negative_and_allow() {
    check("lock_order.rs", "crates/fake/src/lock_order.rs");
}

#[test]
fn guard_across_sync_positive_negative_and_allow() {
    // The fake path puts the fixture inside the rule's hot-path scope.
    check("guard_across_sync.rs", "crates/core/src/fake_gas.rs");
}

#[test]
fn guard_across_sync_is_scoped_to_hot_paths() {
    // The same held-guard boundary crossings outside the scoped paths
    // produce nothing (the now-unused allow fires instead).
    let src = fixture("guard_across_sync.rs");
    let findings = lint_source("crates/fake/src/lib.rs", &src);
    assert!(
        findings.iter().all(|f| f.rule == "unused-allow"),
        "only the unused allow should fire out of scope: {findings:?}"
    );
}

#[test]
fn span_leak_positive_negative_and_allow() {
    check("span_leak.rs", "crates/fake/src/span_leak.rs");
}

#[test]
fn cast_truncation_positive_negative_and_allow() {
    check("cast_truncation.rs", "crates/storage/src/codec.rs");
}

#[test]
fn cast_truncation_is_scoped_to_codec_paths() {
    let src = fixture("cast_truncation.rs");
    let findings = lint_source("crates/fake/src/lib.rs", &src);
    assert!(
        findings.iter().all(|f| f.rule == "unused-allow"),
        "only the unused allow should fire out of scope: {findings:?}"
    );
}

/// The acceptance-criteria proof that flat token matching is
/// insufficient: each half of the cross-file fixture is clean alone
/// (the A->B and B->A acquisition orders live in *separate functions
/// of separate files*), and only the workspace call graph composes
/// them into a cycle.
#[test]
fn interprocedural_cycle_needs_the_call_graph() {
    let a = fixture("lock_order_a.rs");
    let b = fixture("lock_order_b.rs");
    let pa = "crates/fake/src/lock_order_a.rs".to_string();
    let pb = "crates/fake/src/lock_order_b.rs".to_string();

    // Each file alone: no lock-order findings at all.
    for (p, s) in [(&pa, &a), (&pb, &b)] {
        let alone = lint_source(p, s);
        assert!(
            alone.iter().all(|f| f.rule != "lock-order"),
            "{p} alone must be clean — the cycle is interprocedural: {alone:?}"
        );
    }

    // Together: the composed graph yields the {Sys.a, Sys.b} cycle.
    let both = lint_workspace(&[(pa.clone(), a), (pb.clone(), b)]);
    let cycles: Vec<_> = both
        .iter()
        .filter(|f| f.rule == "lock-order" && f.message.contains("cycle"))
        .collect();
    assert_eq!(cycles.len(), 1, "exactly one cycle finding: {both:?}");
    let c = cycles[0];
    assert!(c.message.contains("Sys.a") && c.message.contains("Sys.b"), "{}", c.message);
    // The evidence chain spans both files — that is the witness that
    // no single-file view could have produced the finding.
    let ev_paths: std::collections::BTreeSet<&str> =
        c.evidence.iter().map(|e| e.path.as_str()).collect();
    assert!(ev_paths.contains(pa.as_str()) && ev_paths.contains(pb.as_str()), "{c:?}");
}

/// The parser torture file: nested closures, match guards, early
/// returns, fn-trait bounds, trait defaults, nested fn items, labeled
/// loops. The item tree must come out exactly right, and no rule may
/// misfire on any of it.
#[test]
fn parser_torture_fixture() {
    let src = fixture("parser_torture.rs");
    let unit = mv_lint::parse::FileUnit::build("crates/fake/src/lib.rs", &src);
    let items: Vec<(String, Option<String>, bool)> = unit
        .fns
        .iter()
        .map(|f| (f.name.clone(), f.qual.clone(), f.body.is_some()))
        .collect();
    let want: Vec<(String, Option<String>, bool)> = [
        ("free_fn", None, true),
        ("call", Some("Outer"), true),
        ("helper", Some("Outer"), true), // nested fn: inherits the impl qual (documented)
        ("chained", Some("Outer"), true),
        ("area", Some("Shape"), false), // trait method declaration: no body
        ("doubled", Some("Shape"), true),
        ("area", Some("Outer"), true), // trait impl: qualified by the target type
        ("returns_opaque", None, true),
        ("takes_opaque", None, true),
        ("drop", Some("Outer"), true),
    ]
    .into_iter()
    .map(|(n, q, b)| (n.to_string(), q.map(str::to_string), b))
    .collect();
    assert_eq!(items, want);

    let findings = lint_source("crates/fake/src/lib.rs", &src);
    assert!(findings.is_empty(), "torture file must be finding-free: {findings:?}");
}

/// Two workspace runs over the same inputs emit byte-identical JSONL —
/// the determinism the v2 schema promises.
#[test]
fn workspace_report_is_deterministic() {
    let inputs: Vec<(String, String)> = [
        ("crates/fake/src/lock_order.rs", fixture("lock_order.rs")),
        ("crates/fake/src/lock_order_a.rs", fixture("lock_order_a.rs")),
        ("crates/fake/src/lock_order_b.rs", fixture("lock_order_b.rs")),
        ("crates/core/src/fake_gas.rs", fixture("guard_across_sync.rs")),
        ("crates/fake/src/span_leak.rs", fixture("span_leak.rs")),
        ("crates/storage/src/codec.rs", fixture("cast_truncation.rs")),
    ]
    .into_iter()
    .map(|(p, s)| (p.to_string(), s))
    .collect();
    let run = || mv_lint::report::findings_to_jsonl(&lint_workspace(&inputs));
    let first = run();
    assert_eq!(first, run(), "same inputs must yield byte-identical JSONL");
    assert!(first.starts_with("{\"kind\":\"lint-meta\",\"schema\":\"mv-lint/v2\""));
}
