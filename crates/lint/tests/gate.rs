//! End-to-end gate tests: run the real `mv-lint` binary against a
//! scratch workspace and check the exit codes CI depends on — clean
//! tree passes, injected violation fails, baseline drift fails.

use std::path::{Path, PathBuf};
use std::process::Command;

struct Scratch {
    root: PathBuf,
}

impl Scratch {
    /// A minimal one-crate workspace under the target dir (unique per
    /// test so parallel tests never collide).
    fn new(tag: &str) -> Scratch {
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("target")
            .join("gate-scratch")
            .join(format!("{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        std::fs::create_dir_all(root.join("crates/app/src")).expect("mkdir scratch");
        std::fs::write(root.join("Cargo.toml"), "[workspace]\nmembers = [\"crates/*\"]\n")
            .expect("write workspace manifest");
        std::fs::write(
            root.join("crates/app/src/lib.rs"),
            "pub fn ok(a: u64, b: u64) -> u64 { a + b }\n",
        )
        .expect("write lib.rs");
        Scratch { root }
    }

    fn write(&self, rel: &str, content: &str) {
        std::fs::write(self.root.join(rel), content).expect("write scratch file");
    }

    fn lint(&self, extra: &[&str]) -> std::process::Output {
        Command::new(env!("CARGO_BIN_EXE_mv-lint"))
            .arg("--deny")
            .args(extra)
            .arg(&self.root)
            .output()
            .expect("run mv-lint")
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.root);
    }
}

#[test]
fn clean_workspace_exits_zero() {
    let ws = Scratch::new("clean");
    let out = ws.lint(&[]);
    assert!(out.status.success(), "stdout: {}", String::from_utf8_lossy(&out.stdout));
}

#[test]
fn injected_violation_fails_the_gate() {
    let ws = Scratch::new("inject");
    // The CI canary: drop a file with a violation into the tree — it is
    // linted even though no `mod` includes it (filesystem walk).
    ws.write(
        "crates/app/src/canary.rs",
        "use std::time::Instant;\npub fn t() -> Instant { Instant::now() }\n",
    );
    let out = ws.lint(&[]);
    assert!(!out.status.success(), "gate must fail on the injected violation");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("canary.rs"), "finding names the file: {stdout}");
    assert!(stdout.contains("wall-clock"), "finding names the rule: {stdout}");
}

#[test]
fn allow_directive_passes_but_baseline_drift_fails() {
    let ws = Scratch::new("baseline");
    ws.write(
        "crates/app/src/timed.rs",
        "use std::time::Instant;\n\
         pub fn t() -> f64 {\n\
             // lint:allow(wall-clock): scratch-test justification\n\
             let t0 = Instant::now();\n\
             t0.elapsed().as_secs_f64()\n\
         }\n",
    );
    // Allowed finding: the gate passes…
    let out = ws.lint(&[]);
    assert!(out.status.success(), "stdout: {}", String::from_utf8_lossy(&out.stdout));

    // …and --write-baseline records one wall-clock allow.
    let baseline = ws.root.join("allows.txt");
    let out = ws.lint(&["--write-baseline", baseline.to_str().expect("utf8 path")]);
    assert!(out.status.success());
    let recorded = std::fs::read_to_string(&baseline).expect("baseline written");
    assert!(recorded.contains("wall-clock 1"), "baseline records the allow: {recorded}");

    // Against that baseline the gate passes; add a second allow and the
    // count drifts, so the gate fails until the baseline is regenerated.
    let baseline_arg = baseline.to_str().expect("utf8 path");
    assert!(ws.lint(&["--baseline", baseline_arg]).status.success());
    ws.write(
        "crates/app/src/timed2.rs",
        "use std::time::Instant;\n\
         pub fn t2() -> Instant {\n\
             // lint:allow(wall-clock): second scratch justification\n\
             Instant::now()\n\
         }\n",
    );
    let out = ws.lint(&["--baseline", baseline_arg]);
    assert!(!out.status.success(), "allow-count drift must fail the gate");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("baseline"), "drift is reported: {stdout}");
}

#[test]
fn bad_allow_fails_even_with_deny_satisfied() {
    let ws = Scratch::new("bad-allow");
    // A reason-less directive is itself a finding (bad-allow), and the
    // meta-rule cannot be allowed away.
    ws.write(
        "crates/app/src/sloppy.rs",
        "use std::time::Instant;\n\
         pub fn t() -> Instant {\n\
             // lint:allow(wall-clock)\n\
             Instant::now()\n\
         }\n",
    );
    let out = ws.lint(&[]);
    assert!(!out.status.success(), "reason-less allow must fail the gate");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("bad-allow"), "meta-rule fires: {stdout}");
}

#[test]
fn injected_lock_order_cycle_fails_the_gate() {
    let ws = Scratch::new("lock-order");
    // Two functions with opposite two-mutex acquisition orders: the
    // cycle only exists in the composed order graph.
    ws.write(
        "crates/app/src/locks.rs",
        "pub struct Pair { a: Mutex<u64>, b: Mutex<u64> }\n\
         impl Pair {\n\
             pub fn fwd(&self) -> u64 { let g = self.a.lock(); *g + *self.b.lock() }\n\
             pub fn bwd(&self) -> u64 { let g = self.b.lock(); *g + *self.a.lock() }\n\
         }\n",
    );
    let out = ws.lint(&[]);
    assert!(!out.status.success(), "gate must fail on the injected cycle");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("lock-order"), "finding names the rule: {stdout}");
    assert!(stdout.contains("Pair.a") && stdout.contains("Pair.b"), "{stdout}");
}

#[test]
fn injected_span_leak_fails_the_gate() {
    let ws = Scratch::new("span-leak");
    ws.write(
        "crates/app/src/traced.rs",
        "pub fn tick(t: &SharedTracer, at: SimTime) {\n\
             let ctx = t.start_trace(\"tick\", at);\n\
             work();\n\
         }\n",
    );
    let out = ws.lint(&[]);
    assert!(!out.status.success(), "gate must fail on the leaked span");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("span-leak"), "finding names the rule: {stdout}");
}

#[test]
fn injected_cast_truncation_fails_the_gate() {
    let ws = Scratch::new("cast");
    // The rule is path-scoped to codec/recovery files; the scratch file
    // sits at one of them.
    std::fs::create_dir_all(ws.root.join("crates/raft/src")).expect("mkdir raft");
    ws.write(
        "crates/raft/src/wire.rs",
        "pub fn frame(buf: &[u8], out: &mut Vec<u8>) {\n\
             let len = buf.len() as u32;\n\
             out.extend_from_slice(&len.to_le_bytes());\n\
         }\n",
    );
    let out = ws.lint(&[]);
    assert!(!out.status.success(), "gate must fail on the narrowing cast");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("cast-truncation"), "finding names the rule: {stdout}");
}

#[test]
fn jsonl_output_is_byte_identical_across_runs() {
    let ws = Scratch::new("jsonl-det");
    ws.write(
        "crates/app/src/locks.rs",
        "pub struct Pair { a: Mutex<u64>, b: Mutex<u64> }\n\
         impl Pair {\n\
             pub fn fwd(&self) -> u64 { let g = self.a.lock(); *g + *self.b.lock() }\n\
             pub fn bwd(&self) -> u64 { let g = self.b.lock(); *g + *self.a.lock() }\n\
         }\n",
    );
    let run = || {
        let out = Command::new(env!("CARGO_BIN_EXE_mv-lint"))
            .args(["--jsonl", "-"])
            .arg(&ws.root)
            .output()
            .expect("run mv-lint");
        out.stdout
    };
    let first = run();
    assert_eq!(first, run(), "two runs must emit byte-identical JSONL");
    let text = String::from_utf8(first).expect("utf8 jsonl");
    let meta = text.lines().next().expect("meta line");
    assert!(meta.starts_with("{\"kind\":\"lint-meta\",\"schema\":\"mv-lint/v2\""), "{meta}");
    assert!(text.contains("\"evidence\":[{"), "findings carry evidence chains: {text}");
}
