//! Workspace walking: find the `.rs` files the rules should see.
//!
//! The walk is filesystem-based, not module-graph-based — a file that
//! exists but is not `mod`-included still gets linted, which is exactly
//! what the CI canary test relies on. Skipped wholesale: `target/`
//! (build output), `vendor/` (offline substitutes for crates.io deps —
//! not ours), `.git/`, and any directory named `fixtures` (the lint's
//! own deliberately-violating test inputs).

use std::fs;
use std::path::{Path, PathBuf};

/// Directories never descended into.
const SKIP_DIRS: &[&str] = &["target", "vendor", ".git", "fixtures"];

/// Find the workspace root: walk up from `start` to the first directory
/// whose `Cargo.toml` contains a `[workspace]` table.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start);
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d.to_path_buf());
            }
        }
        dir = d.parent();
    }
    None
}

/// All lintable `.rs` files under `root`, workspace-relative with `/`
/// separators, sorted (deterministic reports, of course).
pub fn rust_files(root: &Path) -> std::io::Result<Vec<String>> {
    let mut out = Vec::new();
    walk(root, root, &mut out)?;
    out.sort();
    Ok(out)
}

fn walk(root: &Path, dir: &Path, out: &mut Vec<String>) -> std::io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            walk(root, &path, out)?;
        } else if name.ends_with(".rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                out.push(rel.to_string_lossy().replace('\\', "/"));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workspace_root_is_found_from_this_crate() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = find_workspace_root(here).expect("workspace root");
        assert!(root.join("crates/lint/src/lib.rs").exists());
    }

    #[test]
    fn walk_skips_vendor_and_fixtures() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = find_workspace_root(here).unwrap();
        let files = rust_files(&root).unwrap();
        assert!(files.iter().any(|f| f == "crates/lint/src/lib.rs"));
        assert!(!files.iter().any(|f| f.starts_with("vendor/")), "vendor skipped");
        assert!(!files.iter().any(|f| f.contains("fixtures/")), "fixtures skipped");
        assert!(!files.iter().any(|f| f.starts_with("target/")), "target skipped");
    }
}
