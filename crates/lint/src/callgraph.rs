//! The interprocedural layer: symbol table, call graph, and the
//! analyses that need them.
//!
//! Built on [`crate::parse`]'s item tree, this module powers the rules
//! that cannot be expressed over a single flat token stream:
//!
//! * `lock-order` — per-function lockset tracking (which guards are
//!   live at which tokens), a *global* lock-acquisition-order graph
//!   composed through the call graph, cycle detection over that graph
//!   (reported as potential deadlocks), and same-lock re-entry.
//! * `guard-across-sync` — a lock guard live across a blocking
//!   boundary (WAL sync / group-commit seal, transport send), directly
//!   or through a callee that may block.
//! * interprocedural `panic-path` — any function reachable from a
//!   recovery/decode entry point (a function defined in one of the
//!   rule's scoped files) inherits the panic-path discipline, with the
//!   witness call chain attached as evidence.
//!
//! Name resolution is heuristic and says so: `self.m(…)` resolves via
//! the enclosing `impl`'s type name, `Type::m(…)` via the qualifier,
//! and anything else by bare name — but only when the workspace defines
//! at most [`AMBIGUITY_CAP`] functions with that name. Wildly shared
//! names (`new`, `get`, `len`) therefore never create edges, which
//! bounds both false cycles and the panic-path blast radius. Lock
//! identity is `Type.field` (or the bare receiver chain): it is
//! *instance-blind*, so two instances of one type alias into one lock —
//! a same-id overlap on provably distinct instances needs an allow.

use crate::parse::{matching, FileUnit};
use crate::rules::{panic_sites, path_in_scope, spec, Evidence, RawFinding};
use crate::lexer::{Tok, Token};
use std::collections::{BTreeMap, BTreeSet};

/// Bare-name call resolution gives up when the workspace defines more
/// than this many functions with the name — shared names like `new`
/// or `get` would otherwise wire the whole workspace together.
pub const AMBIGUITY_CAP: usize = 3;

/// Method names that *are* a blocking boundary: the WAL fsync paths
/// and the reliable-transport send. `may_block` propagates through the
/// call graph from these.
const BLOCKING: &[&str] = &["sync", "send", "send_traced"];

/// One function known to the workspace symbol table.
struct FnMeta {
    file: usize,
    name: String,
    qual: Option<String>,
    body: (usize, usize),
    line: u32,
}

/// How a call site names its callee.
enum Recv {
    /// `self.m(…)` or `Self::m(…)` — resolve via the enclosing impl.
    SelfQual,
    /// `Type::m(…)` — resolve via `Type` only (no bare fallback:
    /// `u32::try_from` must not link to an unrelated `try_from`).
    Path(String),
    /// `x.m(…)` or free `m(…)` — bare-name resolution, capped.
    Bare,
    /// `….lock().m(…)` — a method on a lock *guard*. The callee lives
    /// on the inner type, which the lexer cannot name; bare-name
    /// resolution would alias the wrapper's own delegating method
    /// (`SharedTracer::close` → `guard.close(…)`) and fabricate
    /// self-deadlocks. Never resolved.
    Guard,
}

struct CallSite {
    tok: usize,
    line: u32,
    name: String,
    recv: Recv,
}

/// Keywords and control-flow words that look like `name(` but are not
/// calls.
const NOT_CALLS: &[&str] = &[
    "if", "while", "for", "match", "loop", "return", "as", "in", "let", "fn", "move", "ref",
    "mut", "where", "impl", "use", "pub", "mod", "const", "static", "type", "trait", "enum",
    "struct", "else", "break", "continue", "unsafe", "dyn", "box", "await",
];

/// Std-prelude/iterator/slice method names that shadow workspace fns.
/// A bare *method* call `x.collect(…)` is overwhelmingly a std call,
/// so resolving it to the one workspace fn that happens to share the
/// name (`FederatedSim::collect`, `Dsu::find`, `ChordRing::join`, …)
/// fabricates edges. Method-form bare resolution skips these; `self.m`
/// and `Type::m` calls still resolve precisely, so a genuine
/// `self.collect()` keeps its edge.
const STD_SHADOWED: &[&str] = &[
    "collect", "find", "join", "windows", "chunks", "map", "filter", "filter_map", "flat_map",
    "fold", "next", "iter", "get", "insert", "remove", "push", "pop", "len", "clone", "take",
    "extend", "contains", "position", "last", "count", "split", "rsplit", "trim", "parse",
    "sum", "rev", "zip", "chain", "flatten", "any", "all", "min", "max", "retain", "drain",
    "clear", "resize", "sort", "starts_with", "ends_with", "enumerate", "skip", "peekable",
    "and_then", "map_err", "ok_or", "unwrap_or", "unwrap_or_else", "unwrap_or_default",
];

/// A lock acquisition and the token range its guard stays live for.
struct Acq {
    tok: usize,
    line: u32,
    /// Lock identity: `Type.field` for `self.field.lock()` receivers,
    /// else the raw receiver chain.
    id: String,
    /// Last token index (inclusive) at which the guard is live.
    end: usize,
}

pub(crate) struct Workspace<'a> {
    units: &'a [FileUnit],
    fns: Vec<FnMeta>,
    by_name: BTreeMap<String, Vec<usize>>,
    by_qual: BTreeMap<(String, String), Vec<usize>>,
}

impl<'a> Workspace<'a> {
    pub(crate) fn build(units: &'a [FileUnit]) -> Workspace<'a> {
        let mut fns = Vec::new();
        for (fi, u) in units.iter().enumerate() {
            if u.whole_file_test {
                continue;
            }
            for item in &u.fns {
                let (Some(body), false) = (item.body, item.in_test) else { continue };
                fns.push(FnMeta {
                    file: fi,
                    name: item.name.clone(),
                    qual: item.qual.clone(),
                    body,
                    line: item.line,
                });
            }
        }
        let mut by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        let mut by_qual: BTreeMap<(String, String), Vec<usize>> = BTreeMap::new();
        for (id, f) in fns.iter().enumerate() {
            by_name.entry(f.name.clone()).or_default().push(id);
            if let Some(q) = &f.qual {
                by_qual.entry((q.clone(), f.name.clone())).or_default().push(id);
            }
        }
        Workspace { units, fns, by_name, by_qual }
    }

    fn toks(&self, f: usize) -> &[Token] {
        &self.units[self.fns[f].file].toks
    }

    fn path(&self, f: usize) -> &str {
        &self.units[self.fns[f].file].path
    }

    fn label(&self, f: usize) -> String {
        match &self.fns[f].qual {
            Some(q) => format!("{q}::{}", self.fns[f].name),
            None => self.fns[f].name.clone(),
        }
    }

    /// Call sites inside `f`'s body, in token order.
    fn call_sites(&self, f: usize) -> Vec<CallSite> {
        let toks = self.toks(f);
        let (b0, b1) = self.fns[f].body;
        let mut out = Vec::new();
        for k in b0 + 1..b1 {
            let Some(name) = toks[k].ident() else { continue };
            if !toks.get(k + 1).is_some_and(|t| t.is_punct('(')) {
                continue;
            }
            if !name.starts_with(|c: char| c.is_ascii_lowercase() || c == '_')
                || NOT_CALLS.contains(&name)
            {
                continue;
            }
            let recv = if k >= 1 && toks[k - 1].is_punct('.') {
                if k >= 2 && toks[k - 2].ident() == Some("self") {
                    Recv::SelfQual
                } else if (k >= 2
                    && toks[k - 2].is_punct(')')
                    && recv_chain(toks, k - 2).is_some_and(|c| {
                        matches!(
                            c.last().map(String::as_str),
                            Some("lock()" | "read()" | "write()")
                        )
                    }))
                    || STD_SHADOWED.contains(&name)
                {
                    // Guard-receiver or std-shadowed method name: never
                    // resolved against the workspace symbol table.
                    Recv::Guard
                } else {
                    Recv::Bare
                }
            } else if k >= 2 && toks[k - 1].is_punct(':') && toks[k - 2].is_punct(':') {
                match toks.get(k.wrapping_sub(3)).and_then(|t| t.ident()) {
                    Some("Self") => Recv::SelfQual,
                    Some(t) => Recv::Path(t.to_string()),
                    None => Recv::Bare,
                }
            } else {
                Recv::Bare
            };
            out.push(CallSite { tok: k, line: toks[k].line, name: name.to_string(), recv });
        }
        out
    }

    /// Resolve one call site to workspace function ids (possibly
    /// several — every impl of an ambiguous-but-under-cap name).
    fn resolve(&self, caller: usize, cs: &CallSite) -> Vec<usize> {
        let bare = || -> Vec<usize> {
            match self.by_name.get(&cs.name) {
                Some(v) if v.len() <= AMBIGUITY_CAP => v.clone(),
                _ => Vec::new(),
            }
        };
        match &cs.recv {
            Recv::SelfQual => match &self.fns[caller].qual {
                Some(q) => match self.by_qual.get(&(q.clone(), cs.name.clone())) {
                    Some(v) => v.clone(),
                    None => bare(),
                },
                None => bare(),
            },
            Recv::Path(t) => {
                self.by_qual.get(&(t.clone(), cs.name.clone())).cloned().unwrap_or_default()
            }
            Recv::Bare => bare(),
            Recv::Guard => Vec::new(),
        }
    }

    /// Lock acquisitions (and guard live ranges) inside `f`'s body.
    fn lock_acqs(&self, f: usize) -> Vec<Acq> {
        let toks = self.toks(f);
        let (b0, b1) = self.fns[f].body;
        let mut out = Vec::new();
        for k in b0 + 1..b1 {
            if !matches!(toks[k].ident(), Some("lock" | "read" | "write")) {
                continue;
            }
            // `.lock()` / `.read()` / `.write()` with *empty* argument
            // lists — `file.write(buf)` is io, not a lock.
            if !(k >= 1
                && toks[k - 1].is_punct('.')
                && toks.get(k + 1).is_some_and(|t| t.is_punct('('))
                && toks.get(k + 2).is_some_and(|t| t.is_punct(')')))
            {
                continue;
            }
            let Some(chain) = recv_chain(toks, k - 2) else { continue };
            let id = if chain.first().map(String::as_str) == Some("self") {
                let qual = self.fns[f].qual.clone().unwrap_or_else(|| self.fns[f].name.clone());
                if chain.len() > 1 {
                    format!("{qual}.{}", chain[1..].join("."))
                } else {
                    qual
                }
            } else {
                chain.join(".")
            };
            let end = guard_end(toks, k, b1);
            out.push(Acq { tok: k, line: toks[k].line, id, end });
        }
        out
    }
}

/// Walk a `.lock()` receiver chain backwards from token `j` (the last
/// token of the receiver). Returns the dotted components in source
/// order, e.g. `self.merge_scratch.lock()` → `["self","merge_scratch"]`
/// and `self.shard(i).lock()` → `["self","shard()"]`.
fn recv_chain(toks: &[Token], j: usize) -> Option<Vec<String>> {
    let mut j = j;
    let mut parts: Vec<String> = Vec::new();
    loop {
        match &toks.get(j)?.kind {
            Tok::Ident(w) => parts.push(w.clone()),
            Tok::Num => parts.push("0".into()), // tuple-struct field (`self.0.lock()`)
            Tok::Punct(')') => {
                // Method/call result receiver: skip the argument group,
                // keep the method name with a `()` marker.
                let mut depth = 0i32;
                let mut k = j;
                loop {
                    let t = toks.get(k)?;
                    if t.is_punct(')') {
                        depth += 1;
                    } else if t.is_punct('(') {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    k = k.checked_sub(1)?;
                }
                let name = toks.get(k.checked_sub(1)?)?.ident()?;
                parts.push(format!("{name}()"));
                j = k - 1;
            }
            _ => return None,
        }
        if parts.last().map(String::as_str) == Some("self") {
            break;
        }
        if j >= 2 && toks[j - 1].is_punct('.') {
            j -= 2;
        } else {
            break;
        }
    }
    parts.reverse();
    Some(parts)
}

/// Last token index (inclusive) at which the guard acquired at `k`
/// stays live.
///
/// * plain `let g = …lock();` — to the end of the enclosing block, or
///   to an explicit `drop(g)`;
/// * `if let`/`while let … = …lock()` — to the end of the header's
///   body block;
/// * `match …lock() { … }` — to the end of the match block (scrutinee
///   temporaries live through every arm);
/// * any other temporary — to the end of its own statement (`;`, a
///   match-arm `,`, or the `{` of an `if`/`while` header).
fn guard_end(toks: &[Token], k: usize, body_close: usize) -> usize {
    // Find the statement start and classify the binding form.
    let mut s = k;
    while s > 0 {
        match toks[s - 1].kind {
            Tok::Punct(';') | Tok::Punct('{') | Tok::Punct('}') => break,
            _ => s -= 1,
        }
    }
    let mut w = s;
    let mut is_let = false;
    let mut header = false; // `if let` / `while let`: scope is the body block
    let mut is_match = false;
    while w < k {
        match toks[w].ident() {
            Some("let") => {
                is_let = true;
                break;
            }
            Some("match") => {
                is_match = true;
                break;
            }
            Some("if" | "while" | "else") => {
                header = true;
                w += 1;
            }
            None => w += 1,
            Some(_) => break,
        }
    }
    // Match scrutinee (or a header-scoped let): live to the end of the
    // first `{ … }` block after the acquisition.
    if is_match || (is_let && header) {
        let mut depth = 0i32;
        for (i, t) in toks.iter().enumerate().take(body_close + 1).skip(k) {
            match t.kind {
                Tok::Punct('(') | Tok::Punct('[') => depth += 1,
                Tok::Punct(')') | Tok::Punct(']') => depth -= 1,
                Tok::Punct('{') if depth <= 0 => {
                    return matching(toks, i, '{', '}').unwrap_or(body_close);
                }
                _ => {}
            }
        }
        return body_close;
    }
    // Guard binding name: first plain lowercase ident after `let` that
    // is not a binding-mode keyword or a constructor.
    let guard_name = if is_let {
        (w + 1..k).find_map(|i| match toks[i].ident() {
            Some("mut" | "ref" | "Some" | "Ok" | "Err" | "None") => None,
            Some(n) if n.starts_with(|c: char| c.is_ascii_lowercase() || c == '_') => Some(n),
            _ => None,
        })
    } else {
        None
    };
    let mut depth = 0i32;
    let mut i = k;
    while i <= body_close {
        match toks[i].kind {
            Tok::Punct('(') | Tok::Punct('[') => depth += 1,
            Tok::Punct(')') | Tok::Punct(']') => depth -= 1,
            Tok::Punct('{') => {
                if !is_let && depth <= 0 {
                    return i; // temporary in an if/while header
                }
                depth += 1;
            }
            Tok::Punct('}') => {
                depth -= 1;
                if depth < 0 {
                    return i; // enclosing block closes: guard dropped
                }
            }
            Tok::Punct(';') | Tok::Punct(',') if !is_let && depth <= 0 => {
                return i; // temporary: end of its own statement/arm
            }
            _ => {
                if let (Some(g), Some("drop")) = (guard_name, toks[i].ident()) {
                    if toks.get(i + 1).is_some_and(|t| t.is_punct('('))
                        && toks.get(i + 2).and_then(|t| t.ident()) == Some(g)
                        && toks.get(i + 3).is_some_and(|t| t.is_punct(')'))
                    {
                        return i;
                    }
                }
            }
        }
        i += 1;
    }
    body_close
}

/// Fixpoint of a per-function set property over the call graph:
/// `out[f] = own[f] ∪ ⋃ out[callee]`.
fn fixpoint_union(
    ws: &Workspace<'_>,
    own: &[BTreeSet<String>],
    edges: &[Vec<usize>],
) -> Vec<BTreeSet<String>> {
    let mut out: Vec<BTreeSet<String>> = own.to_vec();
    loop {
        let mut changed = false;
        for f in 0..ws.fns.len() {
            let mut add: Vec<String> = Vec::new();
            for &g in &edges[f] {
                for id in &out[g] {
                    if !out[f].contains(id) {
                        add.push(id.clone());
                    }
                }
            }
            if !add.is_empty() {
                changed = true;
                out[f].extend(add);
            }
        }
        if !changed {
            return out;
        }
    }
}

/// Run every interprocedural analysis and return raw findings keyed by
/// file index. Deterministic: functions are visited in (path, token)
/// order and all maps are BTree-based.
pub(crate) fn global_findings(units: &[FileUnit]) -> Vec<(usize, RawFinding)> {
    let ws = Workspace::build(units);
    let mut out: Vec<(usize, RawFinding)> = Vec::new();

    // Per-function facts, computed once.
    let acqs: Vec<Vec<Acq>> = (0..ws.fns.len()).map(|f| ws.lock_acqs(f)).collect();
    let calls: Vec<Vec<CallSite>> = (0..ws.fns.len()).map(|f| ws.call_sites(f)).collect();
    let resolved: Vec<Vec<Vec<usize>>> = (0..ws.fns.len())
        .map(|f| calls[f].iter().map(|c| ws.resolve(f, c)).collect())
        .collect();
    let edges: Vec<Vec<usize>> = resolved
        .iter()
        .map(|per_call| {
            let mut e: Vec<usize> = per_call.iter().flatten().copied().collect();
            e.sort_unstable();
            e.dedup();
            e
        })
        .collect();

    // may_acquire: lock ids each function (transitively) acquires.
    let own_locks: Vec<BTreeSet<String>> =
        acqs.iter().map(|a| a.iter().map(|q| q.id.clone()).collect()).collect();
    let may_acquire = fixpoint_union(&ws, &own_locks, &edges);

    // First acquisition site per lock id (for evidence), in file order.
    let mut first_site: BTreeMap<&str, (&str, u32)> = BTreeMap::new();
    for (f, fn_acqs) in acqs.iter().enumerate() {
        for a in fn_acqs {
            first_site.entry(&a.id).or_insert((ws.path(f), a.line));
        }
    }

    // may_block: reaches a blocking boundary call.
    let own_block: Vec<BTreeSet<String>> = calls
        .iter()
        .map(|cs| {
            cs.iter()
                .filter(|c| BLOCKING.contains(&c.name.as_str()))
                .map(|c| c.name.clone())
                .collect()
        })
        .collect();
    let may_block = fixpoint_union(&ws, &own_block, &edges);

    // ---- lock-order + guard-across-sync -----------------------------
    // Edge map over lock ids; first witness wins (file order).
    let mut lock_edges: BTreeMap<(String, String), Vec<Evidence>> = BTreeMap::new();
    let gas_spec = spec("guard-across-sync");
    for f in 0..ws.fns.len() {
        let path = ws.path(f).to_string();
        let here = |line: u32, note: String| Evidence { path: path.clone(), line, note };
        // Intra-function: B acquired while A is live.
        for a in &acqs[f] {
            for b in &acqs[f] {
                if b.tok <= a.tok || b.tok > a.end {
                    continue;
                }
                if b.id == a.id {
                    out.push((
                        ws.fns[f].file,
                        RawFinding {
                            rule: "lock-order",
                            line: b.line,
                            message: format!(
                                "same-lock re-entry: `{}` re-acquired while already held in \
                                 `{}` — self-deadlock",
                                b.id,
                                ws.label(f)
                            ),
                            evidence: vec![here(
                                a.line,
                                format!("first acquisition of `{}`", a.id),
                            )],
                        },
                    ));
                } else {
                    lock_edges.entry((a.id.clone(), b.id.clone())).or_insert_with(|| {
                        vec![
                            here(a.line, format!("`{}` acquires `{}`", ws.label(f), a.id)),
                            here(b.line, format!("then acquires `{}` while it is held", b.id)),
                        ]
                    });
                }
            }
            // Interprocedural: calls made while A is live.
            for (ci, c) in calls[f].iter().enumerate() {
                if c.tok <= a.tok || c.tok > a.end {
                    continue;
                }
                // guard-across-sync: direct boundary name or a callee
                // that may block.
                let direct = BLOCKING.contains(&c.name.as_str());
                let indirect = !direct
                    && resolved[f][ci].iter().any(|&g| !may_block[g].is_empty());
                if (direct || indirect) && path_in_scope(&path, gas_spec) {
                    let how = if direct {
                        format!("`{}` is a blocking boundary", c.name)
                    } else {
                        format!("`{}` reaches a blocking boundary", c.name)
                    };
                    out.push((
                        ws.fns[f].file,
                        RawFinding {
                            rule: "guard-across-sync",
                            line: c.line,
                            message: format!(
                                "lock guard `{}` held across blocking call `{}` in `{}` — \
                                 release before blocking ({how})",
                                a.id,
                                c.name,
                                ws.label(f)
                            ),
                            evidence: vec![
                                here(a.line, format!("guard `{}` acquired here", a.id)),
                                here(c.line, format!("blocking call `{}` while held", c.name)),
                            ],
                        },
                    ));
                }
                // Lock edges through the callee's (transitive) lockset.
                for &g in &resolved[f][ci] {
                    let mut reentry = false;
                    for l in &may_acquire[g] {
                        if *l == a.id {
                            reentry = true;
                        } else {
                            lock_edges.entry((a.id.clone(), l.clone())).or_insert_with(|| {
                                let (lp, ll) =
                                    first_site.get(l.as_str()).copied().unwrap_or(("", 0));
                                vec![
                                    here(a.line, format!("`{}` acquires `{}`", ws.label(f), a.id)),
                                    here(
                                        c.line,
                                        format!("calls `{}` while holding it", ws.label(g)),
                                    ),
                                    Evidence {
                                        path: lp.to_string(),
                                        line: ll,
                                        note: format!(
                                            "`{}` (transitively) acquires `{l}`",
                                            ws.label(g)
                                        ),
                                    },
                                ]
                            });
                        }
                    }
                    if reentry {
                        out.push((
                            ws.fns[f].file,
                            RawFinding {
                                rule: "lock-order",
                                line: c.line,
                                message: format!(
                                    "same-lock re-entry: `{}` holds `{}` and calls `{}`, \
                                     which (transitively) acquires it — self-deadlock",
                                    ws.label(f),
                                    a.id,
                                    ws.label(g)
                                ),
                                evidence: vec![here(
                                    a.line,
                                    format!("guard `{}` acquired here", a.id),
                                )],
                            },
                        ));
                    }
                }
            }
        }
    }

    // Cycle detection over the acquisition-order graph.
    for scc in cycles(&lock_edges) {
        let members: BTreeSet<&str> = scc.iter().map(String::as_str).collect();
        let mut evidence: Vec<Evidence> = Vec::new();
        for ((a, b), ev) in &lock_edges {
            if members.contains(a.as_str()) && members.contains(b.as_str()) {
                evidence.extend(ev.iter().cloned());
            }
        }
        evidence.truncate(12);
        // Anchor the finding at the smallest (path, line) evidence site
        // so a `lint:allow` can bind to a real source line.
        let Some(anchor) =
            evidence.iter().filter(|e| !e.path.is_empty()).min_by(|x, y| {
                x.path.cmp(&y.path).then(x.line.cmp(&y.line))
            })
        else {
            continue;
        };
        let file = units.iter().position(|u| u.path == anchor.path);
        let Some(file) = file else { continue };
        out.push((
            file,
            RawFinding {
                rule: "lock-order",
                line: anchor.line,
                message: format!(
                    "lock-order cycle across {{{}}} — opposite acquisition orders can \
                     deadlock; pick one global order",
                    scc.join(", ")
                ),
                evidence,
            },
        ));
    }

    // ---- interprocedural panic-path ---------------------------------
    // Entry points: non-test functions defined in the rule's scoped
    // files. Reachability (BFS in deterministic id order) extends the
    // scope to every resolvable callee; findings carry the witness
    // chain. Functions whose own file is already in scope are linted by
    // the per-file pass and skipped here.
    let pp_spec = spec("panic-path");
    let mut parent: BTreeMap<usize, usize> = BTreeMap::new();
    let mut queue: Vec<usize> = (0..ws.fns.len())
        .filter(|&f| path_in_scope(ws.path(f), pp_spec))
        .collect();
    let mut seen: BTreeSet<usize> = queue.iter().copied().collect();
    let mut head = 0;
    while head < queue.len() {
        let f = queue[head];
        head += 1;
        for &g in &edges[f] {
            if seen.insert(g) {
                parent.insert(g, f);
                queue.push(g);
            }
        }
    }
    let mut reached: Vec<usize> = seen
        .iter()
        .copied()
        .filter(|&f| !path_in_scope(ws.path(f), pp_spec))
        .collect();
    reached.sort_by(|&x, &y| {
        ws.path(x).cmp(ws.path(y)).then(ws.fns[x].body.0.cmp(&ws.fns[y].body.0))
    });
    for f in reached {
        let (b0, b1) = ws.fns[f].body;
        let sites = panic_sites(ws.toks(f), b0 + 1, b1);
        if sites.is_empty() {
            continue;
        }
        // Witness chain back to an entry point (capped).
        let mut chain: Vec<Evidence> = Vec::new();
        let mut cur = f;
        while let Some(&p) = parent.get(&cur) {
            chain.push(Evidence {
                path: ws.path(p).to_string(),
                line: ws.fns[p].line,
                note: format!("called from `{}`", ws.label(p)),
            });
            cur = p;
            if chain.len() >= 6 {
                break;
            }
        }
        if let Some(last) = chain.last_mut() {
            last.note.push_str(" (recovery/decode entry point)");
        }
        for (i, what, advice) in sites {
            out.push((
                ws.fns[f].file,
                RawFinding {
                    rule: "panic-path",
                    line: ws.toks(f)[i].line,
                    message: format!(
                        "{what} in `{}`, reachable from a recovery/decode entry point — {advice}",
                        ws.label(f)
                    ),
                    evidence: chain.clone(),
                },
            ));
        }
    }

    out
}

/// Strongly connected components of size ≥ 2 in the lock-order graph,
/// each returned as a sorted node list (deterministic: Tarjan over
/// sorted nodes and sorted adjacency).
fn cycles(edges: &BTreeMap<(String, String), Vec<Evidence>>) -> Vec<Vec<String>> {
    let mut nodes: BTreeSet<&str> = BTreeSet::new();
    let mut adj: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for (a, b) in edges.keys() {
        nodes.insert(a);
        nodes.insert(b);
        adj.entry(a).or_default().push(b);
    }
    let index_of: BTreeMap<&str, usize> = nodes.iter().enumerate().map(|(i, &n)| (n, i)).collect();
    let names: Vec<&str> = nodes.iter().copied().collect();
    let n = names.len();
    let adj_ix: Vec<Vec<usize>> = names
        .iter()
        .map(|name| {
            adj.get(name)
                .map(|v| v.iter().map(|t| index_of[t]).collect())
                .unwrap_or_default()
        })
        .collect();

    // Iterative Tarjan.
    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut sccs: Vec<Vec<String>> = Vec::new();
    for start in 0..n {
        if index[start] != usize::MAX {
            continue;
        }
        // (node, next child position)
        let mut work: Vec<(usize, usize)> = vec![(start, 0)];
        while let Some(&mut (v, ref mut ci)) = work.last_mut() {
            if *ci == 0 {
                index[v] = next_index;
                low[v] = next_index;
                next_index += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            if let Some(&w) = adj_ix[v].get(*ci) {
                *ci += 1;
                if index[w] == usize::MAX {
                    work.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                work.pop();
                if let Some(&(p, _)) = work.last() {
                    low[p] = low[p].min(low[v]);
                }
                if low[v] == index[v] {
                    let mut comp = Vec::new();
                    while let Some(w) = stack.pop() {
                        on_stack[w] = false;
                        comp.push(names[w].to_string());
                        if w == v {
                            break;
                        }
                    }
                    if comp.len() >= 2 {
                        comp.sort();
                        sccs.push(comp);
                    }
                }
            }
        }
    }
    sccs.sort();
    sccs
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit(path: &str, src: &str) -> FileUnit {
        FileUnit::build(path, src)
    }

    #[test]
    fn resolution_self_path_and_bare() {
        let u = unit(
            "crates/x/src/lib.rs",
            "
            struct A; struct B;
            impl A { fn go(&self) { self.step(); B::boot(); free(); } fn step(&self) {} }
            impl B { fn boot() {} }
            fn free() {}
            ",
        );
        let units = [u];
        let ws = Workspace::build(&units);
        let go = ws.fns.iter().position(|f| f.name == "go").unwrap();
        let sites = ws.call_sites(go);
        let names: Vec<(&str, Vec<String>)> = sites
            .iter()
            .map(|c| {
                let r = ws.resolve(go, c);
                (c.name.as_str(), r.iter().map(|&g| ws.label(g)).collect())
            })
            .collect();
        assert_eq!(
            names,
            vec![
                ("step", vec!["A::step".to_string()]),
                ("boot", vec!["B::boot".to_string()]),
                ("free", vec!["free".to_string()]),
            ]
        );
    }

    #[test]
    fn ambiguous_bare_names_do_not_resolve() {
        let src: String = (0..AMBIGUITY_CAP + 1)
            .map(|i| format!("mod m{i} {{ pub fn shared() {{}} }}\n"))
            .chain(["fn caller() { shared(); }".to_string()])
            .collect();
        let units = [unit("crates/x/src/lib.rs", &src)];
        let ws = Workspace::build(&units);
        let caller = ws.fns.iter().position(|f| f.name == "caller").unwrap();
        let sites = ws.call_sites(caller);
        assert_eq!(sites.len(), 1);
        assert!(ws.resolve(caller, &sites[0]).is_empty(), "over-cap name must not resolve");
    }

    #[test]
    fn guard_ranges_let_vs_temporary() {
        let units = [unit(
            "crates/x/src/lib.rs",
            "
            struct S { a: M, b: M }
            impl S {
                fn both(&self) {
                    let g = self.a.lock();
                    self.b.lock().touch();
                    drop(g);
                    self.b.lock().touch();
                }
            }
            ",
        )];
        let ws = Workspace::build(&units);
        let f = ws.fns.iter().position(|f| f.name == "both").unwrap();
        let acqs = ws.lock_acqs(f);
        assert_eq!(acqs.len(), 3);
        assert_eq!(acqs[0].id, "S.a");
        assert_eq!(acqs[1].id, "S.b");
        // The let-bound guard covers the first b acquisition (edge), but
        // dies at drop(g) — the second b acquisition is outside it.
        assert!(acqs[1].tok <= acqs[0].end, "b#1 inside a's live range");
        assert!(acqs[2].tok > acqs[0].end, "b#2 after drop(g)");
        // Temporaries end at their own statement.
        assert!(acqs[1].end < acqs[2].tok);
    }

    #[test]
    fn scc_finds_two_lock_cycle() {
        let ev = |p: &str| vec![Evidence { path: p.into(), line: 1, note: "x".into() }];
        let mut edges = BTreeMap::new();
        edges.insert(("A".to_string(), "B".to_string()), ev("f"));
        edges.insert(("B".to_string(), "A".to_string()), ev("g"));
        edges.insert(("B".to_string(), "C".to_string()), ev("h"));
        let sccs = cycles(&edges);
        assert_eq!(sccs, vec![vec!["A".to_string(), "B".to_string()]]);
    }
}
