//! The rule engines: token-pattern matchers with path-aware scoping,
//! plus the structural rules built on [`crate::parse`]/[`crate::callgraph`].
//!
//! Every rule here is a *heuristic* — there is no type information, so
//! each matcher documents exactly what it keys on and what it will
//! miss. The bias is deliberate: over-flag and make the author either
//! fix the site or write a `// lint:allow(<rule>): <reason>` with a
//! reviewable reason, rather than under-flag and let nondeterminism
//! ship.
//!
//! Rule catalogue (see DESIGN.md §9 for the policy around each):
//!
//! * `nondet-iter` — iteration over a hash container (`HashMap`,
//!   `HashSet`, `FastMap`, `FastSet`) flowing into an order-sensitive
//!   sink (a `Vec` collect, a push/encode loop body) without a sort.
//! * `wall-clock` — `Instant::now` / `SystemTime` outside the
//!   bench/profiling exemptions; sim code must use the sim clock.
//! * `panic-path` — `unwrap`/`expect`/`panic!`/`unreachable!`/`todo!`
//!   and panic-capable `[]` indexing on the recovery/decode paths of
//!   `mv-storage`, `mv-net`, and the durable op log.
//! * `relaxed-ordering` — `Ordering::Relaxed` anywhere; the documented
//!   sampled-out tracer fast path carries an allow.
//! * `unscoped-spawn` — `thread::spawn` (the workspace idiom is
//!   `std::thread::scope`).
//! * `float-key` — `partial_cmp(..).unwrap()`-family comparators and
//!   float-keyed ordered containers; the sanctioned idiom is
//!   `f32::total_cmp`/`f64::total_cmp`.
//! * `metric-name` — a literal metric name at a registration call site
//!   (`StatSet::new`/`in_registry` prefix, `.counter`/`.gauge`/`.histo`
//!   interning) off the DESIGN.md §8 `<crate>.<component>.<metric>`
//!   scheme: prefixes need two dot-separated lowercase segments, full
//!   names three.
//! * `vec-realloc-in-loop` — **advisory**: a fresh `Vec` allocation
//!   (`Vec::new()`, `vec![…]`, `.collect()`) inside a loop body on a
//!   scoped hot path; the workspace idiom is a reused scratch buffer
//!   (see `mv_core::merge`, `ShardedKv::apply_batch`). Advisory rules
//!   are printed but never fail `--deny` — they point at churn, not
//!   bugs.
//! * `lock-order` — same-lock re-entry and acquisition-order cycles
//!   over a global lock graph composed through the call graph (see
//!   [`crate::callgraph`]); a cycle is a potential deadlock.
//! * `guard-across-sync` — a lock guard live across a blocking
//!   boundary (WAL sync / group-commit seal, transport send) on the
//!   scoped hot paths, directly or through a callee that may block.
//! * `span-leak` — a `Tracer` span opened (`start_trace`/`maybe_trace`/
//!   `trace`/`child`) and `let`-bound, but never closed, aborted, or
//!   passed on — or abandoned by an early `return`/`?` before its
//!   first use. Non-`let` opens (match scrutinees, call arguments) are
//!   transfers and out of scope, documented blind spot.
//! * `cast-truncation` — a narrowing `as` cast (`as u8`…`as i32`, or
//!   `as usize`/`u64` from a float/128-bit value) on the codec/recovery
//!   paths where the workspace idiom is checked `try_from`. Literal
//!   casts and provably bounded ones (`% N`, `.min(n)`, bool casts)
//!   are exempt.
//!
//! Two meta-rules police the escape hatch itself: `bad-allow` (unknown
//! rule name, or a missing reason) and `unused-allow` (a directive that
//! suppressed nothing). Neither can itself be allowed.

use crate::callgraph;
use crate::lexer::{Tok, Token};
use crate::parse::{matching, FileUnit};

/// Names of the real (allowable) rules, in report order.
pub const RULES: &[&str] = &[
    "nondet-iter",
    "wall-clock",
    "panic-path",
    "relaxed-ordering",
    "unscoped-spawn",
    "float-key",
    "metric-name",
    "vec-realloc-in-loop",
    "lock-order",
    "guard-across-sync",
    "span-leak",
    "cast-truncation",
];

/// Where each rule applies. Paths are workspace-relative with `/`
/// separators; a pattern matches when the path equals it or starts
/// with it. An empty include list means "everywhere scanned".
pub struct RuleSpec {
    /// Rule name (must appear in [`RULES`]).
    pub name: &'static str,
    /// One-line description for `--list-rules` and reports.
    pub summary: &'static str,
    /// Only paths matching one of these are linted (empty = all).
    pub include: &'static [&'static str],
    /// Paths matching one of these are skipped.
    pub exclude: &'static [&'static str],
    /// Advisory rules are reported but never fail `--deny` — they
    /// surface allocation churn and style drift, not correctness bugs.
    pub advisory: bool,
}

/// The catalogue, including per-rule path scopes.
pub const CATALOGUE: &[RuleSpec] = &[
    RuleSpec {
        name: "nondet-iter",
        summary: "hash-container iteration into an order-sensitive sink",
        include: &[],
        exclude: &[],
        advisory: false,
    },
    RuleSpec {
        name: "wall-clock",
        summary: "Instant::now/SystemTime outside bench/profiling exemptions",
        include: &[],
        // Benches measure real elapsed time by definition, and the
        // TickProfiler is the sanctioned wall-clock reader.
        exclude: &["crates/bench/", "crates/obs/src/profile.rs"],
        advisory: false,
    },
    RuleSpec {
        name: "panic-path",
        summary: "panic-capable call or indexing on a recovery/decode path",
        include: &[
            "crates/storage/src/wal.rs",
            "crates/storage/src/group_commit.rs",
            "crates/storage/src/codec.rs",
            "crates/net/src/reliable.rs",
            "crates/core/src/durable.rs",
            "crates/core/src/txn.rs",
            "crates/txn/src/mvcc.rs",
            "crates/txn/src/sharded.rs",
            "crates/raft/src/record.rs",
            "crates/raft/src/node.rs",
            "crates/raft/src/msg.rs",
            "crates/core/src/replicated.rs",
            // The ISSUE 8 hot-path rewrites: the SoA entity arena sits
            // under durable replay, and the k-way merge scratch under
            // every cross-shard query — both must degrade, not panic.
            "crates/core/src/arena.rs",
            "crates/core/src/merge.rs",
            // The ISSUE 9 health layer: the recorder and SLO engine run
            // armed inside every experiment and the macro bench — a
            // monitoring panic must never take down the thing it
            // monitors.
            "crates/obs/src/window.rs",
            "crates/obs/src/slo.rs",
            "crates/obs/src/recorder.rs",
        ],
        exclude: &[],
        advisory: false,
    },
    RuleSpec {
        name: "relaxed-ordering",
        summary: "atomic Ordering::Relaxed outside the documented tracer fast path",
        include: &[],
        exclude: &[],
        advisory: false,
    },
    RuleSpec {
        name: "unscoped-spawn",
        summary: "thread::spawn where std::thread::scope is the idiom",
        include: &[],
        exclude: &[],
        advisory: false,
    },
    RuleSpec {
        name: "float-key",
        summary: "float ordering without a total order (use total_cmp)",
        include: &[],
        exclude: &[],
        advisory: false,
    },
    RuleSpec {
        name: "metric-name",
        summary: "metric registration literal off the DESIGN.md §8 naming scheme",
        include: &[],
        // The registry module itself: its `Default` impl interns the
        // empty prefix, and its API plumbing is not a call site.
        exclude: &["crates/lint/", "crates/obs/src/registry.rs"],
        advisory: false,
    },
    RuleSpec {
        name: "vec-realloc-in-loop",
        summary: "fresh Vec allocation inside a hot loop (advisory — reuse a scratch buffer)",
        // Scoped to the per-tick hot paths the macro-bench exercises;
        // elsewhere a fresh Vec per call is usually the right API.
        include: &[
            "crates/core/src/arena.rs",
            "crates/core/src/merge.rs",
            "crates/core/src/sharded.rs",
            "crates/storage/src/kv.rs",
            "crates/storage/src/sharded_kv.rs",
            "crates/spatial/src/grid.rs",
        ],
        exclude: &[],
        advisory: true,
    },
    RuleSpec {
        name: "lock-order",
        summary: "lock acquisition-order cycle or same-lock re-entry (call-graph composed)",
        include: &[],
        exclude: &[],
        advisory: false,
    },
    RuleSpec {
        name: "guard-across-sync",
        summary: "lock guard held across a blocking boundary (WAL sync, transport send)",
        // The hot paths where a held guard serializes fsync/send
        // latency into every contending thread. The WAL/group-commit
        // internals are the boundary itself, not a caller of it.
        include: &[
            "crates/core/src/",
            "crates/txn/src/",
            "crates/raft/src/",
            "crates/net/src/",
            "crates/storage/src/sharded_kv.rs",
        ],
        exclude: &[],
        advisory: false,
    },
    RuleSpec {
        name: "span-leak",
        summary: "tracer span opened but not closed/aborted on every return path",
        include: &[],
        exclude: &[],
        advisory: false,
    },
    RuleSpec {
        name: "cast-truncation",
        summary: "narrowing `as` cast where the codec idiom is checked try_from",
        include: &[
            "crates/storage/src/wal.rs",
            "crates/storage/src/group_commit.rs",
            "crates/storage/src/codec.rs",
            "crates/storage/src/organization.rs",
            "crates/core/src/durable.rs",
            "crates/core/src/txn.rs",
            "crates/core/src/replicated.rs",
            "crates/raft/src/",
            "crates/net/src/reliable.rs",
        ],
        exclude: &[],
        advisory: false,
    },
];

/// One supporting location in a finding's evidence chain — the
/// acquisition sites behind a lock-order cycle, the open/leak pair of
/// a span leak, the witness call chain of an interprocedural
/// panic-path finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Evidence {
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// What this site contributes (`"guard `X` acquired here"`, …).
    pub note: String,
}

/// A finding before directive binding: rule, anchor line, message, and
/// the evidence chain. Produced by the per-file matchers and the
/// workspace pass, consumed by [`bind_directives`].
#[derive(Debug)]
pub(crate) struct RawFinding {
    pub rule: &'static str,
    pub line: u32,
    pub message: String,
    pub evidence: Vec<Evidence>,
}

/// One lint finding, allowed or not.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule name (one of [`RULES`] or a meta-rule).
    pub rule: String,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// Human-readable explanation of the finding.
    pub message: String,
    /// `Some(reason)` when a `lint:allow` directive covers it.
    pub allowed: Option<String>,
    /// Mirrors [`RuleSpec::advisory`]: printed but never denied.
    pub advisory: bool,
    /// Supporting sites (empty for single-site token rules).
    pub evidence: Vec<Evidence>,
}

impl Finding {
    /// True when this finding is suppressed by a directive.
    pub fn is_allowed(&self) -> bool {
        self.allowed.is_some()
    }
}

pub(crate) fn spec(name: &str) -> &'static RuleSpec {
    CATALOGUE.iter().find(|s| s.name == name).unwrap_or(&CATALOGUE[0])
}

pub(crate) fn path_in_scope(path: &str, spec: &RuleSpec) -> bool {
    let included =
        spec.include.is_empty() || spec.include.iter().any(|p| path == *p || path.starts_with(p));
    let excluded = spec.exclude.iter().any(|p| path == *p || path.starts_with(p));
    included && !excluded
}

/// Lint one source file. `path` must be workspace-relative with `/`
/// separators — rule scoping and test-file detection key off it.
/// Single-file view of [`lint_workspace`]: interprocedural rules see
/// only this file's call graph.
pub fn lint_source(path: &str, src: &str) -> Vec<Finding> {
    lint_workspace(&[(path.to_string(), src.to_string())])
}

/// Lint a set of source files as one workspace: per-file token rules
/// first, then the call-graph analyses (`lock-order`,
/// `guard-across-sync`, interprocedural `panic-path`) across all of
/// them. Output is deterministic: files are processed in path order
/// and every analysis iterates BTree-ordered structures.
pub fn lint_workspace(files: &[(String, String)]) -> Vec<Finding> {
    let mut units: Vec<FileUnit> =
        files.iter().map(|(p, s)| FileUnit::build(p, s)).collect();
    units.sort_by(|a, b| a.path.cmp(&b.path));
    let mut raw: Vec<Vec<RawFinding>> = units.iter().map(per_file_findings).collect();
    for (fi, rf) in callgraph::global_findings(&units) {
        raw[fi].push(rf);
    }
    let mut out = Vec::new();
    for (u, r) in units.iter().zip(raw) {
        out.extend(bind_directives(u, r));
    }
    out
}

/// Run every per-file rule over one unit.
fn per_file_findings(u: &FileUnit) -> Vec<RawFinding> {
    let path = u.path.as_str();
    let mut raw: Vec<RawFinding> = Vec::new();
    let mut ctx = Ctx { toks: &u.toks, in_test: &u.in_test, out: &mut raw };
    if path_in_scope(path, spec("nondet-iter")) {
        ctx.nondet_iter();
    }
    if path_in_scope(path, spec("wall-clock")) {
        ctx.wall_clock();
    }
    if path_in_scope(path, spec("panic-path")) {
        ctx.panic_path();
    }
    if path_in_scope(path, spec("relaxed-ordering")) {
        ctx.relaxed_ordering();
    }
    if path_in_scope(path, spec("unscoped-spawn")) {
        ctx.unscoped_spawn();
    }
    if path_in_scope(path, spec("float-key")) {
        ctx.float_key();
    }
    if path_in_scope(path, spec("metric-name")) {
        ctx.metric_name();
    }
    if path_in_scope(path, spec("vec-realloc-in-loop")) {
        ctx.vec_realloc_in_loop();
    }
    if path_in_scope(path, spec("cast-truncation")) {
        ctx.cast_truncation();
    }
    if path_in_scope(path, spec("span-leak")) {
        span_leak(u, &mut raw);
    }
    raw
}

/// Attach `lint:allow` directives to raw findings, and emit the
/// meta-findings (`bad-allow`, `unused-allow`).
fn bind_directives(u: &FileUnit, raw: Vec<RawFinding>) -> Vec<Finding> {
    let (path, directives, toks) = (u.path.as_str(), &u.directives, &u.toks);
    let (in_test, whole_file_test) = (&u.in_test, u.whole_file_test);
    // Line covered by each directive: its own line when trailing, else
    // the first line with code after it.
    let line_in_test = |line: u32| -> bool {
        toks.iter()
            .zip(in_test)
            .find(|(t, _)| t.line == line)
            .map(|(_, &b)| b)
            .unwrap_or(whole_file_test)
    };
    // (idx, directive, covered line, used)
    let mut allows: Vec<(usize, &crate::lexer::Directive, u32, bool)> = Vec::new();
    let mut findings = Vec::new();
    for (idx, d) in directives.iter().enumerate() {
        let covered = if d.own_line {
            toks.iter().map(|t| t.line).find(|&l| l > d.line).unwrap_or(d.line + 1)
        } else {
            d.line
        };
        if whole_file_test || line_in_test(covered) {
            continue; // rules don't run in test code; neither do allows
        }
        if !RULES.contains(&d.rule.as_str()) {
            findings.push(Finding {
                rule: "bad-allow".into(),
                path: path.into(),
                line: d.line,
                message: format!("lint:allow names unknown rule `{}`", d.rule),
                allowed: None,
                advisory: false,
                evidence: Vec::new(),
            });
            continue;
        }
        if d.reason.is_empty() {
            findings.push(Finding {
                rule: "bad-allow".into(),
                path: path.into(),
                line: d.line,
                message: format!(
                    "lint:allow({}) has no reason — a reason is required (`: <why>`)",
                    d.rule
                ),
                allowed: None,
                advisory: false,
                evidence: Vec::new(),
            });
            continue;
        }
        allows.push((idx, d, covered, false));
    }

    for rf in raw {
        let hit = allows
            .iter_mut()
            .find(|(_, d, covered, _)| d.rule == rf.rule && *covered == rf.line);
        let allowed = match hit {
            Some((_, d, _, used)) => {
                *used = true;
                Some(d.reason.clone())
            }
            None => None,
        };
        findings.push(Finding {
            rule: rf.rule.into(),
            path: path.into(),
            line: rf.line,
            message: rf.message,
            allowed,
            advisory: spec(rf.rule).advisory,
            evidence: rf.evidence,
        });
    }

    for (_, d, _, used) in &allows {
        if !used {
            findings.push(Finding {
                rule: "unused-allow".into(),
                path: path.into(),
                line: d.line,
                message: format!("lint:allow({}) suppresses nothing — remove it", d.rule),
                allowed: None,
                advisory: false,
                evidence: Vec::new(),
            });
        }
    }
    findings.sort_by(|a, b| a.line.cmp(&b.line).then_with(|| a.rule.cmp(&b.rule)));
    findings
}

const HASH_TYPES: &[&str] = &[
    "HashMap",
    "HashSet",
    "FastMap",
    "FastSet",
    "fast_map_with_capacity",
    "fast_set_with_capacity",
];
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
];
const SORTS: &[&str] = &[
    "sort",
    "sort_unstable",
    "sort_by",
    "sort_by_key",
    "sort_unstable_by",
    "sort_unstable_by_key",
];
/// Order-insensitive consumers. Ties in `min_by_key`/`max_by_key` are
/// technically order-dependent; the sweep treats that as acceptable —
/// flagging them drowned the signal.
const ORDER_FREE: &[&str] = &[
    "count", "sum", "product", "len", "any", "all", "min", "max", "min_by", "max_by",
    "min_by_key", "max_by_key", "contains", "contains_key", "is_empty", "clear",
];
/// Collect targets whose contents don't remember arrival order.
const UNORDERED_COLLECTS: &[&str] =
    &["BTreeMap", "BTreeSet", "FastMap", "FastSet", "HashMap", "HashSet"];
/// Loop-body tokens that betray an order-sensitive sink.
const BODY_SINKS: &[&str] = &[
    "push", "push_str", "push_back", "push_front", "write", "writeln", "write_str",
    "write_all", "extend", "append", "encode", "emit", "record", "send",
];

/// `<seg>.<seg>…` with at least `min_segs` segments, each nonempty and
/// lowercase `[a-z0-9_]`.
fn valid_metric_name(name: &str, min_segs: usize) -> bool {
    let mut segs = 0usize;
    for seg in name.split('.') {
        if seg.is_empty()
            || !seg.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
        {
            return false;
        }
        segs += 1;
    }
    segs >= min_segs
}

struct Ctx<'a> {
    toks: &'a [Token],
    in_test: &'a [bool],
    out: &'a mut Vec<RawFinding>,
}

impl<'a> Ctx<'a> {
    fn ident(&self, i: usize) -> Option<&str> {
        self.toks.get(i).and_then(|t| t.ident())
    }

    fn is(&self, i: usize, c: char) -> bool {
        self.toks.get(i).is_some_and(|t| t.is_punct(c))
    }

    fn live(&self, i: usize) -> bool {
        !self.in_test.get(i).copied().unwrap_or(false)
    }

    fn flag(&mut self, rule: &'static str, i: usize, message: String) {
        if self.live(i) {
            self.out.push(RawFinding {
                rule,
                line: self.toks[i].line,
                message,
                evidence: Vec::new(),
            });
        }
    }

    // ---- wall-clock -------------------------------------------------

    fn wall_clock(&mut self) {
        for i in 0..self.toks.len() {
            if self.ident(i) == Some("Instant")
                && self.is(i + 1, ':')
                && self.is(i + 2, ':')
                && self.ident(i + 3) == Some("now")
            {
                self.flag(
                    "wall-clock",
                    i,
                    "Instant::now() on a sim path — sim code must use the sim clock".into(),
                );
            }
            if self.ident(i) == Some("SystemTime") {
                self.flag(
                    "wall-clock",
                    i,
                    "SystemTime on a sim path — sim code must use the sim clock".into(),
                );
            }
        }
    }

    // ---- relaxed-ordering -------------------------------------------

    fn relaxed_ordering(&mut self) {
        for i in 2..self.toks.len() {
            if self.ident(i) == Some("Relaxed") && self.is(i - 1, ':') && self.is(i - 2, ':') {
                self.flag(
                    "relaxed-ordering",
                    i,
                    "Ordering::Relaxed — justify why no cross-thread ordering is needed".into(),
                );
            }
        }
    }

    // ---- unscoped-spawn ---------------------------------------------

    fn unscoped_spawn(&mut self) {
        for i in 0..self.toks.len() {
            if self.ident(i) == Some("thread")
                && self.is(i + 1, ':')
                && self.is(i + 2, ':')
                && self.ident(i + 3) == Some("spawn")
            {
                self.flag(
                    "unscoped-spawn",
                    i,
                    "thread::spawn — the workspace idiom is std::thread::scope".into(),
                );
            }
        }
    }

    // ---- float-key --------------------------------------------------

    fn float_key(&mut self) {
        for i in 0..self.toks.len() {
            // `.partial_cmp(…).unwrap()` and friends: a comparator that
            // panics on NaN and is not a total order. `fn partial_cmp`
            // definitions (prev token `fn`) are not calls.
            if self.ident(i) == Some("partial_cmp")
                && i > 0
                && self.is(i - 1, '.')
                && self.is(i + 1, '(')
            {
                if let Some(close) = matching(self.toks, i + 1, '(', ')') {
                    if self.is(close + 1, '.')
                        && matches!(
                            self.ident(close + 2),
                            Some("unwrap" | "expect" | "unwrap_or" | "unwrap_or_else")
                        )
                    {
                        self.flag(
                            "float-key",
                            i,
                            "partial_cmp + unwrap is not a total order (NaN panics or \
                             collapses) — use total_cmp"
                                .into(),
                        );
                    }
                }
            }
            // Float-keyed ordered containers.
            if matches!(self.ident(i), Some("BTreeMap" | "BTreeSet" | "BinaryHeap"))
                && self.is(i + 1, '<')
                && matches!(self.ident(i + 2), Some("f32" | "f64"))
            {
                self.flag(
                    "float-key",
                    i,
                    "float-keyed ordered container — wrap the key in a total-order type".into(),
                );
            }
        }
    }

    // ---- vec-realloc-in-loop (advisory) -------------------------------

    /// Per-token "inside a loop body" flags: the `{…}` body of every
    /// `for`/`while`/`loop` (nested bodies stay flagged). The loop
    /// header itself (the iterable expression) is not marked — a
    /// `collect()` that *builds* the thing being iterated runs once.
    fn loop_regions(&self) -> Vec<bool> {
        let mut flags = vec![false; self.toks.len()];
        for i in 0..self.toks.len() {
            if !matches!(self.ident(i), Some("for" | "while" | "loop")) {
                continue;
            }
            // Find the body `{` at header depth 0; a `;` or `}` first
            // means this was not a loop keyword position after all.
            // `for` doubles as the trait-impl keyword (`impl T for U {`)
            // and the HRTB binder (`for<'a>`): a for-*loop* header must
            // contain `in` at depth 0 before its body brace.
            let mut depth = 0i32;
            let mut open = None;
            let mut seen_in = false;
            for k in i + 1..self.toks.len() {
                match self.toks[k].kind {
                    Tok::Punct('(') | Tok::Punct('[') => depth += 1,
                    Tok::Punct(')') | Tok::Punct(']') => depth -= 1,
                    Tok::Punct('{') if depth == 0 => {
                        open = Some(k);
                        break;
                    }
                    Tok::Punct(';') | Tok::Punct('}') if depth == 0 => break,
                    _ => {
                        if depth == 0 && self.ident(k) == Some("in") {
                            seen_in = true;
                        }
                    }
                }
            }
            if self.ident(i) == Some("for") && !seen_in {
                continue;
            }
            let Some(open) = open else { continue };
            let close = matching(self.toks, open, '{', '}').unwrap_or(self.toks.len() - 1);
            for f in flags.iter_mut().take(close).skip(open) {
                *f = true;
            }
        }
        flags
    }

    /// Advisory: a fresh `Vec` born inside a loop body on a scoped hot
    /// path. Keys on `Vec::new()`, `vec![…]`, and `.collect(`/`
    /// .collect::<…>(` — `Vec::with_capacity` is deliberately not
    /// flagged (pre-sizing is itself the fix when reuse is impossible).
    /// Type-blind: a `.collect()` into a map counts too; the point is
    /// the per-iteration allocation, whatever the container.
    fn vec_realloc_in_loop(&mut self) {
        let in_loop = self.loop_regions();
        for i in 0..self.toks.len() {
            if !in_loop.get(i).copied().unwrap_or(false) {
                continue;
            }
            if self.ident(i) == Some("Vec")
                && self.is(i + 1, ':')
                && self.is(i + 2, ':')
                && self.ident(i + 3) == Some("new")
            {
                self.flag(
                    "vec-realloc-in-loop",
                    i,
                    "Vec::new() inside a hot loop — hoist the buffer and reuse it \
                     (clear() keeps capacity)"
                        .into(),
                );
            }
            if self.ident(i) == Some("vec") && self.is(i + 1, '!') {
                self.flag(
                    "vec-realloc-in-loop",
                    i,
                    "vec![…] inside a hot loop — hoist the buffer and reuse it".into(),
                );
            }
            if self.ident(i) == Some("collect") && i > 0 && self.is(i - 1, '.') {
                self.flag(
                    "vec-realloc-in-loop",
                    i,
                    "collect() inside a hot loop allocates per iteration — reuse a \
                     scratch buffer (extend into a cleared Vec)"
                        .into(),
                );
            }
        }
    }

    // ---- metric-name ------------------------------------------------

    /// Literal metric names at registration call sites must follow
    /// DESIGN.md §8: `StatSet::new`/`in_registry` prefixes carry the
    /// `<crate>.<component>` pair (≥ 2 segments); registry interning
    /// calls (`.counter`/`.gauge`/`.histo` with a literal) carry the
    /// full `<crate>.<component>.<metric>` (≥ 3). Non-literal names are
    /// invisible to the lexer and pass — the rule polices the
    /// hand-written sites, which is where drift happens.
    fn metric_name(&mut self) {
        for i in 0..self.toks.len() {
            if self.ident(i) == Some("StatSet")
                && self.is(i + 1, ':')
                && self.is(i + 2, ':')
                && matches!(self.ident(i + 3), Some("new" | "in_registry"))
                && self.is(i + 4, '(')
            {
                if let Some(name) = self.toks.get(i + 5).and_then(|t| t.str_lit()) {
                    if !valid_metric_name(name, 2) {
                        self.flag(
                            "metric-name",
                            i,
                            format!(
                                "StatSet prefix `{name}` — DESIGN.md §8 wants \
                                 `<crate>.<component>` (two lowercase dot-separated segments)"
                            ),
                        );
                    }
                }
            }
            if i > 0
                && self.is(i - 1, '.')
                && matches!(self.ident(i), Some("counter" | "gauge" | "histo"))
                && self.is(i + 1, '(')
            {
                if let Some(name) = self.toks.get(i + 2).and_then(|t| t.str_lit()) {
                    if !valid_metric_name(name, 3) {
                        self.flag(
                            "metric-name",
                            i,
                            format!(
                                "metric name `{name}` — DESIGN.md §8 wants \
                                 `<crate>.<component>.<metric>` (three lowercase \
                                 dot-separated segments)"
                            ),
                        );
                    }
                }
            }
        }
    }

    // ---- panic-path -------------------------------------------------

    fn panic_path(&mut self) {
        for (i, what, advice) in panic_sites(self.toks, 0, self.toks.len()) {
            self.flag("panic-path", i, format!("{what} on a recovery/decode path — {advice}"));
        }
    }

    // ---- cast-truncation --------------------------------------------

    /// Narrowing `as` casts on the scoped codec/recovery paths, where
    /// the workspace idiom is checked `try_from`. Exemptions (all
    /// token-shape, documented blind spots included):
    ///
    /// * literal casts (`251 as u8`) — compile-time visible;
    /// * `(x % N) as T` — bounded by the literal modulus;
    /// * `x.min(c) as T` — bounded by the single-token cap;
    /// * `x.is_some() as T` (and friends) — bool, can't truncate.
    ///
    /// `as usize`/`u64`/`i64`/`isize` is only narrowing when the value
    /// is a float or 128-bit: flagged only with `f32`/`f64`/`u128`/
    /// `i128` evidence in the same statement. A `min` capped by a
    /// *variable* still passes — the cap's range is invisible here.
    fn cast_truncation(&mut self) {
        const NARROW: &[&str] = &["u8", "u16", "u32", "i8", "i16", "i32"];
        const WIDE: &[&str] = &["usize", "u64", "i64", "isize"];
        const BOOLISH: &[&str] = &["is_some", "is_none", "is_ok", "is_err", "is_empty"];
        for i in 1..self.toks.len() {
            if self.ident(i) != Some("as") {
                continue;
            }
            let Some(ty) = self.ident(i + 1) else { continue };
            let narrow = NARROW.contains(&ty);
            let wide = WIDE.contains(&ty);
            if !narrow && !wide {
                continue;
            }
            if matches!(self.toks[i - 1].kind, Tok::Num) {
                continue; // literal cast
            }
            if self.is(i - 1, ')') {
                if i >= 3 && matches!(self.toks[i - 2].kind, Tok::Num) && self.is(i - 3, '%') {
                    continue; // (x % N) as T
                }
                if i >= 4 && self.is(i - 3, '(') && self.ident(i - 4) == Some("min") {
                    continue; // x.min(cap) as T
                }
                if i >= 3
                    && self.is(i - 2, '(')
                    && matches!(self.ident(i - 3), Some(w) if BOOLISH.contains(&w))
                {
                    continue; // bool as T
                }
            }
            if wide {
                // Only narrowing when the source is float/128-bit:
                // scan the statement for evidence.
                let mut s = i;
                while s > 0 {
                    match self.toks[s - 1].kind {
                        Tok::Punct(';') | Tok::Punct('{') | Tok::Punct('}') => break,
                        _ => s -= 1,
                    }
                }
                let floaty = (s..i).any(|k| {
                    matches!(self.ident(k), Some("f32" | "f64" | "u128" | "i128"))
                });
                if !floaty {
                    continue;
                }
            }
            self.flag(
                "cast-truncation",
                i,
                format!(
                    "`as {ty}` narrowing cast on a codec/recovery path — use \
                     `{ty}::try_from` and handle the error (hostile-input discipline)"
                ),
            );
        }
    }

    // ---- nondet-iter ------------------------------------------------

    /// End of the statement containing token `i`: index just past the
    /// terminating `;` at statement depth, or at the `{`/`}` that ends
    /// it. Returns `(end, hit_block_open)`.
    fn stmt_end(&self, i: usize) -> (usize, bool) {
        let mut depth = 0i32;
        let mut k = i;
        let cap = (i + 400).min(self.toks.len());
        while k < cap {
            match self.toks[k].kind {
                Tok::Punct('(') | Tok::Punct('[') => depth += 1,
                Tok::Punct(')') | Tok::Punct(']') => {
                    depth -= 1;
                    if depth < 0 {
                        return (k, false);
                    }
                }
                Tok::Punct('{') if depth == 0 => return (k, true),
                Tok::Punct('}') if depth == 0 => return (k, false),
                Tok::Punct(';') if depth == 0 => return (k, false),
                _ => {}
            }
            k += 1;
        }
        (cap.saturating_sub(1), false)
    }

    /// Collect per-file names bound to hash containers: `let` bindings
    /// whose statement mentions a hash type, and `name: Type` fields or
    /// params typed as one. File-scoped, no shadow analysis — coarse on
    /// purpose (over-tracking only creates candidates, not findings).
    fn hash_names(&self) -> Vec<String> {
        let mut names: Vec<String> = Vec::new();
        let toks = self.toks;
        for i in 0..toks.len() {
            if self.ident(i) == Some("let") {
                let mut j = i + 1;
                if self.ident(j) == Some("mut") {
                    j += 1;
                }
                let Some(name) = self.ident(j) else { continue };
                let (end, _) = self.stmt_end(i);
                if (i..end).any(|k| matches!(self.ident(k), Some(w) if HASH_TYPES.contains(&w))) {
                    names.push(name.to_string());
                }
            }
            // `name: FastMap<…>` — struct field, fn param, or struct
            // literal field with a hash-typed value.
            if let Some(name) = self.ident(i) {
                if self.is(i + 1, ':') && !self.is(i + 2, ':') && !self.is(i, ':') {
                    let mut k = i + 2;
                    let mut depth = 0i32;
                    let cap = (i + 30).min(toks.len());
                    while k < cap {
                        match toks[k].kind {
                            Tok::Punct('<') | Tok::Punct('(') => depth += 1,
                            Tok::Punct('>') | Tok::Punct(')') if depth > 0 => depth -= 1,
                            Tok::Punct(',') | Tok::Punct(';') | Tok::Punct('{') | Tok::Punct('}')
                                if depth == 0 =>
                            {
                                break
                            }
                            Tok::Ident(ref w) if HASH_TYPES.contains(&w.as_str()) => {
                                names.push(name.to_string());
                                break;
                            }
                            _ => {}
                        }
                        k += 1;
                    }
                }
            }
        }
        names.sort();
        names.dedup();
        names
    }

    fn nondet_iter(&mut self) {
        let names = self.hash_names();
        let is_tracked = |w: Option<&str>| w.is_some_and(|w| names.iter().any(|n| n == w));
        let mut sites: Vec<(usize, String)> = Vec::new(); // (method idx, receiver)
        for i in 2..self.toks.len() {
            if !self.is(i - 1, '.') || !self.is(i + 1, '(') {
                continue;
            }
            let Some(m) = self.ident(i) else { continue };
            if !ITER_METHODS.contains(&m) {
                continue;
            }
            let recv = self.ident(i - 2);
            if is_tracked(recv) {
                sites.push((i, recv.unwrap_or_default().to_string()));
            }
        }
        // Bare `for x in &map {` / `for (k, v) in &mut self.map {` loops.
        for i in 0..self.toks.len() {
            if self.ident(i) != Some("for") {
                continue;
            }
            // Find the `in` at pattern depth 0.
            let mut depth = 0i32;
            let mut j = i + 1;
            let cap = (i + 40).min(self.toks.len());
            let mut found_in = None;
            while j < cap {
                match self.toks[j].kind {
                    Tok::Punct('(') | Tok::Punct('[') => depth += 1,
                    Tok::Punct(')') | Tok::Punct(']') => depth -= 1,
                    Tok::Ident(ref w) if w == "in" && depth == 0 => {
                        found_in = Some(j);
                        break;
                    }
                    Tok::Punct('{') | Tok::Punct(';') => break,
                    _ => {}
                }
                j += 1;
            }
            let Some(inpos) = found_in else { continue };
            let mut k = inpos + 1;
            if self.is(k, '&') {
                k += 1;
            }
            if self.ident(k) == Some("mut") {
                k += 1;
            }
            if self.ident(k) == Some("self") && self.is(k + 1, '.') {
                k += 2;
            }
            if is_tracked(self.ident(k)) && self.is(k + 1, '{') {
                sites.push((k, self.ident(k).unwrap_or_default().to_string()));
            }
        }
        sites.sort_by_key(|&(i, _)| i);
        sites.dedup_by_key(|&mut (i, _)| i);
        for (i, recv) in sites {
            if let Some(msg) = self.nondet_sink(i, &recv) {
                self.flag("nondet-iter", i, msg);
            }
        }
    }

    /// Decide whether the iteration starting at token `i` reaches an
    /// order-sensitive sink. Returns the finding message, or `None`
    /// when a neutralizer (sort / unordered collect / order-free
    /// terminal) is found.
    fn nondet_sink(&self, i: usize, recv: &str) -> Option<String> {
        // `b.extend(map.iter())` where the receiver is itself a hash or
        // btree container: order-free. Token shape: X . extend ( M . iter
        let extend_recv = i >= 5
            && self.ident(i - 4) == Some("extend")
            && self.is(i - 3, '(')
            && matches!(self.toks[i - 2].kind, Tok::Ident(_));
        if extend_recv {
            return None; // extending any map/set from a map/set is order-free
        }
        let (end, block_open) = self.stmt_end(i);
        if block_open {
            // For-loop (or if/while-header) body: look for sink markers.
            let close = matching(self.toks, end, '{', '}').unwrap_or(self.toks.len() - 1);
            for k in end..close {
                if matches!(self.ident(k), Some(w) if BODY_SINKS.contains(&w)) {
                    return Some(format!(
                        "loop over hash container `{recv}` feeds an ordered sink \
                         (`{}`) — iterate a sorted view instead",
                        self.ident(k).unwrap_or_default()
                    ));
                }
            }
            return None;
        }
        // Method-chain statement: scan for neutralizers.
        let mut let_target: Option<&str> = None;
        let mut let_ty: Option<&str> = None;
        // Find the `let` opening this statement (backwards, bounded).
        let stmt_start = (0..i)
            .rev()
            .take(60)
            .find(|&k| {
                self.is(k, ';') || self.is(k, '{') || self.is(k, '}')
            })
            .map(|k| k + 1)
            .unwrap_or(0);
        for k in stmt_start..i {
            if self.ident(k) == Some("let") {
                let mut j = k + 1;
                if self.ident(j) == Some("mut") {
                    j += 1;
                }
                let_target = self.ident(j);
                if self.is(j + 1, ':') {
                    let_ty = self.ident(j + 2);
                }
                break;
            }
        }
        if let Some(ty) = let_ty {
            if UNORDERED_COLLECTS.contains(&ty) {
                return None;
            }
        }
        let mut k = i;
        while k < end {
            // Argument groups are opaque: `filter(|p| area.contains(p))`
            // must not let the closure's `contains` neutralize the chain.
            // Only method names at the top level of the chain count.
            if self.is(k, '(') || self.is(k, '[') {
                let close = if self.is(k, '(') { ')' } else { ']' };
                let open = if self.is(k, '(') { '(' } else { '[' };
                k = matching(self.toks, k, open, close).map(|c| c + 1).unwrap_or(end);
                continue;
            }
            if let Some(w) = self.ident(k) {
                if SORTS.contains(&w) || ORDER_FREE.contains(&w) {
                    return None;
                }
                if w == "collect" && self.is(k + 1, ':') && self.is(k + 2, ':') {
                    // Turbofish: collect::<Target<…>>()
                    for t in k + 3..(k + 8).min(end) {
                        if matches!(self.ident(t), Some(ty) if UNORDERED_COLLECTS.contains(&ty)) {
                            return None;
                        }
                    }
                }
            }
            k += 1;
        }
        // One statement of lookahead: `let v = …collect(); v.sort…;` is
        // the workspace's canonical determinize-then-use idiom. The
        // statement may end inside a match arm or if/else initializer,
        // so skip trailing block-closers first. When the binding name is
        // known it must match; otherwise any `ident.sort*` counts.
        let mut k = end;
        while self.is(k, '}') || self.is(k, ';') || self.is(k, ')') || self.is(k, ',') {
            k += 1;
        }
        let next_is_sort = self.is(k + 1, '.')
            && matches!(self.ident(k + 2), Some(w) if SORTS.contains(&w));
        if next_is_sort {
            // When the binding name is visible (plain `let … = …;`
            // statement), the sorted thing must be that binding; behind
            // block-closers the binding sits outside our window, so any
            // immediate `ident.sort*` counts.
            let simple_stmt = k == end + 1;
            match (let_target, simple_stmt) {
                (Some(t), true) if self.ident(k) != Some(t) => {}
                _ => return None,
            }
        }
        Some(format!(
            "iteration over hash container `{recv}` flows into an order-sensitive \
             sink — sort it, collect into a BTree/hash container, or allow with a reason"
        ))
    }
}

/// Panic-capable sites in `toks[lo..hi]`: `(token index, what, advice)`.
/// Shared by the per-file `panic-path` matcher (whole file) and the
/// interprocedural extension in [`crate::callgraph`] (single fn body).
pub(crate) fn panic_sites(
    toks: &[Token],
    lo: usize,
    hi: usize,
) -> Vec<(usize, String, &'static str)> {
    let mut out = Vec::new();
    let ident = |i: usize| toks.get(i).and_then(|t| t.ident());
    let is = |i: usize, c: char| toks.get(i).is_some_and(|t| t.is_punct(c));
    for i in lo..hi.min(toks.len()) {
        if i > 0
            && is(i - 1, '.')
            && matches!(ident(i), Some("unwrap" | "expect"))
            && is(i + 1, '(')
        {
            out.push((
                i,
                format!("`.{}()`", ident(i).unwrap_or_default()),
                "corrupt input must return, not panic",
            ));
        }
        if matches!(ident(i), Some("panic" | "unreachable" | "todo" | "unimplemented"))
            && is(i + 1, '!')
        {
            out.push((
                i,
                format!("`{}!`", ident(i).unwrap_or_default()),
                "corrupt input must return, not panic",
            ));
        }
        // Indexing/slicing expressions: `x[…]`, `f()[…]`, `x[..n]`.
        // A `[` after an identifier, `)` or `]` is an index (array
        // types/literals follow `:`, `=`, `<`, `&`, `!`, … instead).
        // Keywords that precede a slice *type* or array literal —
        // `&mut [usize]`, `dyn [..]`, `return [..]` — are identifier
        // tokens to the lexer but never index expressions.
        let keyword_prev = i > 0
            && matches!(
                ident(i - 1),
                Some(
                    "mut" | "dyn" | "ref" | "box" | "move" | "in" | "as" | "else" | "return"
                        | "break" | "continue" | "impl" | "where" | "const" | "static"
                )
            );
        if is(i, '[')
            && i > 0
            && !keyword_prev
            && (matches!(toks[i - 1].kind, Tok::Ident(_)) || is(i - 1, ')') || is(i - 1, ']'))
        {
            out.push((i, "panic-capable `[]` indexing".to_string(), "use `.get(..)`"));
        }
    }
    out
}

/// Method names that open a tracer span (and return a `TraceCtx`).
const SPAN_OPENERS: &[&str] = &["start_trace", "maybe_trace", "trace", "child"];

/// `span-leak`: every `let`-bound span open must be *consumed* —
/// closed, aborted, stored, or returned — before the function exits,
/// and before any `return`/`?` early exit that follows the open in
/// token order.
///
/// What counts, exactly:
///
/// * Opens are `.start_trace(`/`.maybe_trace(`/`.trace(`/`.child(`
///   method calls whose statement is a `let` (including `if let`/
///   `while let`); the binding names are the lowercase idents in the
///   pattern.
/// * Consumption is any later appearance of a binding name — this is
///   flow-insensitive in the happy direction (a close in one match arm
///   marks the span consumed for all arms: documented false-negative).
/// * A `return` whose expression mentions a binding is a hand-off, not
///   a leak. A `?` before first consumption is a leak (the error path
///   drops the guard unclosed).
/// * Non-`let` opens (match scrutinees, call arguments, struct fields)
///   are *transfers* — ownership moved somewhere this file-level
///   analysis can't follow — and are skipped: documented blind spot.
fn span_leak(u: &FileUnit, out: &mut Vec<RawFinding>) {
    let toks = &u.toks;
    for f in &u.fns {
        if f.in_test {
            continue;
        }
        let Some((b0, b1)) = f.body else { continue };
        for k in b0 + 1..b1 {
            if !matches!(toks[k].ident(), Some(n) if SPAN_OPENERS.contains(&n)) {
                continue;
            }
            if !(k >= 1
                && toks[k - 1].is_punct('.')
                && toks.get(k + 1).is_some_and(|t| t.is_punct('(')))
            {
                continue;
            }
            if u.in_test.get(k).copied().unwrap_or(false) {
                continue;
            }
            let close = matching(toks, k + 1, '(', ')').unwrap_or(b1);
            // Statement start and `let`-ness.
            let mut s = k;
            while s > b0 + 1 {
                match toks[s - 1].kind {
                    Tok::Punct(';') | Tok::Punct('{') | Tok::Punct('}') => break,
                    _ => s -= 1,
                }
            }
            let mut w = s;
            let mut is_let = false;
            while w < k {
                match toks[w].ident() {
                    Some("let") => {
                        is_let = true;
                        break;
                    }
                    Some("if" | "while" | "else") => w += 1,
                    None => w += 1,
                    Some(_) => break,
                }
            }
            if !is_let {
                continue; // transfer — see the doc comment
            }
            // Binding names: lowercase idents between `let` and the `=`.
            let mut binds: Vec<&str> = Vec::new();
            for t in toks.iter().take(k).skip(w + 1) {
                if t.is_punct('=') {
                    break;
                }
                match t.ident() {
                    Some("mut" | "ref" | "Some" | "Ok" | "Err" | "None") | None => {}
                    Some(n) if n.starts_with(|c: char| c.is_ascii_lowercase()) => binds.push(n),
                    Some(_) => {}
                }
            }
            let open_line = toks[k].line;
            let opener = toks[k].ident().unwrap_or_default().to_string();
            let open_ev = Evidence {
                path: u.path.clone(),
                line: open_line,
                note: format!("span opened here (`.{opener}(…)`)"),
            };
            if binds.is_empty() {
                out.push(RawFinding {
                    rule: "span-leak",
                    line: open_line,
                    message: format!(
                        "span from `.{opener}(…)` is bound to `_` and dropped immediately — \
                         the tracer never sees a close/abort"
                    ),
                    evidence: vec![open_ev],
                });
                continue;
            }
            // Consumption scan from the end of the open call.
            let mut consumed = false;
            let mut leak: Option<(u32, String)> = None;
            let mut i = close + 1;
            while i < b1 {
                match toks[i].ident() {
                    Some("return") => {
                        // Does the return expression hand the span off?
                        let mut depth = 0i32;
                        let mut j = i + 1;
                        let mut used = false;
                        while j < b1 {
                            match toks[j].kind {
                                Tok::Punct('(') | Tok::Punct('[') | Tok::Punct('{') => depth += 1,
                                Tok::Punct(')') | Tok::Punct(']') | Tok::Punct('}') => {
                                    depth -= 1;
                                    if depth < 0 {
                                        break;
                                    }
                                }
                                Tok::Punct(';') if depth <= 0 => break,
                                _ => {
                                    if matches!(toks[j].ident(), Some(n) if binds.contains(&n)) {
                                        used = true;
                                    }
                                }
                            }
                            j += 1;
                        }
                        if used {
                            consumed = true;
                            i = j;
                            continue;
                        }
                        if !consumed {
                            leak = Some((
                                toks[i].line,
                                "early `return` exits while the span is still open".into(),
                            ));
                            break;
                        }
                    }
                    Some(n) if binds.contains(&n) => consumed = true,
                    _ => {
                        if toks[i].is_punct('?')
                            && toks.get(i + 1).and_then(|t| t.ident()) != Some("Sized")
                            && !consumed
                        {
                            leak = Some((
                                toks[i].line,
                                "`?` propagates an error while the span is still open".into(),
                            ));
                            break;
                        }
                    }
                }
                i += 1;
            }
            if let Some((line, why)) = leak {
                out.push(RawFinding {
                    rule: "span-leak",
                    line,
                    message: format!(
                        "span `{}` opened at line {open_line} leaks: {why} — close or abort \
                         it on every path",
                        binds.join("/")
                    ),
                    evidence: vec![
                        open_ev,
                        Evidence { path: u.path.clone(), line, note: why },
                    ],
                });
            } else if !consumed {
                out.push(RawFinding {
                    rule: "span-leak",
                    line: open_line,
                    message: format!(
                        "span `{}` opened here is never closed, aborted, or passed on",
                        binds.join("/")
                    ),
                    evidence: vec![open_ev],
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unallowed(path: &str, src: &str) -> Vec<Finding> {
        lint_source(path, src).into_iter().filter(|f| !f.is_allowed()).collect()
    }

    #[test]
    fn test_regions_cover_cfg_test_modules() {
        let src = r#"
            pub fn live() { let t = Instant::now(); }
            #[cfg(test)]
            mod tests {
                fn helper() { let t = Instant::now(); }
            }
        "#;
        let f = unallowed("crates/x/src/lib.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 2);
    }

    #[test]
    fn cfg_not_test_is_not_a_test_region() {
        let src = r#"
            #[cfg(not(test))]
            pub fn live() { let t = Instant::now(); }
        "#;
        assert_eq!(unallowed("crates/x/src/lib.rs", src).len(), 1);
    }

    #[test]
    fn allow_must_name_a_rule_and_carry_a_reason() {
        let src = "
            // lint:allow(wall-clock)
            let t = Instant::now();
            // lint:allow(no-such-rule): whatever
            let u = SystemTime::now();
        ";
        let f = lint_source("crates/x/src/lib.rs", src);
        let bad: Vec<_> = f.iter().filter(|f| f.rule == "bad-allow").collect();
        assert_eq!(bad.len(), 2, "{f:?}");
        // Neither directive suppressed anything.
        assert_eq!(f.iter().filter(|f| !f.is_allowed() && f.rule == "wall-clock").count(), 2);
    }

    #[test]
    fn unused_allow_is_reported() {
        let src = "
            // lint:allow(wall-clock): nothing here uses the clock
            let x = 1;
        ";
        let f = lint_source("crates/x/src/lib.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "unused-allow");
    }

    #[test]
    fn trailing_and_own_line_allows_bind_correctly() {
        let src = "
            let a = Instant::now(); // lint:allow(wall-clock): trailing reason
            // lint:allow(wall-clock): own-line reason
            let b = Instant::now();
        ";
        let f = lint_source("crates/x/src/lib.rs", src);
        assert!(f.iter().all(|f| f.is_allowed()), "{f:?}");
        assert_eq!(f.len(), 2);
    }

    #[test]
    fn test_files_are_exempt_wholesale() {
        let src = "pub fn t() { let x = Instant::now(); foo.unwrap(); }";
        assert!(unallowed("tests/integration.rs", src).is_empty());
        assert!(unallowed("crates/x/examples/demo.rs", src).is_empty());
    }

    #[test]
    fn vec_realloc_flags_loop_bodies_only() {
        let src = r#"
            pub fn hot(items: &[u32]) {
                let setup: Vec<u32> = items.iter().copied().collect();
                for x in setup {
                    let scratch = Vec::new();
                    let boxed = vec![x];
                    let doubled: Vec<u32> = items.iter().map(|i| i * x).collect();
                }
            }
        "#;
        // In scope: flagged as advisory, three findings (Vec::new,
        // vec!, collect) — the collect() building the iterable is not.
        let f = unallowed("crates/core/src/merge.rs", src);
        assert_eq!(f.len(), 3, "{f:?}");
        assert!(f.iter().all(|f| f.rule == "vec-realloc-in-loop" && f.advisory), "{f:?}");
        assert_eq!(f.iter().map(|f| f.line).collect::<Vec<_>>(), vec![5, 6, 7]);
        // Out of scope: a fresh Vec per call is usually the right API.
        assert!(unallowed("crates/obs/src/span.rs", src).is_empty());
    }

    #[test]
    fn impl_for_is_not_a_loop() {
        let src = "
            impl Index for Grid {
                fn range(&self) -> Vec<u32> {
                    let mut out = Vec::new();
                    out
                }
            }
        ";
        assert!(unallowed("crates/spatial/src/grid.rs", src).is_empty());
    }

    #[test]
    fn while_and_loop_bodies_count_too() {
        let src = "
            pub fn pump(q: &mut Q) {
                while let Some(batch) = q.pop() {
                    let staged = Vec::new();
                }
            }
        ";
        let f = unallowed("crates/storage/src/kv.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].advisory);
    }

    #[test]
    fn metric_name_enforces_design_scheme() {
        // Bad prefix (one segment) and bad full name (two segments).
        let src = r#"
            pub fn build() {
                let s = StatSet::new("raft");
                let ok = StatSet::in_registry("raft.node", &reg);
                let c = r.counter("node.sent");
                let g = r.gauge("core.engine.live");
                let h = r.histo("storage.wal.batch_bytes");
            }
        "#;
        let f = unallowed("crates/x/src/lib.rs", src);
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f.iter().all(|f| f.rule == "metric-name"));
        assert_eq!(f.iter().map(|f| f.line).collect::<Vec<_>>(), vec![3, 5]);
        // Uppercase and empty segments are off-scheme too.
        let bad = r#"pub fn b(r: &mut Registry) { r.counter("Net.Transport.Sent"); let t = r.counter("a..b"); }"#;
        assert_eq!(unallowed("crates/x/src/lib.rs", bad).len(), 2);
        // Non-literal names are invisible (no type info, documented).
        let dynamic = "pub fn d(r: &mut Registry, n: &str) { r.counter(n); }";
        assert!(unallowed("crates/x/src/lib.rs", dynamic).is_empty());
        // The registry module itself is out of scope.
        assert!(unallowed("crates/obs/src/registry.rs", src).is_empty());
    }

    #[test]
    fn panic_path_covers_health_layer_files() {
        let src = "pub fn f(v: &[u32]) -> u32 { v[0] }";
        for path in
            ["crates/obs/src/window.rs", "crates/obs/src/slo.rs", "crates/obs/src/recorder.rs"]
        {
            let f = unallowed(path, src);
            assert_eq!(f.len(), 1, "{path}: {f:?}");
            assert_eq!(f[0].rule, "panic-path");
        }
    }

    #[test]
    fn panic_path_covers_arena_and_merge() {
        let src = "pub fn f(v: &[u32]) -> u32 { v[0] }";
        for path in ["crates/core/src/arena.rs", "crates/core/src/merge.rs"] {
            let f = unallowed(path, src);
            assert_eq!(f.len(), 1, "{path}: {f:?}");
            assert_eq!(f[0].rule, "panic-path");
            assert!(!f[0].advisory, "panic-path stays deniable");
        }
    }
}
