//! Reporting: human summary, JSONL export, and the allow-count
//! baseline that makes new `lint:allow`s visible in review.
//!
//! JSONL lines follow the `mv-obs` export conventions (`export.rs`
//! there): one self-contained object per line with a leading `"kind"`
//! discriminator, strings escaped by [`mv_obs::export::json_escape`].
//!
//! Schema `mv-lint/v2`: the report opens with one meta line
//! `{"kind":"lint-meta","schema":"mv-lint/v2","rules":N,"findings":N}`
//! and every finding line carries an `"evidence"` array — the
//! acquisition sites behind a lock-order cycle, the open/leak pair of
//! a span leak, the witness call chain of an interprocedural
//! panic-path finding (empty for single-site token rules):
//! `{"kind":"lint","rule":…,"path":…,"line":…,"allowed":…,"advisory":…,
//! "reason":…,"message":…,"evidence":[{"path":…,"line":…,"note":…},…]}`
//!
//! The report is a pure function of the findings (which are themselves
//! deterministic — path-ordered files, BTree-ordered analyses), so two
//! runs over the same tree emit byte-identical output; `tests/gate.rs`
//! pins that.

pub const JSONL_SCHEMA: &str = "mv-lint/v2";

use crate::rules::{Finding, RULES};
use mv_obs::export::json_escape;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Findings as JSONL: one `lint-meta` header line, then one line per
/// finding (allowed ones included — machines doing allow audits want
/// them most of all).
pub fn findings_to_jsonl(findings: &[Finding]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{{\"kind\":\"lint-meta\",\"schema\":\"{}\",\"rules\":{},\"findings\":{}}}",
        JSONL_SCHEMA,
        RULES.len(),
        findings.len(),
    );
    for f in findings {
        let mut ev = String::from("[");
        for (i, e) in f.evidence.iter().enumerate() {
            if i > 0 {
                ev.push(',');
            }
            let _ = write!(
                ev,
                "{{\"path\":\"{}\",\"line\":{},\"note\":\"{}\"}}",
                json_escape(&e.path),
                e.line,
                json_escape(&e.note),
            );
        }
        ev.push(']');
        let _ = writeln!(
            out,
            "{{\"kind\":\"lint\",\"rule\":\"{}\",\"path\":\"{}\",\"line\":{},\
             \"allowed\":{},\"advisory\":{},\"reason\":\"{}\",\"message\":\"{}\",\
             \"evidence\":{ev}}}",
            json_escape(&f.rule),
            json_escape(&f.path),
            f.line,
            f.is_allowed(),
            f.advisory,
            json_escape(f.allowed.as_deref().unwrap_or("")),
            json_escape(&f.message),
        );
    }
    out
}

/// Per-rule allow counts (every rule in the catalogue appears, zero or
/// not, so baselines diff cleanly).
pub fn allow_counts(findings: &[Finding]) -> BTreeMap<String, usize> {
    let mut counts: BTreeMap<String, usize> = RULES.iter().map(|r| (r.to_string(), 0)).collect();
    for f in findings {
        if f.is_allowed() {
            *counts.entry(f.rule.clone()).or_insert(0) += 1;
        }
    }
    counts
}

/// Serialize allow counts in the checked-in baseline format.
pub fn baseline_to_string(counts: &BTreeMap<String, usize>) -> String {
    let mut out = String::from(
        "# mv-lint allow-count baseline: one `<rule> <count>` per line.\n\
         # A change here means a lint:allow was added or removed — reviewers\n\
         # should see the matching reason in the diff. Regenerate with:\n\
         #   cargo run -p mv-lint -- --write-baseline ci/lint-allows.txt\n",
    );
    for (rule, n) in counts {
        let _ = writeln!(out, "{rule} {n}");
    }
    out
}

/// Parse a baseline file's contents. Unknown lines are errors — the
/// file is small and hand-reviewed, so be strict.
pub fn parse_baseline(text: &str) -> Result<BTreeMap<String, usize>, String> {
    let mut counts = BTreeMap::new();
    for (ln, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let (Some(rule), Some(n), None) = (parts.next(), parts.next(), parts.next()) else {
            return Err(format!("baseline line {}: expected `<rule> <count>`", ln + 1));
        };
        let n: usize =
            n.parse().map_err(|_| format!("baseline line {}: bad count `{n}`", ln + 1))?;
        counts.insert(rule.to_string(), n);
    }
    Ok(counts)
}

/// Compare current allow counts against the baseline. Any difference —
/// up *or* down — is reported, so the checked-in file always matches
/// reality and every allow change shows up in review.
pub fn diff_baseline(
    current: &BTreeMap<String, usize>,
    baseline: &BTreeMap<String, usize>,
) -> Vec<String> {
    let mut diffs = Vec::new();
    for (rule, &now) in current {
        let base = baseline.get(rule).copied().unwrap_or(0);
        if now != base {
            diffs.push(format!(
                "rule `{rule}`: {now} allow(s) in tree, baseline says {base} — \
                 review the reasons, then regenerate the baseline"
            ));
        }
    }
    for rule in baseline.keys() {
        if !current.contains_key(rule) {
            diffs.push(format!("rule `{rule}` in baseline is not a known rule"));
        }
    }
    diffs
}

/// Human-readable summary table: per-rule denied/advisory/allowed
/// counts (advisory findings never fail `--deny`, so they get their
/// own column rather than inflating the deny one).
pub fn summary(findings: &[Finding]) -> String {
    let mut per: BTreeMap<&str, (usize, usize, usize)> = BTreeMap::new();
    for f in findings {
        let e = per.entry(f.rule.as_str()).or_insert((0, 0, 0));
        if f.is_allowed() {
            e.2 += 1;
        } else if f.advisory {
            e.1 += 1;
        } else {
            e.0 += 1;
        }
    }
    let mut out = String::from("rule                 deny  advise  allow\n");
    for (rule, (deny, advise, allow)) in &per {
        let _ = writeln!(out, "{rule:<20} {deny:>4} {advise:>7} {allow:>6}");
    }
    let total_deny: usize = per.values().map(|v| v.0).sum();
    let total_advise: usize = per.values().map(|v| v.1).sum();
    let total_allow: usize = per.values().map(|v| v.2).sum();
    let _ = writeln!(out, "{:<20} {total_deny:>4} {total_advise:>7} {total_allow:>6}", "total");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(rule: &str, allowed: Option<&str>) -> Finding {
        Finding {
            rule: rule.into(),
            path: "crates/x/src/lib.rs".into(),
            line: 3,
            message: "msg with \"quotes\"".into(),
            allowed: allowed.map(Into::into),
            advisory: false,
            evidence: vec![crate::rules::Evidence {
                path: "crates/x/src/lib.rs".into(),
                line: 1,
                note: "guard `X` acquired here".into(),
            }],
        }
    }

    #[test]
    fn jsonl_escapes_and_discriminates() {
        let out = findings_to_jsonl(&[f("wall-clock", Some("why: \"timing\""))]);
        let mut lines = out.lines();
        let meta = lines.next().unwrap();
        assert!(meta.starts_with("{\"kind\":\"lint-meta\",\"schema\":\"mv-lint/v2\""));
        assert!(meta.contains("\"findings\":1"));
        let line = lines.next().unwrap();
        assert!(line.starts_with("{\"kind\":\"lint\",\"rule\":\"wall-clock\""));
        assert!(line.contains("\\\"timing\\\""));
        assert!(line.contains("\"allowed\":true"));
        assert!(line.contains(
            "\"evidence\":[{\"path\":\"crates/x/src/lib.rs\",\"line\":1,\
             \"note\":\"guard `X` acquired here\"}]"
        ));
        assert!(lines.next().is_none());
    }

    #[test]
    fn baseline_roundtrip_and_diff() {
        let counts = allow_counts(&[f("wall-clock", Some("r")), f("nondet-iter", None)]);
        assert_eq!(counts["wall-clock"], 1);
        assert_eq!(counts["nondet-iter"], 0);
        let text = baseline_to_string(&counts);
        let parsed = parse_baseline(&text).unwrap();
        assert_eq!(parsed, counts);
        assert!(diff_baseline(&counts, &parsed).is_empty());

        let mut stale = parsed.clone();
        stale.insert("wall-clock".into(), 0);
        let diffs = diff_baseline(&counts, &stale);
        assert_eq!(diffs.len(), 1);
        assert!(diffs[0].contains("wall-clock"));
    }

    #[test]
    fn bad_baseline_lines_are_errors() {
        assert!(parse_baseline("wall-clock").is_err());
        assert!(parse_baseline("wall-clock one").is_err());
        assert!(parse_baseline("# comment\n\nwall-clock 2\n").is_ok());
    }
}
