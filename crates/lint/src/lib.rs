#![forbid(unsafe_code)]
//! `mv-lint`: the in-repo determinism & robustness lint pass.
//!
//! The platform's headline guarantee — same-seed runs are byte-identical
//! across the fault schedule, the durable op log, and the canonical span
//! log — was previously enforced only dynamically, by end-of-pipeline
//! hash gates that say *that* determinism broke, never *where*. This
//! crate rejects the sources of nondeterminism at the source level:
//! a hand-rolled lexer ([`lexer`], no `syn` — the build is offline)
//! feeds an item-tree parser ([`parse`]: fn items, impl blocks, test
//! regions) and a workspace call graph ([`callgraph`]: symbol table,
//! reachability, locksets), on top of which token-pattern and
//! structural rule engines ([`rules`]) run with path-aware scoping.
//! The CLI (`cargo run -p mv-lint -- --deny`) gates CI.
//!
//! Escape hatch: `// lint:allow(<rule>): <reason>`. The reason is
//! mandatory, every allow is counted, and the per-rule counts are
//! diffed against a checked-in baseline (`ci/lint-allows.txt`) so new
//! allows are visible in review. See DESIGN.md §9 for the policy.

pub mod callgraph;
pub mod lexer;
pub mod parse;
pub mod report;
pub mod rules;
pub mod scan;

pub use rules::{lint_source, lint_workspace, Evidence, Finding, CATALOGUE, RULES};
