#![forbid(unsafe_code)]
//! `mv-lint` CLI — the determinism & robustness gate.
//!
//! ```text
//! cargo run -p mv-lint -- [--deny] [--baseline <file>]
//!                         [--write-baseline <file>] [--jsonl <file|->]
//!                         [--list-rules] [root]
//! ```
//!
//! * `--deny` — exit nonzero on any unallowed finding (the CI mode).
//! * `--baseline <file>` — diff per-rule `lint:allow` counts against a
//!   checked-in baseline; any drift fails (with `--deny`).
//! * `--write-baseline <file>` — regenerate that file from the tree.
//! * `--jsonl <file|->` — machine-readable findings (mv-obs JSONL
//!   conventions), allowed findings included.
//! * `root` — workspace root; discovered from the manifest dir when
//!   omitted.

use mv_lint::report;
use mv_lint::rules::{lint_workspace, Finding, CATALOGUE};
use mv_lint::scan;
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    deny: bool,
    baseline: Option<PathBuf>,
    write_baseline: Option<PathBuf>,
    jsonl: Option<String>,
    list_rules: bool,
    root: Option<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        deny: false,
        baseline: None,
        write_baseline: None,
        jsonl: None,
        list_rules: false,
        root: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--deny" => args.deny = true,
            "--list-rules" => args.list_rules = true,
            "--baseline" => {
                args.baseline = Some(it.next().ok_or("--baseline needs a path")?.into());
            }
            "--write-baseline" => {
                args.write_baseline =
                    Some(it.next().ok_or("--write-baseline needs a path")?.into());
            }
            "--jsonl" => args.jsonl = Some(it.next().ok_or("--jsonl needs a path or -")?),
            other if !other.starts_with('-') => args.root = Some(other.into()),
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("mv-lint: {e}");
            return ExitCode::from(2);
        }
    };

    if args.list_rules {
        for spec in CATALOGUE {
            println!("{:<18} {}", spec.name, spec.summary);
        }
        return ExitCode::SUCCESS;
    }

    let root = match args.root.or_else(|| {
        scan::find_workspace_root(&PathBuf::from(env!("CARGO_MANIFEST_DIR")))
            .or_else(|| std::env::current_dir().ok())
    }) {
        Some(r) => r,
        None => {
            eprintln!("mv-lint: could not locate a workspace root");
            return ExitCode::from(2);
        }
    };

    let files = match scan::rust_files(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("mv-lint: walking {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    // Read everything first: the interprocedural rules (lock-order,
    // guard-across-sync, panic-path reachability) need the whole
    // workspace in one pass.
    let mut sources: Vec<(String, String)> = Vec::new();
    for rel in &files {
        match std::fs::read_to_string(root.join(rel)) {
            Ok(src) => sources.push((rel.clone(), src)),
            Err(e) => eprintln!("mv-lint: reading {rel}: {e} (skipped)"),
        }
    }
    let findings: Vec<Finding> = lint_workspace(&sources);

    if let Some(path) = &args.jsonl {
        let out = report::findings_to_jsonl(&findings);
        if path == "-" {
            print!("{out}");
        } else if let Err(e) = std::fs::write(path, out) {
            eprintln!("mv-lint: writing {path}: {e}");
            return ExitCode::from(2);
        }
    }

    let counts = report::allow_counts(&findings);
    if let Some(path) = &args.write_baseline {
        if let Err(e) = std::fs::write(path, report::baseline_to_string(&counts)) {
            eprintln!("mv-lint: writing {}: {e}", path.display());
            return ExitCode::from(2);
        }
        println!("mv-lint: baseline written to {}", path.display());
    }

    let mut failed = false;
    let denied: Vec<&Finding> =
        findings.iter().filter(|f| !f.is_allowed() && !f.advisory).collect();
    let advisories: Vec<&Finding> =
        findings.iter().filter(|f| !f.is_allowed() && f.advisory).collect();
    for f in &denied {
        println!("{}:{}: [{}] {}", f.path, f.line, f.rule, f.message);
        for e in &f.evidence {
            println!("    {}:{}: {}", e.path, e.line, e.note);
        }
    }
    for f in &advisories {
        println!("{}:{}: [{}] (advisory) {}", f.path, f.line, f.rule, f.message);
    }
    if !denied.is_empty() {
        failed = true;
    }

    if let Some(path) = &args.baseline {
        match std::fs::read_to_string(path).map_err(|e| e.to_string()).and_then(|t| {
            report::parse_baseline(&t)
        }) {
            Ok(baseline) => {
                for diff in report::diff_baseline(&counts, &baseline) {
                    println!("baseline: {diff}");
                    failed = true;
                }
            }
            Err(e) => {
                eprintln!("mv-lint: baseline {}: {e}", path.display());
                failed = true;
            }
        }
    }

    println!(
        "\nmv-lint: {} file(s), {} finding(s) denied, {} advisory, {} allowed\n{}",
        files.len(),
        denied.len(),
        advisories.len(),
        findings.iter().filter(|f| f.is_allowed()).count(),
        report::summary(&findings)
    );

    if failed && args.deny {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
