//! A hand-rolled Rust lexer, just deep enough for linting.
//!
//! The build is offline, so `syn` is not available; the rules in
//! [`crate::rules`] instead walk a flat token stream. The lexer's one
//! job is to get the *boundaries* right — where comments, string
//! literals (including raw and byte strings), char literals, and
//! lifetimes begin and end — so that a `lint:allow` directive inside a
//! string literal never acts as a directive and an `unwrap(` inside a
//! comment never acts as a call.
//!
//! What it does **not** do: parse. There is no AST, no precedence, no
//! type information. Every rule downstream is an honest token-pattern
//! heuristic, and says so.

/// One lexed token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword (`unwrap`, `for`, `HashMap`, …).
    Ident(String),
    /// Any string-ish literal: `"…"`, `r#"…"#`, `b"…"`, `c"…"`.
    /// Carries the raw contents (escapes unprocessed) — the
    /// `metric-name` rule inspects literal metric names at registration
    /// call sites. Directives inside strings are still inert.
    Str(String),
    /// Char or byte literal (`'a'`, `b'\n'`).
    Char,
    /// Lifetime (`'a`, `'static`).
    Lifetime,
    /// Numeric literal (value dropped).
    Num,
    /// A single punctuation byte (`::` arrives as two `:` tokens).
    Punct(char),
}

/// A token plus the 1-based source line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Token kind/payload.
    pub kind: Tok,
    /// 1-based line number.
    pub line: u32,
}

impl Token {
    /// The identifier text, if this is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            Tok::Ident(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// True when this token is the punctuation byte `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == Tok::Punct(c)
    }

    /// The raw string-literal contents, if this is a string literal.
    pub fn str_lit(&self) -> Option<&str> {
        match &self.kind {
            Tok::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }
}

/// A `// lint:allow(<rule>): <reason>` escape hatch found in a line
/// comment. Directives are collected by the lexer (so one inside a
/// string literal is invisible) and bound to findings by the runner.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Directive {
    /// Rule name between the parentheses (not yet validated).
    pub rule: String,
    /// Reason text after the `:` (may be empty — the runner rejects
    /// empty reasons as `bad-allow` findings).
    pub reason: String,
    /// 1-based line the comment starts on.
    pub line: u32,
    /// True when only whitespace precedes the `//` — the directive then
    /// covers the *next* code line instead of its own.
    pub own_line: bool,
}

/// Lexer output: the token stream plus every allow-directive seen.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Tokens in source order.
    pub tokens: Vec<Token>,
    /// Allow directives in source order.
    pub directives: Vec<Directive>,
    /// Number of lines in the file.
    pub lines: u32,
}

/// Lex `src` (one Rust source file) into tokens and directives.
pub fn lex(src: &str) -> Lexed {
    Lexer { src: src.as_bytes(), pos: 0, line: 1, line_has_code: false, out: Lexed::default() }
        .run(src)
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    /// Whether a token already started on the current line (decides
    /// whether a directive is trailing or on its own line).
    line_has_code: bool,
    out: Lexed,
}

impl<'a> Lexer<'a> {
    fn peek(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.src.get(self.pos).copied()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.line_has_code = false;
        }
        b.into()
    }

    fn push(&mut self, kind: Tok) {
        self.out.tokens.push(Token { kind, line: self.line });
        self.line_has_code = true;
    }

    fn run(mut self, src_str: &str) -> Lexed {
        while let Some(b) = self.peek(0) {
            match b {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    self.bump();
                }
                b'/' if self.peek(1) == Some(b'/') => self.line_comment(src_str),
                b'/' if self.peek(1) == Some(b'*') => self.block_comment(),
                b'"' => self.string(),
                b'\'' => self.char_or_lifetime(),
                b'0'..=b'9' => self.number(),
                b'a'..=b'z' | b'A'..=b'Z' | b'_' => self.ident_or_prefixed_string(),
                _ => {
                    // Multi-byte UTF-8 only appears in comments/strings
                    // in practice; if one leaks here, swallow the whole
                    // scalar so we never split a code point.
                    if b < 0x80 {
                        self.bump();
                        self.push(Tok::Punct(b as char));
                    } else {
                        let mut n = 1;
                        while self.peek(n).is_some_and(|c| c & 0xc0 == 0x80) {
                            n += 1;
                        }
                        for _ in 0..n {
                            self.bump();
                        }
                    }
                }
            }
        }
        self.out.lines = self.line;
        self.out
    }

    /// `// …` — scan for a `lint:allow(rule): reason` directive, then
    /// skip to end of line.
    fn line_comment(&mut self, src_str: &str) {
        let own_line = !self.line_has_code;
        let line = self.line;
        let start = self.pos;
        while self.peek(0).is_some_and(|b| b != b'\n') {
            self.bump();
        }
        let text = src_str.get(start..self.pos).unwrap_or("");
        // Doc comments (`///`, `//!`) are documentation — a directive
        // pattern quoted there must not act as one.
        let is_doc = text.starts_with("///") || text.starts_with("//!");
        if !is_doc {
            if let Some(d) = parse_directive(text, line, own_line) {
                self.out.directives.push(d);
            }
        }
    }

    /// `/* … */`, nesting included (Rust block comments nest).
    fn block_comment(&mut self) {
        self.bump();
        self.bump();
        let mut depth = 1u32;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some(b'/'), Some(b'*')) => {
                    self.bump();
                    self.bump();
                    depth += 1;
                }
                (Some(b'*'), Some(b'/')) => {
                    self.bump();
                    self.bump();
                    depth -= 1;
                }
                (Some(_), _) => {
                    self.bump();
                }
                (None, _) => break, // unterminated: EOF ends it
            }
        }
    }

    /// `"…"` with escapes.
    fn string(&mut self) {
        let line = self.line;
        self.bump();
        let start = self.pos;
        let end;
        loop {
            match self.peek(0) {
                Some(b'\\') => {
                    self.bump();
                    self.bump();
                }
                Some(b'"') => {
                    end = self.pos;
                    self.bump();
                    break;
                }
                Some(_) => {
                    self.bump();
                }
                None => {
                    end = self.pos;
                    break;
                }
            }
        }
        let contents = String::from_utf8_lossy(&self.src[start..end]).into_owned();
        self.out.tokens.push(Token { kind: Tok::Str(contents), line });
        self.line_has_code = true;
    }

    /// `r"…"`, `r#"…"#`, … — no escapes, terminated by `"` plus the
    /// same number of `#`s that opened it.
    fn raw_string(&mut self) {
        let line = self.line;
        self.bump(); // the 'r'
        let mut hashes = 0usize;
        while self.peek(0) == Some(b'#') {
            self.bump();
            hashes += 1;
        }
        self.bump(); // opening quote
        let start = self.pos;
        let end;
        'outer: loop {
            let at = self.pos;
            match self.bump() {
                Some(b'"') => {
                    for k in 0..hashes {
                        if self.peek(k) != Some(b'#') {
                            continue 'outer;
                        }
                    }
                    for _ in 0..hashes {
                        self.bump();
                    }
                    end = at;
                    break;
                }
                Some(_) => {}
                None => {
                    end = at;
                    break;
                }
            }
        }
        let contents = String::from_utf8_lossy(&self.src[start..end]).into_owned();
        self.out.tokens.push(Token { kind: Tok::Str(contents), line });
        self.line_has_code = true;
    }

    /// `'a'`-style char literal **or** `'a`-style lifetime.
    fn char_or_lifetime(&mut self) {
        let line = self.line;
        let next = self.peek(1);
        let after = self.peek(2);
        let is_char = match next {
            Some(b'\\') => true,
            Some(b) if is_ident_byte(b) => {
                // `'x'` is a char; `'x` followed by anything else (or a
                // longer identifier) is a lifetime — one trailing quote
                // decides it. A digit can only start a char literal.
                after == Some(b'\'') || matches!(next, Some(b'0'..=b'9'))
            }
            _ => true, // `'('`, `' '`, …
        };
        if is_char {
            self.bump(); // opening '
            loop {
                match self.peek(0) {
                    Some(b'\\') => {
                        self.bump();
                        self.bump();
                    }
                    Some(b'\'') => {
                        self.bump();
                        break;
                    }
                    Some(_) => {
                        self.bump();
                    }
                    None => break,
                }
            }
            self.out.tokens.push(Token { kind: Tok::Char, line });
        } else {
            self.bump(); // '
            while self.peek(0).is_some_and(is_ident_byte) {
                self.bump();
            }
            self.out.tokens.push(Token { kind: Tok::Lifetime, line });
        }
        self.line_has_code = true;
    }

    fn number(&mut self) {
        let line = self.line;
        while self.peek(0).is_some_and(|b| b.is_ascii_alphanumeric() || b == b'_') {
            self.bump();
        }
        // `1.5` continues the number; `1..5` does not.
        if self.peek(0) == Some(b'.') && self.peek(1).is_some_and(|b| b.is_ascii_digit()) {
            self.bump();
            while self.peek(0).is_some_and(|b| b.is_ascii_alphanumeric() || b == b'_') {
                self.bump();
            }
        }
        self.out.tokens.push(Token { kind: Tok::Num, line });
        self.line_has_code = true;
    }

    /// An identifier — unless it is one of the string prefixes
    /// (`r`, `b`, `br`, `c`, `cr`) sitting directly on a quote.
    fn ident_or_prefixed_string(&mut self) {
        let start = self.pos;
        let mut end = self.pos;
        while self.src.get(end).copied().is_some_and(is_ident_byte) {
            end += 1;
        }
        let word = &self.src[start..end];
        let next = self.src.get(end).copied();
        let raw = matches!(word, b"r" | b"br" | b"cr");
        let plain_prefix = matches!(word, b"b" | b"c");
        if raw && (next == Some(b'"') || next == Some(b'#')) {
            // `r"…"` / `r#"…"#`: but `r#ident` (raw identifier) must
            // stay an identifier — only a quote after the hashes makes
            // it a string.
            let mut k = end;
            while self.src.get(k) == Some(&b'#') {
                k += 1;
            }
            if self.src.get(k) == Some(&b'"') {
                // Consume the prefix letters, then lex as raw string
                // (raw_string expects pos at the last prefix byte).
                while self.pos + 1 < end {
                    self.bump();
                }
                self.raw_string();
                return;
            }
        }
        if plain_prefix && next == Some(b'"') {
            while self.pos < end {
                self.bump();
            }
            self.string();
            return;
        }
        if plain_prefix && next == Some(b'\'') {
            while self.pos < end {
                self.bump();
            }
            self.char_or_lifetime();
            return;
        }
        let line = self.line;
        let text = String::from_utf8_lossy(word).into_owned();
        while self.pos < end {
            self.bump();
        }
        // `r#ident` raw identifiers: the `#` arrives as punct, the
        // identifier after it lexes normally. Good enough.
        self.out.tokens.push(Token { kind: Tok::Ident(text), line });
        self.line_has_code = true;
    }
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Parse `lint:allow(<rule>): <reason>` out of a line comment's text.
fn parse_directive(comment: &str, line: u32, own_line: bool) -> Option<Directive> {
    let at = comment.find("lint:allow(")?;
    let rest = &comment[at + "lint:allow(".len()..];
    let close = rest.find(')')?;
    let rule = rest[..close].trim().to_string();
    let tail = rest[close + 1..].trim_start();
    let reason = tail.strip_prefix(':').map(|r| r.trim().to_string()).unwrap_or_default();
    Some(Directive { rule, reason, line, own_line })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter_map(|t| match t.kind {
                Tok::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn comments_and_strings_hide_their_contents() {
        let src = r##"
            // unwrap() in a comment is invisible
            /* so is /* a nested */ unwrap() here */
            let s = "unwrap() in a string";
            let r = r#"unwrap() in a raw "quoted" string"#;
            let b = b"unwrap() bytes";
            real_ident();
        "##;
        let ids = idents(src);
        assert!(!ids.contains(&"unwrap".to_string()), "{ids:?}");
        assert!(ids.contains(&"real_ident".to_string()));
    }

    #[test]
    fn string_tokens_carry_their_contents() {
        let src = r##"
            let plain = "net.transport.sent";
            let escaped = "say \"hi\"";
            let raw = r#"core.engine.live"#;
        "##;
        let lits: Vec<String> =
            lex(src).tokens.into_iter().filter_map(|t| t.str_lit().map(String::from)).collect();
        assert_eq!(
            lits,
            vec!["net.transport.sent", "say \\\"hi\\\"", "core.engine.live"],
            "escapes stay raw, raw-string hashes stripped"
        );
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        let src = "fn f<'a>(x: &'a str) -> char { 'x' } // and '\\n' and 'b'";
        let toks = lex(src).tokens;
        let lifetimes = toks.iter().filter(|t| t.kind == Tok::Lifetime).count();
        let chars = toks.iter().filter(|t| t.kind == Tok::Char).count();
        assert_eq!(lifetimes, 2, "{toks:?}");
        assert_eq!(chars, 1, "{toks:?}");
    }

    #[test]
    fn directive_in_string_is_not_a_directive() {
        let src = r#"
            let msg = "// lint:allow(wall-clock): not a real directive";
            // lint:allow(wall-clock): a real one
        "#;
        let lexed = lex(src);
        assert_eq!(lexed.directives.len(), 1);
        assert_eq!(lexed.directives[0].rule, "wall-clock");
        assert_eq!(lexed.directives[0].reason, "a real one");
        assert!(lexed.directives[0].own_line);
    }

    #[test]
    fn trailing_directive_is_not_own_line() {
        let src = "let t = now(); // lint:allow(wall-clock): trailing";
        let lexed = lex(src);
        assert_eq!(lexed.directives.len(), 1);
        assert!(!lexed.directives[0].own_line);
    }

    #[test]
    fn raw_identifier_is_not_a_raw_string() {
        let ids = idents("let r#type = 1; let x = r#\"str\"#;");
        assert!(ids.contains(&"type".to_string()));
        // The raw string body must not leak an ident.
        assert!(!ids.contains(&"str".to_string()));
    }

    #[test]
    fn numbers_and_ranges() {
        let src = "let a = 1.5e3; for i in 0..10 {} let h = 0xff_u64;";
        let toks = lex(src).tokens;
        let nums = toks.iter().filter(|t| t.kind == Tok::Num).count();
        assert_eq!(nums, 4, "{toks:?}"); // 1.5e3, 0, 10, 0xff_u64
    }

    #[test]
    fn directive_requires_parenthesised_rule() {
        assert!(parse_directive("// lint:allow wall-clock: x", 1, true).is_none());
        let d = parse_directive("// lint:allow(x)", 1, true).unwrap();
        assert_eq!(d.reason, "", "missing reason surfaces as empty, rejected later");
    }

    #[test]
    fn line_numbers_survive_multiline_tokens() {
        let src = "let a = r#\"\nmulti\nline\n\"#;\nlet b = 1;";
        let toks = lex(src).tokens;
        let b_line = toks
            .iter()
            .find(|t| t.ident() == Some("b"))
            .map(|t| t.line)
            .unwrap();
        assert_eq!(b_line, 5);
    }
}
