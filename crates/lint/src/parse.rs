//! The structural layer: a brace/item tree over the flat token stream.
//!
//! The build is offline (`syn` is unavailable), so this is a
//! hand-rolled *item* parser, not an expression parser: it finds `impl`
//! blocks (and the type they implement on), `fn` items (name, body
//! token range), and test regions, and leaves everything inside a fn
//! body as a flat token slice for the rules to scan. That is exactly
//! enough structure for a symbol table, a call graph, and per-function
//! lockset/span analyses — and little enough that the parser stays
//! honest about what it cannot see (macro-generated items, trait
//! method dispatch, closures-as-values).
//!
//! Known blind spots, by construction:
//!
//! * Items produced by macro expansion are invisible (the lexer sees
//!   the macro invocation, not its output).
//! * `impl` target types are reduced to their last path segment at
//!   angle-depth 0 (`core::Engine<T>` → `Engine`), so two types with
//!   the same terminal name alias into one qualifier.
//! * Nested `fn` items inherit the enclosing `impl` qualifier even
//!   though they are lexically scoped.

use crate::lexer::{lex, Directive, Tok, Token};

/// One `fn` item: name, qualifier, and body token range.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// The function name.
    pub name: String,
    /// Terminal type name of the enclosing `impl` block (also set for
    /// default methods in `trait` blocks — the trait name), or `None`
    /// for free functions.
    pub qual: Option<String>,
    /// Token index of the `fn` keyword.
    pub fn_tok: usize,
    /// Token range of the body: indices of the opening `{` and its
    /// matching `}` (inclusive). `None` for body-less declarations.
    pub body: Option<(usize, usize)>,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// True when the item sits inside a `#[test]`/`#[cfg(test)]`
    /// region — excluded from the symbol table and all analyses.
    pub in_test: bool,
}

/// One lexed + item-parsed source file, the unit the workspace pass
/// operates on.
#[derive(Debug)]
pub struct FileUnit {
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// Tokens in source order.
    pub toks: Vec<Token>,
    /// Per-token "inside test code" flags (parallel to `toks`).
    pub in_test: Vec<bool>,
    /// `lint:allow` directives found by the lexer.
    pub directives: Vec<Directive>,
    /// True for wholesale-test files (`tests/`, `examples/`, …).
    pub whole_file_test: bool,
    /// `fn` items in source order.
    pub fns: Vec<FnItem>,
}

impl FileUnit {
    /// Lex and item-parse one source file.
    pub fn build(path: &str, src: &str) -> FileUnit {
        let lexed = lex(src);
        let toks = lexed.tokens;
        let whole_file_test = is_test_path(path);
        let in_test = if whole_file_test { vec![true; toks.len()] } else { test_regions(&toks) };
        let fns = parse_fns(&toks, &in_test);
        FileUnit {
            path: path.to_string(),
            toks,
            in_test,
            directives: lexed.directives,
            whole_file_test,
            fns,
        }
    }
}

/// True for files that are test code wholesale (integration tests and
/// examples): no determinism rules apply there, and directives inside
/// them are ignored rather than reported unused.
pub fn is_test_path(path: &str) -> bool {
    path.starts_with("tests/")
        || path.contains("/tests/")
        || path.starts_with("examples/")
        || path.contains("/examples/")
        || path.contains("/benches/")
}

/// Index of the token closing the group opened at `open_idx` (which
/// must hold `open`). Honors nesting of the same pair only — good
/// enough on a lexed stream where strings/comments are opaque.
pub fn matching(toks: &[Token], open_idx: usize, open: char, close: char) -> Option<usize> {
    let mut depth = 0i32;
    for (k, t) in toks.iter().enumerate().skip(open_idx) {
        if t.is_punct(open) {
            depth += 1;
        } else if t.is_punct(close) {
            depth -= 1;
            if depth == 0 {
                return Some(k);
            }
        }
    }
    None
}

/// Per-token "inside test code" flags: `#[test]`-, `#[cfg(test)]`- (and
/// friends) attributed items, body included.
pub fn test_regions(toks: &[Token]) -> Vec<bool> {
    let mut flags = vec![false; toks.len()];
    let mut i = 0;
    while i < toks.len() {
        if toks[i].is_punct('#') && toks.get(i + 1).is_some_and(|t| t.is_punct('[')) {
            if let Some(close) = matching(toks, i + 1, '[', ']') {
                let attr = &toks[i + 2..close];
                let has = |w: &str| attr.iter().any(|t| t.ident() == Some(w));
                if has("test") && !has("not") {
                    // Skip any further attributes, then mark through the
                    // item body (or to the `;` of a body-less item).
                    let mut j = close + 1;
                    while toks.get(j).is_some_and(|t| t.is_punct('#'))
                        && toks.get(j + 1).is_some_and(|t| t.is_punct('['))
                    {
                        match matching(toks, j + 1, '[', ']') {
                            Some(c) => j = c + 1,
                            None => break,
                        }
                    }
                    let mut depth = 0i32;
                    let mut end = j;
                    while let Some(t) = toks.get(end) {
                        match t.kind {
                            Tok::Punct('(') | Tok::Punct('[') => depth += 1,
                            Tok::Punct(')') | Tok::Punct(']') => depth -= 1,
                            Tok::Punct(';') if depth == 0 => break,
                            Tok::Punct('{') if depth == 0 => {
                                end = matching(toks, end, '{', '}').unwrap_or(toks.len() - 1);
                                break;
                            }
                            _ => {}
                        }
                        end += 1;
                    }
                    for f in flags.iter_mut().take((end + 1).min(toks.len())).skip(i) {
                        *f = true;
                    }
                    i = end + 1;
                    continue;
                }
            }
        }
        i += 1;
    }
    flags
}

/// An `impl` (or `trait`) block: body token range plus the terminal
/// name used as the qualifier for the methods inside.
struct ImplBlock {
    open: usize,
    close: usize,
    name: Option<String>,
}

/// Find `impl`/`trait` block bodies and their target-type names.
fn impl_blocks(toks: &[Token]) -> Vec<ImplBlock> {
    let mut out = Vec::new();
    for i in 0..toks.len() {
        let kw = toks[i].ident();
        let is_impl = kw == Some("impl");
        let is_trait = kw == Some("trait");
        if !is_impl && !is_trait {
            continue;
        }
        // `impl` in type position (`-> impl Iterator`, `x: impl Fn()`,
        // `&impl Trait`, `dyn`/generic bounds) is not an item header:
        // an item-position `impl`/`trait` follows only a statement or
        // item boundary, an attribute, or `unsafe`/`pub`-visibility.
        let header_ok = match i.checked_sub(1).map(|p| &toks[p]) {
            None => true,
            Some(t) => {
                t.is_punct('}')
                    || t.is_punct(';')
                    || t.is_punct('{')
                    || t.is_punct(']')
                    || matches!(t.ident(), Some("unsafe" | "pub"))
                    || t.is_punct(')') // `pub(crate) trait …`
            }
        };
        if !header_ok {
            continue;
        }
        // Skip the generics group right after the keyword, if any.
        let mut j = i + 1;
        if toks.get(j).is_some_and(|t| t.is_punct('<')) {
            let mut depth = 0i32;
            while let Some(t) = toks.get(j) {
                if t.is_punct('<') {
                    depth += 1;
                } else if t.is_punct('>') && !(j > 0 && toks[j - 1].is_punct('-')) {
                    depth -= 1;
                    if depth == 0 {
                        j += 1;
                        break;
                    }
                }
                j += 1;
            }
        }
        // Scan to the body `{`, tracking the `for` split (trait impls
        // qualify by the *target* type) and stopping the name segment
        // at `where`. Angle depth keeps `Vec<Foo>` from naming `Foo`.
        let mut depth = 0i32;
        let mut name: Option<String> = None;
        let mut open = None;
        while let Some(t) = toks.get(j) {
            match &t.kind {
                Tok::Punct('<') | Tok::Punct('(') | Tok::Punct('[') => depth += 1,
                // `->` in an fn-trait bound (`Fn() -> T`): the `>`
                // there is part of the arrow, not a closing angle.
                Tok::Punct('>') | Tok::Punct(')') | Tok::Punct(']')
                    if !(t.is_punct('>') && j > 0 && toks[j - 1].is_punct('-')) =>
                {
                    depth -= 1;
                }
                Tok::Punct('{') if depth <= 0 => {
                    open = Some(j);
                    break;
                }
                Tok::Punct(';') if depth <= 0 => break,
                Tok::Ident(w) if depth <= 0 && w == "for" => name = None,
                Tok::Ident(w) if depth <= 0 && w == "where" => {
                    // Name is settled; skip ahead to the body brace.
                    while let Some(t2) = toks.get(j) {
                        if t2.is_punct('{') {
                            open = Some(j);
                            break;
                        }
                        j += 1;
                    }
                    break;
                }
                Tok::Ident(w)
                    if depth <= 0
                        && w != "dyn"
                        && w != "mut"
                        && w != "const"
                        && w != "unsafe" =>
                {
                    name = Some(w.clone());
                }
                _ => {}
            }
            j += 1;
        }
        let Some(open) = open else { continue };
        let close = matching(toks, open, '{', '}').unwrap_or(toks.len().saturating_sub(1));
        out.push(ImplBlock { open, close, name });
    }
    out
}

/// Parse `fn` items, qualifying each by the innermost enclosing
/// `impl`/`trait` block.
fn parse_fns(toks: &[Token], in_test: &[bool]) -> Vec<FnItem> {
    let impls = impl_blocks(toks);
    let mut out = Vec::new();
    for i in 0..toks.len() {
        if toks[i].ident() != Some("fn") {
            continue;
        }
        // `fn` pointer types (`fn(u32) -> u32`) have no name ident.
        let Some(name) = toks.get(i + 1).and_then(|t| t.ident()) else { continue };
        // Find the body `{` (or the `;` of a body-less declaration) at
        // paren/bracket depth 0. Generic angle brackets never nest a
        // `{`/`;` before the body, so they need no tracking here.
        let mut depth = 0i32;
        let mut body = None;
        let mut k = i + 2;
        while let Some(t) = toks.get(k) {
            match t.kind {
                Tok::Punct('(') | Tok::Punct('[') => depth += 1,
                Tok::Punct(')') | Tok::Punct(']') => depth -= 1,
                Tok::Punct('{') if depth == 0 => {
                    let close = matching(toks, k, '{', '}').unwrap_or(toks.len() - 1);
                    body = Some((k, close));
                    break;
                }
                Tok::Punct(';') if depth == 0 => break,
                _ => {}
            }
            k += 1;
        }
        // Innermost enclosing impl/trait block wins.
        let qual = impls
            .iter()
            .filter(|b| b.open < i && i < b.close)
            .min_by_key(|b| b.close - b.open)
            .and_then(|b| b.name.clone());
        out.push(FnItem {
            name: name.to_string(),
            qual,
            fn_tok: i,
            body,
            line: toks[i].line,
            in_test: in_test.get(i).copied().unwrap_or(false),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fns(src: &str) -> Vec<(String, Option<String>, bool)> {
        let u = FileUnit::build("crates/x/src/lib.rs", src);
        u.fns.iter().map(|f| (f.name.clone(), f.qual.clone(), f.body.is_some())).collect()
    }

    #[test]
    fn free_and_impl_fns_are_qualified() {
        let src = "
            pub fn free() {}
            struct S;
            impl S {
                fn method(&self) { helper(); }
            }
            impl std::fmt::Debug for S {
                fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result { Ok(()) }
            }
        ";
        assert_eq!(
            fns(src),
            vec![
                ("free".into(), None, true),
                ("method".into(), Some("S".into()), true),
                ("fmt".into(), Some("S".into()), true),
            ]
        );
    }

    #[test]
    fn generic_impls_reduce_to_terminal_name() {
        let src = "
            impl<T: Clone> Wrapper<T> {
                fn get(&self) -> &T { &self.0 }
            }
            impl<K, V> core::Engine<K, V> where K: Ord {
                fn tick(&mut self) {}
            }
        ";
        assert_eq!(
            fns(src),
            vec![
                ("get".into(), Some("Wrapper".into()), true),
                ("tick".into(), Some("Engine".into()), true),
            ]
        );
    }

    #[test]
    fn impl_in_type_position_is_not_a_block() {
        let src = "
            fn make() -> impl Iterator<Item = u32> { (0..3).map(|x| x) }
            fn take(f: impl Fn() -> u32) -> u32 { f() }
        ";
        let got = fns(src);
        assert_eq!(
            got,
            vec![("make".into(), None, true), ("take".into(), None, true)],
            "return-position impl must not swallow the next fn: {got:?}"
        );
    }

    #[test]
    fn trait_default_methods_and_decls() {
        let src = "
            pub trait Store {
                fn put(&mut self, k: u64, v: u64);
                fn len_or_zero(&self) -> usize { 0 }
            }
        ";
        assert_eq!(
            fns(src),
            vec![
                ("put".into(), Some("Store".into()), false),
                ("len_or_zero".into(), Some("Store".into()), true),
            ]
        );
    }

    #[test]
    fn fn_pointer_types_are_not_items() {
        let src = "struct H { cb: fn(u32) -> u32 } pub fn real(h: &H) -> u32 { (h.cb)(1) }";
        assert_eq!(fns(src), vec![("real".into(), None, true)]);
    }

    #[test]
    fn test_region_fns_are_marked() {
        let src = "
            fn live() {}
            #[cfg(test)]
            mod tests {
                fn helper() {}
                #[test]
                fn case() { helper(); }
            }
        ";
        let u = FileUnit::build("crates/x/src/lib.rs", src);
        let flags: Vec<(String, bool)> =
            u.fns.iter().map(|f| (f.name.clone(), f.in_test)).collect();
        assert_eq!(
            flags,
            vec![("live".into(), false), ("helper".into(), true), ("case".into(), true)]
        );
    }
}
