// Fixture: lexer torture. Every "violation" below is inert — hidden in
// a string, raw string, char literal, or comment — so linting this file
// must produce ZERO findings. Any finding here is a lexer bug.

/* Block comment with a violation: Instant::now()
   /* nested block comment: x.partial_cmp(y).unwrap() */
   still inside the outer comment: thread::spawn(|| {})
*/

fn strings_hide_everything() -> Vec<String> {
    vec![
        "Instant::now()".to_string(),
        "foo.partial_cmp(bar).unwrap()".to_string(),
        "Ordering::Relaxed".to_string(),
        "thread::spawn".to_string(),
        // A directive inside a string literal is NOT a directive:
        "// lint:allow(wall-clock): not a real allow".to_string(),
        "\" escaped quote, then Instant::now()".to_string(),
    ]
}

fn raw_strings_hide_everything() -> &'static str {
    r#"Instant::now() and "quotes" and panic!("boom")"#
}

fn raw_strings_with_more_hashes() -> &'static str {
    r##"contains "# and Ordering::Relaxed and thread::spawn"##
}

fn byte_strings() -> &'static [u8] {
    br"std::time::SystemTime::now()"
}

fn char_literals_are_not_lifetimes() -> (char, char, char) {
    ('\'', '"', '\\')
}

fn lifetimes_are_not_chars<'a>(x: &'a str) -> &'a str {
    x
}

// Doc comments never carry directives, even when they quote one:
/// To silence this rule write `// lint:allow(wall-clock): <reason>`.
fn documented() {}

fn numbers_and_ranges() -> (f64, u64) {
    let xs = [1u64, 2, 3];
    let sum: u64 = xs[..2].iter().sum::<u64>() + (0..10).sum::<u64>();
    (1.5e3, sum)
}
