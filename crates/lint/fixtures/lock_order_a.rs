//! lock-order cross-file fixture, half A. On its own this file is
//! clean: `grab_b` is not defined here, so the A->B edge cannot form.
//! Linted together with `lock_order_b.rs` (same `Sys` impl split
//! across files), the composed call graph yields the cycle
//! {Sys.a, Sys.b} — flat per-file token matching is provably
//! insufficient. See `interprocedural_cycle_needs_the_call_graph` in
//! tests/rules.rs.

impl Sys {
    /// Holds `a`, then calls into the other file to take `b`.
    fn forward(&self) -> u64 {
        let g = self.a.lock(); // cycle anchor once both files are seen
        let x = self.grab_b();
        *g + x
    }

    /// Leaf: takes `a` alone (the other file calls this while holding
    /// `b`).
    fn grab_a(&self) -> u64 {
        *self.a.lock()
    }
}
