//! lock-order fixture: intra-file cases — same-lock re-entry and an
//! acquisition-order cycle whose two halves live in different
//! functions of the same file (the global order graph composes them).
//! The usual DENY/ALLOWED trailing markers carry the expectations.

struct Pair {
    a: Mutex<u64>,
    b: Mutex<u64>,
}

impl Pair {
    /// A then B: contributes the edge Pair.a -> Pair.b.
    fn forward(&self) -> u64 {
        let ga = self.a.lock(); //~DENY(lock-order)   <- cycle anchor (min evidence site)
        let gb = self.b.lock();
        *ga + *gb
    }

    /// B then A in a *different* function: the opposite edge. No single
    /// statement shows the cycle — only the composed graph does.
    fn backward(&self) -> u64 {
        let gb = self.b.lock();
        let ga = self.a.lock();
        *ga + *gb
    }

    /// Same lock twice while the first guard is still live.
    fn reenter(&self) -> u64 {
        let g1 = self.a.lock();
        let g2 = self.a.lock(); //~DENY(lock-order)
        *g1 + *g2
    }

    /// Re-entry through a callee: holds `a`, calls a method that takes
    /// `a` again.
    fn reenter_via_call(&self) -> u64 {
        let g = self.a.lock();
        let x = self.grab_a(); //~DENY(lock-order)
        *g + x
    }

    fn grab_a(&self) -> u64 {
        *self.a.lock()
    }

    /// Negative: the first guard is dropped before the second lock —
    /// no overlap, no re-entry.
    fn sequential(&self) -> u64 {
        let x = { *self.a.lock() };
        let y = *self.a.lock();
        x + y
    }

    /// Negative: consistent order in both functions is not a cycle.
    fn forward_again(&self) -> u64 {
        let ga = self.a.lock();
        let gb = self.b.lock();
        *ga * *gb
    }
}
