// Fixture: panic-path. Fed to lint_source under a fake recovery-path
// name (crates/storage/src/wal.rs) so the path scoping applies.

// POSITIVE: unwrap on a decode path.
fn decode_bad(bytes: &[u8]) -> u32 {
    u32::from_le_bytes(bytes.get(..4).unwrap().try_into().unwrap()) //~DENY(panic-path)
}

// POSITIVE: expect and panic-capable indexing.
fn frame_bad(bytes: &[u8]) -> (u8, u8) {
    let first = bytes[0]; //~DENY(panic-path)
    let second = *bytes.get(1).expect("second byte"); //~DENY(panic-path)
    (first, second)
}

// POSITIVE: explicit panic machinery.
fn tag_bad(tag: u8) -> u8 {
    match tag {
        1 | 2 => tag,
        _ => panic!("bad tag"), //~DENY(panic-path)
    }
}

// NEGATIVE: total decode — every read is checked.
fn decode_good(bytes: &[u8]) -> Option<u32> {
    let chunk: [u8; 4] = bytes.get(..4)?.try_into().ok()?;
    Some(u32::from_le_bytes(chunk))
}

// ALLOW: justified panic.
fn invariant_allowed(x: Option<u8>) -> u8 {
    // lint:allow(panic-path): fixture exercising the allow path
    x.unwrap() //~ALLOWED(panic-path)
}
