// Fixture: float-key.
use std::collections::BTreeMap;

// POSITIVE: partial_cmp + unwrap is not a total order.
fn sort_bad(xs: &mut Vec<f64>) {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap()); //~DENY(float-key)
}

// POSITIVE: expect variant.
fn max_bad(xs: &[f64]) -> Option<f64> {
    xs.iter().copied().max_by(|a, b| a.partial_cmp(b).expect("finite")) //~DENY(float-key)
}

// POSITIVE: float-keyed ordered collection.
fn index_bad() -> BTreeMap<f64, u64> { //~DENY(float-key)
    BTreeMap::new()
}

// NEGATIVE: total_cmp is the sanctioned total order.
fn sort_good(xs: &mut Vec<f64>) {
    xs.sort_by(|a, b| a.total_cmp(b));
}

// NEGATIVE: integer keys are fine.
fn index_good() -> BTreeMap<u64, f64> {
    BTreeMap::new()
}

// ALLOW: justified partial order.
fn sort_allowed(xs: &mut Vec<f64>) {
    // lint:allow(float-key): fixture exercising the allow path
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap()); //~ALLOWED(float-key)
}
