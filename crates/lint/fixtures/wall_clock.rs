// Fixture: wall-clock.
use std::time::Instant;

// POSITIVE: wall-clock read on a sim path.
fn tick_bad() -> Instant {
    Instant::now() //~DENY(wall-clock)
}

// POSITIVE: SystemTime is wall-clock too (flagged wherever it appears).
fn stamp_bad() -> std::time::SystemTime { //~DENY(wall-clock)
    std::time::SystemTime::now() //~DENY(wall-clock)
}

// NEGATIVE: the sim clock is the sanctioned time source.
fn tick_good(now: SimTime) -> SimTime {
    now
}

// ALLOW: justified wall-clock use.
fn profile_allowed() -> f64 {
    // lint:allow(wall-clock): fixture exercising the allow path
    let t0 = Instant::now(); //~ALLOWED(wall-clock)
    t0.elapsed().as_secs_f64()
}
