//! span-leak fixture: every `let`-bound tracer span must be closed,
//! aborted, stored, or returned on all paths. Non-`let` opens are
//! transfers (documented blind spot) and must not fire.

struct Worker {
    tracer: SharedTracer,
}

impl Worker {
    /// Opened, never touched again: leaks.
    fn leak_plain(&self, at: SimTime) {
        let ctx = self.tracer.start_trace("tick", at); //~DENY(span-leak)
        self.step();
    }

    /// Bound to `_`: dropped immediately, the tracer never sees it.
    fn leak_discard(&self, at: SimTime) {
        let _ = self.tracer.start_trace("tick", at); //~DENY(span-leak)
    }

    /// Early `return` exits while the span is still open.
    fn leak_early_return(&self, at: SimTime, empty: bool) -> u64 {
        let ctx = self.tracer.start_trace("flush", at);
        if empty {
            return 0; //~DENY(span-leak)
        }
        self.tracer.close(ctx.span, at, "ok");
        1
    }

    /// `?` propagates an error while the span is still open.
    fn leak_question(&self, at: SimTime) -> Result<(), Error> {
        let ctx = self.tracer.start_trace("decode", at);
        self.decode()?; //~DENY(span-leak)
        self.tracer.close(ctx.span, at, "ok");
        Ok(())
    }

    /// Happy path: opened and closed.
    fn ok_closed(&self, at: SimTime) {
        let ctx = self.tracer.start_trace("tick", at);
        self.step();
        self.tracer.close(ctx.span, at, "ok");
    }

    /// Aborting counts as consumption too.
    fn ok_aborted(&self, at: SimTime) {
        let ctx = self.tracer.start_trace("tick", at);
        self.tracer.abort(ctx.span, "cancelled");
    }

    /// Returning the span hands it to the caller: a transfer, not a
    /// leak.
    fn ok_handed_off(&self, at: SimTime) -> TraceCtx {
        let ctx = self.tracer.start_trace("outer", at);
        ctx
    }

    /// Explicit `return <span>` is a hand-off as well.
    fn ok_returned(&self, at: SimTime) -> TraceCtx {
        let ctx = self.tracer.start_trace("outer", at);
        return ctx;
    }

    /// Non-`let` open (match scrutinee): ownership moves through the
    /// match — a transfer the file-level analysis does not follow.
    fn ok_transfer(&self, at: SimTime) {
        match self.tracer.maybe_trace("sampled", at) {
            Some(ctx) => self.tracer.close(ctx.span, at, "ok"),
            None => {}
        }
    }

    /// The shutdown path really does drop the span open — the process
    /// is exiting and the tracer is about to be torn down; reviewed.
    fn allowed_leak(&self, at: SimTime) {
        // lint:allow(span-leak): process is exiting; the tracer is torn down before the span could close
        let ctx = self.tracer.start_trace("shutdown", at); //~ALLOWED(span-leak)
        self.step();
    }
}
