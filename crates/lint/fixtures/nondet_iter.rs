// Fixture: nondet-iter. Lives under fixtures/ so the workspace scan
// skips it; the self-tests feed it to lint_source with a fake path.
// DENY markers tag lines the lint must flag; ALLOWED markers tag lines
// whose finding must be suppressed by a directive.
use mv_common::hash::FastMap;

struct Registry {
    entries: FastMap<u64, String>,
}

impl Registry {
    // POSITIVE: iterating a hash map into an order-sensitive sink.
    fn dump_bad(&self, out: &mut Vec<String>) {
        for (_, v) in &self.entries { //~DENY(nondet-iter)
            out.push(v.clone()); // order = hash order
        }
    }

    // POSITIVE: collect into a Vec with no sort in sight.
    fn keys_bad(&self) -> Vec<u64> {
        self.entries.keys().copied().collect() //~DENY(nondet-iter)
    }

    // NEGATIVE: collect then sort immediately — canonical order restored.
    fn keys_good(&self) -> Vec<u64> {
        let mut ks: Vec<u64> = self.entries.keys().copied().collect();
        ks.sort_unstable();
        ks
    }

    // NEGATIVE: order-free consumption.
    fn count_good(&self) -> usize {
        self.entries.values().filter(|v| !v.is_empty()).count()
    }

    // NEGATIVE: collect into an ordered collection.
    fn sorted_good(&self) -> std::collections::BTreeMap<u64, String> {
        self.entries.iter().map(|(k, v)| (*k, v.clone())).collect::<BTreeMap<u64, String>>()
    }

    // ALLOW: acknowledged and justified.
    fn dump_allowed(&self, out: &mut Vec<String>) {
        // lint:allow(nondet-iter): fixture exercising the allow path
        for (_, v) in &self.entries { //~ALLOWED(nondet-iter)
            out.push(v.clone());
        }
    }
}
