//! guard-across-sync fixture: a lock guard live across a blocking
//! boundary (WAL sync, transport send), directly or through a callee
//! that may block. The fake path places this under `crates/core/src/`,
//! inside the rule's hot-path scope.

struct Engine {
    state: Mutex<State>,
    wal: Wal,
    net: Transport,
}

impl Engine {
    /// Guard held across a direct `sync` call.
    fn commit_bad(&self, batch: &[Op]) {
        let mut st = self.state.lock();
        st.apply(batch);
        self.wal.sync(); //~DENY(guard-across-sync)
    }

    /// Guard held across a `send` — the other direct boundary.
    fn publish_bad(&self, msg: Msg) {
        let st = self.state.lock();
        self.net.send(st.render(msg)); //~DENY(guard-across-sync)
    }

    /// Guard held across a callee that (transitively) blocks.
    fn commit_indirect(&self, batch: &[Op]) {
        let mut st = self.state.lock();
        st.apply(batch);
        self.flush_wal(); //~DENY(guard-across-sync)
    }

    fn flush_wal(&self) {
        self.wal.sync();
    }

    /// Negative: the guard is dropped before the boundary.
    fn commit_good(&self, batch: &[Op]) {
        {
            let mut st = self.state.lock();
            st.apply(batch);
        }
        self.wal.sync();
    }

    /// Negative: explicit drop releases the guard first.
    fn commit_good_drop(&self, batch: &[Op]) {
        let mut st = self.state.lock();
        st.apply(batch);
        drop(st);
        self.wal.sync();
    }

    /// The sealed-batch handoff really does need the guard (the seal
    /// and the sync must be atomic here); reviewed and allowed.
    fn commit_sealed(&self, batch: &[Op]) {
        let mut st = self.state.lock();
        st.seal(batch);
        // lint:allow(guard-across-sync): seal+sync must be atomic; contention is bounded by the seal fast path
        self.wal.sync(); //~ALLOWED(guard-across-sync)
    }
}
