//! lock-order cross-file fixture, half B — see `lock_order_a.rs`.
//! Alone this file is clean; combined, `backward` (holds `b`, calls
//! `grab_a`) closes the cycle against `forward` in half A.

impl Sys {
    /// Holds `b`, then calls into the other file to take `a`.
    fn backward(&self) -> u64 {
        let g = self.b.lock();
        let x = self.grab_a();
        *g + x
    }

    /// Leaf: takes `b` alone.
    fn grab_b(&self) -> u64 {
        *self.b.lock()
    }
}
