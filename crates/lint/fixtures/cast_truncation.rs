//! cast-truncation fixture: narrowing `as` casts on codec/recovery
//! paths, where the workspace idiom is checked `try_from`. The fake
//! path places this at `crates/storage/src/codec.rs`, inside scope.

pub fn encode(buf: &[u8], out: &mut Vec<u8>) {
    let len = buf.len() as u32; //~DENY(cast-truncation)
    out.extend_from_slice(&len.to_le_bytes());
    let short = buf.len() as u16; //~DENY(cast-truncation)
    out.extend_from_slice(&short.to_le_bytes());
}

pub fn fold_seq(seq: u64) -> u8 {
    (seq % 251) as u8 // bounded by the literal modulus: exempt
}

pub fn clamp_small(n: usize) -> u16 {
    n.min(512) as u16 // bounded by the single-token cap: exempt
}

pub fn flag_byte(slot: Option<u32>) -> u8 {
    slot.is_some() as u8 // bool cast: exempt
}

pub fn literal_tag() -> u8 {
    251 as u8 // compile-time visible: exempt
}

pub fn widen(n: u32) -> u64 {
    n as u64 // widening, not narrowing: exempt
}

pub fn float_to_index(r: u32, scale: f32) -> usize {
    (r as f32 * scale) as usize //~DENY(cast-truncation)
}

pub fn plain_index(n: u64) -> usize {
    n as usize // 64-bit to usize: not narrowing on this target, exempt
}

pub fn decode_len(hdr: &[u8; 8]) -> u32 {
    // lint:allow(cast-truncation): value is masked to 24 bits on the same line; try_from cannot see the mask
    let masked = (u64::from_le_bytes(*hdr) & 0x00ff_ffff) as u32; //~ALLOWED(cast-truncation)
    masked
}
