//! Parser torture fixture: nested closures, match guards, early
//! returns, generic impls with fn-trait bounds, trait defaults, nested
//! fn items, and `impl Trait` in type position. `parser_torture_fixture`
//! in tests/rules.rs asserts the exact item tree (names, qualifiers,
//! bodies); no rule findings are expected from this file.

pub fn free_fn(xs: &[u64]) -> u64 {
    // Early return inside a match guard, closure capturing a closure.
    let pick = |n: u64| move |m: u64| n + m;
    match xs.first() {
        Some(&x) if x > 10 => return pick(1)(x),
        Some(&x) => x,
        None => 0,
    }
}

struct Outer<F: Fn() -> u64> {
    thunk: F,
}

impl<F: Fn() -> u64> Outer<F> {
    fn call(&self) -> u64 {
        // Nested fn item: inherits the enclosing impl qualifier
        // (documented parser blind spot — lexically it is scoped).
        fn helper(v: u64) -> u64 {
            if v == 0 {
                return 1;
            }
            v
        }
        helper((self.thunk)())
    }

    fn chained(&self) -> u64 {
        let add = |a: u64| {
            let inner = |b: u64| a.wrapping_add(b);
            inner(3)
        };
        add(4)
    }
}

pub trait Shape {
    fn area(&self) -> u64;

    fn doubled(&self) -> u64 {
        self.area() * 2
    }
}

impl Shape for Outer<fn() -> u64> {
    fn area(&self) -> u64 {
        (self.thunk)()
    }
}

pub fn returns_opaque() -> impl Iterator<Item = u64> {
    (0..4).map(|x| x * 2)
}

pub fn takes_opaque(f: impl Fn(u64) -> u64) -> u64 {
    f(9)
}

impl Drop for Outer<fn() -> u64> {
    fn drop(&mut self) {
        // Match with guards and a loop with labeled break.
        'outer: loop {
            match (self.thunk)() {
                v if v % 2 == 0 => break 'outer,
                _ => continue 'outer,
            }
        }
    }
}
