// Fixture: relaxed-ordering.
use std::sync::atomic::{AtomicU64, Ordering};

static COUNTER: AtomicU64 = AtomicU64::new(0);

// POSITIVE: Relaxed with no justification.
fn bump_bad() -> u64 {
    COUNTER.fetch_add(1, Ordering::Relaxed) //~DENY(relaxed-ordering)
}

// NEGATIVE: SeqCst needs no justification.
fn bump_good() -> u64 {
    COUNTER.fetch_add(1, Ordering::SeqCst)
}

// ALLOW: justified relaxed use.
fn bump_allowed() -> u64 {
    // lint:allow(relaxed-ordering): fixture exercising the allow path
    COUNTER.fetch_add(1, Ordering::Relaxed) //~ALLOWED(relaxed-ordering)
}
