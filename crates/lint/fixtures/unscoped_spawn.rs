// Fixture: unscoped-spawn.
use std::thread;

// POSITIVE: a free-running thread outlives its spawner silently.
fn detach_bad() {
    thread::spawn(|| {}); //~DENY(unscoped-spawn)
}

// POSITIVE: fully-qualified form.
fn detach_bad_2() {
    std::thread::spawn(|| {}); //~DENY(unscoped-spawn)
}

// NEGATIVE: scoped threads join at scope exit.
fn scoped_good(xs: &[u64]) -> u64 {
    thread::scope(|s| {
        let h = s.spawn(|| xs.iter().sum());
        h.join().unwrap_or(0)
    })
}

// ALLOW: justified detach.
fn detach_allowed() {
    // lint:allow(unscoped-spawn): fixture exercising the allow path
    thread::spawn(|| {}); //~ALLOWED(unscoped-spawn)
}
