//! The three learning workflows of Fig. 8.
//!
//! A concept-learning testbed: the target is a threshold t\* on [0, 1];
//! the machine estimates t̂ from labelled points. The workflows differ in
//! where labels come from and whether information flows both ways:
//!
//! * **Conventional** (Fig. 8a, "machine learns from human"): a human of
//!   fixed expertise labels uniformly random points each round.
//! * **Self-interactive** (Fig. 8b, AlphaGo-style): after a small seed
//!   set of human labels, the machine labels its own samples with its
//!   current model — errors compound, learning plateaus.
//! * **Co-learning** (Fig. 8c, "humans learn from the model and the
//!   model learns from humans"): the machine *queries* points near its
//!   decision boundary (uncertainty sampling — the machine teaching the
//!   human where to look), and the human's error rate decays each round
//!   as the model's explanations sharpen their judgement.
//!
//! The measurable claim (E12b): co-learning converges to a better t̂
//! than conventional, which beats self-interactive.

use mv_common::seeded_rng;
use rand::Rng;

/// Which Fig. 8 workflow to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Workflow {
    /// Fig. 8a.
    Conventional,
    /// Fig. 8b.
    SelfInteractive,
    /// Fig. 8c.
    CoLearning,
}

impl Workflow {
    /// All workflows.
    pub const ALL: [Workflow; 3] =
        [Workflow::Conventional, Workflow::SelfInteractive, Workflow::CoLearning];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Workflow::Conventional => "conventional",
            Workflow::SelfInteractive => "self-interactive",
            Workflow::CoLearning => "co-learning",
        }
    }
}

/// Task parameters.
#[derive(Debug, Clone)]
pub struct ColearnParams {
    /// The true threshold.
    pub true_threshold: f64,
    /// Interaction rounds.
    pub rounds: usize,
    /// Labels per round.
    pub labels_per_round: usize,
    /// Initial human label-error probability.
    pub human_error: f64,
    /// Per-round multiplicative improvement of the human under
    /// co-learning (model explanations teach the human).
    pub human_learning_rate: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ColearnParams {
    fn default() -> Self {
        ColearnParams {
            true_threshold: 0.62,
            rounds: 12,
            labels_per_round: 24,
            human_error: 0.25,
            human_learning_rate: 0.75,
            seed: 5,
        }
    }
}

/// Per-round trajectory of |t̂ − t\*|.
#[derive(Debug, Clone)]
pub struct ColearnTrace {
    /// Error after each round.
    pub error_per_round: Vec<f64>,
}

impl ColearnTrace {
    /// Final model error.
    pub fn final_error(&self) -> f64 {
        *self.error_per_round.last().expect("at least one round")
    }
}

/// Estimate the threshold from labelled points: midpoint between the
/// largest point labelled 0 and the smallest labelled 1, robustified by
/// majority vote in a shrinking band (labels are noisy).
fn fit_threshold(labelled: &[(f64, bool)]) -> f64 {
    if labelled.is_empty() {
        return 0.5;
    }
    // Grid search over candidate thresholds minimizing training error —
    // robust to label noise where the min/max midpoint is not.
    let mut best_t = 0.5;
    let mut best_err = usize::MAX;
    let mut candidates: Vec<f64> = labelled.iter().map(|(x, _)| *x).collect();
    candidates.push(0.0);
    candidates.push(1.0);
    candidates.sort_by(|a, b| a.total_cmp(b));
    for &t in &candidates {
        let err = labelled
            .iter()
            .filter(|&&(x, y)| (x > t) != y)
            .count();
        if err < best_err {
            best_err = err;
            best_t = t;
        }
    }
    best_t
}

/// Run one workflow; returns the per-round error trajectory.
pub fn run_workflow(workflow: Workflow, params: &ColearnParams) -> ColearnTrace {
    let mut rng = seeded_rng(params.seed);
    let t_star = params.true_threshold;
    let mut labelled: Vec<(f64, bool)> = Vec::new();
    let mut human_error = params.human_error;
    let mut t_hat = 0.5;
    let mut trace = Vec::with_capacity(params.rounds);

    for round in 0..params.rounds {
        for _ in 0..params.labels_per_round {
            let x: f64 = match workflow {
                // Uncertainty sampling: query near the current boundary.
                Workflow::CoLearning if round > 0 => {
                    (t_hat + rng.gen_range(-0.15f64..0.15)).clamp(0.0, 1.0)
                }
                _ => rng.gen(),
            };
            let true_label = x > t_star;
            let label = match workflow {
                Workflow::SelfInteractive if round > 0 => {
                    // The machine labels its own data.
                    x > t_hat
                }
                _ => {
                    // Human labels, with their current error rate.
                    if rng.gen_bool(human_error) {
                        !true_label
                    } else {
                        true_label
                    }
                }
            };
            labelled.push((x, label));
        }
        t_hat = fit_threshold(&labelled);
        if workflow == Workflow::CoLearning {
            // The model's explanations teach the human (Fig. 8c's
            // human-learns-from-machine arrow).
            human_error *= params.human_learning_rate;
        }
        trace.push((t_hat - t_star).abs());
    }
    ColearnTrace { error_per_round: trace }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mean_final(workflow: Workflow, seeds: std::ops::Range<u64>) -> f64 {
        let n = (seeds.end - seeds.start) as f64;
        seeds
            .map(|seed| {
                run_workflow(workflow, &ColearnParams { seed, ..Default::default() })
                    .final_error()
            })
            .sum::<f64>()
            / n
    }

    #[test]
    fn colearning_beats_conventional_beats_selfplay() {
        let co = mean_final(Workflow::CoLearning, 0..20);
        let conv = mean_final(Workflow::Conventional, 0..20);
        let selfp = mean_final(Workflow::SelfInteractive, 0..20);
        assert!(co < conv, "co-learning {co} vs conventional {conv}");
        assert!(conv < selfp, "conventional {conv} vs self-play {selfp}");
    }

    #[test]
    fn all_workflows_improve_over_round_one() {
        for wf in Workflow::ALL {
            let trace = run_workflow(wf, &ColearnParams::default());
            let first = trace.error_per_round[0];
            let last = trace.final_error();
            assert!(
                last <= first + 0.05,
                "{}: error grew from {first} to {last}",
                wf.name()
            );
        }
    }

    #[test]
    fn noiseless_human_converges_tight() {
        let params = ColearnParams { human_error: 0.0, ..Default::default() };
        let trace = run_workflow(Workflow::Conventional, &params);
        assert!(trace.final_error() < 0.02, "final error {}", trace.final_error());
    }

    #[test]
    fn fit_threshold_handles_edges() {
        assert_eq!(fit_threshold(&[]), 0.5);
        // All-positive labels: the best threshold is at/below the minimum.
        let t = fit_threshold(&[(0.3, true), (0.6, true)]);
        assert!(t <= 0.3);
        // Clean separation recovers the gap.
        let t = fit_threshold(&[(0.2, false), (0.4, false), (0.7, true), (0.9, true)]);
        assert!((0.4..=0.7).contains(&t), "t={t}");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = run_workflow(Workflow::CoLearning, &ColearnParams::default());
        let b = run_workflow(Workflow::CoLearning, &ColearnParams::default());
        assert_eq!(a.error_per_round, b.error_per_round);
    }
}
