//! Contribution scoring and free-rider detection.
//!
//! The coalition value is the error *reduction* a set of parties
//! delivers. Two estimators:
//!
//! * **Leave-one-out** — party i's score is the error increase when i is
//!   removed from the grand coalition. Cheap (n evaluations) but blind to
//!   substitutes (two parties with identical data both score ~0).
//! * **Monte-Carlo Shapley** — average marginal contribution over random
//!   permutations; the fair division the paper's "fair contributions of
//!   useful data" asks for, at O(n × permutations) evaluations.
//!
//! Free-riders are parties whose score falls below a fraction of the
//! mean positive score.

use crate::federated::FederatedSim;
use mv_common::seeded_rng;
use rand::seq::SliceRandom;

/// Leave-one-out scores: `err(all \ {i}) − err(all)` per party. Positive
/// means the party helps.
pub fn loo_scores(sim: &FederatedSim) -> Vec<f64> {
    let n = sim.party_count();
    let all = vec![true; n];
    let base = sim.coalition_error(&all);
    (0..n)
        .map(|i| {
            let mut coalition = all.clone();
            coalition[i] = false;
            sim.coalition_error(&coalition) - base
        })
        .collect()
}

/// Monte-Carlo Shapley values over `permutations` random orders.
pub fn shapley_scores(sim: &FederatedSim, permutations: usize, seed: u64) -> Vec<f64> {
    let n = sim.party_count();
    let mut rng = seeded_rng(seed);
    let mut scores = vec![0.0; n];
    let empty_err = sim.coalition_error(&vec![false; n]);
    let mut order: Vec<usize> = (0..n).collect();
    for _ in 0..permutations {
        order.shuffle(&mut rng);
        let mut coalition = vec![false; n];
        let mut prev_err = empty_err;
        for &i in &order {
            coalition[i] = true;
            let err = sim.coalition_error(&coalition);
            // Value is error reduction; marginal contribution of i.
            scores[i] += prev_err - err;
            prev_err = err;
        }
    }
    for s in &mut scores {
        *s /= permutations as f64;
    }
    scores
}

/// Flag parties whose score is below `threshold_frac` of the mean
/// positive score (scores ≤ 0 are always flagged).
pub fn detect_free_riders(scores: &[f64], threshold_frac: f64) -> Vec<bool> {
    let positives: Vec<f64> = scores.iter().copied().filter(|&s| s > 0.0).collect();
    if positives.is_empty() {
        return scores.iter().map(|_| true).collect();
    }
    let mean_pos = positives.iter().sum::<f64>() / positives.len() as f64;
    let cut = mean_pos * threshold_frac;
    scores.iter().map(|&s| s < cut).collect()
}

/// Proportional payments from a budget, zeroing non-positive scores.
pub fn payments(scores: &[f64], budget: f64) -> Vec<f64> {
    let total: f64 = scores.iter().copied().filter(|&s| s > 0.0).sum();
    if total <= 0.0 {
        return vec![0.0; scores.len()];
    }
    scores.iter().map(|&s| if s > 0.0 { budget * s / total } else { 0.0 }).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::federated::FedParams;

    fn sim() -> FederatedSim {
        FederatedSim::generate(&FedParams {
            honest: 10,
            free_riders: 3,
            ..Default::default()
        })
    }

    #[test]
    fn shapley_separates_free_riders() {
        let sim = sim();
        let scores = shapley_scores(&sim, 30, 2);
        let honest_mean: f64 = scores
            .iter()
            .zip(&sim.parties)
            .filter(|(_, p)| !p.free_rider)
            .map(|(s, _)| *s)
            .sum::<f64>()
            / 10.0;
        let rider_mean: f64 = scores
            .iter()
            .zip(&sim.parties)
            .filter(|(_, p)| p.free_rider)
            .map(|(s, _)| *s)
            .sum::<f64>()
            / 3.0;
        assert!(
            honest_mean > rider_mean,
            "honest {honest_mean} vs riders {rider_mean}"
        );
    }

    #[test]
    fn detection_flags_mostly_riders() {
        let sim = sim();
        let scores = shapley_scores(&sim, 30, 2);
        let flagged = detect_free_riders(&scores, 0.25);
        let mut true_pos = 0;
        let mut false_pos = 0;
        for (f, p) in flagged.iter().zip(&sim.parties) {
            match (f, p.free_rider) {
                (true, true) => true_pos += 1,
                (true, false) => false_pos += 1,
                _ => {}
            }
        }
        assert!(true_pos >= 2, "caught {true_pos}/3 riders");
        assert!(false_pos <= 2, "{false_pos} honest parties falsely flagged");
    }

    #[test]
    fn loo_is_cheaper_but_correlates() {
        let sim = sim();
        let loo = loo_scores(&sim);
        let shap = shapley_scores(&sim, 30, 2);
        // Rank correlation on the sign pattern: riders at the bottom in both.
        let bottom = |scores: &[f64]| -> Vec<usize> {
            let mut idx: Vec<usize> = (0..scores.len()).collect();
            idx.sort_by(|&a, &b| scores[a].partial_cmp(&scores[b]).unwrap());
            idx[..3].to_vec()
        };
        let loo_bottom = bottom(&loo);
        let shap_bottom = bottom(&shap);
        let overlap = loo_bottom.iter().filter(|i| shap_bottom.contains(i)).count();
        assert!(overlap >= 2, "LOO and Shapley bottom-3 overlap {overlap}");
    }

    #[test]
    fn payments_are_budget_bounded_and_skip_riders() {
        let scores = vec![3.0, 1.0, -0.5, 0.0];
        let pay = payments(&scores, 100.0);
        assert!((pay.iter().sum::<f64>() - 100.0).abs() < 1e-9);
        assert_eq!(pay[2], 0.0);
        assert_eq!(pay[3], 0.0);
        assert!((pay[0] - 75.0).abs() < 1e-9);
    }

    #[test]
    fn all_useless_scores_flag_everyone() {
        let flagged = detect_free_riders(&[-1.0, 0.0, -3.0], 0.5);
        assert_eq!(flagged, vec![true, true, true]);
        assert_eq!(payments(&[-1.0, 0.0], 50.0), vec![0.0, 0.0]);
    }
}
