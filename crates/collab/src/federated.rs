//! Federated estimation with heterogeneous, Non-IID parties.
//!
//! The collaborative task: estimate a global d-dimensional statistic
//! (think "demand per product category across mall operators"). Each
//! party holds samples of the true vector observed through its own noise
//! and its own Non-IID *view* — a Dirichlet-weighted subset of dimensions
//! (a shop mostly sees its own categories). Aggregation is sample-count-
//! weighted FedAvg per dimension. Free-riders contribute fabricated data.
//!
//! The simulation exists to drive the incentive experiments: party
//! quality and quantity must show up in the final model error, or
//! contribution scoring has nothing to measure.

use mv_common::sample::{dirichlet_sample, normal_sample};
use mv_common::seeded_rng;
use rand::rngs::StdRng;
use rand::Rng;

/// One collaborating party.
#[derive(Debug, Clone)]
pub struct Party {
    /// Samples the party holds.
    pub n_samples: usize,
    /// Observation noise (σ) of the party's sensors/process.
    pub noise: f64,
    /// Dirichlet weights over dimensions (Non-IID view).
    pub view: Vec<f64>,
    /// A free-rider fabricates data instead of measuring.
    pub free_rider: bool,
}

/// Simulation parameters.
#[derive(Debug, Clone)]
pub struct FedParams {
    /// Dimensions of the statistic.
    pub dims: usize,
    /// Number of honest parties.
    pub honest: usize,
    /// Number of free-riders.
    pub free_riders: usize,
    /// Dirichlet α for Non-IID views (small = highly skewed).
    pub dirichlet_alpha: f64,
    /// Samples per party (mean; actual varies ×0.5–1.5).
    pub samples_per_party: usize,
    /// Honest observation noise range (σ drawn uniformly within).
    pub noise_range: (f64, f64),
    /// RNG seed.
    pub seed: u64,
}

impl Default for FedParams {
    fn default() -> Self {
        FedParams {
            dims: 16,
            honest: 16,
            free_riders: 4,
            dirichlet_alpha: 0.3,
            samples_per_party: 200,
            noise_range: (0.5, 2.0),
            seed: 11,
        }
    }
}

/// The simulation: holds the ground truth and the parties' local
/// estimates (sufficient statistics: per-dim weighted sums and counts).
#[derive(Debug)]
pub struct FederatedSim {
    /// Ground-truth vector.
    pub truth: Vec<f64>,
    /// The parties.
    pub parties: Vec<Party>,
    /// Per-party, per-dimension (sum, effective_count).
    local_stats: Vec<Vec<(f64, f64)>>,
}

impl FederatedSim {
    /// Build the world and run local data collection.
    pub fn generate(params: &FedParams) -> Self {
        let mut rng = seeded_rng(params.seed);
        let truth: Vec<f64> =
            (0..params.dims).map(|_| normal_sample(&mut rng, 10.0, 5.0)).collect();
        let mut parties = Vec::new();
        for _ in 0..params.honest {
            parties.push(Party {
                n_samples: (params.samples_per_party as f64 * rng.gen_range(0.5..1.5)) as usize,
                noise: rng.gen_range(params.noise_range.0..params.noise_range.1),
                view: dirichlet_sample(&mut rng, params.dirichlet_alpha, params.dims),
                free_rider: false,
            });
        }
        for _ in 0..params.free_riders {
            parties.push(Party {
                n_samples: params.samples_per_party,
                noise: 0.0,
                view: vec![1.0 / params.dims as f64; params.dims],
                free_rider: true,
            });
        }
        let local_stats =
            parties.iter().map(|p| Self::collect(p, &truth, &mut rng)).collect();
        FederatedSim { truth, parties, local_stats }
    }

    fn collect(party: &Party, truth: &[f64], rng: &mut StdRng) -> Vec<(f64, f64)> {
        let dims = truth.len();
        let mut stats = vec![(0.0, 0.0); dims];
        if party.free_rider {
            // Fabricated: uncorrelated with the truth.
            for slot in stats.iter_mut() {
                let fake_mean = rng.gen_range(0.0..20.0);
                *slot = (fake_mean * party.n_samples as f64, party.n_samples as f64);
            }
            return stats;
        }
        for _ in 0..party.n_samples {
            // The party observes a dimension drawn from its view.
            let u: f64 = rng.gen();
            let mut acc = 0.0;
            let mut dim = dims - 1;
            for (d, w) in party.view.iter().enumerate() {
                acc += w;
                if u <= acc {
                    dim = d;
                    break;
                }
            }
            let obs = normal_sample(rng, truth[dim], party.noise);
            stats[dim].0 += obs;
            stats[dim].1 += 1.0;
        }
        stats
    }

    /// Aggregate a subset of parties (FedAvg per dimension); dimensions
    /// nobody covers fall back to 0 (an honest "no estimate").
    pub fn aggregate(&self, include: &[bool]) -> Vec<f64> {
        let dims = self.truth.len();
        let mut out = vec![0.0; dims];
        for d in 0..dims {
            let (mut sum, mut count) = (0.0, 0.0);
            for (pi, stats) in self.local_stats.iter().enumerate() {
                if include[pi] {
                    sum += stats[d].0;
                    count += stats[d].1;
                }
            }
            out[d] = if count > 0.0 { sum / count } else { 0.0 };
        }
        out
    }

    /// Root-mean-square error of an estimate against the truth.
    pub fn rmse(&self, estimate: &[f64]) -> f64 {
        let d = self.truth.len() as f64;
        (self
            .truth
            .iter()
            .zip(estimate)
            .map(|(t, e)| (t - e) * (t - e))
            .sum::<f64>()
            / d)
            .sqrt()
    }

    /// Error of the coalition containing exactly the flagged parties.
    pub fn coalition_error(&self, include: &[bool]) -> f64 {
        self.rmse(&self.aggregate(include))
    }

    /// Number of parties.
    pub fn party_count(&self) -> usize {
        self.parties.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_honest_beats_single_party() {
        let params = FedParams { free_riders: 0, ..Default::default() };
        let sim = FederatedSim::generate(&params);
        let all = vec![true; sim.party_count()];
        let mut solo = vec![false; sim.party_count()];
        solo[0] = true;
        assert!(
            sim.coalition_error(&all) < sim.coalition_error(&solo),
            "pooling Non-IID views must beat one skewed view"
        );
    }

    #[test]
    fn free_riders_hurt_the_coalition() {
        let sim = FederatedSim::generate(&FedParams::default());
        let n = sim.party_count();
        let with_all = vec![true; n];
        let honest_only: Vec<bool> = sim.parties.iter().map(|p| !p.free_rider).collect();
        assert!(
            sim.coalition_error(&honest_only) < sim.coalition_error(&with_all),
            "fabricated data must degrade the aggregate"
        );
    }

    #[test]
    fn empty_coalition_is_the_worst() {
        let sim = FederatedSim::generate(&FedParams::default());
        let none = vec![false; sim.party_count()];
        let all = vec![true; sim.party_count()];
        assert!(sim.coalition_error(&none) > sim.coalition_error(&all));
    }

    #[test]
    fn deterministic_given_seed() {
        let a = FederatedSim::generate(&FedParams::default());
        let b = FederatedSim::generate(&FedParams::default());
        assert_eq!(a.truth, b.truth);
        let include = vec![true; a.party_count()];
        assert_eq!(a.coalition_error(&include), b.coalition_error(&include));
    }

    #[test]
    fn views_are_skewed_under_small_alpha() {
        let sim = FederatedSim::generate(&FedParams {
            dirichlet_alpha: 0.05,
            ..Default::default()
        });
        // On average across honest parties, the dominant dimension should
        // carry most of the view mass under a tiny alpha.
        let honest: Vec<&Party> = sim.parties.iter().filter(|p| !p.free_rider).collect();
        let mean_max: f64 = honest
            .iter()
            .map(|p| p.view.iter().cloned().fold(0.0, f64::max))
            .sum::<f64>()
            / honest.len() as f64;
        assert!(mean_max > 0.4, "alpha=0.05 should concentrate views, mean max={mean_max}");
    }
}
