//! Local differential privacy for collaborative aggregation.
//!
//! §IV-D: *"it is important to develop new algorithms and paradigms to
//! enable data analysis in a privacy-preserving manner … emerging
//! technologies such as federated learning and differential privacy"*,
//! and the tension it names: *"a delicate balance between minimizing
//! privacy risk and maximizing data utility"*. The Laplace mechanism
//! makes that balance measurable: each party perturbs its local value
//! with Laplace(Δ/ε) noise before sharing; the aggregate's error decays
//! as 1/(ε√n) — experiment E12c sweeps the curve.

use mv_common::sample::laplace_sample;
use mv_common::seeded_rng;
use mv_common::{MvError, MvResult};

/// A party's privacy budget with linear composition accounting.
#[derive(Debug, Clone)]
pub struct PrivacyBudget {
    total_epsilon: f64,
    spent: f64,
}

impl PrivacyBudget {
    /// A budget of `epsilon` total.
    pub fn new(epsilon: f64) -> Self {
        assert!(epsilon > 0.0);
        PrivacyBudget { total_epsilon: epsilon, spent: 0.0 }
    }

    /// Remaining budget.
    pub fn remaining(&self) -> f64 {
        (self.total_epsilon - self.spent).max(0.0)
    }

    /// Spend `epsilon`; errors if overdrawn (the accountant's whole job).
    pub fn spend(&mut self, epsilon: f64) -> MvResult<()> {
        if epsilon <= 0.0 {
            return Err(MvError::InvalidArgument("non-positive epsilon".into()));
        }
        if self.spent + epsilon > self.total_epsilon + 1e-12 {
            return Err(MvError::Exhausted(format!(
                "privacy budget exhausted: {} spent of {}, requested {}",
                self.spent, self.total_epsilon, epsilon
            )));
        }
        self.spent += epsilon;
        Ok(())
    }
}

/// Aggregates locally-perturbed values.
#[derive(Debug)]
pub struct LdpAggregator {
    /// Sensitivity Δ of the shared statistic.
    pub sensitivity: f64,
}

impl LdpAggregator {
    /// Create for a statistic with sensitivity `sensitivity`.
    pub fn new(sensitivity: f64) -> Self {
        assert!(sensitivity > 0.0);
        LdpAggregator { sensitivity }
    }

    /// Perturb one party's value under budget `epsilon` (Laplace
    /// mechanism), debiting the party's accountant.
    pub fn perturb(
        &self,
        value: f64,
        epsilon: f64,
        budget: &mut PrivacyBudget,
        seed: u64,
    ) -> MvResult<f64> {
        budget.spend(epsilon)?;
        let mut rng = seeded_rng(seed);
        Ok(value + laplace_sample(&mut rng, self.sensitivity / epsilon))
    }

    /// Mean of perturbed reports (the server-side aggregate).
    pub fn aggregate(reports: &[f64]) -> f64 {
        if reports.is_empty() {
            0.0
        } else {
            reports.iter().sum::<f64>() / reports.len() as f64
        }
    }

    /// Theoretical standard error of the aggregate for `n` parties at
    /// per-party budget `epsilon`: `√2·Δ / (ε·√n)`.
    pub fn expected_std_error(&self, n: usize, epsilon: f64) -> f64 {
        std::f64::consts::SQRT_2 * self.sensitivity / (epsilon * (n as f64).sqrt())
    }

    /// Run a full round: `values` perturbed at `epsilon` each, aggregated.
    /// Returns `(estimate, abs_error_vs_true_mean)`.
    pub fn run_round(&self, values: &[f64], epsilon: f64, seed: u64) -> (f64, f64) {
        let reports: Vec<f64> = values
            .iter()
            .enumerate()
            .map(|(i, &v)| {
                let mut b = PrivacyBudget::new(epsilon);
                self.perturb(v, epsilon, &mut b, seed.wrapping_add(i as u64))
                    .expect("fresh budget covers one spend")
            })
            .collect();
        let est = Self::aggregate(&reports);
        let truth = Self::aggregate(values);
        (est, (est - truth).abs())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_composition_enforced() {
        let mut b = PrivacyBudget::new(1.0);
        b.spend(0.4).unwrap();
        b.spend(0.6).unwrap();
        assert!(b.remaining() < 1e-9);
        assert!(b.spend(0.1).is_err());
        assert!(b.spend(-1.0).is_err());
    }

    #[test]
    fn utility_improves_with_epsilon() {
        let agg = LdpAggregator::new(1.0);
        let values: Vec<f64> = (0..2000).map(|i| (i % 10) as f64 / 10.0).collect();
        let (_, err_tight) = agg.run_round(&values, 0.1, 1);
        let (_, err_loose) = agg.run_round(&values, 10.0, 1);
        assert!(
            err_loose < err_tight,
            "ε=10 error {err_loose} must beat ε=0.1 error {err_tight}"
        );
    }

    #[test]
    fn error_tracks_theory_within_an_order() {
        let agg = LdpAggregator::new(1.0);
        let values = vec![0.5; 5000];
        let eps = 1.0;
        let (_, err) = agg.run_round(&values, eps, 3);
        let theory = agg.expected_std_error(values.len(), eps);
        assert!(err < theory * 5.0, "err {err} vs theory {theory}");
    }

    #[test]
    fn aggregate_of_empty_is_zero() {
        assert_eq!(LdpAggregator::aggregate(&[]), 0.0);
    }

    #[test]
    fn perturbation_is_deterministic_per_seed() {
        let agg = LdpAggregator::new(1.0);
        let mut b1 = PrivacyBudget::new(1.0);
        let mut b2 = PrivacyBudget::new(1.0);
        let a = agg.perturb(5.0, 1.0, &mut b1, 42).unwrap();
        let b = agg.perturb(5.0, 1.0, &mut b2, 42).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, 5.0, "noise must actually be added");
    }
}
