#![forbid(unsafe_code)]
//! `mv-collab` — data collaboration, privacy, and co-learning.
//!
//! §IV-B: *"Privacy-preserving data and knowledge sharing mechanisms with
//! fair contributions of useful data have to be designed. To promote data
//! collaboration and to discourage free-riders … effective and
//! computationally efficient incentive models have to be designed. In the
//! metaverse, the users are likely to be heterogeneous in data qualities
//! and quantities, possibly with non-independently and identically
//! distribution (Non-IID)…"* — plus §IV-H/I's Fig. 8 vision of
//! human-machine co-learning.
//!
//! * [`federated`] — a federated estimation simulation with Non-IID
//!   (Dirichlet) partitions and heterogeneous party quality;
//! * [`incentive`] — leave-one-out and Monte-Carlo-Shapley contribution
//!   scoring with free-rider detection (E12);
//! * [`privacy`] — local differential privacy (Laplace mechanism) with
//!   the ε-vs-utility curve and budget composition;
//! * [`colearn`] — the three Fig. 8 learning workflows (conventional,
//!   self-interactive, human-machine co-learning) on a concept-learning
//!   task (E12b).

pub mod colearn;
pub mod federated;
pub mod incentive;
pub mod privacy;

pub use colearn::{run_workflow, ColearnParams, Workflow};
pub use federated::{FederatedSim, FedParams, Party};
pub use incentive::{loo_scores, shapley_scores, detect_free_riders};
pub use privacy::{LdpAggregator, PrivacyBudget};
