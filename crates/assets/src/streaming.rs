//! Progressive LOD streaming of scene assets.
//!
//! A viewer stands in a scene of avatars/objects; each visible object is
//! streamed at the LOD its degree of visibility warrants (reusing the
//! `mv-spatial` HDoV machinery). Progressive transfer means the first
//! renderable frame needs only the lowest LOD of each visible object —
//! the §IV-I data-explosion mitigation: you never ship skin-level detail
//! for someone across the stadium.

use mv_common::geom::{Aabb, Point};
use mv_common::seeded_rng;
use mv_spatial::hdov::{HdovTree, Lod};
use mv_common::id::EntityId;
use rand::Rng;

/// Scene generation parameters.
#[derive(Debug, Clone)]
pub struct SceneParams {
    /// Objects in the scene.
    pub objects: usize,
    /// Scene side length, metres.
    pub side: f64,
    /// Full-fidelity bytes per object.
    pub full_bytes: u64,
    /// Object radius range (visual size).
    pub radius: (f64, f64),
    /// RNG seed.
    pub seed: u64,
}

impl Default for SceneParams {
    fn default() -> Self {
        SceneParams {
            objects: 10_000,
            side: 1_000.0,
            full_bytes: 6_400_000,
            radius: (0.3, 2.0),
            seed: 21,
        }
    }
}

/// Results of streaming one viewpoint.
#[derive(Debug, Clone, Copy)]
pub struct StreamReport {
    /// Objects visible at all.
    pub visible: usize,
    /// Bytes for the first renderable frame (lowest LOD of everything
    /// visible).
    pub startup_bytes: u64,
    /// Bytes for the fully refined frame (target LOD of everything).
    pub full_bytes: u64,
    /// Bytes a naive ship-everything-full approach would move.
    pub naive_bytes: u64,
}

impl StreamReport {
    /// Startup saving vs. the fully refined transfer.
    pub fn progressive_ratio(&self) -> f64 {
        if self.full_bytes == 0 {
            1.0
        } else {
            self.startup_bytes as f64 / self.full_bytes as f64
        }
    }
}

/// Build the scene and stream it from `viewpoint`.
pub fn stream_scene(params: &SceneParams, viewpoint: Point) -> StreamReport {
    let mut rng = seeded_rng(params.seed);
    let mut tree = HdovTree::new(Aabb::new(
        Point::ORIGIN,
        Point::new(params.side, params.side),
    ));
    for i in 0..params.objects {
        let p = Point::new(rng.gen_range(0.0..params.side), rng.gen_range(0.0..params.side));
        let r = rng.gen_range(params.radius.0..params.radius.1);
        tree.insert(EntityId::new(i as u64), p, r);
    }
    let (visible, _) = tree.walkthrough(viewpoint);
    let mut startup = 0u64;
    let mut full = 0u64;
    for v in &visible {
        // First frame: the cheapest representation that renders.
        startup += Lod::Low.payload_bytes(params.full_bytes);
        // Refined frame: the LOD visibility actually warrants.
        full += v.lod.payload_bytes(params.full_bytes);
    }
    StreamReport {
        visible: visible.len(),
        startup_bytes: startup,
        full_bytes: full,
        naive_bytes: params.objects as u64 * params.full_bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn progressive_startup_is_a_sliver_of_refined() {
        let r = stream_scene(&SceneParams::default(), Point::new(500.0, 500.0));
        assert!(r.visible > 0);
        // The refined frame includes Full-detail payloads (64× a Low
        // payload) for nearby objects, so startup must come in strictly
        // cheaper — how much cheaper depends on how many objects sit
        // close to the viewer.
        assert!(
            r.progressive_ratio() < 0.95,
            "startup should beat the refined frame, ratio {}",
            r.progressive_ratio()
        );
        assert!(r.startup_bytes < r.full_bytes);
    }

    #[test]
    fn lod_streaming_crushes_naive_shipping() {
        let r = stream_scene(&SceneParams::default(), Point::new(500.0, 500.0));
        assert!(
            r.full_bytes * 20 < r.naive_bytes,
            "LOD {} vs naive {}",
            r.full_bytes,
            r.naive_bytes
        );
    }

    #[test]
    fn corner_viewpoint_sees_less_than_center() {
        let params = SceneParams::default();
        let center = stream_scene(&params, Point::new(500.0, 500.0));
        let corner = stream_scene(&params, Point::new(-2_000.0, -2_000.0));
        assert!(corner.visible <= center.visible);
        assert!(corner.full_bytes <= center.full_bytes);
    }

    #[test]
    fn bigger_objects_cost_more_refined_bytes() {
        let small = SceneParams { radius: (0.2, 0.4), ..Default::default() };
        let big = SceneParams { radius: (3.0, 6.0), ..Default::default() };
        let rs = stream_scene(&small, Point::new(500.0, 500.0));
        let rb = stream_scene(&big, Point::new(500.0, 500.0));
        assert!(rb.full_bytes > rs.full_bytes, "{} vs {}", rb.full_bytes, rs.full_bytes);
    }
}
