#![forbid(unsafe_code)]
//! `mv-assets` — high-fidelity digital-asset management (§IV-I).
//!
//! §IV-I: *"a key challenge towards high-fidelity is data explosion …
//! In contrast to learning a representation for each avatar or object
//! independently, a promising research direction is to create
//! generalizable representation that can be shared among similar avatars
//! or objects, and develop algorithms to efficiently customise, store,
//! and operate the digital assets."*
//!
//! We cannot train NeRFs here (no GPUs, no neural nets on the dependency
//! list), so per DESIGN.md's substitution table the *data-management*
//! behaviour is modelled: assets have a full-fidelity byte size, avatars
//! derive from archetypes with small customization deltas, and streaming
//! follows a progressive level-of-detail ladder.
//!
//! * [`repr`] — independent vs. shared(base + delta) representation
//!   storage accounting on the real `mv-storage` object store (E13a);
//! * [`streaming`] — progressive LOD streaming sessions: startup bytes,
//!   total bytes, quality, as a function of viewer distance (E13b).

pub mod repr;
pub mod streaming;

pub use repr::{AssetCatalog, ReprStrategy};
pub use streaming::{stream_scene, SceneParams, StreamReport};
