//! Independent vs. shared asset representations.
//!
//! Under the **independent** strategy every avatar stores a full
//! representation. Under the **shared** strategy avatars derived from the
//! same archetype store one full base (deduplicated by the content-
//! addressed object store) plus a per-avatar customization delta —
//! the §IV-I "generalizable representation … efficiently customise"
//! design point made concrete.

use bytes::Bytes;
use mv_common::seeded_rng;
use mv_common::Space;
use mv_storage::ObjectStore;
use rand::Rng;

/// Storage strategy for avatar representations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReprStrategy {
    /// One full representation per avatar.
    Independent,
    /// One base per archetype + a small delta per avatar.
    Shared,
}

impl ReprStrategy {
    /// Both strategies.
    pub const ALL: [ReprStrategy; 2] = [ReprStrategy::Independent, ReprStrategy::Shared];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            ReprStrategy::Independent => "independent",
            ReprStrategy::Shared => "shared",
        }
    }
}

/// A catalog of avatars stored under one strategy.
#[derive(Debug)]
pub struct AssetCatalog {
    strategy: ReprStrategy,
    /// Full representation size of one avatar, bytes.
    pub base_bytes: usize,
    /// Customization delta size, bytes.
    pub delta_bytes: usize,
    store: ObjectStore,
    avatars: usize,
}

impl AssetCatalog {
    /// New catalog; defaults model a ~6.4 MB avatar with 2% deltas.
    pub fn new(strategy: ReprStrategy) -> Self {
        AssetCatalog {
            strategy,
            base_bytes: 6_400_000,
            delta_bytes: 128_000,
            store: ObjectStore::new(),
            avatars: 0,
        }
    }

    /// Deterministic pseudo-payload for an archetype (content-addressed
    /// dedup needs identical bytes for identical archetypes).
    fn base_payload(&self, archetype: u32) -> Bytes {
        // A small representative payload scaled down 1000×: the object
        // store accounts *logical* bytes separately, so we keep memory
        // manageable while byte accounting stays proportional.
        let scale = (self.base_bytes / 1000).max(1);
        let mut v = Vec::with_capacity(scale);
        let mut rng = seeded_rng(archetype as u64);
        for _ in 0..scale {
            v.push(rng.gen::<u8>());
        }
        Bytes::from(v)
    }

    fn delta_payload(&self, avatar: usize) -> Bytes {
        let scale = (self.delta_bytes / 1000).max(1);
        let mut v = Vec::with_capacity(scale);
        let mut rng = seeded_rng(0x5eed ^ avatar as u64);
        for _ in 0..scale {
            v.push(rng.gen::<u8>());
        }
        Bytes::from(v)
    }

    /// Ingest one avatar derived from `archetype`.
    pub fn ingest(&mut self, archetype: u32) {
        let id = self.avatars;
        self.avatars += 1;
        match self.strategy {
            ReprStrategy::Independent => {
                // A full, unique representation (base ⊕ customization —
                // unique per avatar, so nothing dedups).
                let mut payload = self.base_payload(archetype).to_vec();
                let delta = self.delta_payload(id);
                for (i, b) in delta.iter().enumerate() {
                    let idx = i % payload.len();
                    payload[idx] ^= b;
                }
                self.store.put(&format!("avatar/{id}"), Bytes::from(payload), Space::Virtual);
            }
            ReprStrategy::Shared => {
                self.store.put(
                    &format!("base/{archetype}"),
                    self.base_payload(archetype),
                    Space::Virtual,
                );
                self.store.put(
                    &format!("delta/{id}"),
                    self.delta_payload(id),
                    Space::Virtual,
                );
            }
        }
    }

    /// Avatars ingested.
    pub fn avatar_count(&self) -> usize {
        self.avatars
    }

    /// Physical bytes in the store (scaled model bytes).
    pub fn physical_bytes(&self) -> u64 {
        self.store.bytes().1
    }

    /// Physical bytes extrapolated back to full-size assets.
    pub fn physical_bytes_full_scale(&self) -> u64 {
        self.physical_bytes() * 1000
    }

    /// Bytes needed to *load* one avatar (what a renderer must fetch).
    pub fn load_bytes(&self) -> u64 {
        match self.strategy {
            ReprStrategy::Independent => self.base_bytes as u64,
            // Base (often cached, but charge it) + delta.
            ReprStrategy::Shared => (self.base_bytes + self.delta_bytes) as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn populate(strategy: ReprStrategy, avatars: usize, archetypes: u32) -> AssetCatalog {
        let mut cat = AssetCatalog::new(strategy);
        for i in 0..avatars {
            cat.ingest(i as u32 % archetypes);
        }
        cat
    }

    #[test]
    fn shared_representation_slashes_storage() {
        let independent = populate(ReprStrategy::Independent, 1000, 20);
        let shared = populate(ReprStrategy::Shared, 1000, 20);
        let ind = independent.physical_bytes();
        let sh = shared.physical_bytes();
        assert!(sh * 10 < ind, "shared {sh} vs independent {ind}");
    }

    #[test]
    fn storage_grows_with_archetypes_not_avatars_when_shared() {
        let few = populate(ReprStrategy::Shared, 1000, 5);
        let many = populate(ReprStrategy::Shared, 1000, 100);
        assert!(many.physical_bytes() > few.physical_bytes());
        // Doubling avatars under fixed archetypes adds only deltas.
        let double = populate(ReprStrategy::Shared, 2000, 5);
        let added = double.physical_bytes() - few.physical_bytes();
        let delta_cost = 1000 * (few.delta_bytes as u64 / 1000);
        assert!(
            added <= delta_cost + delta_cost / 10,
            "added {added} vs pure-delta cost {delta_cost}"
        );
    }

    #[test]
    fn independent_grows_linearly() {
        let a = populate(ReprStrategy::Independent, 100, 5);
        let b = populate(ReprStrategy::Independent, 200, 5);
        let ratio = b.physical_bytes() as f64 / a.physical_bytes() as f64;
        assert!((ratio - 2.0).abs() < 0.1, "ratio {ratio}");
    }

    #[test]
    fn load_cost_is_slightly_higher_for_shared() {
        let ind = AssetCatalog::new(ReprStrategy::Independent);
        let sh = AssetCatalog::new(ReprStrategy::Shared);
        assert!(sh.load_bytes() > ind.load_bytes());
        assert!(sh.load_bytes() < ind.load_bytes() * 2);
    }
}
