//! Persistent raft state as WAL records.
//!
//! Everything Raft §5 requires to be stable before acting — current
//! term, vote, log entries, suffix truncations, and snapshots — is one
//! [`RaftRecord`] appended to the node's `GroupCommitWal` and synced
//! before the protocol proceeds. The encoding is the same hand-rolled
//! little-endian framing `DurableOp` uses (tag byte + fields, byte
//! strings as `[len u32][bytes]`), and decoding is *panic-free*: a
//! recovery pass over a damaged or hostile WAL image must refuse bad
//! frames, never index past a buffer or reserve unbacked memory
//! (`mv-lint`'s panic-path rule audits this file).

use crate::msg::LogEntry;
use mv_common::codec::wire_u32;
use mv_common::id::NodeId;

/// One durable raft state change — the unit of recovery replay.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RaftRecord {
    /// Term and vote: `voted` is the granted candidate, if any. Synced
    /// before any vote reply or message carrying the new term leaves
    /// the node.
    HardState {
        /// Current term.
        term: u64,
        /// Candidate voted for in `term`, if any.
        voted: Option<NodeId>,
    },
    /// One log entry at an explicit index (indices are 1-based; the
    /// entry's position is re-checked on recovery, not trusted blindly).
    Entry {
        /// Log index.
        index: u64,
        /// Term the entry was created in.
        term: u64,
        /// Opaque command bytes (empty = leader no-op).
        cmd: Vec<u8>,
    },
    /// Discard every entry at or above `from` (a follower overwrote a
    /// conflicting suffix).
    Truncate {
        /// First discarded index.
        from: u64,
    },
    /// A state-machine snapshot covering the log prefix `..= index`.
    /// Entries at or below it are discarded.
    Snapshot {
        /// Last log index the snapshot covers.
        index: u64,
        /// Term of that entry.
        term: u64,
        /// Opaque state-machine snapshot payload.
        data: Vec<u8>,
    },
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
    put_u32(out, wire_u32(b.len()));
    out.extend_from_slice(b);
}

/// Checked little-endian cursor (same discipline as `DurableOp`'s
/// reader: every read is bounds-checked, hostile lengths refuse).
struct Reader<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, at: 0 }
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let chunk = self.buf.get(self.at..self.at.checked_add(n)?)?;
        self.at += n;
        Some(chunk)
    }

    fn u8(&mut self) -> Option<u8> {
        self.take(1).and_then(|b| b.first().copied())
    }

    fn u32(&mut self) -> Option<u32> {
        let chunk: [u8; 4] = self.take(4)?.try_into().ok()?;
        Some(u32::from_le_bytes(chunk))
    }

    fn u64(&mut self) -> Option<u64> {
        let chunk: [u8; 8] = self.take(8)?.try_into().ok()?;
        Some(u64::from_le_bytes(chunk))
    }

    fn bytes(&mut self) -> Option<Vec<u8>> {
        let len = self.u32()? as usize;
        Some(self.take(len)?.to_vec())
    }

    fn done(&self) -> bool {
        self.at == self.buf.len()
    }
}

impl RaftRecord {
    /// Encode into the canonical byte form (a WAL record value).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            RaftRecord::HardState { term, voted } => {
                out.push(1);
                put_u64(&mut out, *term);
                // 0 = none, else raw id + 1 (NodeId 0 is a valid node).
                put_u64(&mut out, voted.map_or(0, |n| n.raw() + 1));
            }
            RaftRecord::Entry { index, term, cmd } => {
                out.push(2);
                put_u64(&mut out, *index);
                put_u64(&mut out, *term);
                put_bytes(&mut out, cmd);
            }
            RaftRecord::Truncate { from } => {
                out.push(3);
                put_u64(&mut out, *from);
            }
            RaftRecord::Snapshot { index, term, data } => {
                out.push(4);
                put_u64(&mut out, *index);
                put_u64(&mut out, *term);
                put_bytes(&mut out, data);
            }
        }
        out
    }

    /// Decode the canonical byte form; `None` on any structural damage.
    pub fn decode(bytes: &[u8]) -> Option<RaftRecord> {
        let mut r = Reader::new(bytes);
        let rec = match r.u8()? {
            1 => {
                let term = r.u64()?;
                let voted = match r.u64()? {
                    0 => None,
                    v => Some(NodeId::new(v - 1)),
                };
                RaftRecord::HardState { term, voted }
            }
            2 => RaftRecord::Entry { index: r.u64()?, term: r.u64()?, cmd: r.bytes()? },
            3 => RaftRecord::Truncate { from: r.u64()? },
            4 => RaftRecord::Snapshot { index: r.u64()?, term: r.u64()?, data: r.bytes()? },
            _ => return None,
        };
        r.done().then_some(rec)
    }
}

/// Fold a recovered WAL image back into `(term, voted, base, log,
/// snapshot)`. Unknown or damaged frames are skipped (the WAL layer
/// already truncated at the first corrupt *batch*; a record it
/// delivered but this crate can't read is treated as absent rather
/// than fatal — determinism over optimism).
#[derive(Debug, Default, PartialEq, Eq)]
pub struct FoldedState {
    /// Current term.
    pub term: u64,
    /// Vote cast in `term`, if any.
    pub voted: Option<NodeId>,
    /// Last index covered by `snapshot` (0 = none).
    pub base_index: u64,
    /// Term of the entry at `base_index`.
    pub base_term: u64,
    /// Snapshot payload, if one was taken.
    pub snapshot: Option<Vec<u8>>,
    /// Entries above `base_index`, in index order.
    pub log: Vec<LogEntry>,
}

impl FoldedState {
    /// Replay `records` in order into a folded state.
    pub fn from_records<'a>(records: impl Iterator<Item = &'a [u8]>) -> FoldedState {
        let mut st = FoldedState::default();
        for bytes in records {
            let Some(rec) = RaftRecord::decode(bytes) else { continue };
            match rec {
                RaftRecord::HardState { term, voted } => {
                    st.term = term;
                    st.voted = voted;
                }
                RaftRecord::Entry { index, term, cmd } => {
                    if index <= st.base_index {
                        continue; // already covered by a snapshot
                    }
                    let next = st.base_index + st.log.len() as u64 + 1;
                    if index < next {
                        // An overwrite without an explicit truncate —
                        // honour the later record.
                        st.log.truncate((index - st.base_index - 1) as usize);
                    } else if index > next {
                        continue; // gap: refuse to fabricate entries
                    }
                    st.log.push(LogEntry { term, cmd });
                }
                RaftRecord::Truncate { from } => {
                    let keep = from.saturating_sub(st.base_index + 1) as usize;
                    st.log.truncate(keep);
                }
                RaftRecord::Snapshot { index, term, data } => {
                    if index < st.base_index {
                        continue;
                    }
                    let covered = index.saturating_sub(st.base_index) as usize;
                    if covered >= st.log.len() {
                        st.log.clear();
                    } else {
                        st.log.drain(..covered);
                    }
                    st.base_index = index;
                    st.base_term = term;
                    st.snapshot = Some(data);
                }
            }
        }
        st
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_round_trip_and_truncations_refuse() {
        let recs = vec![
            RaftRecord::HardState { term: 7, voted: Some(NodeId::new(0)) },
            RaftRecord::HardState { term: 8, voted: None },
            RaftRecord::Entry { index: 3, term: 2, cmd: b"hello".to_vec() },
            RaftRecord::Entry { index: 4, term: 2, cmd: Vec::new() },
            RaftRecord::Truncate { from: 4 },
            RaftRecord::Snapshot { index: 9, term: 3, data: vec![1, 2, 3] },
        ];
        for rec in recs {
            let bytes = rec.encode();
            assert_eq!(RaftRecord::decode(&bytes), Some(rec.clone()), "{rec:?}");
            for cut in 0..bytes.len() {
                assert_eq!(RaftRecord::decode(&bytes[..cut]), None, "{rec:?} cut {cut}");
            }
            let mut trailing = bytes.clone();
            trailing.push(0);
            assert_eq!(RaftRecord::decode(&trailing), None, "trailing byte");
        }
        assert_eq!(RaftRecord::decode(&[9]), None, "unknown tag");
    }

    #[test]
    fn hostile_lengths_decode_to_none_not_panic() {
        // An entry whose cmd length claims u32::MAX bytes.
        let mut bytes = vec![2u8];
        bytes.extend_from_slice(&1u64.to_le_bytes());
        bytes.extend_from_slice(&1u64.to_le_bytes());
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        bytes.extend_from_slice(b"x");
        assert_eq!(RaftRecord::decode(&bytes), None);
    }

    #[test]
    fn fold_rebuilds_term_vote_log_and_snapshot() {
        let img: Vec<Vec<u8>> = vec![
            RaftRecord::HardState { term: 1, voted: Some(NodeId::new(2)) }.encode(),
            RaftRecord::Entry { index: 1, term: 1, cmd: b"a".to_vec() }.encode(),
            RaftRecord::Entry { index: 2, term: 1, cmd: b"b".to_vec() }.encode(),
            RaftRecord::Entry { index: 3, term: 1, cmd: b"c".to_vec() }.encode(),
            RaftRecord::Truncate { from: 3 }.encode(),
            RaftRecord::Entry { index: 3, term: 2, cmd: b"c2".to_vec() }.encode(),
            RaftRecord::HardState { term: 2, voted: None }.encode(),
            RaftRecord::Snapshot { index: 1, term: 1, data: b"snap".to_vec() }.encode(),
        ];
        let st = FoldedState::from_records(img.iter().map(Vec::as_slice));
        assert_eq!(st.term, 2);
        assert_eq!(st.voted, None);
        assert_eq!(st.base_index, 1);
        assert_eq!(st.base_term, 1);
        assert_eq!(st.snapshot.as_deref(), Some(b"snap".as_slice()));
        assert_eq!(
            st.log,
            vec![
                LogEntry { term: 1, cmd: b"b".to_vec() },
                LogEntry { term: 2, cmd: b"c2".to_vec() },
            ]
        );
    }

    #[test]
    fn fold_skips_gaps_and_damaged_frames() {
        let img: Vec<Vec<u8>> = vec![
            RaftRecord::Entry { index: 1, term: 1, cmd: b"a".to_vec() }.encode(),
            vec![0xFF, 0x01], // damage
            RaftRecord::Entry { index: 5, term: 1, cmd: b"gap".to_vec() }.encode(),
            RaftRecord::Entry { index: 2, term: 1, cmd: b"b".to_vec() }.encode(),
        ];
        let st = FoldedState::from_records(img.iter().map(Vec::as_slice));
        assert_eq!(st.log.len(), 2, "gap entry refused, rest kept");
    }
}
