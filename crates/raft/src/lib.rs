#![forbid(unsafe_code)]
//! `mv-raft` — a deterministic, sim-clock-driven Raft-style replicated
//! log for co-space shard groups.
//!
//! The paper's §IV consistency/disaggregation story (Fig. 7) assumes
//! metaverse state survives node loss and network partition at
//! geo-distributed scale; everything below this crate (WAL, LSM, MVCC
//! 2PC) is single-node durable. This crate replicates the durable log
//! itself: a [`RaftNode`] per region replica runs leader election with
//! randomized-but-*seeded* timeouts, log replication with commit-index
//! advancement, snapshot install for lagging or state-lost followers,
//! and leader read leases — all as a pure discrete-event state machine
//! on virtual time.
//!
//! Design constraints that shape the API:
//!
//! * **No wall clock, no ambient RNG.** Election timeouts are a pure
//!   function of `(seed, node, term)` (same SplitMix64 finalizer family
//!   the reliable transport uses for retry jitter), so two runs of the
//!   same scripted fault plan are byte-identical.
//! * **The node owns no I/O.** [`RaftNode::tick`] and
//!   [`RaftNode::handle`] return [`Outgoing`] messages; the embedder
//!   ships them over `mv_net::reliable::ReliableTransport` (or anything
//!   else) and feeds deliveries back in. Commands are opaque bytes, so
//!   the crate has no dependency on the engine it replicates.
//! * **Persistence is a `GroupCommitWal`.** Term/vote, log entries,
//!   suffix truncations, and snapshots are [`RaftRecord`]s appended to
//!   a per-node group-commit WAL and synced *before* the protocol acts
//!   on them (a vote is granted only after the vote is durable; an
//!   append is acknowledged only after the entries are). A crash drops
//!   volatile role/commit state; [`RaftNode::restart`] folds the
//!   durable records back into term/vote/log/snapshot.
//! * **Commit rule.** The leader advances the commit index to the
//!   highest index replicated on a majority *whose entry term is the
//!   leader's current term* (Raft §5.4.2 — older-term entries commit
//!   only transitively). On becoming leader a no-op entry (empty
//!   command) is appended so the new term has something to commit.
//! * **Read leases.** A leader's lease extends to the majority-th
//!   freshest peer acknowledgement plus the *minimum* election timeout:
//!   no rival can win an election before the lease expires, so
//!   [`RaftNode::lease_valid`] gates linearizable-enough local reads. A
//!   leader cut off in a minority partition loses its lease one
//!   election-min after its last majority contact and refuses reads.
//!
//! `mv_core::replicated::ReplicatedMetaverse` wires this under the
//! durable engine; `tests/raft_failover.rs` drives 3–5 node regions
//! through scripted leader crashes, minority partitions, and
//! crash+restart with full state loss, asserting no acknowledged commit
//! is ever lost, no term ever has two leaders, and every replica
//! reconverges byte-identically.

pub mod msg;
pub mod node;
pub mod record;

pub use msg::{LogEntry, Outgoing, RaftMsg};
pub use node::{RaftConfig, RaftNode, Role};
pub use record::RaftRecord;

/// SplitMix64-style finalizer: maps a key pair to a well-mixed u64 with
/// no state (the same family `shard_of` and the transport jitter use).
#[inline]
pub(crate) fn mix(a: u64, b: u64) -> u64 {
    let mut z = a ^ b.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Map a u64 to `[0, 1)`.
#[inline]
pub(crate) fn unit_f64(x: u64) -> f64 {
    (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}
