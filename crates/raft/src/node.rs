//! The per-replica raft state machine.
//!
//! [`RaftNode`] is pure protocol state plus a `GroupCommitWal` standing
//! in for its disk: [`RaftNode::tick`] fires timers (election timeout,
//! heartbeat), [`RaftNode::handle`] processes one delivered message,
//! and both return the messages to ship. The embedder applies committed
//! commands by draining [`RaftNode::take_committed`] and reacts to an
//! accepted snapshot via [`RaftNode::take_pending_install`].
//!
//! Every protocol rule that Raft requires to be *stable* is appended to
//! the WAL and synced before the node acts on it (grant a vote, ack an
//! append, advertise a term). A crash (`crash`) drops volatile state —
//! role, commit index, peer bookkeeping, unsynced WAL tail — and
//! [`RaftNode::restart`] folds the surviving records back; a wiped node
//! ([`RaftNode::wipe`]) restarts empty and catches up via snapshot
//! install.

use crate::msg::{LogEntry, Outgoing, RaftMsg};
use crate::record::{FoldedState, RaftRecord};
use crate::{mix, unit_f64};
use mv_common::id::NodeId;
use mv_common::time::{SimDuration, SimTime};
use mv_obs::{SharedRegistry, SharedTracer, StatSet};
use mv_storage::wal::WalRecord;
use mv_storage::{GroupCommitPolicy, GroupCommitWal};
use std::collections::BTreeMap;

/// Protocol timing and compaction tuning. All durations are virtual.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RaftConfig {
    /// Minimum election timeout (also the lease extension unit — a
    /// rival cannot win an election in less than this).
    pub election_min: SimDuration,
    /// Seeded spread added on top: timeout ∈ `[min, min + spread)`,
    /// drawn as a pure function of `(seed, node, term)`.
    pub election_spread: SimDuration,
    /// Leader heartbeat interval (must be well under `election_min`).
    pub heartbeat: SimDuration,
    /// Max entries per AppendEntries message.
    pub max_batch: usize,
}

impl Default for RaftConfig {
    fn default() -> Self {
        RaftConfig {
            election_min: SimDuration::from_millis(150),
            election_spread: SimDuration::from_millis(150),
            heartbeat: SimDuration::from_millis(50),
            max_batch: 64,
        }
    }
}

/// A node's current protocol role.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// Accepting entries from a leader.
    Follower,
    /// Soliciting votes after an election timeout.
    Candidate,
    /// Replicating entries; the only role that accepts client appends.
    Leader,
}

/// See the module docs. One instance per region replica.
pub struct RaftNode {
    id: NodeId,
    /// Every *other* member, sorted (deterministic send order).
    peers: Vec<NodeId>,
    cfg: RaftConfig,
    seed: u64,
    // -- persistent (mirrored in `wal`) ----------------------------------
    term: u64,
    voted: Option<NodeId>,
    /// Last index covered by `snapshot` (0 = none).
    base_index: u64,
    base_term: u64,
    snapshot: Option<Vec<u8>>,
    /// Entries above `base_index`.
    log: Vec<LogEntry>,
    /// The node's "disk".
    wal: GroupCommitWal,
    // -- volatile --------------------------------------------------------
    role: Role,
    leader_hint: Option<NodeId>,
    commit_index: u64,
    /// Everything at or below this was handed to the embedder.
    applied_index: u64,
    votes: Vec<NodeId>,
    next_index: BTreeMap<NodeId, u64>,
    match_index: BTreeMap<NodeId, u64>,
    election_deadline: SimTime,
    heartbeat_due: SimTime,
    /// Freshest same-term acknowledgement per peer (lease input).
    last_ack: BTreeMap<NodeId, SimTime>,
    /// An accepted snapshot the embedder has not yet installed.
    pending_install: bool,
    /// Open `raft.election` span, if an election is in flight.
    election_span: Option<u64>,
    /// When the in-flight election started (duration probe).
    election_started: Option<SimTime>,
    tracer: Option<SharedTracer>,
    /// `raft.node.*` counters (`elections_started`, `leaders_elected`,
    /// `entries_committed`, `snapshots_installed`, …), the
    /// `term`/`commit_lag` gauges, and the `election_ms` histogram.
    pub stats: StatSet,
}

impl RaftNode {
    /// A fresh member of the group `members` (must contain `id`).
    /// `seed` pins the election-timeout stream.
    pub fn new(id: NodeId, members: &[NodeId], cfg: RaftConfig, seed: u64, now: SimTime) -> Self {
        let mut peers: Vec<NodeId> = members.iter().copied().filter(|m| *m != id).collect();
        peers.sort_unstable();
        peers.dedup();
        let mut node = RaftNode {
            id,
            peers,
            cfg,
            seed,
            term: 0,
            voted: None,
            base_index: 0,
            base_term: 0,
            snapshot: None,
            log: Vec::new(),
            wal: GroupCommitWal::with_policy(GroupCommitPolicy::by_records(usize::MAX)),
            role: Role::Follower,
            leader_hint: None,
            commit_index: 0,
            applied_index: 0,
            votes: Vec::new(),
            next_index: BTreeMap::new(),
            match_index: BTreeMap::new(),
            election_deadline: SimTime::ZERO,
            heartbeat_due: SimTime::ZERO,
            last_ack: BTreeMap::new(),
            pending_install: false,
            election_span: None,
            election_started: None,
            tracer: None,
            stats: StatSet::new("raft.node"),
        };
        node.election_deadline = now + node.election_timeout(0);
        node
    }

    /// Collect `raft.election/append/commit/snapshot` spans here.
    pub fn set_tracer(&mut self, tracer: SharedTracer) {
        self.tracer = Some(tracer);
    }

    /// Re-home this node's counters onto a shared registry.
    pub fn attach_registry(&mut self, registry: &SharedRegistry) {
        self.stats.attach(registry);
    }

    /// This node's id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Current role.
    pub fn role(&self) -> Role {
        self.role
    }

    /// True when this node believes it is the leader.
    pub fn is_leader(&self) -> bool {
        self.role == Role::Leader
    }

    /// Current term.
    pub fn term(&self) -> u64 {
        self.term
    }

    /// Where this node believes the leader is (itself when leading).
    pub fn leader_hint(&self) -> Option<NodeId> {
        if self.role == Role::Leader {
            Some(self.id)
        } else {
            self.leader_hint
        }
    }

    /// Highest log index (snapshot base + entries).
    pub fn last_index(&self) -> u64 {
        self.base_index + self.log.len() as u64
    }

    /// Highest committed index.
    pub fn commit_index(&self) -> u64 {
        self.commit_index
    }

    /// Last index covered by the local snapshot (0 = none).
    pub fn base_index(&self) -> u64 {
        self.base_index
    }

    /// The stored snapshot payload, if any.
    pub fn snapshot_data(&self) -> Option<&[u8]> {
        self.snapshot.as_deref()
    }

    /// Group size (peers + self).
    pub fn members(&self) -> usize {
        self.peers.len() + 1
    }

    fn majority(&self) -> usize {
        self.members() / 2 + 1
    }

    /// The seeded election timeout for `term`: a pure function, so two
    /// same-seed runs elect identically.
    fn election_timeout(&self, term: u64) -> SimDuration {
        let jitter = self.cfg.election_spread.mul_f64(unit_f64(mix(
            mix(self.seed, self.id.raw()),
            term,
        )));
        self.cfg.election_min + jitter
    }

    /// Term of the entry at `index`, if this node still has it.
    fn term_at(&self, index: u64) -> Option<u64> {
        if index == 0 {
            return Some(0);
        }
        if index == self.base_index {
            return Some(self.base_term);
        }
        let off = index.checked_sub(self.base_index + 1)? as usize;
        self.log.get(off).map(|e| e.term)
    }

    fn last_term(&self) -> u64 {
        self.log.last().map_or(self.base_term, |e| e.term)
    }

    /// Append `recs` to the WAL and sync: the group-commit batch is the
    /// durability unit, so one protocol step costs one sync however
    /// many records it wrote.
    fn persist(&mut self, recs: &[RaftRecord], now: SimTime) {
        if recs.is_empty() {
            return;
        }
        for rec in recs {
            self.wal.append(WalRecord::Put { key: Vec::new(), value: rec.encode() }, now);
        }
        self.wal.sync();
        self.stats.add("wal_records", recs.len() as u64);
    }

    fn persist_hard_state(&mut self, now: SimTime) {
        self.persist(&[RaftRecord::HardState { term: self.term, voted: self.voted }], now);
    }

    /// Observe a higher term: adopt it and fall back to follower.
    fn step_down(&mut self, term: u64, now: SimTime) {
        if self.role == Role::Leader {
            self.stats.incr("step_downs");
        }
        self.close_election(now, "lost");
        self.term = term;
        self.voted = None;
        self.role = Role::Follower;
        self.votes.clear();
        self.last_ack.clear();
        self.election_deadline = now + self.election_timeout(term);
        self.persist_hard_state(now);
    }

    fn close_election(&mut self, now: SimTime, status: &'static str) {
        if let (Some(tr), Some(span)) = (&self.tracer, self.election_span.take()) {
            tr.close(span, now, status);
        }
    }

    // -- timers ----------------------------------------------------------

    /// Advance timers to `now`: start an election when the timeout
    /// lapses, send heartbeats when leading. Returns messages to ship.
    pub fn tick(&mut self, now: SimTime) -> Vec<Outgoing> {
        let mut out = Vec::new();
        match self.role {
            Role::Leader => {
                if now >= self.heartbeat_due {
                    self.heartbeat_due = now + self.cfg.heartbeat;
                    self.broadcast_appends(now, &mut out);
                }
            }
            Role::Follower | Role::Candidate => {
                if now >= self.election_deadline {
                    self.start_election(now, &mut out);
                }
            }
        }
        // Health probes: the SLO layer windows these each sim tick.
        self.stats.set_gauge("term", self.term as f64);
        self.stats
            .set_gauge("commit_lag", self.last_index().saturating_sub(self.commit_index) as f64);
        out
    }

    fn start_election(&mut self, now: SimTime, out: &mut Vec<Outgoing>) {
        self.close_election(now, "lost");
        self.term += 1;
        self.role = Role::Candidate;
        self.voted = Some(self.id);
        self.votes = vec![self.id];
        self.leader_hint = None;
        self.election_deadline = now + self.election_timeout(self.term);
        self.persist_hard_state(now);
        self.stats.incr("elections_started");
        self.election_started = Some(now);
        if let Some(tr) = &self.tracer {
            if let Some(ctx) = tr.maybe_trace("raft.election", now) {
                self.election_span = Some(ctx.span);
            }
        }
        let msg = RaftMsg::Vote {
            term: self.term,
            last_index: self.last_index(),
            last_term: self.last_term(),
        };
        for &p in &self.peers {
            out.push(Outgoing { to: p, msg: msg.clone() });
        }
        if self.votes.len() >= self.majority() {
            // Single-node group: win immediately.
            self.become_leader(now, out);
        }
    }

    fn become_leader(&mut self, now: SimTime, out: &mut Vec<Outgoing>) {
        self.role = Role::Leader;
        self.leader_hint = Some(self.id);
        self.stats.incr("leaders_elected");
        if let Some(started) = self.election_started.take() {
            self.stats.observe("election_ms", now.since(started).as_millis_f64());
        }
        self.close_election(now, "won");
        let next = self.last_index() + 1;
        self.next_index = self.peers.iter().map(|&p| (p, next)).collect();
        self.match_index = self.peers.iter().map(|&p| (p, 0)).collect();
        self.last_ack.clear();
        // A no-op entry gives the new term something to commit (§5.4.2:
        // older-term entries only commit transitively through it).
        let index = self.last_index() + 1;
        self.log.push(LogEntry { term: self.term, cmd: Vec::new() });
        self.persist(&[RaftRecord::Entry { index, term: self.term, cmd: Vec::new() }], now);
        self.advance_commit(now);
        self.heartbeat_due = now + self.cfg.heartbeat;
        self.broadcast_appends(now, out);
    }

    fn broadcast_appends(&mut self, now: SimTime, out: &mut Vec<Outgoing>) {
        for p in self.peers.clone() {
            out.extend(self.append_for(p, now));
        }
    }

    /// Build the AppendEntries (or InstallSnapshot) currently owed to
    /// peer `p`.
    fn append_for(&mut self, p: NodeId, now: SimTime) -> Option<Outgoing> {
        let next = *self.next_index.get(&p)?;
        if next <= self.base_index {
            // The peer needs entries we compacted away: ship the
            // snapshot instead.
            let data = self.snapshot.clone()?;
            self.stats.incr("snapshots_sent");
            self.trace_instant("raft.snapshot", now, "sent");
            return Some(Outgoing {
                to: p,
                msg: RaftMsg::Snap {
                    term: self.term,
                    base_index: self.base_index,
                    base_term: self.base_term,
                    data,
                },
            });
        }
        let prev_index = next - 1;
        let prev_term = self.term_at(prev_index)?;
        let from = (next - self.base_index - 1) as usize;
        let entries: Vec<LogEntry> =
            self.log.get(from..).unwrap_or_default().iter().take(self.cfg.max_batch).cloned().collect();
        if !entries.is_empty() {
            self.stats.incr("appends_sent");
            self.stats.add("entries_sent", entries.len() as u64);
        } else {
            self.stats.incr("heartbeats_sent");
        }
        Some(Outgoing {
            to: p,
            msg: RaftMsg::Append {
                term: self.term,
                prev_index,
                prev_term,
                entries,
                commit: self.commit_index,
            },
        })
    }

    /// A zero-duration span marking one protocol event (sampled).
    fn trace_instant(&self, name: &'static str, now: SimTime, status: &'static str) {
        if let Some(tr) = &self.tracer {
            if let Some(ctx) = tr.maybe_trace(name, now) {
                tr.close(ctx.span, now, status);
            }
        }
    }

    // -- client surface --------------------------------------------------

    /// Append a client command to the leader's log. Returns the entry's
    /// index (acknowledge the client only once `commit_index` reaches
    /// it), or `None` when this node is not the leader.
    pub fn client_append(&mut self, cmd: Vec<u8>, now: SimTime) -> Option<u64> {
        if self.role != Role::Leader {
            return None;
        }
        let index = self.last_index() + 1;
        self.log.push(LogEntry { term: self.term, cmd: cmd.clone() });
        self.persist(&[RaftRecord::Entry { index, term: self.term, cmd }], now);
        self.stats.incr("client_appends");
        self.advance_commit(now);
        Some(index)
    }

    /// True while the leader's read lease is valid: a majority of the
    /// group acknowledged this term within the last minimum election
    /// timeout, so no rival can have been elected yet — local reads are
    /// safe without a round trip.
    pub fn lease_valid(&self, now: SimTime) -> bool {
        if self.role != Role::Leader {
            return false;
        }
        let needed = self.majority() - 1; // self counts implicitly
        if needed == 0 {
            return true;
        }
        let mut acks: Vec<SimTime> = self.last_ack.values().copied().collect();
        acks.sort_unstable_by(|a, b| b.cmp(a));
        match acks.get(needed - 1) {
            Some(&kth) => now < kth + self.cfg.election_min,
            None => false,
        }
    }

    /// Drain entries committed since the last drain, in index order.
    /// No-op entries are included (callers skip empty commands) so the
    /// index bookkeeping stays dense.
    pub fn take_committed(&mut self) -> Vec<(u64, Vec<u8>)> {
        let mut out = Vec::new();
        while self.applied_index < self.commit_index {
            let idx = self.applied_index + 1;
            let Some(off) = idx.checked_sub(self.base_index + 1) else { break };
            let Some(entry) = self.log.get(off as usize) else { break };
            out.push((idx, entry.cmd.clone()));
            self.applied_index = idx;
        }
        out
    }

    /// An accepted InstallSnapshot the embedder has not yet applied:
    /// returns `(base_index, base_term, payload)` once per install.
    pub fn take_pending_install(&mut self) -> Option<(u64, u64, Vec<u8>)> {
        if !self.pending_install {
            return None;
        }
        self.pending_install = false;
        Some((self.base_index, self.base_term, self.snapshot.clone()?))
    }

    /// Compact the log: `snapshot` covers everything up to `index`
    /// (which must be applied). Entries at or below `index` are
    /// discarded and the WAL is rewritten to the compact image —
    /// snapshot record, hard state, surviving entries — so recovery
    /// replay stays proportional to the live suffix.
    pub fn compact(&mut self, index: u64, snapshot: Vec<u8>, now: SimTime) {
        if index <= self.base_index || index > self.applied_index {
            return;
        }
        let Some(term) = self.term_at(index) else { return };
        let covered = (index - self.base_index) as usize;
        self.log.drain(..covered.min(self.log.len()));
        self.base_index = index;
        self.base_term = term;
        self.snapshot = Some(snapshot.clone());
        self.stats.incr("compactions");
        self.trace_instant("raft.snapshot", now, "compacted");
        // Rewrite the WAL as a fresh compact image.
        self.wal = GroupCommitWal::with_policy(GroupCommitPolicy::by_records(usize::MAX));
        let mut recs = vec![
            RaftRecord::Snapshot { index, term, data: snapshot },
            RaftRecord::HardState { term: self.term, voted: self.voted },
        ];
        for (i, e) in self.log.iter().enumerate() {
            recs.push(RaftRecord::Entry {
                index: self.base_index + 1 + i as u64,
                term: e.term,
                cmd: e.cmd.clone(),
            });
        }
        self.persist(&recs, now);
    }

    // -- message handling ------------------------------------------------

    /// Process one delivered message. Returns replies/side-sends.
    pub fn handle(&mut self, from: NodeId, msg: RaftMsg, now: SimTime) -> Vec<Outgoing> {
        let mut out = Vec::new();
        if msg.term() > self.term {
            self.step_down(msg.term(), now);
        }
        match msg {
            RaftMsg::Vote { term, last_index, last_term } => {
                self.on_vote(from, term, last_index, last_term, now, &mut out);
            }
            RaftMsg::VoteReply { term, granted } => {
                self.on_vote_reply(from, term, granted, now, &mut out);
            }
            RaftMsg::Append { term, prev_index, prev_term, entries, commit } => {
                self.on_append(from, term, prev_index, prev_term, entries, commit, now, &mut out);
            }
            RaftMsg::AppendReply { term, ok, match_index } => {
                self.on_append_reply(from, term, ok, match_index, now, &mut out);
            }
            RaftMsg::Snap { term, base_index, base_term, data } => {
                self.on_snap(from, term, base_index, base_term, data, now, &mut out);
            }
            RaftMsg::SnapReply { term, match_index } => {
                self.on_reply_progress(from, term, match_index, now, &mut out);
            }
        }
        out
    }

    fn on_vote(
        &mut self,
        from: NodeId,
        term: u64,
        last_index: u64,
        last_term: u64,
        now: SimTime,
        out: &mut Vec<Outgoing>,
    ) {
        let up_to_date = (last_term, last_index) >= (self.last_term(), self.last_index());
        let grant = term == self.term
            && self.voted.is_none_or(|v| v == from)
            && up_to_date
            && self.role != Role::Leader;
        if grant {
            self.voted = Some(from);
            self.election_deadline = now + self.election_timeout(term);
            // The vote must be durable before the reply leaves: a
            // restarted node must not vote twice in one term.
            self.persist_hard_state(now);
            self.stats.incr("votes_granted");
        }
        out.push(Outgoing { to: from, msg: RaftMsg::VoteReply { term: self.term, granted: grant } });
    }

    fn on_vote_reply(
        &mut self,
        from: NodeId,
        term: u64,
        granted: bool,
        now: SimTime,
        out: &mut Vec<Outgoing>,
    ) {
        if self.role != Role::Candidate || term != self.term || !granted {
            return;
        }
        if !self.votes.contains(&from) {
            self.votes.push(from);
        }
        if self.votes.len() >= self.majority() {
            self.become_leader(now, out);
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn on_append(
        &mut self,
        from: NodeId,
        term: u64,
        prev_index: u64,
        prev_term: u64,
        entries: Vec<LogEntry>,
        commit: u64,
        now: SimTime,
        out: &mut Vec<Outgoing>,
    ) {
        if term < self.term {
            out.push(Outgoing {
                to: from,
                msg: RaftMsg::AppendReply { term: self.term, ok: false, match_index: 0 },
            });
            return;
        }
        // A current-term AppendEntries is proof of a legitimate leader.
        if self.role != Role::Follower {
            self.close_election(now, "lost");
            self.role = Role::Follower;
        }
        self.leader_hint = Some(from);
        self.election_deadline = now + self.election_timeout(term);

        // Entries our snapshot already covers are skipped, not re-checked
        // — the snapshot is authoritative for its prefix.
        let (mut prev_index, mut prev_term, mut entries) = (prev_index, prev_term, entries);
        if prev_index < self.base_index {
            let skip = (self.base_index - prev_index) as usize;
            if skip >= entries.len() {
                out.push(Outgoing {
                    to: from,
                    msg: RaftMsg::AppendReply {
                        term: self.term,
                        ok: true,
                        match_index: self.base_index,
                    },
                });
                return;
            }
            entries.drain(..skip);
            prev_index = self.base_index;
            prev_term = self.base_term;
        }

        let consistent = self.term_at(prev_index) == Some(prev_term);
        if !consistent {
            // Back-off hint: the highest index the leader should try
            // next (our last index, or just below the conflict).
            let hint = self.last_index().min(prev_index.saturating_sub(1)).max(self.base_index);
            out.push(Outgoing {
                to: from,
                msg: RaftMsg::AppendReply { term: self.term, ok: false, match_index: hint },
            });
            return;
        }

        let mut recs = Vec::new();
        let mut idx = prev_index;
        for e in entries.iter() {
            idx += 1;
            match self.term_at(idx) {
                Some(t) if t == e.term => continue, // already have it
                Some(_) => {
                    // Conflict: discard our suffix, then append.
                    let keep = (idx - self.base_index - 1) as usize;
                    self.log.truncate(keep);
                    recs.push(RaftRecord::Truncate { from: idx });
                    self.log.push(e.clone());
                    recs.push(RaftRecord::Entry { index: idx, term: e.term, cmd: e.cmd.clone() });
                }
                None => {
                    self.log.push(e.clone());
                    recs.push(RaftRecord::Entry { index: idx, term: e.term, cmd: e.cmd.clone() });
                }
            }
        }
        // Durable before acknowledged: the ack promises the entries
        // survive this node's crash.
        self.persist(&recs, now);
        if !entries.is_empty() {
            self.stats.add("entries_accepted", entries.len() as u64);
        }
        let match_index = prev_index + entries.len() as u64;
        let new_commit = commit.min(self.last_index());
        if new_commit > self.commit_index {
            self.commit_index = new_commit;
            self.stats.incr("commit_advances");
        }
        out.push(Outgoing {
            to: from,
            msg: RaftMsg::AppendReply { term: self.term, ok: true, match_index },
        });
    }

    fn on_append_reply(
        &mut self,
        from: NodeId,
        term: u64,
        ok: bool,
        match_index: u64,
        now: SimTime,
        out: &mut Vec<Outgoing>,
    ) {
        if self.role != Role::Leader || term != self.term {
            return;
        }
        self.last_ack.insert(from, now);
        if ok {
            self.on_reply_progress(from, term, match_index, now, out);
        } else {
            // Back off next_index to the follower's hint and retry
            // immediately (the hint only ever decreases, so this
            // terminates).
            let next = self.next_index.entry(from).or_insert(1);
            *next = (match_index + 1).min((*next).saturating_sub(1).max(1));
            out.extend(self.append_for(from, now));
        }
    }

    /// Success progress shared by AppendReply and SnapReply.
    fn on_reply_progress(
        &mut self,
        from: NodeId,
        term: u64,
        match_index: u64,
        now: SimTime,
        out: &mut Vec<Outgoing>,
    ) {
        if self.role != Role::Leader || term != self.term {
            return;
        }
        self.last_ack.insert(from, now);
        let m = self.match_index.entry(from).or_insert(0);
        if match_index > *m {
            *m = match_index;
        }
        let next = self.next_index.entry(from).or_insert(1);
        if match_index + 1 > *next {
            *next = match_index + 1;
        }
        self.advance_commit(now);
        // More to send? Keep the pipe full without waiting a heartbeat.
        if *self.next_index.get(&from).unwrap_or(&u64::MAX) <= self.last_index() {
            out.extend(self.append_for(from, now));
        }
    }

    /// Leader commit rule: the majority-replicated index whose entry is
    /// from the current term.
    fn advance_commit(&mut self, now: SimTime) {
        if self.role != Role::Leader {
            return;
        }
        let mut matches: Vec<u64> = self.match_index.values().copied().collect();
        matches.push(self.last_index());
        matches.sort_unstable_by(|a, b| b.cmp(a));
        let Some(&candidate) = matches.get(self.majority() - 1) else { return };
        if candidate > self.commit_index && self.term_at(candidate) == Some(self.term) {
            let advanced = candidate - self.commit_index;
            self.commit_index = candidate;
            self.stats.add("entries_committed", advanced);
            self.trace_instant("raft.commit", now, "advanced");
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn on_snap(
        &mut self,
        from: NodeId,
        term: u64,
        base_index: u64,
        base_term: u64,
        data: Vec<u8>,
        now: SimTime,
        out: &mut Vec<Outgoing>,
    ) {
        if term < self.term {
            out.push(Outgoing {
                to: from,
                msg: RaftMsg::SnapReply { term: self.term, match_index: 0 },
            });
            return;
        }
        if self.role != Role::Follower {
            self.close_election(now, "lost");
            self.role = Role::Follower;
        }
        self.leader_hint = Some(from);
        self.election_deadline = now + self.election_timeout(term);
        if base_index <= self.commit_index {
            // Nothing new: we already committed past the snapshot.
            out.push(Outgoing {
                to: from,
                msg: RaftMsg::SnapReply { term: self.term, match_index: self.commit_index },
            });
            return;
        }
        // Accept: the snapshot replaces our log wholesale (any suffix
        // we hold may conflict; the leader backfills from base_index).
        self.log.clear();
        self.base_index = base_index;
        self.base_term = base_term;
        self.snapshot = Some(data.clone());
        self.commit_index = base_index;
        self.applied_index = base_index;
        self.pending_install = true;
        self.stats.incr("snapshots_installed");
        self.trace_instant("raft.snapshot", now, "installed");
        // Rewrite the WAL as the fresh image.
        self.wal = GroupCommitWal::with_policy(GroupCommitPolicy::by_records(usize::MAX));
        self.persist(
            &[
                RaftRecord::Snapshot { index: base_index, term: base_term, data },
                RaftRecord::HardState { term: self.term, voted: self.voted },
            ],
            now,
        );
        out.push(Outgoing {
            to: from,
            msg: RaftMsg::SnapReply { term: self.term, match_index: base_index },
        });
    }

    // -- crash / restart -------------------------------------------------

    /// The node's process dies: the unsynced WAL tail is lost (the
    /// protocol syncs before acting, so in practice nothing is pending)
    /// and all volatile state becomes garbage. The embedder must call
    /// [`Self::restart`] before using the node again.
    pub fn crash(&mut self) {
        self.wal.crash_with_report();
        self.stats.incr("crashes");
    }

    /// Rebuild from the durable WAL image: term/vote/log/snapshot fold
    /// back; role, commit index, and peer bookkeeping reset. The
    /// embedder rebuilds its state machine from
    /// [`Self::take_pending_install`] (set when a snapshot survived)
    /// plus re-delivered committed entries.
    pub fn restart(&mut self, now: SimTime) {
        let folded = FoldedState::from_records(self.wal.durable().iter().filter_map(|r| {
            let WalRecord::Put { value, .. } = r else { return None };
            Some(value.as_slice())
        }));
        self.term = folded.term;
        self.voted = folded.voted;
        self.base_index = folded.base_index;
        self.base_term = folded.base_term;
        self.snapshot = folded.snapshot;
        self.log = folded.log;
        self.role = Role::Follower;
        self.leader_hint = None;
        self.commit_index = self.base_index;
        self.applied_index = self.base_index;
        self.votes.clear();
        self.next_index.clear();
        self.match_index.clear();
        self.last_ack.clear();
        self.pending_install = self.snapshot.is_some();
        self.election_span = None;
        self.election_deadline = now + self.election_timeout(self.term);
        self.stats.incr("restarts");
    }

    /// Total state loss: disk *and* memory gone (a replaced machine).
    /// The node restarts empty and catches up via snapshot install or
    /// full log backfill.
    pub fn wipe(&mut self, now: SimTime) {
        self.wal = GroupCommitWal::with_policy(GroupCommitPolicy::by_records(usize::MAX));
        self.term = 0;
        self.voted = None;
        self.base_index = 0;
        self.base_term = 0;
        self.snapshot = None;
        self.log.clear();
        self.restart(now);
        self.stats.incr("wipes");
    }

    /// Deterministic digest of the committed log prefix (index, term,
    /// command bytes, folded over the snapshot base). Two replicas with
    /// equal digests agree on the committed history.
    pub fn committed_digest(&self) -> u64 {
        use std::hash::Hasher as _;
        let mut h = mv_common::hash::FxHasher::default();
        h.write_u64(self.base_index);
        h.write_u64(self.base_term);
        if let Some(s) = &self.snapshot {
            h.write(s);
        }
        for i in (self.base_index + 1)..=self.commit_index {
            let Some(off) = i.checked_sub(self.base_index + 1) else { continue };
            let Some(e) = self.log.get(off as usize) else { continue };
            h.write_u64(i);
            h.write_u64(e.term);
            h.write(&e.cmd);
        }
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn group(n: u64) -> Vec<RaftNode> {
        let members: Vec<NodeId> = (0..n).map(NodeId::new).collect();
        members
            .iter()
            .map(|&m| RaftNode::new(m, &members, RaftConfig::default(), 42, SimTime::ZERO))
            .collect()
    }

    /// Deliver every outgoing message instantly until quiescent.
    fn settle(nodes: &mut [RaftNode], mut pending: Vec<(NodeId, Outgoing)>, now: SimTime) {
        let mut guard = 0;
        while let Some((from, Outgoing { to, msg })) = pending.pop() {
            guard += 1;
            assert!(guard < 100_000, "message storm");
            let Some(node) = nodes.iter_mut().find(|n| n.id() == to) else { continue };
            for o in node.handle(from, msg, now) {
                pending.push((to, o));
            }
        }
    }

    fn tick_all(nodes: &mut [RaftNode], now: SimTime) {
        let ids: Vec<NodeId> = nodes.iter().map(|n| n.id()).collect();
        let mut pending = Vec::new();
        for (i, node) in nodes.iter_mut().enumerate() {
            for o in node.tick(now) {
                pending.push((ids[i], o));
            }
        }
        settle(nodes, pending, now);
    }

    /// A group plus a continuously advancing clock. Time must move in
    /// small steps: a silent gap longer than an election timeout is a
    /// leader failure, by design.
    struct Cluster {
        nodes: Vec<RaftNode>,
        now: SimTime,
    }

    impl Cluster {
        fn new(n: u64) -> Self {
            Cluster { nodes: group(n), now: SimTime::ZERO }
        }

        /// Advance `ms` milliseconds, ticking every ms.
        fn run_ms(&mut self, ms: u64) {
            for _ in 0..ms {
                self.now += SimDuration::from_millis(1);
                tick_all(&mut self.nodes, self.now);
            }
        }

        fn run_until_leader(&mut self, to_ms: u64) -> usize {
            for _ in 0..to_ms {
                self.run_ms(1);
                if let Some(i) = self.nodes.iter().position(|n| n.is_leader()) {
                    return i;
                }
            }
            panic!("no leader by {to_ms}ms");
        }
    }

    #[test]
    fn three_nodes_elect_exactly_one_leader() {
        let mut c = Cluster::new(3);
        let li = c.run_until_leader(1_000);
        assert_eq!(c.nodes.iter().filter(|n| n.is_leader()).count(), 1);
        let term = c.nodes[li].term();
        for n in &c.nodes {
            assert_eq!(n.term(), term, "all converge on the leader's term");
        }
    }

    #[test]
    fn appends_replicate_and_commit() {
        let mut c = Cluster::new(3);
        let li = c.run_until_leader(1_000);
        c.run_ms(100);
        let idx = c.nodes[li].client_append(b"w1".to_vec(), c.now).expect("leader");
        c.run_ms(120);
        assert!(c.nodes[li].commit_index() >= idx, "majority replication commits");
        for n in c.nodes.iter_mut() {
            let cmds: Vec<Vec<u8>> =
                n.take_committed().into_iter().map(|(_, c)| c).filter(|c| !c.is_empty()).collect();
            assert_eq!(cmds, vec![b"w1".to_vec()], "node {:?}", n.id());
        }
        let d0 = c.nodes[0].committed_digest();
        assert!(c.nodes.iter().all(|n| n.committed_digest() == d0));
    }

    #[test]
    fn crash_and_restart_preserve_durable_log() {
        let mut c = Cluster::new(3);
        let li = c.run_until_leader(1_000);
        c.run_ms(100);
        c.nodes[li].client_append(b"x".to_vec(), c.now).unwrap();
        c.run_ms(60);
        let fi = (li + 1) % 3;
        let (term, last) = (c.nodes[fi].term(), c.nodes[fi].last_index());
        c.nodes[fi].crash();
        c.nodes[fi].restart(c.now);
        assert_eq!(c.nodes[fi].term(), term, "term survives");
        assert_eq!(c.nodes[fi].last_index(), last, "log survives");
        assert_eq!(c.nodes[fi].role(), Role::Follower);
    }

    #[test]
    fn compaction_serves_snapshot_to_wiped_follower() {
        let mut c = Cluster::new(3);
        let li = c.run_until_leader(1_000);
        c.run_ms(100);
        for i in 0..8u8 {
            c.nodes[li].client_append(vec![i], c.now).unwrap();
            c.run_ms(60);
        }
        // Apply + compact on the leader.
        let applied: u64 = {
            let now = c.now;
            let n = &mut c.nodes[li];
            n.take_committed();
            let a = n.commit_index();
            n.compact(a, b"sm-snapshot".to_vec(), now);
            a
        };
        assert_eq!(c.nodes[li].base_index(), applied);
        assert!(applied >= 9, "8 commands + no-op all committed");
        // A follower loses everything; the leader must snapshot it.
        let fi = (li + 1) % 3;
        c.nodes[fi].wipe(c.now);
        c.run_ms(500);
        let f = &mut c.nodes[fi];
        assert!(f.base_index() >= applied, "snapshot installed");
        let (bi, _bt, data) = f.take_pending_install().expect("pending install for embedder");
        assert_eq!(bi, applied);
        assert_eq!(data, b"sm-snapshot".to_vec());
        let d = c.nodes[li].committed_digest();
        assert_eq!(c.nodes[fi].committed_digest(), d, "wiped node reconverges");
    }

    #[test]
    fn votes_are_durable_across_restart() {
        let members: Vec<NodeId> = (0..3).map(NodeId::new).collect();
        let mut n =
            RaftNode::new(NodeId::new(0), &members, RaftConfig::default(), 1, SimTime::ZERO);
        let now = SimTime::from_millis(1);
        let out = n.handle(
            NodeId::new(1),
            RaftMsg::Vote { term: 5, last_index: 0, last_term: 0 },
            now,
        );
        assert!(matches!(out[0].msg, RaftMsg::VoteReply { granted: true, .. }));
        n.crash();
        n.restart(now);
        // Same-term rival asks after restart: must refuse (vote durable).
        let out = n.handle(
            NodeId::new(2),
            RaftMsg::Vote { term: 5, last_index: 9, last_term: 4 },
            now,
        );
        assert!(
            matches!(out[0].msg, RaftMsg::VoteReply { granted: false, .. }),
            "restart must not forget the vote: {out:?}"
        );
    }

    #[test]
    fn stale_term_messages_are_rejected() {
        let mut c = Cluster::new(3);
        let li = c.run_until_leader(1_000);
        let term = c.nodes[li].term();
        let out = c.nodes[li].handle(
            NodeId::new(99),
            RaftMsg::Append { term: term - 1, prev_index: 0, prev_term: 0, entries: vec![], commit: 0 },
            c.now,
        );
        assert!(matches!(out[0].msg, RaftMsg::AppendReply { ok: false, .. }));
        assert!(c.nodes[li].is_leader(), "stale append must not depose the leader");
    }

    #[test]
    fn lease_expires_without_majority_contact() {
        let mut c = Cluster::new(3);
        let li = c.run_until_leader(1_000);
        c.run_ms(100);
        assert!(
            c.nodes[li].lease_valid(c.now + SimDuration::from_millis(10)),
            "fresh heartbeat acks extend the lease"
        );
        // No further acks: the lease dies within one election-min, well
        // before a rival could have won.
        assert!(!c.nodes[li].lease_valid(c.now + SimDuration::from_secs(10)));
    }

    #[test]
    fn same_seed_elections_are_identical() {
        let run = || {
            let mut c = Cluster::new(5);
            let li = c.run_until_leader(2_000);
            (li, c.now, c.nodes[li].term(), c.nodes.iter().map(|n| n.term()).collect::<Vec<_>>())
        };
        assert_eq!(run(), run());
    }
}
