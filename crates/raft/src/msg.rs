//! Raft wire messages.
//!
//! Messages travel typed over `ReliableTransport<RaftMsg>` (the
//! simulator delivers in-process values; only *sizes* hit the modelled
//! network), so no wire codec is needed — [`RaftMsg::wire_bytes`]
//! charges a faithful serialized size against link bandwidth instead.

use mv_common::id::NodeId;

/// One replicated log entry: the term it was proposed in plus opaque
/// command bytes (empty = leader no-op, skipped by state machines).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogEntry {
    /// Proposing term.
    pub term: u64,
    /// Opaque command.
    pub cmd: Vec<u8>,
}

/// Everything one raft node says to another.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RaftMsg {
    /// RequestVote: `last_index`/`last_term` describe the candidate's
    /// log head for the §5.4.1 up-to-date check.
    Vote {
        /// Candidate's term.
        term: u64,
        /// Candidate's last log index.
        last_index: u64,
        /// Term of that entry.
        last_term: u64,
    },
    /// RequestVote response.
    VoteReply {
        /// Responder's term.
        term: u64,
        /// Whether the vote was granted (and made durable first).
        granted: bool,
    },
    /// AppendEntries: heartbeat + replication in one.
    Append {
        /// Leader's term.
        term: u64,
        /// Index immediately before `entries`.
        prev_index: u64,
        /// Term of the entry at `prev_index`.
        prev_term: u64,
        /// Entries to append (may be empty: pure heartbeat).
        entries: Vec<LogEntry>,
        /// Leader's commit index.
        commit: u64,
    },
    /// AppendEntries response. On success `match_index` is the highest
    /// index known replicated; on failure it is a back-off hint (the
    /// follower's best guess at where the logs still agree).
    AppendReply {
        /// Responder's term.
        term: u64,
        /// Whether the entries were accepted (and made durable first).
        ok: bool,
        /// Match index (success) or conflict hint (failure).
        match_index: u64,
    },
    /// InstallSnapshot for a follower whose next index fell below the
    /// leader's compacted log base.
    Snap {
        /// Leader's term.
        term: u64,
        /// Last index the snapshot covers.
        base_index: u64,
        /// Term of that entry.
        base_term: u64,
        /// Opaque state-machine snapshot payload.
        data: Vec<u8>,
    },
    /// InstallSnapshot response.
    SnapReply {
        /// Responder's term.
        term: u64,
        /// The responder's log base after installing.
        match_index: u64,
    },
}

impl RaftMsg {
    /// The term the message carries (every raft message has one).
    pub fn term(&self) -> u64 {
        match self {
            RaftMsg::Vote { term, .. }
            | RaftMsg::VoteReply { term, .. }
            | RaftMsg::Append { term, .. }
            | RaftMsg::AppendReply { term, .. }
            | RaftMsg::Snap { term, .. }
            | RaftMsg::SnapReply { term, .. } => *term,
        }
    }

    /// Bytes this message would occupy serialized — charged against the
    /// simulated network's bandwidth (tag + fields + payload bytes).
    pub fn wire_bytes(&self) -> u64 {
        match self {
            RaftMsg::Vote { .. } => 1 + 24,
            RaftMsg::VoteReply { .. } => 1 + 9,
            RaftMsg::Append { entries, .. } => {
                1 + 32 + entries.iter().map(|e| 12 + e.cmd.len() as u64).sum::<u64>()
            }
            RaftMsg::AppendReply { .. } => 1 + 17,
            RaftMsg::Snap { data, .. } => 1 + 24 + data.len() as u64,
            RaftMsg::SnapReply { .. } => 1 + 16,
        }
    }
}

/// A message addressed to one peer, produced by `RaftNode::tick` /
/// `RaftNode::handle` for the embedder to ship.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Outgoing {
    /// Destination node.
    pub to: NodeId,
    /// The message.
    pub msg: RaftMsg,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_bytes_scale_with_payload() {
        let small = RaftMsg::Append { term: 1, prev_index: 0, prev_term: 0, entries: vec![], commit: 0 };
        let big = RaftMsg::Append {
            term: 1,
            prev_index: 0,
            prev_term: 0,
            entries: vec![LogEntry { term: 1, cmd: vec![0; 100] }],
            commit: 0,
        };
        assert!(big.wire_bytes() > small.wire_bytes() + 100);
        assert_eq!(small.term(), 1);
    }
}
