//! Multi-version concurrency control with snapshot-isolation and
//! serializable transactions.
//!
//! Each key keeps a version chain ordered by commit timestamp. A
//! transaction reads as of its begin timestamp, buffers writes privately,
//! and records every key it read. Commit validation is
//! first-committer-wins on the write set; under
//! [`IsolationLevel::Serializable`] the read set is validated the same
//! way (OCC backward validation), which upgrades SI to
//! conflict-serializability — the committed history is equivalent to the
//! serial execution in commit-timestamp order. Plain
//! [`IsolationLevel::Snapshot`] deliberately permits write skew, and the
//! tests pin down both behaviours.
//!
//! The store is interior-mutability-safe: every method takes `&self`
//! (one `parking_lot::Mutex` around the chains), so N stores can sit
//! behind shard routing and be driven from scoped threads — see
//! [`crate::sharded::ShardedMvcc`]. Commit timestamps come from a shared
//! [`TimestampOracle`] driven by the sim clock, so cross-shard
//! transactions get one globally ordered timestamp.
//!
//! For two-phase commit the validate/install steps are exposed
//! separately: [`MvccStore::prepare`] validates and write-locks a
//! transaction's keys on this store (a prepared-but-undecided writer
//! blocks conflicting preparers), [`MvccStore::install_prepared`]
//! installs the versions at the coordinator's commit timestamp, and
//! [`MvccStore::release_prepared`] backs a lock out on abort.

use bytes::Bytes;
use mv_common::hash::FastMap;
use mv_common::id::{IdGen, TxnId};
use mv_common::time::{SimTime, TimestampOracle};
use mv_common::{MvError, MvResult};
use parking_lot::Mutex;
use std::collections::{BTreeMap, BTreeSet};
use std::hash::Hasher as _;
use std::sync::Arc;

/// A committed version.
#[derive(Debug, Clone)]
struct Version {
    commit_ts: u64,
    value: Option<Bytes>, // None = deletion
}

/// What a transaction's commit must defend against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IsolationLevel {
    /// First-committer-wins on the write set only: prevents lost
    /// updates, permits write skew (classic SI).
    #[default]
    Snapshot,
    /// Additionally validates the read set, rejecting any transaction
    /// whose reads were overwritten after its snapshot: committed
    /// transactions are equivalent to the serial execution in
    /// commit-timestamp order.
    Serializable,
}

/// Mutex-guarded store state.
#[derive(Debug, Default)]
struct Inner {
    /// key → version chain (ascending commit_ts).
    chains: FastMap<Bytes, Vec<Version>>,
    /// Prepared-but-undecided write locks (2PC phase 1).
    locks: FastMap<Bytes, TxnId>,
    commits: u64,
    aborts: u64,
}

/// The store. All methods take `&self`; see the module docs.
#[derive(Debug, Default)]
pub struct MvccStore {
    inner: Mutex<Inner>,
    oracle: Arc<TimestampOracle>,
    ids: IdGen,
    level: IsolationLevel,
}

/// An open transaction handle. Writes are buffered privately; reads are
/// recorded for serializable validation.
#[derive(Debug)]
pub struct Transaction {
    /// Identifier.
    pub id: TxnId,
    begin_ts: u64,
    reads: BTreeSet<Bytes>,
    writes: BTreeMap<Bytes, Option<Bytes>>,
}

impl Transaction {
    /// A transaction snapshotted at `begin_ts` (normally built by
    /// [`MvccStore::begin`] / `ShardedMvcc::begin`).
    pub fn with_snapshot(id: TxnId, begin_ts: u64) -> Transaction {
        Transaction { id, begin_ts, reads: BTreeSet::new(), writes: BTreeMap::new() }
    }

    /// The snapshot timestamp.
    pub fn begin_ts(&self) -> u64 {
        self.begin_ts
    }

    /// Buffer a write.
    pub fn write(&mut self, key: impl Into<Bytes>, value: impl Into<Bytes>) {
        self.writes.insert(key.into(), Some(value.into()));
    }

    /// Buffer a delete.
    pub fn delete(&mut self, key: impl Into<Bytes>) {
        self.writes.insert(key.into(), None);
    }

    /// Record a read (done automatically by [`MvccStore::read`]).
    pub fn record_read(&mut self, key: impl Into<Bytes>) {
        self.reads.insert(key.into());
    }

    /// Keys read so far, in key order.
    pub fn read_keys(&self) -> impl Iterator<Item = &Bytes> + '_ {
        self.reads.iter()
    }

    /// Buffered writes, in key order (`None` = delete).
    pub fn write_set(&self) -> impl Iterator<Item = (&Bytes, &Option<Bytes>)> + '_ {
        self.writes.iter()
    }

    /// Number of buffered writes.
    pub fn write_count(&self) -> usize {
        self.writes.len()
    }
}

impl MvccStore {
    /// An empty store: snapshot isolation, private oracle.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty store at the given isolation level.
    pub fn with_level(level: IsolationLevel) -> Self {
        MvccStore { level, ..Self::default() }
    }

    /// An empty store sharing `oracle` (how shards of one logical
    /// database agree on timestamps).
    pub fn with_oracle(level: IsolationLevel, oracle: Arc<TimestampOracle>) -> Self {
        MvccStore { level, oracle, ..Self::default() }
    }

    /// The timestamp oracle.
    pub fn oracle(&self) -> &Arc<TimestampOracle> {
        &self.oracle
    }

    /// The isolation level commits validate at.
    pub fn level(&self) -> IsolationLevel {
        self.level
    }

    /// Begin a transaction snapshotted at the oracle's current
    /// timestamp.
    pub fn begin(&self) -> Transaction {
        Transaction::with_snapshot(self.ids.next(), self.oracle.current())
    }

    /// Read `key` inside `txn` (snapshot + read-your-writes), recording
    /// the read for serializable validation.
    pub fn read(&self, txn: &mut Transaction, key: &[u8]) -> Option<Bytes> {
        self.read_versioned(txn, key).flatten()
    }

    /// [`Self::read`] distinguishing "no chain at all" (outer `None`)
    /// from "visible value or tombstone" (outer `Some`). Callers
    /// layering MVCC over a non-versioned store use the outer `None` to
    /// fall back.
    pub fn read_versioned(&self, txn: &mut Transaction, key: &[u8]) -> Option<Option<Bytes>> {
        txn.reads.insert(Bytes::copy_from_slice(key));
        if let Some(buffered) = txn.writes.get(key) {
            return Some(buffered.clone());
        }
        let g = self.inner.lock();
        let chain = g.chains.get(key)?;
        Some(
            chain
                .iter()
                .rev()
                .find(|v| v.commit_ts <= txn.begin_ts)
                .and_then(|v| v.value.clone()),
        )
    }

    /// Read the newest version of `key` visible at timestamp `ts`.
    pub fn read_at(&self, key: &[u8], ts: u64) -> Option<Bytes> {
        let g = self.inner.lock();
        let chain = g.chains.get(key)?;
        chain.iter().rev().find(|v| v.commit_ts <= ts).and_then(|v| v.value.clone())
    }

    /// Latest committed value (auto-commit read).
    pub fn read_latest(&self, key: &[u8]) -> Option<Bytes> {
        self.read_at(key, self.oracle.current())
    }

    /// Buffer a write inside the transaction.
    pub fn write(&self, txn: &mut Transaction, key: impl Into<Bytes>, value: impl Into<Bytes>) {
        txn.write(key, value);
    }

    /// Buffer a delete inside the transaction.
    pub fn delete(&self, txn: &mut Transaction, key: impl Into<Bytes>) {
        txn.delete(key);
    }

    /// Commit at sim time `now`: validate (per the isolation level),
    /// then install versions at a fresh oracle timestamp, which is
    /// returned.
    pub fn commit_at(&self, txn: Transaction, now: SimTime) -> MvResult<u64> {
        let mut g = self.inner.lock();
        if let Err(e) = validate(&g, self.level, &txn, txn.read_keys(), txn.writes.keys()) {
            g.aborts += 1;
            return Err(e);
        }
        let commit_ts = self.oracle.next(now);
        for (key, value) in txn.writes {
            g.chains.entry(key).or_default().push(Version { commit_ts, value });
        }
        g.commits += 1;
        Ok(commit_ts)
    }

    /// [`Self::commit_at`] at the sim origin (the oracle still advances
    /// strictly, so pure logical-clock use works unchanged).
    pub fn commit(&self, txn: Transaction) -> MvResult<u64> {
        self.commit_at(txn, SimTime::ZERO)
    }

    /// Abort (drop) a transaction explicitly.
    pub fn abort(&self, txn: Transaction) {
        drop(txn);
        self.inner.lock().aborts += 1;
    }

    // ---- two-phase commit surface ----------------------------------

    /// Phase 1 for the subset of `txn` this store owns: validate
    /// `reads`/`writes` (slices of the transaction's key sets) and
    /// write-lock `writes`. A prepared key conflicts with every other
    /// preparer until decided. On `Err` nothing is locked here.
    pub fn prepare(
        &self,
        txn: &Transaction,
        reads: &[Bytes],
        writes: &[Bytes],
    ) -> MvResult<()> {
        let mut g = self.inner.lock();
        if let Err(e) = validate(&g, self.level, txn, reads.iter(), writes.iter()) {
            g.aborts += 1;
            return Err(e);
        }
        for key in writes {
            g.locks.insert(key.clone(), txn.id);
        }
        Ok(())
    }

    /// Phase 2 (commit): install `writes` at `commit_ts` and release the
    /// locks `txn` holds on them. The coordinator allocates `commit_ts`
    /// from the shared oracle once per transaction.
    pub fn install_prepared(
        &self,
        txn_id: TxnId,
        writes: &[(Bytes, Option<Bytes>)],
        commit_ts: u64,
    ) {
        let mut g = self.inner.lock();
        for (key, value) in writes {
            if g.locks.get(key) == Some(&txn_id) {
                g.locks.remove(key);
            }
            g.chains
                .entry(key.clone())
                .or_default()
                .push(Version { commit_ts, value: value.clone() });
        }
        g.commits += 1;
    }

    /// Phase 2 (abort): release the locks `txn` holds on `writes`.
    pub fn release_prepared(&self, txn_id: TxnId, writes: &[Bytes]) {
        let mut g = self.inner.lock();
        for key in writes {
            if g.locks.get(key) == Some(&txn_id) {
                g.locks.remove(key);
            }
        }
        g.aborts += 1;
    }

    /// Install one version directly at `commit_ts`, bypassing
    /// validation — the recovery path replaying decided transactions
    /// from the log. Advances the oracle past `commit_ts`.
    pub fn install_version(&self, key: impl Into<Bytes>, value: Option<Bytes>, commit_ts: u64) {
        self.oracle.advance_past(commit_ts);
        let mut g = self.inner.lock();
        g.chains.entry(key.into()).or_default().push(Version { commit_ts, value });
    }

    /// Locks currently held (prepared-but-undecided keys).
    pub fn lock_count(&self) -> usize {
        self.inner.lock().locks.len()
    }

    // ---- maintenance ------------------------------------------------

    /// Garbage-collect versions no snapshot at or after `horizon` can
    /// distinguish: per key, everything below the newest version at or
    /// below the horizon goes, and if that survivor is itself a
    /// tombstone it goes too (a snapshot ≥ horizon reads "absent" either
    /// way). Keys left with no versions are dropped entirely, so
    /// deleted-key garbage is actually reclaimed. Returns the number of
    /// versions dropped.
    pub fn gc(&self, horizon: u64) -> usize {
        let mut g = self.inner.lock();
        let mut dropped = 0;
        for chain in g.chains.values_mut() {
            // Index of the newest version visible at the horizon.
            let keep_from = chain.iter().rposition(|v| v.commit_ts <= horizon).unwrap_or(0);
            dropped += keep_from;
            chain.drain(..keep_from);
            let survivor_is_dead_tombstone = chain
                .first()
                .is_some_and(|v| v.commit_ts <= horizon && v.value.is_none());
            if survivor_is_dead_tombstone {
                chain.remove(0);
                dropped += 1;
            }
        }
        g.chains.retain(|_, c| !c.is_empty());
        dropped
    }

    /// Number of live keys (with any version).
    pub fn key_count(&self) -> usize {
        self.inner.lock().chains.len()
    }

    /// Total versions across all chains.
    pub fn version_count(&self) -> usize {
        self.inner.lock().chains.values().map(Vec::len).sum()
    }

    /// Commits performed.
    pub fn commits(&self) -> u64 {
        self.inner.lock().commits
    }

    /// Aborts (validation failures + explicit).
    pub fn aborts(&self) -> u64 {
        self.inner.lock().aborts
    }

    /// Deterministic digest of the committed state: chains folded in
    /// key order, versions in chain order. Two stores with equal
    /// digests hold the same versioned history — the differential
    /// harness compares these across crash/recovery.
    pub fn digest(&self) -> u64 {
        let g = self.inner.lock();
        let mut keys: Vec<&Bytes> = g.chains.keys().collect();
        keys.sort_unstable();
        let mut h = mv_common::hash::FxHasher::default();
        for key in keys {
            h.write(key);
            if let Some(chain) = g.chains.get(key) {
                for v in chain {
                    h.write_u64(v.commit_ts);
                    match &v.value {
                        Some(b) => {
                            h.write_u8(1);
                            h.write(b);
                        }
                        None => h.write_u8(0),
                    }
                }
            }
        }
        h.finish()
    }
}

/// Shared validation: first-committer-wins over `writes`, plus the same
/// check over `reads` under [`IsolationLevel::Serializable`]. A key
/// locked by another prepared transaction conflicts in both roles.
fn validate<'a>(
    inner: &Inner,
    level: IsolationLevel,
    txn: &Transaction,
    reads: impl Iterator<Item = &'a Bytes>,
    writes: impl Iterator<Item = &'a Bytes>,
) -> MvResult<()> {
    let check = |key: &Bytes, role: &str| -> MvResult<()> {
        if let Some(owner) = inner.locks.get(key) {
            if *owner != txn.id {
                return Err(MvError::Conflict(format!(
                    "{role} key {key:?} is prepare-locked by {owner}"
                )));
            }
        }
        if let Some(last) = inner.chains.get(key).and_then(|c| c.last()) {
            if last.commit_ts > txn.begin_ts {
                return Err(MvError::Conflict(format!(
                    "{role}-write conflict on {key:?} ({} > begin {})",
                    last.commit_ts, txn.begin_ts
                )));
            }
        }
        Ok(())
    };
    for key in writes {
        check(key, "write")?;
    }
    if level == IsolationLevel::Serializable {
        for key in reads {
            check(key, "read")?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(s: &str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }

    #[test]
    fn read_your_writes_and_commit() {
        let db = MvccStore::new();
        let mut t = db.begin();
        db.write(&mut t, b("k"), b("v1"));
        assert_eq!(db.read(&mut t, b"k"), Some(b("v1")));
        assert_eq!(db.read_latest(b"k"), None, "uncommitted writes invisible");
        db.commit(t).unwrap();
        assert_eq!(db.read_latest(b"k"), Some(b("v1")));
    }

    #[test]
    fn snapshot_reads_ignore_later_commits() {
        let db = MvccStore::new();
        let mut t0 = db.begin();
        db.write(&mut t0, b("k"), b("old"));
        db.commit(t0).unwrap();

        let mut reader = db.begin();
        let mut writer = db.begin();
        db.write(&mut writer, b("k"), b("new"));
        db.commit(writer).unwrap();

        // The reader still sees the old snapshot.
        assert_eq!(db.read(&mut reader, b"k"), Some(b("old")));
        assert_eq!(db.read_latest(b"k"), Some(b("new")));
    }

    #[test]
    fn lost_update_is_prevented() {
        let db = MvccStore::new();
        let mut init = db.begin();
        db.write(&mut init, b("counter"), b("0"));
        db.commit(init).unwrap();

        let mut t1 = db.begin();
        let mut t2 = db.begin();
        db.write(&mut t1, b("counter"), b("1"));
        db.write(&mut t2, b("counter"), b("2"));
        assert!(db.commit(t1).is_ok());
        let err = db.commit(t2).unwrap_err();
        assert!(err.is_retryable());
        assert_eq!(db.aborts(), 1);
    }

    #[test]
    fn write_skew_is_permitted_under_si() {
        // The classic SI anomaly: two txns each read the other's key and
        // write their own — both commit because write sets are disjoint.
        let db = MvccStore::new();
        let mut init = db.begin();
        db.write(&mut init, b("oncall_alice"), b("yes"));
        db.write(&mut init, b("oncall_bob"), b("yes"));
        db.commit(init).unwrap();

        let mut t1 = db.begin();
        let mut t2 = db.begin();
        assert_eq!(db.read(&mut t1, b"oncall_bob"), Some(b("yes")));
        assert_eq!(db.read(&mut t2, b"oncall_alice"), Some(b("yes")));
        db.write(&mut t1, b("oncall_alice"), b("no"));
        db.write(&mut t2, b("oncall_bob"), b("no"));
        assert!(db.commit(t1).is_ok());
        assert!(db.commit(t2).is_ok(), "SI permits write skew by design");
    }

    #[test]
    fn write_skew_is_rejected_under_serializable() {
        // Same history as above, but the second committer's read of
        // `oncall_alice` was overwritten after its snapshot: read-set
        // validation rejects it.
        let db = MvccStore::with_level(IsolationLevel::Serializable);
        let mut init = db.begin();
        db.write(&mut init, b("oncall_alice"), b("yes"));
        db.write(&mut init, b("oncall_bob"), b("yes"));
        db.commit(init).unwrap();

        let mut t1 = db.begin();
        let mut t2 = db.begin();
        assert_eq!(db.read(&mut t1, b"oncall_bob"), Some(b("yes")));
        assert_eq!(db.read(&mut t2, b"oncall_alice"), Some(b("yes")));
        db.write(&mut t1, b("oncall_alice"), b("no"));
        db.write(&mut t2, b("oncall_bob"), b("no"));
        assert!(db.commit(t1).is_ok());
        let err = db.commit(t2).unwrap_err();
        assert!(err.is_retryable(), "write skew must abort: {err}");
    }

    #[test]
    fn serializable_read_only_transactions_always_commit() {
        let db = MvccStore::with_level(IsolationLevel::Serializable);
        let mut init = db.begin();
        db.write(&mut init, b("k"), b("v"));
        db.commit(init).unwrap();
        let mut reader = db.begin();
        assert_eq!(db.read(&mut reader, b"k"), Some(b("v")));
        // A writer commits after the reader's snapshot…
        let mut w = db.begin();
        db.write(&mut w, b("unrelated"), b("x"));
        db.commit(w).unwrap();
        // …but the reader's read set is untouched, so it commits.
        assert!(db.commit(reader).is_ok());
    }

    #[test]
    fn deletes_are_versioned() {
        let db = MvccStore::new();
        let mut t0 = db.begin();
        db.write(&mut t0, b("k"), b("v"));
        db.commit(t0).unwrap();
        let mut reader = db.begin();
        let mut t1 = db.begin();
        db.delete(&mut t1, b("k"));
        db.commit(t1).unwrap();
        assert_eq!(db.read_latest(b"k"), None);
        assert_eq!(db.read(&mut reader, b"k"), Some(b("v")), "old snapshot still sees it");
    }

    #[test]
    fn explicit_abort_discards_writes() {
        let db = MvccStore::new();
        let mut t = db.begin();
        db.write(&mut t, b("k"), b("v"));
        db.abort(t);
        assert_eq!(db.read_latest(b"k"), None);
        assert_eq!(db.aborts(), 1);
    }

    #[test]
    fn gc_trims_invisible_versions() {
        let db = MvccStore::new();
        for i in 0..10 {
            let mut t = db.begin();
            db.write(&mut t, b("k"), Bytes::from(format!("v{i}")));
            db.commit(t).unwrap();
        }
        let horizon = db.oracle().current();
        let dropped = db.gc(horizon);
        assert_eq!(dropped, 9);
        assert_eq!(db.read_latest(b"k"), Some(b("v9")));
    }

    #[test]
    fn gc_reclaims_dead_tombstones() {
        let db = MvccStore::new();
        let mut t0 = db.begin();
        db.write(&mut t0, b("k"), b("v"));
        db.commit(t0).unwrap();
        let mut t1 = db.begin();
        db.delete(&mut t1, b("k"));
        db.commit(t1).unwrap();
        assert_eq!(db.key_count(), 1, "tombstone keeps the key alive pre-GC");
        let dropped = db.gc(db.oracle().current());
        assert_eq!(dropped, 2, "the overwritten version and the dead tombstone");
        assert_eq!(db.key_count(), 0, "deleted-key garbage reclaimed");
        assert_eq!(db.read_latest(b"k"), None);
    }

    #[test]
    fn conflict_detection_is_per_key() {
        let db = MvccStore::new();
        let mut t1 = db.begin();
        let mut t2 = db.begin();
        db.write(&mut t1, b("a"), b("1"));
        db.write(&mut t2, b("b"), b("2"));
        assert!(db.commit(t1).is_ok());
        assert!(db.commit(t2).is_ok(), "disjoint write sets never conflict");
    }

    #[test]
    fn prepare_locks_block_conflicting_preparers_until_decided() {
        let db = MvccStore::new();
        let mut t1 = db.begin();
        let mut t2 = db.begin();
        db.write(&mut t1, b("k"), b("1"));
        db.write(&mut t2, b("k"), b("2"));
        let w1: Vec<Bytes> = t1.write_set().map(|(k, _)| k.clone()).collect();
        let w2: Vec<Bytes> = t2.write_set().map(|(k, _)| k.clone()).collect();
        db.prepare(&t1, &[], &w1).unwrap();
        assert_eq!(db.lock_count(), 1);
        let err = db.prepare(&t2, &[], &w2).unwrap_err();
        assert!(err.to_string().contains("prepare-locked"), "{err}");

        // Abort path releases the lock; t2 can then prepare and commit.
        db.release_prepared(t1.id, &w1);
        assert_eq!(db.lock_count(), 0);
        db.prepare(&t2, &[], &w2).unwrap();
        let writes: Vec<(Bytes, Option<Bytes>)> =
            t2.write_set().map(|(k, v)| (k.clone(), v.clone())).collect();
        let ts = db.oracle().next(SimTime::ZERO);
        db.install_prepared(t2.id, &writes, ts);
        assert_eq!(db.lock_count(), 0);
        assert_eq!(db.read_latest(b"k"), Some(b("2")));
    }

    /// The satellite claim: `begin`/`commit` are `&self` and safe to
    /// drive from concurrent threads; commit timestamps come out
    /// strictly ordered and every transaction either commits or aborts.
    #[test]
    fn concurrent_begin_commit_ordering() {
        let db = std::sync::Arc::new(MvccStore::new());
        const THREADS: usize = 4;
        const PER: usize = 200;
        let results: Vec<MvResult<u64>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..THREADS)
                .map(|ti| {
                    let db = std::sync::Arc::clone(&db);
                    s.spawn(move || {
                        (0..PER)
                            .map(|i| {
                                let mut t = db.begin();
                                // Threads share a small hot set, so some
                                // first-committer-wins aborts must occur.
                                let key = format!("k{}", i % 8);
                                db.write(&mut t, Bytes::from(key), Bytes::from(vec![ti as u8]));
                                db.commit(t)
                            })
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles.into_iter().flat_map(|h| h.join().expect("no panic")).collect()
        });
        let mut commit_timestamps: Vec<u64> =
            results.iter().filter_map(|r| r.as_ref().ok().copied()).collect();
        let committed = commit_timestamps.len() as u64;
        let aborted = (results.len() as u64) - committed;
        assert_eq!(db.commits(), committed);
        assert_eq!(db.aborts(), aborted);
        commit_timestamps.sort_unstable();
        commit_timestamps.dedup();
        assert_eq!(commit_timestamps.len() as u64, committed, "commit timestamps are unique");
        assert!(committed >= 1, "something must commit");
    }

    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Satellite property: GC at horizon `h` never changes
        /// `read_at(_, ts)` for any `ts ≥ h`, across arbitrary committed
        /// histories with overwrites and deletes.
        #[test]
        fn gc_preserves_reads_at_or_after_the_horizon(
            ops in proptest::collection::vec((0u8..2, 0u8..6, 0u8..200), 1..60),
            horizon_frac in 0.0f64..1.0,
        ) {
            let db = MvccStore::new();
            let keys: Vec<Bytes> = (0..6).map(|i| Bytes::from(format!("key{i}"))).collect();
            let mut commit_ts = Vec::new();
            for (op, ki, val) in &ops {
                let mut t = db.begin();
                let key = keys[*ki as usize].clone();
                if *op == 0 {
                    db.write(&mut t, key, Bytes::from(vec![*val]));
                } else {
                    db.delete(&mut t, key);
                }
                commit_ts.push(db.commit(t).expect("serial commits never conflict"));
            }
            let last = *commit_ts.last().expect("at least one op");
            let h_index = ((commit_ts.len() - 1) as f64 * horizon_frac) as usize;
            let horizon = commit_ts[h_index];
            // Probe every key at every timestamp ≥ horizon (plus the
            // far future) before and after GC.
            let probe_points: Vec<u64> = commit_ts
                .iter()
                .copied()
                .filter(|ts| *ts >= horizon)
                .chain([last + 1])
                .collect();
            let probe = |db: &MvccStore| -> Vec<Option<Bytes>> {
                keys.iter()
                    .flat_map(|k| probe_points.iter().map(|ts| db.read_at(k, *ts)))
                    .collect()
            };
            let before = probe(&db);
            let versions_before = db.version_count();
            let dropped = db.gc(horizon);
            let after = probe(&db);
            prop_assert_eq!(before, after, "GC changed a visible read");
            prop_assert_eq!(db.version_count(), versions_before - dropped);
            // GC at the newest timestamp reclaims every key whose
            // visible state is "deleted".
            db.gc(last);
            let live = keys.iter().filter(|k| db.read_at(k, last).is_some()).count();
            prop_assert_eq!(db.key_count(), live, "tombstone-only chains must be dropped");
        }
    }
}
