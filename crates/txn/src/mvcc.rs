//! Multi-version concurrency control with snapshot isolation.
//!
//! Each key keeps a version chain ordered by commit timestamp. A
//! transaction reads as of its begin timestamp, buffers writes privately,
//! and at commit validates first-committer-wins: if any written key has
//! grown a version after the transaction began, the commit aborts. This
//! is textbook SI — it prevents lost updates but (deliberately) permits
//! write skew, and the tests pin down both behaviours.

use bytes::Bytes;
use mv_common::hash::FastMap;
use mv_common::id::TxnId;
use mv_common::{MvError, MvResult};
use std::collections::BTreeMap;

/// A committed version.
#[derive(Debug, Clone)]
struct Version {
    commit_ts: u64,
    value: Option<Bytes>, // None = deletion
}

/// The store.
#[derive(Debug, Default)]
pub struct MvccStore {
    /// key → version chain (ascending commit_ts).
    chains: FastMap<Bytes, Vec<Version>>,
    /// Logical clock; commit timestamps are allocated from it.
    clock: u64,
    next_txn: u64,
    /// Commits performed.
    pub commits: u64,
    /// Aborts due to write-write conflicts.
    pub aborts: u64,
}

/// An open transaction handle.
#[derive(Debug)]
pub struct Transaction {
    /// Identifier.
    pub id: TxnId,
    begin_ts: u64,
    writes: BTreeMap<Bytes, Option<Bytes>>,
}

impl MvccStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Begin a transaction snapshotted at the current clock.
    pub fn begin(&mut self) -> Transaction {
        let id = TxnId::new(self.next_txn);
        self.next_txn += 1;
        Transaction { id, begin_ts: self.clock, writes: BTreeMap::new() }
    }

    /// Read `key` inside `txn` (snapshot + read-your-writes).
    pub fn read(&self, txn: &Transaction, key: &[u8]) -> Option<Bytes> {
        if let Some(buffered) = txn.writes.get(key) {
            return buffered.clone();
        }
        self.read_at(key, txn.begin_ts)
    }

    /// Read the newest version of `key` visible at timestamp `ts`.
    pub fn read_at(&self, key: &[u8], ts: u64) -> Option<Bytes> {
        let chain = self.chains.get(key)?;
        chain
            .iter()
            .rev()
            .find(|v| v.commit_ts <= ts)
            .and_then(|v| v.value.clone())
    }

    /// Latest committed value (auto-commit read).
    pub fn read_latest(&self, key: &[u8]) -> Option<Bytes> {
        self.read_at(key, self.clock)
    }

    /// Buffer a write inside the transaction.
    pub fn write(&self, txn: &mut Transaction, key: impl Into<Bytes>, value: impl Into<Bytes>) {
        txn.writes.insert(key.into(), Some(value.into()));
    }

    /// Buffer a delete inside the transaction.
    pub fn delete(&self, txn: &mut Transaction, key: impl Into<Bytes>) {
        txn.writes.insert(key.into(), None);
    }

    /// Commit: first-committer-wins validation, then install versions at
    /// a fresh commit timestamp. Returns the commit timestamp.
    pub fn commit(&mut self, txn: Transaction) -> MvResult<u64> {
        for key in txn.writes.keys() {
            if let Some(chain) = self.chains.get(key) {
                if let Some(last) = chain.last() {
                    if last.commit_ts > txn.begin_ts {
                        self.aborts += 1;
                        return Err(MvError::Conflict(format!(
                            "write-write conflict on {:?} ({} > begin {})",
                            key, last.commit_ts, txn.begin_ts
                        )));
                    }
                }
            }
        }
        self.clock += 1;
        let commit_ts = self.clock;
        for (key, value) in txn.writes {
            self.chains
                .entry(key)
                .or_default()
                .push(Version { commit_ts, value });
        }
        self.commits += 1;
        Ok(commit_ts)
    }

    /// Abort (drop) a transaction explicitly.
    pub fn abort(&mut self, txn: Transaction) {
        drop(txn);
        self.aborts += 1;
    }

    /// Garbage-collect versions no snapshot at or after `horizon` can see
    /// (keeps the newest version at or below the horizon per key).
    pub fn gc(&mut self, horizon: u64) -> usize {
        let mut dropped = 0;
        for chain in self.chains.values_mut() {
            // Index of the newest version visible at the horizon.
            let keep_from = chain
                .iter()
                .rposition(|v| v.commit_ts <= horizon)
                .unwrap_or(0);
            dropped += keep_from;
            chain.drain(..keep_from);
        }
        self.chains.retain(|_, c| !c.is_empty());
        dropped
    }

    /// Number of live keys (with any version).
    pub fn key_count(&self) -> usize {
        self.chains.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(s: &str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }

    #[test]
    fn read_your_writes_and_commit() {
        let mut db = MvccStore::new();
        let mut t = db.begin();
        db.write(&mut t, b("k"), b("v1"));
        assert_eq!(db.read(&t, b"k"), Some(b("v1")));
        assert_eq!(db.read_latest(b"k"), None, "uncommitted writes invisible");
        db.commit(t).unwrap();
        assert_eq!(db.read_latest(b"k"), Some(b("v1")));
    }

    #[test]
    fn snapshot_reads_ignore_later_commits() {
        let mut db = MvccStore::new();
        let mut t0 = db.begin();
        db.write(&mut t0, b("k"), b("old"));
        db.commit(t0).unwrap();

        let reader = db.begin();
        let mut writer = db.begin();
        db.write(&mut writer, b("k"), b("new"));
        db.commit(writer).unwrap();

        // The reader still sees the old snapshot.
        assert_eq!(db.read(&reader, b"k"), Some(b("old")));
        assert_eq!(db.read_latest(b"k"), Some(b("new")));
    }

    #[test]
    fn lost_update_is_prevented() {
        let mut db = MvccStore::new();
        let mut init = db.begin();
        db.write(&mut init, b("counter"), b("0"));
        db.commit(init).unwrap();

        let mut t1 = db.begin();
        let mut t2 = db.begin();
        db.write(&mut t1, b("counter"), b("1"));
        db.write(&mut t2, b("counter"), b("2"));
        assert!(db.commit(t1).is_ok());
        let err = db.commit(t2).unwrap_err();
        assert!(err.is_retryable());
        assert_eq!(db.aborts, 1);
    }

    #[test]
    fn write_skew_is_permitted_under_si() {
        // The classic SI anomaly: two txns each read the other's key and
        // write their own — both commit because write sets are disjoint.
        let mut db = MvccStore::new();
        let mut init = db.begin();
        db.write(&mut init, b("oncall_alice"), b("yes"));
        db.write(&mut init, b("oncall_bob"), b("yes"));
        db.commit(init).unwrap();

        let mut t1 = db.begin();
        let mut t2 = db.begin();
        assert_eq!(db.read(&t1, b"oncall_bob"), Some(b("yes")));
        assert_eq!(db.read(&t2, b"oncall_alice"), Some(b("yes")));
        db.write(&mut t1, b("oncall_alice"), b("no"));
        db.write(&mut t2, b("oncall_bob"), b("no"));
        assert!(db.commit(t1).is_ok());
        assert!(db.commit(t2).is_ok(), "SI permits write skew by design");
    }

    #[test]
    fn deletes_are_versioned() {
        let mut db = MvccStore::new();
        let mut t0 = db.begin();
        db.write(&mut t0, b("k"), b("v"));
        db.commit(t0).unwrap();
        let reader = db.begin();
        let mut t1 = db.begin();
        db.delete(&mut t1, b("k"));
        db.commit(t1).unwrap();
        assert_eq!(db.read_latest(b"k"), None);
        assert_eq!(db.read(&reader, b"k"), Some(b("v")), "old snapshot still sees it");
    }

    #[test]
    fn explicit_abort_discards_writes() {
        let mut db = MvccStore::new();
        let mut t = db.begin();
        db.write(&mut t, b("k"), b("v"));
        db.abort(t);
        assert_eq!(db.read_latest(b"k"), None);
        assert_eq!(db.aborts, 1);
    }

    #[test]
    fn gc_trims_invisible_versions() {
        let mut db = MvccStore::new();
        for i in 0..10 {
            let mut t = db.begin();
            db.write(&mut t, b("k"), Bytes::from(format!("v{i}")));
            db.commit(t).unwrap();
        }
        let horizon = db.clock;
        let dropped = db.gc(horizon);
        assert_eq!(dropped, 9);
        assert_eq!(db.read_latest(b"k"), Some(b("v9")));
    }

    #[test]
    fn conflict_detection_is_per_key() {
        let mut db = MvccStore::new();
        let mut t1 = db.begin();
        let mut t2 = db.begin();
        db.write(&mut t1, b("a"), b("1"));
        db.write(&mut t2, b("b"), b("2"));
        assert!(db.commit(t1).is_ok());
        assert!(db.commit(t2).is_ok(), "disjoint write sets never conflict");
    }
}
