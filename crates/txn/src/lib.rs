#![forbid(unsafe_code)]
//! `mv-txn` — transactions for the decentralized metaverse database.
//!
//! §IV-E1: *"distributed transactions are essential for accessing data
//! across multiple data centers. However, distributed transactions are
//! hard to process at scale to ensure high throughput, high availability
//! and yet low latency due to the network partition and non-negligible
//! inter-data-center network latency. Although existing works \[51\], \[86\]
//! on reducing network overhead for inter-data-center transactions can
//! potentially help…"* (\[86\] is Carousel's single-round commit.)
//!
//! * [`mvcc`] — a multi-version store with snapshot-isolation
//!   transactions (first-committer-wins write-write conflict detection);
//! * [`distributed`] — a contention + latency simulation comparing
//!   two-phase commit against a Carousel-style single-round protocol on
//!   `mv-net` multi-DC topologies (experiment E6).

pub mod distributed;
pub mod mvcc;

pub use distributed::{CommitProtocol, DistributedSim, SimParams, TxnReport};
pub use mvcc::{MvccStore, Transaction};
