#![forbid(unsafe_code)]
//! `mv-txn` — transactions for the decentralized metaverse database.
//!
//! §IV-E1: *"distributed transactions are essential for accessing data
//! across multiple data centers. However, distributed transactions are
//! hard to process at scale to ensure high throughput, high availability
//! and yet low latency due to the network partition and non-negligible
//! inter-data-center network latency. Although existing works \[51\], \[86\]
//! on reducing network overhead for inter-data-center transactions can
//! potentially help…"* (\[86\] is Carousel's single-round commit.)
//!
//! * [`mvcc`] — a multi-version store with snapshot-isolation and
//!   serializable transactions (first-committer-wins write-write
//!   conflict detection plus read-set validation), exposing a
//!   prepare/install/release surface for two-phase commit;
//! * [`sharded`] — shard routing over N stores with one shared
//!   timestamp oracle, the transactional twin of `ShardedKv`;
//! * [`distributed`] — a contention + latency simulation comparing
//!   two-phase commit against a Carousel-style single-round protocol on
//!   `mv-net` multi-DC topologies (experiment E6).

pub mod distributed;
pub mod mvcc;
pub mod sharded;

pub use distributed::{CommitProtocol, DistributedSim, SimParams, TxnReport};
pub use mvcc::{IsolationLevel, MvccStore, Transaction};
pub use sharded::{ShardRouter, ShardedMvcc};
