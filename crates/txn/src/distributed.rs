//! Distributed commit over multi-DC topologies: 2PC vs. single-round.
//!
//! The simulation issues transactions whose keys are partitioned across
//! data centers. Commit latency is computed from the topology's actual
//! link latencies:
//!
//! * **Two-phase commit** — client → coordinator, then two sequential
//!   rounds (PREPARE, COMMIT) each bounded by the farthest participant's
//!   round trip.
//! * **Single-round** (Carousel-style, the paper's reference \[86\]) — the
//!   client fans the transaction out to all participants directly; each
//!   participant votes in one round, overlapping the consensus with the
//!   data round. One wide-area round trip total.
//!
//! Contention is modelled with per-key locks held for the transaction's
//! in-flight window: overlapping writers of the same key abort-and-count.
//! E6 sweeps inter-DC RTT and contention.

use mv_common::hash::FastMap;
use mv_common::metrics::Histogram;
use mv_common::sample::{exp_sample, Zipf};
use mv_common::seeded_rng;
use mv_common::time::{SimDuration, SimTime};
use mv_net::topology::MultiDcTopology;
use rand::Rng;

/// Which commit protocol to simulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommitProtocol {
    /// Coordinator-driven two-phase commit (two WAN rounds).
    TwoPhase,
    /// Carousel-style single-round commit (one WAN round).
    SingleRound,
}

impl CommitProtocol {
    /// All protocols.
    pub const ALL: [CommitProtocol; 2] = [CommitProtocol::TwoPhase, CommitProtocol::SingleRound];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            CommitProtocol::TwoPhase => "2pc",
            CommitProtocol::SingleRound => "single-round",
        }
    }
}

/// Simulation parameters.
#[derive(Debug, Clone)]
pub struct SimParams {
    /// Data centers.
    pub dcs: usize,
    /// One-way inter-DC latency.
    pub inter_dc_latency: SimDuration,
    /// Total transactions to run.
    pub txns: usize,
    /// Mean inter-arrival time of transactions (µs).
    pub mean_interarrival_us: f64,
    /// Keys in the database.
    pub keys: usize,
    /// Zipf skew of key popularity (contention knob).
    pub zipf_alpha: f64,
    /// Keys written per transaction.
    pub keys_per_txn: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SimParams {
    fn default() -> Self {
        SimParams {
            dcs: 3,
            inter_dc_latency: SimDuration::from_millis(40),
            txns: 2000,
            mean_interarrival_us: 500.0,
            keys: 10_000,
            zipf_alpha: 0.8,
            keys_per_txn: 3,
            seed: 1,
        }
    }
}

/// Results of one run.
#[derive(Debug)]
pub struct TxnReport {
    /// Commit latency (ms) of committed transactions.
    pub latency_ms: Histogram,
    /// Committed count.
    pub committed: u64,
    /// Aborted count (lock conflicts).
    pub aborted: u64,
    /// Total offered transactions.
    pub offered: u64,
}

impl TxnReport {
    /// Abort fraction.
    pub fn abort_rate(&self) -> f64 {
        if self.offered == 0 {
            0.0
        } else {
            self.aborted as f64 / self.offered as f64
        }
    }
}

/// The simulator.
pub struct DistributedSim {
    params: SimParams,
}

impl DistributedSim {
    /// Create with parameters.
    pub fn new(params: SimParams) -> Self {
        assert!(params.dcs >= 1 && params.keys >= params.keys_per_txn && params.keys_per_txn >= 1);
        DistributedSim { params }
    }

    /// Commit latency of a transaction from `client_dc` touching
    /// `participant_dcs`, under `protocol`, on `topo`.
    pub fn commit_latency(
        topo: &mut MultiDcTopology,
        protocol: CommitProtocol,
        client_dc: usize,
        participant_dcs: &[usize],
    ) -> SimDuration {
        let coords = topo.coordinators.clone();
        let one_way = |topo: &mut MultiDcTopology, a: usize, b: usize| -> SimDuration {
            if a == b {
                // Intra-DC hop (client to its local coordinator).
                SimDuration::from_micros(200)
            } else {
                topo.net.path_latency(coords[a], coords[b]).expect("mesh is connected")
            }
        };
        match protocol {
            CommitProtocol::TwoPhase => {
                // Client → coordinator (local), then PREPARE and COMMIT
                // rounds, each gated by the farthest participant.
                let farthest = participant_dcs
                    .iter()
                    .map(|&p| one_way(topo, client_dc, p).as_micros())
                    .max()
                    .unwrap_or(0);
                let round = SimDuration::from_micros(2 * farthest);
                SimDuration::from_micros(200) + round + round
            }
            CommitProtocol::SingleRound => {
                // Client fans out directly; one round to the farthest
                // participant, votes return in the same round.
                let farthest = participant_dcs
                    .iter()
                    .map(|&p| one_way(topo, client_dc, p).as_micros())
                    .max()
                    .unwrap_or(0);
                SimDuration::from_micros(200 + 2 * farthest)
            }
        }
    }

    /// Run the contention + latency simulation.
    pub fn run(&self, protocol: CommitProtocol) -> TxnReport {
        let p = &self.params;
        let mut topo = MultiDcTopology::build(p.dcs, 0, p.inter_dc_latency);
        let mut rng = seeded_rng(p.seed);
        let zipf = Zipf::new(p.keys, p.zipf_alpha);

        // Per-key lock release time: a writer holds its keys while the
        // commit is in flight.
        let mut lock_until: FastMap<usize, SimTime> = FastMap::default();
        let mut report = TxnReport {
            latency_ms: Histogram::with_capacity(p.txns),
            committed: 0,
            aborted: 0,
            offered: p.txns as u64,
        };
        let mut now_us = 0.0f64;
        for _ in 0..p.txns {
            now_us += exp_sample(&mut rng, p.mean_interarrival_us);
            let start = SimTime::from_micros(now_us as u64);
            // Pick distinct keys.
            let mut keys = Vec::with_capacity(p.keys_per_txn);
            while keys.len() < p.keys_per_txn {
                let k = zipf.sample(&mut rng);
                if !keys.contains(&k) {
                    keys.push(k);
                }
            }
            let client_dc = rng.gen_range(0..p.dcs);
            let participant_dcs: Vec<usize> =
                keys.iter().map(|k| k % p.dcs).collect();
            let latency =
                Self::commit_latency(&mut topo, protocol, client_dc, &participant_dcs);
            let finish = start + latency;
            // Lock check: any key still locked by an in-flight writer?
            let conflicted = keys.iter().any(|k| {
                lock_until.get(k).is_some_and(|&until| until > start)
            });
            if conflicted {
                report.aborted += 1;
                continue;
            }
            for &k in &keys {
                lock_until.insert(k, finish);
            }
            report.committed += 1;
            report.latency_ms.record(latency.as_millis_f64());
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_round_halves_wan_latency() {
        let mut topo = MultiDcTopology::build(3, 0, SimDuration::from_millis(50));
        let two_pc =
            DistributedSim::commit_latency(&mut topo, CommitProtocol::TwoPhase, 0, &[1, 2]);
        let single =
            DistributedSim::commit_latency(&mut topo, CommitProtocol::SingleRound, 0, &[1, 2]);
        // 2PC ≈ 2 rounds of 100 ms; single ≈ 1 round.
        assert!(two_pc.as_millis_f64() > 190.0, "2pc {two_pc}");
        assert!(single.as_millis_f64() < 110.0, "single {single}");
        assert!(two_pc.as_micros() > 2 * single.as_micros() - 1000);
    }

    #[test]
    fn local_transactions_are_fast_under_both() {
        let mut topo = MultiDcTopology::build(3, 0, SimDuration::from_millis(50));
        for proto in CommitProtocol::ALL {
            let lat = DistributedSim::commit_latency(&mut topo, proto, 1, &[1]);
            assert!(lat.as_millis_f64() < 2.0, "{}: {lat}", proto.name());
        }
    }

    #[test]
    fn simulation_commits_most_transactions_at_low_contention() {
        let sim = DistributedSim::new(SimParams {
            zipf_alpha: 0.0, // uniform over a wide key space: negligible contention
            keys: 200_000,
            mean_interarrival_us: 2_000.0,
            ..Default::default()
        });
        let r = sim.run(CommitProtocol::SingleRound);
        assert_eq!(r.offered, 2000);
        assert!(r.abort_rate() < 0.05, "abort rate {}", r.abort_rate());
        assert!(r.latency_ms.mean() > 0.0);
    }

    #[test]
    fn contention_and_protocol_interact() {
        // Under skew, the longer 2PC window holds locks longer → more
        // aborts than single-round at the same offered load.
        let params = SimParams { zipf_alpha: 1.2, keys: 200, ..Default::default() };
        let sim = DistributedSim::new(params);
        let two_pc = sim.run(CommitProtocol::TwoPhase);
        let single = sim.run(CommitProtocol::SingleRound);
        assert!(
            single.abort_rate() < two_pc.abort_rate(),
            "single {} vs 2pc {}",
            single.abort_rate(),
            two_pc.abort_rate()
        );
        // And single-round is faster on committed latency.
        let mut s = single.latency_ms;
        let mut t = two_pc.latency_ms;
        assert!(s.p50() < t.p50());
    }

    #[test]
    fn deterministic_given_seed() {
        let sim = DistributedSim::new(SimParams::default());
        let a = sim.run(CommitProtocol::TwoPhase);
        let b = sim.run(CommitProtocol::TwoPhase);
        assert_eq!(a.committed, b.committed);
        assert_eq!(a.aborted, b.aborted);
    }
}
