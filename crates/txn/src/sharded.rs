//! Shard routing over N [`MvccStore`]s with one shared timestamp
//! oracle — the transactional twin of `mv-storage`'s `ShardedKv`.
//!
//! A transaction spans shards freely: reads route key-by-key, and
//! commit runs the two-phase surface exposed by [`MvccStore`] —
//! validate + write-lock on every touched shard, then install at a
//! single oracle timestamp (or release on abort). The caller owning a
//! durable log (see `mv-core`'s `DurableMetaverse::txn`) interleaves
//! its prepare/decision records between those steps; callers without
//! one get the same atomicity from [`ShardedMvcc::commit_at`] because
//! the whole sequence runs under this process's control.
//!
//! Routing is a caller-supplied pure function so the MVCC shards can be
//! aligned with whatever partitioning the embedding store uses (the
//! engine passes `ShardedKv`'s hash so version chains and KV rows for
//! one entity land on the same shard index).

use crate::mvcc::{IsolationLevel, MvccStore, Transaction};
use bytes::Bytes;
use mv_common::hash::fx_hash_one;
use mv_common::id::{IdGen, TxnId};
use mv_common::time::{SimTime, TimestampOracle};
use mv_common::MvResult;
use std::sync::Arc;

/// A pure key → shard-index routing function. Must return a value in
/// `0..shards` for every key.
pub type ShardRouter = fn(&[u8], usize) -> usize;

/// The default router: Fx hash of the whole key.
pub fn fx_router(key: &[u8], shards: usize) -> usize {
    (fx_hash_one(&key) % shards.max(1) as u64) as usize
}

/// N MVCC stores behind a router, sharing one oracle. See the module
/// docs.
///
/// Shard 0 lives in its own field so "at least one shard" is a
/// structural guarantee: every routed access stays total (panic-free)
/// without a checked fallback that could fail.
#[derive(Debug)]
pub struct ShardedMvcc {
    head: MvccStore,
    rest: Vec<MvccStore>,
    oracle: Arc<TimestampOracle>,
    router: ShardRouter,
    ids: IdGen,
}

impl ShardedMvcc {
    /// `shards` stores (at least one) at `level`, routed by `router`.
    pub fn new(shards: usize, level: IsolationLevel, router: ShardRouter) -> Self {
        let n = shards.max(1);
        let oracle = Arc::new(TimestampOracle::new());
        ShardedMvcc {
            head: MvccStore::with_oracle(level, Arc::clone(&oracle)),
            rest: (1..n).map(|_| MvccStore::with_oracle(level, Arc::clone(&oracle))).collect(),
            oracle,
            router,
            ids: IdGen::new(),
        }
    }

    /// The shared oracle.
    pub fn oracle(&self) -> &Arc<TimestampOracle> {
        &self.oracle
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        1 + self.rest.len()
    }

    /// The shard `key` routes to.
    pub fn shard_of(&self, key: &[u8]) -> usize {
        (self.router)(key, self.shard_count()).min(self.rest.len())
    }

    /// Direct access to one shard's store (diagnostics, recovery).
    pub fn shard(&self, i: usize) -> Option<&MvccStore> {
        match i.checked_sub(1) {
            None => Some(&self.head),
            Some(r) => self.rest.get(r),
        }
    }

    /// All shard stores, in shard order.
    fn stores(&self) -> impl Iterator<Item = &MvccStore> {
        std::iter::once(&self.head).chain(self.rest.iter())
    }

    /// Begin a transaction snapshotted at the oracle's current
    /// timestamp. The handle works across every shard.
    pub fn begin(&self) -> Transaction {
        Transaction::with_snapshot(self.ids.next(), self.oracle.current())
    }

    /// Read `key` inside `txn`, routed to its shard.
    pub fn read(&self, txn: &mut Transaction, key: &[u8]) -> Option<Bytes> {
        self.store_for(key).read(txn, key)
    }

    /// [`MvccStore::read_versioned`] routed to `key`'s shard.
    pub fn read_versioned(&self, txn: &mut Transaction, key: &[u8]) -> Option<Option<Bytes>> {
        self.store_for(key).read_versioned(txn, key)
    }

    /// Read the newest version of `key` visible at `ts`.
    pub fn read_at(&self, key: &[u8], ts: u64) -> Option<Bytes> {
        self.store_for(key).read_at(key, ts)
    }

    /// Latest committed value of `key`.
    pub fn read_latest(&self, key: &[u8]) -> Option<Bytes> {
        self.read_at(key, self.oracle.current())
    }

    /// Shard indices `txn` must prepare on: every shard holding a write
    /// (these get durable prepare records) plus, under serializable
    /// validation, every shard holding a read. Sorted ascending so lock
    /// acquisition order is deterministic (no deadlock between
    /// concurrent preparers).
    pub fn participants(&self, txn: &Transaction) -> Vec<usize> {
        let mut out: Vec<usize> = txn.write_set().map(|(k, _)| self.shard_of(k)).collect();
        if self.stores().any(|s| s.level() == IsolationLevel::Serializable) {
            out.extend(txn.read_keys().map(|k| self.shard_of(k)));
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Shard indices holding writes of `txn` (the set that needs
    /// durable prepare records and phase-2 installs), sorted.
    pub fn write_shards(&self, txn: &Transaction) -> Vec<usize> {
        let mut out: Vec<usize> = txn.write_set().map(|(k, _)| self.shard_of(k)).collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// `txn`'s buffered writes owned by shard `si`, in key order.
    pub fn shard_writes(&self, txn: &Transaction, si: usize) -> Vec<(Bytes, Option<Bytes>)> {
        txn.write_set()
            .filter(|(k, _)| self.shard_of(k) == si)
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }

    /// `txn`'s recorded reads owned by shard `si`, in key order.
    pub fn shard_reads(&self, txn: &Transaction, si: usize) -> Vec<Bytes> {
        txn.read_keys().filter(|k| self.shard_of(k) == si).cloned().collect()
    }

    /// Phase 1 on shard `si`: validate `txn`'s reads/writes there and
    /// write-lock the writes.
    pub fn prepare_shard(&self, txn: &Transaction, si: usize) -> MvResult<()> {
        let reads = self.shard_reads(txn, si);
        let writes: Vec<Bytes> = self.shard_writes(txn, si).into_iter().map(|(k, _)| k).collect();
        self.store_at(si).prepare(txn, &reads, &writes)
    }

    /// Phase 2 (commit) on every write shard: install versions at
    /// `commit_ts` and drop the locks.
    pub fn install(&self, txn: &Transaction, commit_ts: u64) {
        for si in self.write_shards(txn) {
            let writes = self.shard_writes(txn, si);
            self.store_at(si).install_prepared(txn.id, &writes, commit_ts);
        }
    }

    /// Phase 2 (abort): release locks on shards `0..=locked_up_to`
    /// (prepare acquires in ascending participant order, so a failure
    /// at participant k leaves exactly the participants before k
    /// locked).
    pub fn release(&self, txn: &Transaction, participants: &[usize]) {
        for &si in participants {
            let writes: Vec<Bytes> =
                self.shard_writes(txn, si).into_iter().map(|(k, _)| k).collect();
            self.store_at(si).release_prepared(txn.id, &writes);
        }
    }

    /// Install one version directly (recovery replay), routed to the
    /// key's shard; advances the oracle past `commit_ts`.
    pub fn install_version(&self, key: &[u8], value: Option<Bytes>, commit_ts: u64) {
        self.store_for(key).install_version(Bytes::copy_from_slice(key), value, commit_ts);
    }

    /// One-call atomic commit across all shards at sim time `now` —
    /// prepare everywhere, then install at one fresh timestamp (or
    /// release everything and return the validation error).
    pub fn commit_at(&self, txn: Transaction, now: SimTime) -> MvResult<u64> {
        let participants = self.participants(&txn);
        for (i, &si) in participants.iter().enumerate() {
            if let Err(e) = self.prepare_shard(&txn, si) {
                self.release(&txn, participants.get(..i).unwrap_or_default());
                return Err(e);
            }
        }
        let commit_ts = self.oracle.next(now);
        self.install(&txn, commit_ts);
        Ok(commit_ts)
    }

    /// Allocate a fresh transaction id (for embedders minting their own
    /// handles).
    pub fn next_txn_id(&self) -> TxnId {
        self.ids.next()
    }

    /// Garbage-collect every shard at `horizon`; total versions dropped.
    pub fn gc(&self, horizon: u64) -> usize {
        self.stores().map(|s| s.gc(horizon)).sum()
    }

    /// Live keys across all shards.
    pub fn key_count(&self) -> usize {
        self.stores().map(MvccStore::key_count).sum()
    }

    /// Total versions across all shards.
    pub fn version_count(&self) -> usize {
        self.stores().map(MvccStore::version_count).sum()
    }

    /// Prepared-but-undecided locks across all shards (0 when quiesced).
    pub fn lock_count(&self) -> usize {
        self.stores().map(MvccStore::lock_count).sum()
    }

    /// Deterministic digest folding every shard's digest in shard
    /// order.
    pub fn digest(&self) -> u64 {
        use std::hash::Hasher as _;
        let mut h = mv_common::hash::FxHasher::default();
        for s in self.stores() {
            h.write_u64(s.digest());
        }
        h.finish()
    }

    fn store_for(&self, key: &[u8]) -> &MvccStore {
        self.store_at(self.shard_of(key))
    }

    fn store_at(&self, si: usize) -> &MvccStore {
        // shard_of clamps into range; out-of-range indices fall back to
        // shard 0, which the `head` field guarantees exists.
        match si.checked_sub(1) {
            None => &self.head,
            Some(r) => self.rest.get(r).unwrap_or(&self.head),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(s: &str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }

    fn db(shards: usize) -> ShardedMvcc {
        ShardedMvcc::new(shards, IsolationLevel::Serializable, fx_router)
    }

    #[test]
    fn cross_shard_commit_is_atomic_and_readable() {
        let db = db(4);
        let mut t = db.begin();
        for i in 0..16 {
            t.write(Bytes::from(format!("key{i}")), Bytes::from(vec![i as u8]));
        }
        let ts = db.commit_at(t, SimTime::from_millis(1)).unwrap();
        for i in 0..16 {
            assert_eq!(db.read_at(format!("key{i}").as_bytes(), ts), Some(Bytes::from(vec![i as u8])));
        }
        assert_eq!(db.lock_count(), 0, "no locks survive a decided txn");
        assert_eq!(db.key_count(), 16);
    }

    #[test]
    fn shard_count_never_changes_outcomes() {
        // The same three-txn history (one conflict) plays out
        // identically at every shard count.
        for shards in [1usize, 2, 4, 8] {
            let db = db(shards);
            let mut init = db.begin();
            init.write(b("a"), b("0"));
            init.write(b("b"), b("0"));
            db.commit_at(init, SimTime::ZERO).unwrap();

            let mut t1 = db.begin();
            let mut t2 = db.begin();
            assert_eq!(db.read(&mut t1, b"a"), Some(b("0")));
            t1.write(b("a"), b("1"));
            t2.write(b("a"), b("2"));
            assert!(db.commit_at(t1, SimTime::ZERO).is_ok(), "shards={shards}");
            assert!(db.commit_at(t2, SimTime::ZERO).is_err(), "shards={shards}: FCW");
            assert_eq!(db.read_latest(b"a"), Some(b("1")), "shards={shards}");
            assert_eq!(db.lock_count(), 0, "shards={shards}");
        }
    }

    #[test]
    fn failed_prepare_releases_earlier_participants() {
        let db = db(8);
        // Seed a key, then have a blocker prepare-lock it.
        let mut init = db.begin();
        for i in 0..8 {
            init.write(Bytes::from(format!("key{i}")), b("0"));
        }
        db.commit_at(init, SimTime::ZERO).unwrap();

        let mut blocker = db.begin();
        blocker.write(b("key7"), b("x"));
        let bp = db.participants(&blocker);
        for &si in &bp {
            db.prepare_shard(&blocker, si).unwrap();
        }

        // A txn spanning many shards including the locked key must fail
        // its commit and leave zero locks of its own behind.
        let mut t = db.begin();
        for i in 0..8 {
            t.write(Bytes::from(format!("key{i}")), b("y"));
        }
        let before = db.lock_count();
        assert!(db.commit_at(t, SimTime::ZERO).is_err());
        assert_eq!(db.lock_count(), before, "failed commit released its own locks");

        db.release(&blocker, &bp);
        assert_eq!(db.lock_count(), 0);
    }

    #[test]
    fn digest_tracks_content_not_construction_order() {
        let a = db(4);
        let b_ = db(4);
        for dbx in [&a, &b_] {
            let mut t = dbx.begin();
            t.write(b("k1"), b("v1"));
            t.write(b("k2"), b("v2"));
            dbx.commit_at(t, SimTime::from_micros(7)).unwrap();
        }
        assert_eq!(a.digest(), b_.digest());
        let mut t = a.begin();
        t.write(b("k1"), b("v9"));
        a.commit_at(t, SimTime::from_micros(8)).unwrap();
        assert_ne!(a.digest(), b_.digest());
    }
}
