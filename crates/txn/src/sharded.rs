//! Shard routing over N [`MvccStore`]s with one shared timestamp
//! oracle — the transactional twin of `mv-storage`'s `ShardedKv`.
//!
//! A transaction spans shards freely: reads route key-by-key, and
//! commit runs the two-phase surface exposed by [`MvccStore`] —
//! validate + write-lock on every touched shard, then install at a
//! single oracle timestamp (or release on abort). The caller owning a
//! durable log (see `mv-core`'s `DurableMetaverse::txn`) interleaves
//! its prepare/decision records between those steps; callers without
//! one get the same atomicity from [`ShardedMvcc::commit_at`] because
//! the whole sequence runs under this process's control.
//!
//! Routing is a caller-supplied pure function so the MVCC shards can be
//! aligned with whatever partitioning the embedding store uses (the
//! engine passes `ShardedKv`'s hash so version chains and KV rows for
//! one entity land on the same shard index).

use crate::mvcc::{IsolationLevel, MvccStore, Transaction};
use bytes::Bytes;
use mv_common::hash::fx_hash_one;
use mv_common::id::{IdGen, TxnId};
use mv_common::time::{SimTime, TimestampOracle};
use mv_common::MvResult;
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;

/// A pure key → shard-index routing function. Must return a value in
/// `0..shards` for every key.
pub type ShardRouter = fn(&[u8], usize) -> usize;

/// The default router: Fx hash of the whole key.
pub fn fx_router(key: &[u8], shards: usize) -> usize {
    (fx_hash_one(&key) % shards.max(1) as u64) as usize
}

/// N MVCC stores behind a router, sharing one oracle. See the module
/// docs.
///
/// Shard 0 lives in its own field so "at least one shard" is a
/// structural guarantee: every routed access stays total (panic-free)
/// without a checked fallback that could fail.
#[derive(Debug)]
pub struct ShardedMvcc {
    head: MvccStore,
    rest: Vec<MvccStore>,
    oracle: Arc<TimestampOracle>,
    router: ShardRouter,
    ids: IdGen,
    /// Begin timestamps of transactions begun but not yet finished
    /// (committed, aborted, or dropped via [`ShardedMvcc::finish`]),
    /// keyed by raw txn id. The oldest entry pins the GC horizon:
    /// versions it can still read are never collected under it.
    live: Mutex<BTreeMap<u64, u64>>,
}

impl ShardedMvcc {
    /// `shards` stores (at least one) at `level`, routed by `router`.
    pub fn new(shards: usize, level: IsolationLevel, router: ShardRouter) -> Self {
        let n = shards.max(1);
        let oracle = Arc::new(TimestampOracle::new());
        ShardedMvcc {
            head: MvccStore::with_oracle(level, Arc::clone(&oracle)),
            rest: (1..n).map(|_| MvccStore::with_oracle(level, Arc::clone(&oracle))).collect(),
            oracle,
            router,
            ids: IdGen::new(),
            live: Mutex::new(BTreeMap::new()),
        }
    }

    /// The shared oracle.
    pub fn oracle(&self) -> &Arc<TimestampOracle> {
        &self.oracle
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        1 + self.rest.len()
    }

    /// The shard `key` routes to.
    pub fn shard_of(&self, key: &[u8]) -> usize {
        (self.router)(key, self.shard_count()).min(self.rest.len())
    }

    /// Direct access to one shard's store (diagnostics, recovery).
    pub fn shard(&self, i: usize) -> Option<&MvccStore> {
        match i.checked_sub(1) {
            None => Some(&self.head),
            Some(r) => self.rest.get(r),
        }
    }

    /// All shard stores, in shard order.
    fn stores(&self) -> impl Iterator<Item = &MvccStore> {
        std::iter::once(&self.head).chain(self.rest.iter())
    }

    /// Begin a transaction snapshotted at the oracle's current
    /// timestamp. The handle works across every shard. The snapshot is
    /// registered live — it pins the automatic GC horizon until
    /// [`ShardedMvcc::finish`] (or a [`ShardedMvcc::commit_at`] /
    /// release path that calls it) retires the transaction.
    pub fn begin(&self) -> Transaction {
        let id: TxnId = self.ids.next();
        let begin_ts = self.oracle.current();
        self.live.lock().insert(id.raw(), begin_ts);
        Transaction::with_snapshot(id, begin_ts)
    }

    /// Retire a transaction's snapshot registration (idempotent). Every
    /// begun transaction must end up here — commit, abort, or explicit
    /// drop — or its snapshot pins the GC horizon forever.
    pub fn finish(&self, id: TxnId) {
        self.live.lock().remove(&id.raw());
    }

    /// The begin timestamp of the oldest still-live snapshot, if any.
    pub fn oldest_live_snapshot(&self) -> Option<u64> {
        self.live.lock().values().copied().min()
    }

    /// Number of begun-but-unfinished transactions.
    pub fn live_snapshot_count(&self) -> usize {
        self.live.lock().len()
    }

    /// Garbage-collect every shard at the highest horizon no live
    /// snapshot can observe below: the oldest live begin timestamp, or
    /// the oracle's current timestamp when nothing is live. Callers no
    /// longer pick a horizon by hand — a long-running transaction
    /// simply pins it. Returns total versions dropped.
    pub fn auto_gc(&self) -> usize {
        let horizon = match self.oldest_live_snapshot() {
            Some(oldest) => oldest.min(self.oracle.current()),
            None => self.oracle.current(),
        };
        self.gc(horizon)
    }

    /// Read `key` inside `txn`, routed to its shard.
    pub fn read(&self, txn: &mut Transaction, key: &[u8]) -> Option<Bytes> {
        self.store_for(key).read(txn, key)
    }

    /// [`MvccStore::read_versioned`] routed to `key`'s shard.
    pub fn read_versioned(&self, txn: &mut Transaction, key: &[u8]) -> Option<Option<Bytes>> {
        self.store_for(key).read_versioned(txn, key)
    }

    /// Read the newest version of `key` visible at `ts`.
    pub fn read_at(&self, key: &[u8], ts: u64) -> Option<Bytes> {
        self.store_for(key).read_at(key, ts)
    }

    /// Latest committed value of `key`.
    pub fn read_latest(&self, key: &[u8]) -> Option<Bytes> {
        self.read_at(key, self.oracle.current())
    }

    /// Shard indices `txn` must prepare on: every shard holding a write
    /// (these get durable prepare records) plus, under serializable
    /// validation, every shard holding a read. Sorted ascending so lock
    /// acquisition order is deterministic (no deadlock between
    /// concurrent preparers).
    pub fn participants(&self, txn: &Transaction) -> Vec<usize> {
        let mut out: Vec<usize> = txn.write_set().map(|(k, _)| self.shard_of(k)).collect();
        if self.stores().any(|s| s.level() == IsolationLevel::Serializable) {
            out.extend(txn.read_keys().map(|k| self.shard_of(k)));
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Shard indices holding writes of `txn` (the set that needs
    /// durable prepare records and phase-2 installs), sorted.
    pub fn write_shards(&self, txn: &Transaction) -> Vec<usize> {
        let mut out: Vec<usize> = txn.write_set().map(|(k, _)| self.shard_of(k)).collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// `txn`'s buffered writes owned by shard `si`, in key order.
    pub fn shard_writes(&self, txn: &Transaction, si: usize) -> Vec<(Bytes, Option<Bytes>)> {
        txn.write_set()
            .filter(|(k, _)| self.shard_of(k) == si)
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }

    /// `txn`'s recorded reads owned by shard `si`, in key order.
    pub fn shard_reads(&self, txn: &Transaction, si: usize) -> Vec<Bytes> {
        txn.read_keys().filter(|k| self.shard_of(k) == si).cloned().collect()
    }

    /// Phase 1 on shard `si`: validate `txn`'s reads/writes there and
    /// write-lock the writes.
    pub fn prepare_shard(&self, txn: &Transaction, si: usize) -> MvResult<()> {
        let reads = self.shard_reads(txn, si);
        let writes: Vec<Bytes> = self.shard_writes(txn, si).into_iter().map(|(k, _)| k).collect();
        self.store_at(si).prepare(txn, &reads, &writes)
    }

    /// Phase 2 (commit) on every write shard: install versions at
    /// `commit_ts` and drop the locks.
    pub fn install(&self, txn: &Transaction, commit_ts: u64) {
        for si in self.write_shards(txn) {
            let writes = self.shard_writes(txn, si);
            self.store_at(si).install_prepared(txn.id, &writes, commit_ts);
        }
    }

    /// Phase 2 (abort): release locks on shards `0..=locked_up_to`
    /// (prepare acquires in ascending participant order, so a failure
    /// at participant k leaves exactly the participants before k
    /// locked).
    pub fn release(&self, txn: &Transaction, participants: &[usize]) {
        for &si in participants {
            let writes: Vec<Bytes> =
                self.shard_writes(txn, si).into_iter().map(|(k, _)| k).collect();
            self.store_at(si).release_prepared(txn.id, &writes);
        }
    }

    /// Install one version directly (recovery replay), routed to the
    /// key's shard; advances the oracle past `commit_ts`.
    pub fn install_version(&self, key: &[u8], value: Option<Bytes>, commit_ts: u64) {
        self.store_for(key).install_version(Bytes::copy_from_slice(key), value, commit_ts);
    }

    /// One-call atomic commit across all shards at sim time `now` —
    /// prepare everywhere, then install at one fresh timestamp (or
    /// release everything and return the validation error).
    pub fn commit_at(&self, txn: Transaction, now: SimTime) -> MvResult<u64> {
        let participants = self.participants(&txn);
        for (i, &si) in participants.iter().enumerate() {
            if let Err(e) = self.prepare_shard(&txn, si) {
                self.release(&txn, participants.get(..i).unwrap_or_default());
                self.finish(txn.id);
                return Err(e);
            }
        }
        let commit_ts = self.oracle.next(now);
        self.install(&txn, commit_ts);
        self.finish(txn.id);
        Ok(commit_ts)
    }

    /// Allocate a fresh transaction id (for embedders minting their own
    /// handles).
    pub fn next_txn_id(&self) -> TxnId {
        self.ids.next()
    }

    /// Garbage-collect every shard at `horizon`; total versions dropped.
    pub fn gc(&self, horizon: u64) -> usize {
        self.stores().map(|s| s.gc(horizon)).sum()
    }

    /// Live keys across all shards.
    pub fn key_count(&self) -> usize {
        self.stores().map(MvccStore::key_count).sum()
    }

    /// Total versions across all shards.
    pub fn version_count(&self) -> usize {
        self.stores().map(MvccStore::version_count).sum()
    }

    /// Prepared-but-undecided locks across all shards (0 when quiesced).
    pub fn lock_count(&self) -> usize {
        self.stores().map(MvccStore::lock_count).sum()
    }

    /// Deterministic digest folding every shard's digest in shard
    /// order.
    pub fn digest(&self) -> u64 {
        use std::hash::Hasher as _;
        let mut h = mv_common::hash::FxHasher::default();
        for s in self.stores() {
            h.write_u64(s.digest());
        }
        h.finish()
    }

    fn store_for(&self, key: &[u8]) -> &MvccStore {
        self.store_at(self.shard_of(key))
    }

    fn store_at(&self, si: usize) -> &MvccStore {
        // shard_of clamps into range; out-of-range indices fall back to
        // shard 0, which the `head` field guarantees exists.
        match si.checked_sub(1) {
            None => &self.head,
            Some(r) => self.rest.get(r).unwrap_or(&self.head),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(s: &str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }

    fn db(shards: usize) -> ShardedMvcc {
        ShardedMvcc::new(shards, IsolationLevel::Serializable, fx_router)
    }

    #[test]
    fn cross_shard_commit_is_atomic_and_readable() {
        let db = db(4);
        let mut t = db.begin();
        for i in 0..16 {
            t.write(Bytes::from(format!("key{i}")), Bytes::from(vec![i as u8]));
        }
        let ts = db.commit_at(t, SimTime::from_millis(1)).unwrap();
        for i in 0..16 {
            assert_eq!(db.read_at(format!("key{i}").as_bytes(), ts), Some(Bytes::from(vec![i as u8])));
        }
        assert_eq!(db.lock_count(), 0, "no locks survive a decided txn");
        assert_eq!(db.key_count(), 16);
    }

    #[test]
    fn shard_count_never_changes_outcomes() {
        // The same three-txn history (one conflict) plays out
        // identically at every shard count.
        for shards in [1usize, 2, 4, 8] {
            let db = db(shards);
            let mut init = db.begin();
            init.write(b("a"), b("0"));
            init.write(b("b"), b("0"));
            db.commit_at(init, SimTime::ZERO).unwrap();

            let mut t1 = db.begin();
            let mut t2 = db.begin();
            assert_eq!(db.read(&mut t1, b"a"), Some(b("0")));
            t1.write(b("a"), b("1"));
            t2.write(b("a"), b("2"));
            assert!(db.commit_at(t1, SimTime::ZERO).is_ok(), "shards={shards}");
            assert!(db.commit_at(t2, SimTime::ZERO).is_err(), "shards={shards}: FCW");
            assert_eq!(db.read_latest(b"a"), Some(b("1")), "shards={shards}");
            assert_eq!(db.lock_count(), 0, "shards={shards}");
        }
    }

    #[test]
    fn failed_prepare_releases_earlier_participants() {
        let db = db(8);
        // Seed a key, then have a blocker prepare-lock it.
        let mut init = db.begin();
        for i in 0..8 {
            init.write(Bytes::from(format!("key{i}")), b("0"));
        }
        db.commit_at(init, SimTime::ZERO).unwrap();

        let mut blocker = db.begin();
        blocker.write(b("key7"), b("x"));
        let bp = db.participants(&blocker);
        for &si in &bp {
            db.prepare_shard(&blocker, si).unwrap();
        }

        // A txn spanning many shards including the locked key must fail
        // its commit and leave zero locks of its own behind.
        let mut t = db.begin();
        for i in 0..8 {
            t.write(Bytes::from(format!("key{i}")), b("y"));
        }
        let before = db.lock_count();
        assert!(db.commit_at(t, SimTime::ZERO).is_err());
        assert_eq!(db.lock_count(), before, "failed commit released its own locks");

        db.release(&blocker, &bp);
        assert_eq!(db.lock_count(), 0);
    }

    #[test]
    fn auto_gc_collects_behind_the_oldest_live_snapshot() {
        let db = db(4);
        // Ten rewrites of the same key build a ten-version chain.
        for i in 0..10 {
            let mut t = db.begin();
            t.write(b("hot"), Bytes::from(vec![i as u8]));
            db.commit_at(t, SimTime::from_millis(1 + i)).unwrap();
        }
        assert!(db.version_count() >= 10);
        assert_eq!(db.live_snapshot_count(), 0, "commit_at retires its txn");
        // Nothing is live, so the collector trims to one version per key.
        assert!(db.auto_gc() > 0);
        assert_eq!(db.version_count(), 1);
        assert_eq!(db.read_latest(b"hot"), Some(Bytes::from(vec![9u8])));
    }

    #[test]
    fn long_running_transaction_pins_the_horizon() {
        let db = db(4);
        let mut init = db.begin();
        init.write(b("hot"), b("v0"));
        db.commit_at(init, SimTime::from_millis(1)).unwrap();

        // A reader opens a snapshot, then ten writers churn the key.
        let mut reader = db.begin();
        let pinned = db.oldest_live_snapshot().expect("reader is live");
        for i in 0..10 {
            let mut t = db.begin();
            t.write(b("hot"), Bytes::from(vec![i as u8]));
            db.commit_at(t, SimTime::from_millis(2 + i)).unwrap();
        }
        // The collector may not take anything the reader can still see:
        // its snapshot predates every churn commit, so the chain stays.
        let before = db.version_count();
        db.auto_gc();
        assert_eq!(db.version_count(), before, "live snapshot pins the horizon");
        assert_eq!(db.oldest_live_snapshot(), Some(pinned));
        assert_eq!(db.read(&mut reader, b"hot"), Some(b("v0")), "snapshot intact after GC");

        // Retiring the reader releases the pin; the chain collapses.
        db.finish(reader.id);
        assert_eq!(db.live_snapshot_count(), 0);
        assert!(db.auto_gc() > 0);
        assert_eq!(db.version_count(), 1);
    }

    #[test]
    fn failed_commit_retires_its_snapshot() {
        let db = db(2);
        let mut init = db.begin();
        init.write(b("k"), b("0"));
        db.commit_at(init, SimTime::ZERO).unwrap();
        let mut t1 = db.begin();
        let mut t2 = db.begin();
        assert_eq!(db.read(&mut t1, b"k"), Some(b("0")));
        t1.write(b("k"), b("1"));
        t2.write(b("k"), b("2"));
        db.commit_at(t1, SimTime::ZERO).unwrap();
        assert!(db.commit_at(t2, SimTime::ZERO).is_err());
        assert_eq!(db.live_snapshot_count(), 0, "the loser's snapshot is retired too");
    }

    #[test]
    fn digest_tracks_content_not_construction_order() {
        let a = db(4);
        let b_ = db(4);
        for dbx in [&a, &b_] {
            let mut t = dbx.begin();
            t.write(b("k1"), b("v1"));
            t.write(b("k2"), b("v2"));
            dbx.commit_at(t, SimTime::from_micros(7)).unwrap();
        }
        assert_eq!(a.digest(), b_.digest());
        let mut t = a.begin();
        t.write(b("k1"), b("v9"));
        a.commit_at(t, SimTime::from_micros(8)).unwrap();
        assert_ne!(a.digest(), b_.digest());
    }
}
