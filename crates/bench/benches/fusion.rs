//! Criterion micro-benches for E2: evidence ingestion and the full
//! library-scenario fusion run.

use criterion::{criterion_group, criterion_main, Criterion};
use mv_common::time::SimTime;
use mv_fusion::evidence::{EvidencePool, Observation};
use mv_fusion::library::{LibraryParams, LibraryScenario};

fn bench_observe(c: &mut Criterion) {
    let mut group = c.benchmark_group("fusion");
    group.sample_size(20);
    group.bench_function("observe", |b| {
        let mut pool = EvidencePool::with_half_life_us(1e6);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            pool.observe(&Observation {
                entity: (i % 1000) as usize,
                hypothesis: i % 40,
                reliability: 0.8,
                ts: SimTime::from_micros(i),
            })
        })
    });
    group.bench_function("library_scenario_200_books", |b| {
        let params = LibraryParams { n_books: 200, ..Default::default() };
        b.iter(|| LibraryScenario::new(params, 42).run_fusion())
    });
    group.finish();
}

criterion_group!(benches, bench_observe);
criterion_main!(benches);
