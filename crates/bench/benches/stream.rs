//! Criterion micro-benches for the stream engine: operator pipeline
//! throughput, sequential vs. key-partitioned parallel (E14b).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mv_common::time::{SimDuration, SimTime};
use mv_stream::ops::{AggKind, FilterOp, MapOp, WindowAggOp, WindowKind};
use mv_stream::{ParallelPipeline, Pipeline, StreamRecord};

fn records(n: u64) -> Vec<StreamRecord> {
    (0..n)
        .map(|i| StreamRecord::physical(SimTime::from_micros(i), i % 128, (i % 100) as f64))
        .collect()
}

fn make_pipeline() -> Pipeline {
    Pipeline::new()
        .then(MapOp::new(|r| r.with_value(r.value * 1.5)))
        .then(FilterOp::new(|r| r.value >= 10.0))
        .then(WindowAggOp::new(WindowKind::Tumbling(SimDuration::from_millis(1)), AggKind::Avg))
}

fn bench_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("stream_pipeline");
    group.sample_size(10);
    let n = 200_000u64;
    group.throughput(Throughput::Elements(n));
    let recs = records(n);
    group.bench_function("sequential", |b| {
        b.iter(|| {
            let mut p = make_pipeline();
            let mut out = p.push_batch(recs.clone());
            out.extend(p.flush(SimTime::from_secs(10)));
            out.len()
        })
    });
    for workers in [2usize, 4] {
        group.bench_with_input(
            BenchmarkId::new("parallel", workers),
            &workers,
            |b, &workers| {
                let par = ParallelPipeline::new(workers);
                b.iter(|| par.run(make_pipeline, recs.clone(), SimTime::from_secs(10)).len())
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
