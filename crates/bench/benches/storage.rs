//! Criterion micro-benches for the storage layer: KV point ops, buffer
//! pool accesses, object-store dedup writes.

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, Criterion};
use mv_common::seeded_rng;
use mv_common::Space;
use mv_storage::{BufferPool, EvictionPolicy, KvStore, ObjectStore, PageId};
use rand::Rng;

fn bench_kv(c: &mut Criterion) {
    let mut group = c.benchmark_group("kv");
    group.sample_size(20);
    group.bench_function("put", |b| {
        let mut kv = KvStore::with_memtable_budget(1 << 18);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            kv.put(
                Bytes::from(format!("key-{}", i % 50_000)),
                Bytes::from_static(b"value-payload"),
            )
        })
    });
    group.bench_function("get", |b| {
        let mut kv = KvStore::with_memtable_budget(1 << 18);
        for i in 0..50_000u64 {
            kv.put(Bytes::from(format!("key-{i}")), Bytes::from_static(b"value-payload"));
        }
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 1) % 50_000;
            kv.get(format!("key-{i}").as_bytes())
        })
    });
    group.finish();
}

fn bench_bufferpool(c: &mut Criterion) {
    let mut group = c.benchmark_group("bufferpool");
    group.sample_size(20);
    for policy in EvictionPolicy::ALL {
        group.bench_function(policy.name(), |b| {
            let mut pool = BufferPool::new(1024, policy);
            let mut rng = seeded_rng(7);
            b.iter(|| {
                let page = if rng.gen_bool(0.5) {
                    PageId::new(Space::Physical, rng.gen_range(0..600))
                } else {
                    PageId::new(Space::Virtual, rng.gen_range(0..20_000))
                };
                pool.access(page)
            })
        });
    }
    group.finish();
}

fn bench_object_store(c: &mut Criterion) {
    let mut group = c.benchmark_group("object_store");
    group.sample_size(20);
    group.bench_function("put_dedup", |b| {
        let mut store = ObjectStore::new();
        let payload = Bytes::from(vec![7u8; 4096]);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            store.put(&format!("obj/{i}"), payload.clone(), Space::Virtual)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_kv, bench_bufferpool, bench_object_store);
criterion_main!(benches);
