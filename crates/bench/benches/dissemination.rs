//! Criterion micro-benches for E3: coherency-filter update cost at
//! several object counts (the "does per-object filtering scale" claim).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mv_common::id::{ClientId, ObjectId};
use mv_common::seeded_rng;
use mv_dissem::{Bound, CoherencyServer};
use rand::Rng;

fn bench_update(c: &mut Criterion) {
    let mut group = c.benchmark_group("coherency_update");
    group.sample_size(20);
    for objects in [1_000u64, 100_000] {
        let mut server = CoherencyServer::new();
        for obj in 0..objects {
            for cl in 0..4u64 {
                server.subscribe(ClientId::new(cl), ObjectId::new(obj), Bound::Absolute(2.0));
            }
        }
        group.bench_with_input(BenchmarkId::new("bounded", objects), &objects, |b, &objects| {
            let mut rng = seeded_rng(31);
            let mut i = 0u64;
            b.iter(|| {
                i = (i + 1) % objects;
                server.update(ObjectId::new(i), rng.gen_range(-10.0..10.0))
            })
        });
    }
    group.finish();
}

fn bench_delta(c: &mut Criterion) {
    use mv_dissem::DeltaCodec;
    let mut group = c.benchmark_group("delta_codec");
    group.sample_size(20);
    group.bench_function("encode_64dim_sparse", |b| {
        let mut codec = DeltaCodec::new();
        let mut state = vec![0.0f64; 64];
        let mut round = 0usize;
        b.iter(|| {
            round += 1;
            state[round % 64] += 0.5;
            codec.encode(1, &state)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_update, bench_delta);
criterion_main!(benches);
