//! Criterion micro-benches for E10: spatial index update and range-query
//! cost per operation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mv_common::geom::{Aabb, Point};
use mv_common::id::EntityId;
use mv_common::seeded_rng;
use mv_spatial::{GridIndex, RTree, SpatialIndex, St2bTree};
use rand::Rng;

const WORLD: f64 = 10_000.0;
const OBJECTS: usize = 20_000;

fn populate<I: SpatialIndex>(idx: &mut I, seed: u64) -> Vec<Point> {
    let mut rng = seeded_rng(seed);
    (0..OBJECTS)
        .map(|i| {
            let p = Point::new(rng.gen_range(0.0..WORLD), rng.gen_range(0.0..WORLD));
            idx.insert(EntityId::new(i as u64), p);
            p
        })
        .collect()
}

fn bench_updates(c: &mut Criterion) {
    let mut group = c.benchmark_group("spatial_update");
    group.sample_size(20);

    let mut grid = GridIndex::new(100.0);
    let pos = populate(&mut grid, 1);
    let mut rtree = RTree::new();
    populate(&mut rtree, 1);
    let mut st2b = St2bTree::new(Point::ORIGIN, WORLD / 16.0, 16, 1_000_000);
    populate(&mut st2b, 1);

    let mut i = 0usize;
    group.bench_function(BenchmarkId::new("grid", OBJECTS), |b| {
        let mut rng = seeded_rng(2);
        b.iter(|| {
            i = (i + 1) % OBJECTS;
            let p = Point::new(
                (pos[i].x + rng.gen_range(-20.0..20.0)).clamp(0.0, WORLD),
                (pos[i].y + rng.gen_range(-20.0..20.0)).clamp(0.0, WORLD),
            );
            grid.update(EntityId::new(i as u64), p);
        })
    });
    group.bench_function(BenchmarkId::new("st2b", OBJECTS), |b| {
        let mut rng = seeded_rng(2);
        b.iter(|| {
            i = (i + 1) % OBJECTS;
            let p = Point::new(
                (pos[i].x + rng.gen_range(-20.0..20.0)).clamp(0.0, WORLD),
                (pos[i].y + rng.gen_range(-20.0..20.0)).clamp(0.0, WORLD),
            );
            st2b.update(EntityId::new(i as u64), p);
        })
    });
    group.bench_function(BenchmarkId::new("rtree", OBJECTS), |b| {
        let mut rng = seeded_rng(2);
        b.iter(|| {
            i = (i + 1) % OBJECTS;
            let p = Point::new(
                (pos[i].x + rng.gen_range(-20.0..20.0)).clamp(0.0, WORLD),
                (pos[i].y + rng.gen_range(-20.0..20.0)).clamp(0.0, WORLD),
            );
            rtree.update(EntityId::new(i as u64), p);
        })
    });
    group.finish();
}

fn bench_range(c: &mut Criterion) {
    let mut group = c.benchmark_group("spatial_range_100m");
    group.sample_size(30);
    let mut grid = GridIndex::new(100.0);
    populate(&mut grid, 1);
    let mut rtree = RTree::new();
    populate(&mut rtree, 1);
    let mut st2b = St2bTree::new(Point::ORIGIN, WORLD / 16.0, 16, 1_000_000);
    populate(&mut st2b, 1);

    group.bench_function("grid", |b| {
        let mut rng = seeded_rng(3);
        b.iter(|| {
            let cpt = Point::new(rng.gen_range(0.0..WORLD), rng.gen_range(0.0..WORLD));
            grid.range(&Aabb::centered(cpt, 100.0))
        })
    });
    group.bench_function("rtree", |b| {
        let mut rng = seeded_rng(3);
        b.iter(|| {
            let cpt = Point::new(rng.gen_range(0.0..WORLD), rng.gen_range(0.0..WORLD));
            rtree.range(&Aabb::centered(cpt, 100.0))
        })
    });
    group.bench_function("st2b", |b| {
        let mut rng = seeded_rng(3);
        b.iter(|| {
            let cpt = Point::new(rng.gen_range(0.0..WORLD), rng.gen_range(0.0..WORLD));
            st2b.range(&Aabb::centered(cpt, 100.0))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_updates, bench_range);
criterion_main!(benches);
