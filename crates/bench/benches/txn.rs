//! Criterion micro-benches for E6: MVCC commit cost and the distributed
//! simulation round.

use criterion::{criterion_group, criterion_main, Criterion};
use bytes::Bytes;
use mv_common::time::SimDuration;
use mv_txn::{CommitProtocol, DistributedSim, MvccStore, SimParams};

fn bench_mvcc(c: &mut Criterion) {
    let mut group = c.benchmark_group("mvcc");
    group.sample_size(20);
    group.bench_function("txn_commit_3_writes", |b| {
        let db = MvccStore::new();
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let mut t = db.begin();
            for k in 0..3u64 {
                db.write(&mut t, Bytes::from(format!("k{}", (i * 3 + k) % 10_000)), Bytes::from_static(b"v"));
            }
            db.commit(t).expect("disjoint keys never conflict")
        })
    });
    group.bench_function("snapshot_read", |b| {
        let db = MvccStore::new();
        for i in 0..10_000u64 {
            let mut t = db.begin();
            db.write(&mut t, Bytes::from(format!("k{i}")), Bytes::from_static(b"v"));
            db.commit(t).expect("fresh keys");
        }
        let mut t = db.begin();
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 1) % 10_000;
            db.read(&mut t, format!("k{i}").as_bytes())
        })
    });
    group.finish();
}

fn bench_distributed(c: &mut Criterion) {
    let mut group = c.benchmark_group("distributed_commit_sim");
    group.sample_size(10);
    for proto in CommitProtocol::ALL {
        group.bench_function(proto.name(), |b| {
            let sim = DistributedSim::new(SimParams {
                txns: 500,
                inter_dc_latency: SimDuration::from_millis(40),
                ..Default::default()
            });
            b.iter(|| sim.run(proto).committed)
        });
    }
    group.finish();
}

criterion_group!(benches, bench_mvcc, bench_distributed);
criterion_main!(benches);
