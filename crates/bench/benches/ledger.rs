//! Criterion micro-benches for E5: Merkle append, proof generation and
//! verification at several ledger sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mv_ledger::merkle::{verify_inclusion, MerkleTree};

fn build(n: u64) -> MerkleTree {
    let mut t = MerkleTree::new();
    for i in 0..n {
        t.append(&i.to_le_bytes());
    }
    t
}

fn bench_append(c: &mut Criterion) {
    let mut group = c.benchmark_group("ledger_append");
    group.sample_size(20);
    group.bench_function("append", |b| {
        let mut tree = MerkleTree::new();
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            tree.append(&i.to_le_bytes())
        })
    });
    group.finish();
}

fn bench_prove_verify(c: &mut Criterion) {
    let mut group = c.benchmark_group("ledger_proofs");
    group.sample_size(20);
    for n in [1_000u64, 100_000] {
        let mut tree = build(n);
        let root = tree.root();
        group.bench_with_input(BenchmarkId::new("prove_inclusion", n), &n, |b, &n| {
            let mut i = 0u64;
            b.iter(|| {
                i = (i + 1) % n;
                tree.prove_inclusion(i, n)
            })
        });
        let proof = tree.prove_inclusion(n / 2, n);
        let data = (n / 2).to_le_bytes();
        group.bench_with_input(BenchmarkId::new("verify_inclusion", n), &n, |b, _| {
            b.iter(|| assert!(verify_inclusion(&data, &proof, &root)))
        });
        group.bench_with_input(BenchmarkId::new("prove_consistency", n), &n, |b, &n| {
            b.iter(|| tree.prove_consistency(n / 2, n))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_append, bench_prove_verify);
criterion_main!(benches);
