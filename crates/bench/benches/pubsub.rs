//! Criterion micro-benches for E15: per-event match cost, linear vs.
//! indexed.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mv_common::geom::{Aabb, Point};
use mv_common::id::ClientId;
use mv_common::seeded_rng;
use mv_common::time::SimTime;
use mv_pubsub::{IndexedMatcher, LinearMatcher, Matcher, Publication, Subscription};
use rand::Rng;

const TERMS: [&str; 12] = [
    "sale", "pastry", "game", "concert", "troop", "vr", "nft", "museum", "quest", "raid",
    "clinic", "transit",
];

fn subs(n: u64) -> Vec<Subscription> {
    let mut rng = seeded_rng(15);
    (0..n)
        .map(|i| {
            let mut sub = Subscription::new(ClientId::new(i));
            if rng.gen_bool(0.7) {
                sub = sub.with_term(TERMS[rng.gen_range(0..TERMS.len())]);
            }
            if rng.gen_bool(0.4) {
                let c = Point::new(rng.gen_range(0.0..2_000.0), rng.gen_range(0.0..2_000.0));
                sub = sub.in_region(Aabb::centered(c, rng.gen_range(10.0..60.0)));
            }
            sub
        })
        .collect()
}

fn event(rng: &mut rand::rngs::StdRng) -> Publication {
    Publication::new(SimTime::ZERO)
        .term(TERMS[rng.gen_range(0..TERMS.len())])
        .at(Point::new(rng.gen_range(0.0..2_000.0), rng.gen_range(0.0..2_000.0)))
}

fn bench_match(c: &mut Criterion) {
    let mut group = c.benchmark_group("pubsub_match");
    group.sample_size(20);
    for n in [10_000u64, 50_000] {
        let all = subs(n);
        let mut lin = LinearMatcher::new();
        let mut idx = IndexedMatcher::new();
        for s in &all {
            lin.add(s.clone());
            idx.add(s.clone());
        }
        group.bench_with_input(BenchmarkId::new("linear", n), &n, |b, _| {
            let mut rng = seeded_rng(16);
            b.iter(|| lin.match_pub(&event(&mut rng)))
        });
        group.bench_with_input(BenchmarkId::new("indexed", n), &n, |b, _| {
            let mut rng = seeded_rng(16);
            b.iter(|| idx.match_pub(&event(&mut rng)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_match);
criterion_main!(benches);
