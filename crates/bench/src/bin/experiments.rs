#![forbid(unsafe_code)]
//! The experiment runner: prints the tables recorded in EXPERIMENTS.md.
//!
//! ```text
//! cargo run --release -p mv-bench --bin experiments -- --all
//! cargo run --release -p mv-bench --bin experiments -- e3 e10
//! cargo run --release -p mv-bench --bin experiments -- --jsonl e18
//! ```
//!
//! `--jsonl` additionally emits each table as machine-readable JSONL
//! (one `{"kind":"table",…}` object per row, via `mv_obs::export`)
//! after its pretty-printed form.

use std::io::Write as _;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let jsonl = args.iter().any(|a| a == "--jsonl");
    let ids: Vec<String> =
        args.into_iter().filter(|a| a != "--jsonl").collect();
    if ids.is_empty() {
        eprintln!("usage: experiments [--jsonl] <--all | e1 e2 …>");
        eprintln!("known ids: {}", mv_bench::ALL_IDS.join(" "));
        std::process::exit(2);
    }
    let ids: Vec<&str> = if ids.iter().any(|a| a == "all" || a == "--all") {
        mv_bench::ALL_IDS.to_vec()
    } else {
        ids.iter().map(String::as_str).collect()
    };
    for id in &ids {
        if !mv_bench::ALL_IDS.contains(id) {
            eprintln!("unknown experiment id: {id}");
            eprintln!("known ids: {}", mv_bench::ALL_IDS.join(" "));
            std::process::exit(2);
        }
    }
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    // One pretty-print buffer and one JSONL sink, reused across every
    // table: rendering N tables costs a handful of warm-up growths, not
    // N allocations (`Table::render_into` / `JsonlSink` — DESIGN.md §13).
    let mut pretty = String::new();
    let mut sink = mv_obs::export::JsonlSink::with_capacity(1 << 14);
    for id in ids {
        let started = std::time::Instant::now();
        let tables = mv_bench::run(id);
        writeln!(out, "\n=== experiment {id} ({:.2}s) ===\n", started.elapsed().as_secs_f64())
            .expect("stdout");
        for t in tables {
            pretty.clear();
            t.render_into(&mut pretty);
            writeln!(out, "{pretty}").expect("stdout");
            if jsonl {
                sink.clear();
                sink.table(&t);
                write!(out, "{}", sink.as_str()).expect("stdout");
            }
        }
    }
}
