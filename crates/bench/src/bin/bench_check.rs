//! `bench_check` — the BENCH_8.json perf-trajectory gate (DESIGN.md §13).
//!
//! Default mode (what CI runs):
//!
//! 1. run the macro-benchmark **smoke** profile twice and require the
//!    deterministic block to be byte-identical across reruns;
//! 2. validate the rendered report against the `mv-bench-macro/v1`
//!    schema (required keys present, numeric where expected);
//! 3. **health gate** — fail if the smoke run fired a single SLO alert
//!    (`slo_alerts_fired` in the deterministic block must be 0: the
//!    perf gate doubles as a health gate);
//! 4. run the **injected-regression alert canary** (a deliberately
//!    broken tiny run against an absurdly strict SLO) and validate its
//!    alert log and `mv-debug-bundle/v1` debug bundle against their
//!    schemas — proving the alert path *can* fire before trusting a
//!    gate built on it never firing;
//! 5. if a committed `BENCH_8.json` exists at the repo root, compare
//!    every headline metric of the fresh smoke run against the
//!    committed one and **fail on >10% regression**.
//!
//! `--alert-canary` runs only step 4 — the cheap CI step that gates
//! the alert path on its own.
//!
//! `--write` additionally runs the **full** (1M-entity) profile and
//! rewrites `BENCH_8.json` — run it on a quiet machine when a PR
//! intentionally moves a headline number, and commit the diff. The
//! deterministic block is seed-pinned, so the diff shows exactly what
//! moved and the measured block shows the wall-clock trajectory.
//!
//! No JSON dependency is vendored; the reader below is a minimal
//! scanner for the subset this tool itself emits (flat string/number
//! values, no nested arrays), not a general parser.

use mv_bench::macro_bench::{
    full_profile, render_bench_json, run_macro, smoke_profile, MacroReport, HEADLINES,
};
use std::process::ExitCode;

/// Allowed relative regression on a headline metric before the gate
/// fires (10%, plus an absolute floor so near-zero metrics don't flap).
const MAX_REGRESSION: f64 = 0.10;
const ABS_FLOOR: f64 = 1e-6;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let write = args.iter().any(|a| a == "--write");
    let baseline_path = args
        .iter()
        .position(|a| a == "--baseline")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_8.json".to_string());
    if args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!(
            "usage: bench_check [--write] [--alert-canary] [--baseline <path to BENCH_8.json>]"
        );
        return ExitCode::SUCCESS;
    }
    if args.iter().any(|a| a == "--alert-canary") {
        return match check_alert_canary() {
            Ok(lines) => {
                for l in lines {
                    eprintln!("bench_check: {l}");
                }
                eprintln!("bench_check: PASS");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("bench_check: FAIL — alert canary: {e}");
                ExitCode::FAILURE
            }
        };
    }

    // 1. Same-seed determinism: the gated block must not wobble.
    eprintln!("bench_check: running smoke profile (rerun 1/2)...");
    let smoke_a = run_macro(&smoke_profile());
    eprintln!("bench_check: running smoke profile (rerun 2/2)...");
    let smoke_b = run_macro(&smoke_profile());
    if smoke_a.det_bytes() != smoke_b.det_bytes() {
        eprintln!("bench_check: FAIL — same-seed smoke reruns differ in the deterministic block");
        for ((ka, va), (kb, vb)) in smoke_a.det.iter().zip(smoke_b.det.iter()) {
            if ka != kb || va != vb {
                eprintln!("  {ka}={va}  vs  {kb}={vb}");
            }
        }
        return ExitCode::FAILURE;
    }
    eprintln!("bench_check: determinism OK ({} metrics byte-identical)", smoke_a.det.len());

    // 2. Schema validation of the rendered document.
    let rendered = render_bench_json(&[("smoke", &smoke_a)]);
    if let Err(e) = validate_schema(&rendered) {
        eprintln!("bench_check: FAIL — schema violation: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("bench_check: schema OK (mv-bench-macro/v1)");

    // 3. Health gate: the smoke profile must not burn an SLO budget.
    match smoke_a.det_value("slo_alerts_fired") {
        Some("0") => eprintln!("bench_check: health OK (smoke run fired 0 SLO alerts)"),
        Some(n) => {
            eprintln!(
                "bench_check: FAIL — smoke run fired {n} SLO alert(s); the macro-bench \
                 burned an error budget (see slo_log_hash in the report)"
            );
            return ExitCode::FAILURE;
        }
        None => {
            eprintln!("bench_check: FAIL — smoke report carries no slo_alerts_fired metric");
            return ExitCode::FAILURE;
        }
    }

    // 4. Injected-regression canary: the alert path must be able to
    // fire, and its artifacts must match their schemas.
    match check_alert_canary() {
        Ok(lines) => {
            for l in lines {
                eprintln!("bench_check: {l}");
            }
        }
        Err(e) => {
            eprintln!("bench_check: FAIL — alert canary: {e}");
            return ExitCode::FAILURE;
        }
    }

    // 5. Regression gate against the committed baseline, if present.
    match std::fs::read_to_string(&baseline_path) {
        Ok(committed) => {
            if let Err(e) = validate_schema(&committed) {
                eprintln!("bench_check: FAIL — committed {baseline_path} is malformed: {e}");
                return ExitCode::FAILURE;
            }
            match gate_regressions(&committed, &smoke_a) {
                Ok(lines) => {
                    for l in lines {
                        eprintln!("bench_check: {l}");
                    }
                }
                Err(failures) => {
                    eprintln!("bench_check: FAIL — headline regression(s) vs {baseline_path}:");
                    for f in failures {
                        eprintln!("  {f}");
                    }
                    eprintln!(
                        "  (if intentional, regenerate with `cargo run --release -p mv-bench \
                         --bin bench_check -- --write` and commit the diff)"
                    );
                    return ExitCode::FAILURE;
                }
            }
        }
        Err(_) => {
            eprintln!(
                "bench_check: no committed {baseline_path}; skipping regression gate \
                 (run with --write to establish the baseline)"
            );
        }
    }

    // 6. Optionally regenerate the committed artifact (smoke + full).
    if write {
        eprintln!("bench_check: running full profile (this is the 1M-entity run)...");
        let full = run_macro(&full_profile());
        let doc = render_bench_json(&[("smoke", &smoke_a), ("full", &full)]);
        if let Err(e) = validate_schema(&doc) {
            eprintln!("bench_check: FAIL — refusing to write malformed document: {e}");
            return ExitCode::FAILURE;
        }
        if let Err(e) = std::fs::write(&baseline_path, &doc) {
            eprintln!("bench_check: FAIL — cannot write {baseline_path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("bench_check: wrote {baseline_path} ({} bytes)", doc.len());
    }

    eprintln!("bench_check: PASS");
    ExitCode::SUCCESS
}

/// Run the injected-regression canary and validate its artifacts: the
/// deliberately broken run must fire, its alert log must carry every
/// canonical field, and its debug bundle must match `mv-debug-bundle/v1`.
fn check_alert_canary() -> Result<Vec<String>, String> {
    let c = mv_bench::exp_health::alert_canary();
    if c.fired == 0 {
        return Err(format!(
            "injected regression fired no alert — the alert path is dead\n{}",
            c.alert_log
        ));
    }
    validate_alert_log(&c.alert_log)?;
    validate_bundle(&c.bundle_jsonl)?;
    Ok(vec![format!(
        "alert canary OK ({} alert(s) fired; alert-log and {} schemas valid)",
        c.fired,
        mv_obs::BUNDLE_SCHEMA
    )])
}

/// Validate the canonical alert-log shape: every line carries the full
/// `seq= at_us= slo= kind= burn_fast= burn_slow= fast= slow=` field set
/// and a known kind.
fn validate_alert_log(log: &str) -> Result<(), String> {
    if log.is_empty() {
        return Err("alert log is empty".into());
    }
    for (i, line) in log.lines().enumerate() {
        for field in
            ["seq=", "at_us=", "slo=", "kind=", "burn_fast=", "burn_slow=", "fast=", "slow="]
        {
            if !line.contains(field) {
                return Err(format!("alert log line {i} missing `{field}`: {line}"));
            }
        }
        if !line.contains("kind=fire") && !line.contains("kind=clear") {
            return Err(format!("alert log line {i} has unknown kind: {line}"));
        }
    }
    Ok(())
}

/// Validate a debug bundle against `mv-debug-bundle/v1`: a header line
/// naming the schema, then one `{"kind":"tick",…}` line per buffered
/// tick carrying every evidence category.
fn validate_bundle(bundle: &str) -> Result<(), String> {
    let mut lines = bundle.lines();
    let header = lines.next().ok_or_else(|| "bundle is empty".to_string())?;
    let schema_tag = format!("{{\"schema\":\"{}\"", mv_obs::BUNDLE_SCHEMA);
    if !header.starts_with(&schema_tag) {
        return Err(format!("bundle header misses schema tag {}: {header}", mv_obs::BUNDLE_SCHEMA));
    }
    for key in ["\"seq\":", "\"reason\":", "\"at_us\":", "\"ticks\":"] {
        if !header.contains(key) {
            return Err(format!("bundle header missing {key}: {header}"));
        }
    }
    let mut ticks = 0usize;
    for (i, line) in lines.enumerate() {
        if !line.starts_with("{\"kind\":\"tick\",\"at_us\":") {
            return Err(format!("bundle line {} is not a tick line: {line}", i + 1));
        }
        for key in ["\"counters\":", "\"gauges\":", "\"alerts\":", "\"events\":", "\"spans\":"] {
            if !line.contains(key) {
                return Err(format!("bundle tick line {} missing {key}", i + 1));
            }
        }
        ticks += 1;
    }
    if ticks == 0 {
        return Err("bundle carries no tick evidence".into());
    }
    Ok(())
}

/// Validate the `mv-bench-macro/v1` shape: schema tag, at least one
/// profile with a `deterministic` block, and every headline metric
/// present and finite in each deterministic block.
fn validate_schema(doc: &str) -> Result<(), String> {
    if !doc.contains("\"schema\": \"mv-bench-macro/v1\"") {
        return Err("missing or wrong \"schema\" tag (want mv-bench-macro/v1)".into());
    }
    if !doc.contains("\"bench\": 8") {
        return Err("missing \"bench\": 8 tag".into());
    }
    let blocks = deterministic_blocks(doc);
    if blocks.is_empty() {
        return Err("no \"deterministic\" blocks found".into());
    }
    for (profile, block) in &blocks {
        for (key, _) in HEADLINES {
            let v = scan_number(block, key)
                .ok_or_else(|| format!("profile {profile}: headline \"{key}\" missing"))?;
            if !v.is_finite() {
                return Err(format!("profile {profile}: headline \"{key}\" is not finite"));
            }
        }
        for key in ["entities", "ops", "state_digest"] {
            if !block.contains(&format!("\"{key}\":")) {
                return Err(format!("profile {profile}: required key \"{key}\" missing"));
            }
        }
    }
    Ok(())
}

/// Compare the committed smoke deterministic block against a fresh run.
/// Returns human lines on success, or the list of violations.
fn gate_regressions(committed: &str, fresh: &MacroReport) -> Result<Vec<String>, Vec<String>> {
    let blocks = deterministic_blocks(committed);
    let Some((_, block)) = blocks.iter().find(|(p, _)| p == "smoke") else {
        return Err(vec!["committed baseline has no smoke profile".into()]);
    };
    let mut ok_lines = Vec::new();
    let mut failures = Vec::new();
    for (key, lower_is_better) in HEADLINES {
        let Some(old) = scan_number(block, key) else {
            failures.push(format!("baseline missing headline {key}"));
            continue;
        };
        let new: f64 = fresh
            .det_value(key)
            .and_then(|v| v.parse().ok())
            .expect("fresh report carries every headline");
        let worse = if lower_is_better { new - old } else { old - new };
        let budget = (old.abs() * MAX_REGRESSION).max(ABS_FLOOR);
        if worse > budget {
            failures.push(format!(
                "{key}: {old} -> {new} ({:+.1}% — budget {:.0}%)",
                (new - old) / old.abs().max(ABS_FLOOR) * 100.0,
                MAX_REGRESSION * 100.0
            ));
        } else {
            ok_lines.push(format!("{key}: {old} -> {new} OK"));
        }
    }
    if failures.is_empty() { Ok(ok_lines) } else { Err(failures) }
}

/// Extract `(profile_name, deterministic_block_text)` pairs from a
/// rendered document. Relies on the renderer's stable 2-space-indent
/// layout: a profile opens at 4-space indent, its deterministic block
/// at 6-space indent.
fn deterministic_blocks(doc: &str) -> Vec<(String, String)> {
    let mut out = Vec::new();
    let mut profile = String::new();
    let mut in_det = false;
    let mut block = String::new();
    for line in doc.lines() {
        let trimmed = line.trim();
        if line.starts_with("    \"") && trimmed.ends_with('{') {
            if let Some(name) = trimmed.strip_prefix('"').and_then(|r| r.split('"').next()) {
                profile = name.to_string();
            }
        }
        if trimmed.starts_with("\"deterministic\"") {
            in_det = true;
            block.clear();
            continue;
        }
        if in_det {
            if trimmed == "}," || trimmed == "}" {
                out.push((profile.clone(), block.clone()));
                in_det = false;
            } else {
                block.push_str(trimmed);
                block.push('\n');
            }
        }
    }
    out
}

/// Scan a flat JSON block for `"key": <number>` and parse the number.
fn scan_number(block: &str, key: &str) -> Option<f64> {
    let tag = format!("\"{key}\":");
    let at = block.find(&tag)? + tag.len();
    let rest = block[at..].trim_start();
    let end = rest.find([',', '\n', '}']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}
