//! E10 — update-intensive spatial indexing (§IV-F).
//!
//! Claims reproduced: for moving-object workloads the grid and the
//! ST2B-style tree sustain update rates far beyond the R-tree while
//! keeping range queries cheap vs. the scan baseline; the HDoV-style
//! visibility tree answers walkthrough queries touching a fraction of
//! the scene.

use mv_common::geom::{Aabb, Point};
use mv_common::id::EntityId;
use mv_common::seeded_rng;
use mv_common::table::{f2, n, Table};
use mv_spatial::{GridIndex, HdovTree, RTree, ScanIndex, SpatialIndex, St2bTree};
use rand::rngs::StdRng;
use rand::Rng;

const WORLD: f64 = 10_000.0;

fn random_point(rng: &mut StdRng) -> Point {
    Point::new(rng.gen_range(0.0..WORLD), rng.gen_range(0.0..WORLD))
}

fn bench_index<I: SpatialIndex>(mut idx: I, objects: usize, updates: usize, queries: usize) -> (f64, f64, usize) {
    let mut rng = seeded_rng(55);
    let mut positions: Vec<Point> = (0..objects).map(|_| random_point(&mut rng)).collect();
    for (i, &p) in positions.iter().enumerate() {
        idx.insert(EntityId::new(i as u64), p);
    }
    let t0 = std::time::Instant::now();
    for u in 0..updates {
        let i = u % objects;
        let cur = positions[i];
        let next = Point::new(
            (cur.x + rng.gen_range(-20.0..20.0)).clamp(0.0, WORLD),
            (cur.y + rng.gen_range(-20.0..20.0)).clamp(0.0, WORLD),
        );
        positions[i] = next;
        idx.update(EntityId::new(i as u64), next);
    }
    let update_us = t0.elapsed().as_micros() as f64 / updates as f64;
    let t1 = std::time::Instant::now();
    let mut hits = 0usize;
    for _ in 0..queries {
        let c = random_point(&mut rng);
        hits += idx.range(&Aabb::centered(c, 100.0)).len();
    }
    let query_us = t1.elapsed().as_micros() as f64 / queries as f64;
    (update_us, query_us, hits)
}

/// Run E10.
pub fn e10() -> Vec<Table> {
    let objects = 100_000;
    let updates = 200_000;
    let queries = 500;
    let mut t = Table::new(
        "E10a: moving-object indexes — 100k movers, 200k updates, 500 range queries (100 m radius)",
        &["index", "update_us", "range_query_us", "result_rows"],
    );
    {
        let (u, q, h) = bench_index(ScanIndex::new(), objects, updates, queries);
        t.row(&["scan (baseline)".into(), f2(u), f2(q), n(h as u64)]);
    }
    {
        let (u, q, h) = bench_index(GridIndex::new(100.0), objects, updates, queries);
        t.row(&["grid (100 m cells)".into(), f2(u), f2(q), n(h as u64)]);
    }
    {
        let (u, q, h) = bench_index(RTree::new(), objects, updates, queries);
        t.row(&["r-tree (quadratic)".into(), f2(u), f2(q), n(h as u64)]);
    }
    {
        let st2b = St2bTree::new(Point::ORIGIN, WORLD / 16.0, 16, 1_000_000);
        let (u, q, h) = bench_index(st2b, objects, updates, queries);
        t.row(&["st2b-style b+-tree".into(), f2(u), f2(q), n(h as u64)]);
    }

    // E10b: ST2B self-tuning effect under skew.
    let mut tune_t = Table::new(
        "E10b: ST2B self-tuning under skew (80% of 50k objects in 1/256 of space)",
        &["configuration", "range_query_us", "grain_hot", "grain_cold"],
    );
    {
        let mut rng = seeded_rng(56);
        let build = |rng: &mut StdRng| {
            let mut idx = St2bTree::new(Point::ORIGIN, WORLD / 16.0, 16, 1_000_000);
            for i in 0..50_000u64 {
                let p = if rng.gen_bool(0.8) {
                    Point::new(rng.gen_range(0.0..WORLD / 16.0), rng.gen_range(0.0..WORLD / 16.0))
                } else {
                    random_point(rng)
                };
                idx.insert(EntityId::new(i), p);
            }
            idx
        };
        let query = |idx: &St2bTree, rng: &mut StdRng| -> f64 {
            let t = std::time::Instant::now();
            for _ in 0..300 {
                let c = if rng.gen_bool(0.8) {
                    Point::new(rng.gen_range(0.0..WORLD / 16.0), rng.gen_range(0.0..WORLD / 16.0))
                } else {
                    random_point(rng)
                };
                idx.range(&Aabb::centered(c, 100.0));
            }
            t.elapsed().as_micros() as f64 / 300.0
        };
        let untuned = build(&mut rng);
        let us_untuned = query(&untuned, &mut rng);
        let mut tuned = build(&mut rng);
        tuned.tune();
        let us_tuned = query(&tuned, &mut rng);
        let hot = Point::new(100.0, 100.0);
        let cold = Point::new(WORLD - 100.0, WORLD - 100.0);
        tune_t.row(&["default grain".into(), f2(us_untuned), n(untuned.grain_at(hot) as u64), n(untuned.grain_at(cold) as u64)]);
        tune_t.row(&["after tune()".into(), f2(us_tuned), n(tuned.grain_at(hot) as u64), n(tuned.grain_at(cold) as u64)]);
    }

    // E10c: HDoV walkthrough vs. full scan.
    let mut hdov_t = Table::new(
        "E10c: HDoV walkthrough (50k scene objects)",
        &["method", "query_us", "visible", "nodes_or_objects_touched"],
    );
    {
        let mut rng = seeded_rng(57);
        let mut tree = HdovTree::new(Aabb::new(Point::ORIGIN, Point::new(WORLD, WORLD)));
        for i in 0..50_000u64 {
            let p = random_point(&mut rng);
            tree.insert(EntityId::new(i), p, rng.gen_range(0.2..3.0));
        }
        let vp = Point::new(WORLD / 2.0, WORLD / 2.0);
        let t0 = std::time::Instant::now();
        let mut visited = 0usize;
        let mut vis_count = 0usize;
        for _ in 0..100 {
            let (vis, v) = tree.walkthrough(vp);
            visited = v;
            vis_count = vis.len();
        }
        let us_tree = t0.elapsed().as_micros() as f64 / 100.0;
        let t1 = std::time::Instant::now();
        for _ in 0..100 {
            tree.walkthrough_scan(vp);
        }
        let us_scan = t1.elapsed().as_micros() as f64 / 100.0;
        hdov_t.row(&["full scan".into(), f2(us_scan), n(vis_count as u64), n(50_000)]);
        hdov_t.row(&["hdov tree".into(), f2(us_tree), n(vis_count as u64), n(visited as u64)]);
    }
    vec![t, tune_t, hdov_t, e10d_trajectory()]
}

/// E10d: trajectory compression (§IV-F "trajectory … data") — the
/// dead-reckoning tolerance trades storage for spatio-temporal recall.
fn e10d_trajectory() -> Table {
    use mv_common::table::pct;
    use mv_common::time::{SimDuration, SimTime};
    use mv_spatial::TrajectoryStore;
    let mut t = Table::new(
        "E10d: trajectory store — 200 movers x 500 reports, dead-reckoning tolerance sweep",
        &["tolerance_m", "kept_samples", "storage", "query_recall"],
    );
    let build = |tol: f64| {
        let mut s = TrajectoryStore::new(tol, 100.0, SimDuration::from_secs(20));
        let mut rng = seeded_rng(101);
        for ent in 0..200u64 {
            let mut p = Point::new(rng.gen_range(0.0..2_000.0), rng.gen_range(0.0..2_000.0));
            let mut v = Point::new(rng.gen_range(-2.0..2.0), rng.gen_range(-2.0..2.0));
            for i in 0..500u64 {
                if rng.gen_bool(0.05) {
                    v = Point::new(rng.gen_range(-2.0..2.0), rng.gen_range(-2.0..2.0));
                }
                p = Point::new((p.x + v.x).clamp(0.0, 2_000.0), (p.y + v.y).clamp(0.0, 2_000.0));
                s.record(EntityId::new(ent), SimTime::from_millis(i * 200), p);
            }
        }
        s
    };
    let exact = build(0.0);
    let total = exact.kept_samples();
    let queries: Vec<(Aabb, SimTime, SimTime)> = {
        let mut rng = seeded_rng(102);
        (0..50)
            .map(|_| {
                let c = Point::new(rng.gen_range(0.0..2_000.0), rng.gen_range(0.0..2_000.0));
                let t0 = rng.gen_range(0u64..80_000);
                (
                    Aabb::centered(c, rng.gen_range(50.0..200.0)),
                    SimTime::from_millis(t0),
                    SimTime::from_millis(t0 + 20_000),
                )
            })
            .collect()
    };
    for &tol in &[0.0f64, 0.5, 2.0, 8.0] {
        let s = build(tol);
        let mut truth_hits = 0usize;
        let mut got_hits = 0usize;
        for (area, from, to) in &queries {
            let truth = exact.range(area, *from, *to);
            let got = s.range(area, *from, *to);
            got_hits += got.iter().filter(|id| truth.contains(id)).count();
            truth_hits += truth.len();
        }
        t.row(&[
            f2(tol),
            n(s.kept_samples() as u64),
            pct(s.kept_samples() as f64 / total as f64),
            pct(if truth_hits == 0 { 1.0 } else { got_hits as f64 / truth_hits as f64 }),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_updates_beat_rtree_updates() {
        let (grid_u, _, grid_h) = bench_index(GridIndex::new(100.0), 5_000, 10_000, 50);
        let (rt_u, _, rt_h) = bench_index(RTree::new(), 5_000, 10_000, 50);
        assert_eq!(grid_h, rt_h, "identical workloads must agree on results");
        assert!(grid_u < rt_u, "grid {grid_u}us vs r-tree {rt_u}us per update");
    }
}
