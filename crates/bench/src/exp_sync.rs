//! E1 — cross-space data flow (Fig. 1, §III).
//!
//! Claim reproduced: the physical→virtual sync loop sustains high-rate
//! heterogeneous sensor streams, and the §IV-C coherency bound is what
//! makes the cross-space traffic affordable — sync messages grow with
//! the *bound*, not the raw update rate.

use mv_common::geom::Point;
use mv_common::table::{f2, n, pct, Table};
use mv_common::time::SimTime;
use mv_core::{EntityKind, Metaverse, SyncPolicy};
use mv_workloads::movement::MoverField;
use mv_common::geom::Aabb;

/// Run E1: movers sweep × coherency-bound sweep.
pub fn e1() -> Vec<Table> {
    let mut scale_table = Table::new(
        "E1a: physical→virtual sync throughput vs. entity count (bound = 1 m)",
        &["entities", "updates", "wall_ms", "updates_per_sec", "sync_msgs", "suppressed"],
    );
    for &entities in &[1_000usize, 5_000, 20_000] {
        let (wall_ms, stats) = run_sync(entities, 20, 1.0);
        let updates = entities as u64 * 20;
        scale_table.row(&[
            n(entities as u64),
            n(updates),
            f2(wall_ms),
            f2(updates as f64 / (wall_ms / 1000.0)),
            n(stats.0),
            n(stats.1),
        ]);
    }

    let mut bound_table = Table::new(
        "E1b: coherency bound vs. cross-space messages (5k entities, 20 steps)",
        &["bound_m", "sync_msgs", "suppressed", "cross_space_traffic", "mean_divergence_m"],
    );
    for &bound in &[0.5f64, 1.0, 2.0, 5.0, 10.0, 25.0] {
        let (_, (sync, suppressed)) = run_sync(5_000, 20, bound);
        let total = sync + suppressed;
        let mut mv = build_world(5_000, bound);
        let mut field = mover_field(5_000);
        let ids: Vec<_> = (0..5_000u64).map(mv_common::id::EntityId::new).collect();
        for step in 1..=20u64 {
            for (i, p) in field.step(1.0) {
                mv.update_position(ids[i], p, SimTime::from_secs(step)).unwrap();
            }
        }
        bound_table.row(&[
            f2(bound),
            n(sync),
            n(suppressed),
            pct(sync as f64 / total as f64),
            f2(mv.mean_divergence()),
        ]);
    }
    vec![scale_table, bound_table, e1c_interest()]
}

/// E1c: per-user interest management — delivered deltas scale with AOI
/// density, not world population ("consistency across multiple virtual
/// views" at bounded cost).
fn e1c_interest() -> Table {
    use mv_common::id::ClientId;
    use mv_core::{EntityKind, InterestManager};
    use mv_common::Space;
    let mut t = Table::new(
        "E1c: interest management — deltas delivered vs. naive broadcast (100 users, 50 m AOI, 20 ticks)",
        &["world_entities", "broadcast_msgs", "aoi_deltas", "traffic_saved"],
    );
    for &entities in &[1_000usize, 5_000, 20_000] {
        let mut world = Metaverse::new(SyncPolicy { position_bound: 0.5, attr_bound: 0.0 }, 100.0);
        let mut field = mover_field(entities);
        let mut ids = Vec::new();
        for (i, p) in field.positions().into_iter().enumerate() {
            ids.push(world.spawn(format!("e{i}"), EntityKind::Person, p, SimTime::ZERO));
        }
        let mut im = InterestManager::new();
        for u in 0..100u64 {
            im.subscribe(ClientId::new(u), ids[u as usize], 50.0, Space::Virtual);
        }
        let mut deltas = 0u64;
        let mut broadcast = 0u64;
        for step in 1..=20u64 {
            for (i, p) in field.step(1.0) {
                world.update_position(ids[i], p, SimTime::from_secs(step)).unwrap();
            }
            // Naive broadcast ships every update to every user.
            broadcast += entities as u64 * 100;
            deltas += im.tick(&world).unwrap().len() as u64;
        }
        t.row(&[
            n(entities as u64),
            n(broadcast),
            n(deltas),
            pct(1.0 - deltas as f64 / broadcast as f64),
        ]);
    }
    t
}

fn mover_field(entities: usize) -> MoverField {
    MoverField::new(
        Aabb::new(Point::ORIGIN, Point::new(5_000.0, 5_000.0)),
        entities,
        (0.2, 3.0),
        42,
    )
}

fn build_world(entities: usize, bound: f64) -> Metaverse {
    let mut mv = Metaverse::new(SyncPolicy { position_bound: bound, attr_bound: 0.0 }, 100.0);
    let field = mover_field(entities);
    for (i, p) in field.positions().into_iter().enumerate() {
        mv.spawn(format!("s{i}"), EntityKind::Person, p, SimTime::ZERO);
    }
    mv
}

/// Returns (wall ms, (sync_msgs, suppressed)).
fn run_sync(entities: usize, steps: u64, bound: f64) -> (f64, (u64, u64)) {
    let mut mv = build_world(entities, bound);
    let mut field = mover_field(entities);
    let ids: Vec<_> = (0..entities as u64).map(mv_common::id::EntityId::new).collect();
    let start = std::time::Instant::now();
    for step in 1..=steps {
        for (i, p) in field.step(1.0) {
            mv.update_position(ids[i], p, SimTime::from_secs(step)).unwrap();
        }
    }
    let wall_ms = start.elapsed().as_secs_f64() * 1000.0;
    (wall_ms, (mv.stats.get("sync_msgs"), mv.stats.get("suppressed_syncs")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn looser_bounds_send_fewer_messages() {
        let (_, (tight_sync, _)) = run_sync(500, 10, 0.01);
        let (_, (loose_sync, _)) = run_sync(500, 10, 10.0);
        assert!(loose_sync < tight_sync, "loose {loose_sync} vs tight {tight_sync}");
    }
}
