//! E2 — heterogeneous data fusion (§IV-A, Fig. 6 library).
//!
//! Claim reproduced: weighted multi-source inference locates entities
//! more accurately than any single source, and the gap widens as sources
//! get noisier; the event layer detects most relocations.

use mv_common::table::{f2, n, pct, Table};
use mv_fusion::library::{LibraryParams, LibraryScenario};

/// Run E2: accuracy per source vs. fused, across noise levels.
pub fn e2() -> Vec<Table> {
    let mut acc = Table::new(
        "E2a: shelf-location accuracy — single sources vs. fusion (500 books, 40 shelves)",
        &["rfid_noise", "rfid", "camera", "social", "fused", "fusion_gain"],
    );
    for &(miss, ghost) in &[(0.10, 0.05), (0.25, 0.15), (0.40, 0.30)] {
        let params = LibraryParams { rfid_miss: miss, rfid_ghost: ghost, ..Default::default() };
        let r = LibraryScenario::new(params, 42).run_fusion();
        let best_single = r.rfid_acc.max(r.camera_acc).max(r.social_acc);
        acc.row(&[
            format!("miss={miss:.2} ghost={ghost:.2}"),
            pct(r.rfid_acc),
            pct(r.camera_acc),
            pct(r.social_acc),
            pct(r.fused_acc),
            format!("+{:.1}pp", (r.fused_acc - best_single) * 100.0),
        ]);
    }

    let mut events = Table::new(
        "E2b: relocation-event detection (state_changed rule)",
        &["relocated_fraction", "relocations", "detected", "recall", "false_alarms"],
    );
    for &frac in &[0.1f64, 0.2, 0.5] {
        let params = LibraryParams { relocated_fraction: frac, ..Default::default() };
        let r = LibraryScenario::new(params, 42).run_fusion();
        events.row(&[
            f2(frac),
            n(r.relocations as u64),
            n(r.detected_moves as u64),
            pct(r.detected_moves as f64 / r.relocations.max(1) as f64),
            n(r.false_moves as u64),
        ]);
    }
    vec![acc, events, e2c_rfid()]
}

/// E2c: adaptive RFID cleaning — flicker (false "absent" while present)
/// vs. departure lag, per window policy.
fn e2c_rfid() -> Table {
    use mv_fusion::rfid::{score_policy, WindowPolicy};
    let mut t = Table::new(
        "E2c: RFID stream cleaning — 60% read rate, 200 present epochs then departure",
        &["policy", "flicker_epochs", "departure_lag_epochs"],
    );
    for policy in [
        WindowPolicy::Raw,
        WindowPolicy::Fixed(4),
        WindowPolicy::Fixed(32),
        WindowPolicy::Adaptive { delta: 0.05 },
    ] {
        let (flicker, lag) = score_policy(policy, 0.6, 200, 40, 7);
        t.row(&[policy.name(), n(flicker), n(lag)]);
    }
    t
}

#[cfg(test)]
mod tests {
    #[test]
    fn tables_have_expected_shape() {
        let tables = super::e2();
        assert_eq!(tables.len(), 3);
        assert_eq!(tables[0].len(), 3);
        assert_eq!(tables[1].len(), 3);
    }
}
