//! E22 — operational health: burn-rate SLO alerts over the replicated
//! region's fault scripts (§IV operating the deluge, not just storing
//! it).
//!
//! E20 proved the region survives its faults; E22 proves the *health
//! layer notices them*. Each cell reruns an E20 fault script — crash
//! the leader, partition it into a minority, crash-and-wipe a fixed
//! follower — with an armed [`HealthMonitor`] rolling a per-ms
//! [`mv_obs::MetricWindows`] over the region's registry and evaluating
//! four SLOs by the multi-window burn-rate rule:
//!
//! * `region.availability` — submit failures / attempts (error ratio);
//! * `region.replica-down` — `core.replicated.down_replicas` gauge > 0;
//! * `region.commit-lag` — `core.replicated.commit_lag` gauge above
//!   threshold (a partitioned leader accepts writes it cannot commit);
//! * `region.ack-latency` — `core.replicated.ack_ms` tail above 64 ms.
//!
//! The claims E22 gates in CI: every fault script fires at least one
//! alert within [`DETECT_BOUND_MS`] of injection; every alert clears by
//! the end of the quiet tail; the fault-free baseline fires *nothing*;
//! and the alert log and flight-recorder bundles are byte-identical
//! across same-seed runs.

use crate::exp_raft::{END_MS, FAULT_AT_MS, HEAL_AT_MS, WRITE_END_MS, WRITE_START_MS};
use mv_common::geom::Point;
use mv_common::id::NodeId;
use mv_common::table::{n, Table};
use mv_common::time::SimTime;
use mv_core::entity::EntityKind;
use mv_core::replicated::RegionConfig;
use mv_core::{DurableOp, ReplicatedMetaverse};
use mv_net::fault::{apply, Fault, FaultTarget};
use mv_net::{FaultPlan, Network, Sim};
use mv_obs::export::JsonlSink;
use mv_obs::{HealthMonitor, SloSpec};

/// An alert must fire within this many ms of fault injection.
pub const DETECT_BOUND_MS: u64 = 600;

/// The fault scripts E22 arms SLOs over (`None` = fault-free baseline).
#[derive(Clone, Copy, PartialEq, Eq)]
pub enum Scenario {
    /// No fault: the false-positive control.
    Baseline,
    /// Crash the current leader at `FAULT_AT_MS`, restart at `HEAL_AT_MS`.
    LeaderCrash,
    /// Partition the leader into a minority for the fault window.
    MinorityPartition,
    /// Crash a fixed follower with disk wipe (snapshot catch-up on heal).
    WipeCrash,
}

impl Scenario {
    fn name(self) -> &'static str {
        match self {
            Scenario::Baseline => "baseline",
            Scenario::LeaderCrash => "leader-crash",
            Scenario::MinorityPartition => "minority-partition",
            Scenario::WipeCrash => "wipe-crash",
        }
    }
}

/// The four SLOs E22 arms, tuned for the 1 ms health tick: fast window
/// 100 ticks, slow window 300, so detection needs a sustained signal
/// but stays well inside [`DETECT_BOUND_MS`].
fn armed_slos() -> Vec<SloSpec> {
    vec![
        SloSpec::availability(
            "region.availability",
            "core.replicated.submit_unavailable",
            "core.replicated.submit_attempts",
            0.05,
        )
        .windows(100, 300)
        .burn(2.0, 1.0)
        .min_events(4),
        SloSpec::staleness("region.replica-down", "core.replicated.down_replicas", 0.5, 0.2)
            .windows(100, 300)
            .burn(2.0, 1.0)
            .min_events(20),
        SloSpec::staleness("region.commit-lag", "core.replicated.commit_lag", 8.0, 0.2)
            .windows(100, 300)
            .burn(2.0, 1.0)
            .min_events(20),
        SloSpec::latency("region.ack-latency", "core.replicated.ack_ms", 64.0, 0.10)
            .windows(100, 300)
            .burn(2.0, 1.0)
            .min_events(8),
    ]
}

struct World {
    region: ReplicatedMetaverse,
    monitor: HealthMonitor,
    victim: Option<NodeId>,
    next_write: u64,
    /// Region log lines already forwarded into the recorder.
    log_consumed: usize,
    /// Node that restarted since the last health tick → recovery dump.
    pending_recovery: Option<NodeId>,
    /// Per-tick windowed/SLO stats stream (the `experiments --jsonl`
    /// path): a preallocated sink whose `grows()` counter proves the
    /// exporter never allocates while the run it observes is hot.
    sink: JsonlSink,
}

impl FaultTarget for World {
    fn fault_network(&mut self) -> &mut Network {
        self.region.fault_network()
    }
    fn on_node_crash(&mut self, node: NodeId) {
        self.region.on_node_crash(node);
    }
    fn on_node_restart(&mut self, node: NodeId) {
        self.region.on_node_restart(node);
        self.pending_recovery = Some(node);
    }
}

impl World {
    fn tick(&mut self, now: SimTime) {
        self.region.tick(now);
        let ms = now.as_micros() / 1_000;
        if (WRITE_START_MS..WRITE_END_MS).contains(&ms) && ms.is_multiple_of(10) {
            let op = DurableOp::Spawn {
                name: format!("w{}", self.next_write),
                kind: EntityKind::Avatar,
                position: Point::new(self.next_write as f64, 0.0),
                ts: now,
            };
            if self.region.submit(&op, now).is_some() {
                self.next_write += 1;
            }
        }
        // Forward new region event-log lines into the flight recorder's
        // evidence, then pump the monitor.
        for line in self.region.log.iter().skip(self.log_consumed) {
            self.monitor.note_event(line.clone());
        }
        self.log_consumed = self.region.log.len();
        if let Some(node) = self.pending_recovery.take() {
            self.monitor.dump(&format!("recovery:n{}", node.raw()), now);
        }
        let new_events = self.monitor.tick(now);
        // Stream this tick's windowed view, SLO status, and any new
        // alert events through the reused sink — the same encode path
        // `experiments --jsonl` uses, kept allocation-free in steady
        // state (gated by `CellResult::export_grows`).
        let tail = self.monitor.engine.events().len().saturating_sub(new_events);
        self.sink.clear();
        self.sink.windows(&self.monitor.windows, 100);
        self.sink.slo(&self.monitor.engine);
        self.sink.alerts(self.monitor.engine.events().get(tail..).unwrap_or(&[]));
    }
}

/// What one E22 cell measures.
pub struct CellResult {
    /// Fire events over the run.
    pub fired: u64,
    /// Clear events over the run.
    pub cleared: u64,
    /// Sim ms of the first fire event, if any.
    pub first_fire_ms: Option<u64>,
    /// Sim ms of the last clear event, if any.
    pub last_clear_ms: Option<u64>,
    /// Alerts still active at the end of the quiet tail.
    pub active_at_end: usize,
    /// Distinct SLOs that fired.
    pub slos_fired: Vec<String>,
    /// Debug bundles dumped (alert fires + recovery dumps).
    pub bundles: usize,
    /// Canonical alert log (byte-stable across same-seed runs).
    pub alert_log: String,
    /// Fingerprint of the canonical alert log.
    pub log_hash: u64,
    /// Fingerprint of every dumped bundle's bytes.
    pub bundle_hash: u64,
    /// Buffer reallocations in the per-tick windowed/SLO stats stream
    /// (0 = the exporter stayed allocation-free for the whole run).
    pub export_grows: u64,
}

/// Run one fault script with the SLO set armed.
pub fn run_cell(scenario: Scenario, replicas: usize, seed: u64) -> CellResult {
    let cfg = RegionConfig { replicas, compact_threshold: 32, ..RegionConfig::default() };
    let fixed_victim = NodeId::new(u64::from(replicas > 1));
    let region = ReplicatedMetaverse::new(cfg, seed);
    let mut monitor = HealthMonitor::new(region.registry(), 512, 64);
    for spec in armed_slos() {
        monitor.arm(spec);
    }
    let mut world = World {
        region,
        monitor,
        victim: None,
        next_write: 0,
        log_consumed: 0,
        pending_recovery: None,
        sink: JsonlSink::with_capacity(1 << 14),
    };
    if scenario == Scenario::WipeCrash {
        world.region.set_wipe_on_crash(fixed_victim, true);
    }
    let mut sim = Sim::new(world);
    let sched = sim.scheduler();

    match scenario {
        Scenario::Baseline => {}
        Scenario::LeaderCrash => {
            sched.at(SimTime::from_millis(FAULT_AT_MS), |w: &mut World, _s| {
                if let Some(leader) = w.region.leader() {
                    w.victim = Some(leader);
                    apply(w, &Fault::Crash { node: leader });
                }
            });
            sched.at(SimTime::from_millis(HEAL_AT_MS), |w: &mut World, _s| {
                if let Some(victim) = w.victim.take() {
                    apply(w, &Fault::Restart { node: victim });
                }
            });
        }
        Scenario::MinorityPartition => {
            sched.at(SimTime::from_millis(FAULT_AT_MS), |w: &mut World, _s| {
                w.region.partition_minority_with_leader();
            });
            sched.at(SimTime::from_millis(HEAL_AT_MS), |w: &mut World, _s| {
                w.region.heal_partition();
            });
        }
        Scenario::WipeCrash => {
            FaultPlan::new()
                .crash_window(
                    fixed_victim,
                    SimTime::from_millis(FAULT_AT_MS),
                    SimTime::from_millis(HEAL_AT_MS),
                )
                .install(sched);
        }
    }
    for ms in 0..=END_MS {
        sched.at(SimTime::from_millis(ms), |w: &mut World, s| w.tick(s.now()));
    }
    sim.run_to_completion();

    let w = &sim.world;
    let events = w.monitor.alert_log();
    let first_fire_ms = events
        .iter()
        .find(|e| e.kind == mv_obs::AlertKind::Fire)
        .map(|e| e.at.as_micros() / 1_000);
    let last_clear_ms = events
        .iter()
        .rev()
        .find(|e| e.kind == mv_obs::AlertKind::Clear)
        .map(|e| e.at.as_micros() / 1_000);
    let mut slos_fired: Vec<String> = events
        .iter()
        .filter(|e| e.kind == mv_obs::AlertKind::Fire)
        .map(|e| e.slo.clone())
        .collect();
    slos_fired.sort();
    slos_fired.dedup();
    CellResult {
        fired: w.monitor.engine.fired_total(),
        cleared: w.monitor.engine.cleared_total(),
        first_fire_ms,
        last_clear_ms,
        active_at_end: w.monitor.active_alerts(),
        slos_fired,
        bundles: w.monitor.recorder.bundles().len(),
        alert_log: w.monitor.canonical_alert_log(),
        log_hash: w.monitor.engine.log_hash(),
        bundle_hash: w.monitor.recorder.bundle_hash(),
        export_grows: w.sink.grows(),
    }
}

/// What the injected-regression canary produced.
pub struct CanaryResult {
    /// Alerts fired (must be ≥ 1 or the alert path is broken).
    pub fired: u64,
    /// The canonical alert log.
    pub alert_log: String,
    /// The first dumped debug bundle's JSONL (empty if none dumped).
    pub bundle_jsonl: String,
}

/// Injected-regression canary: a deliberately broken run — 100% error
/// ratio against an absurdly strict availability SLO — that must fire
/// an alert and dump a bundle. `bench_check` runs this to prove the
/// alert path itself works; a health gate that can never fire is worse
/// than none.
pub fn alert_canary() -> CanaryResult {
    let reg = mv_obs::SharedRegistry::new();
    let mut mon = HealthMonitor::new(&reg, 32, 16);
    mon.arm(
        SloSpec::availability(
            "canary.availability",
            "bench.canary.err",
            "bench.canary.total",
            0.001,
        )
        .windows(4, 8)
        .burn(1.0, 1.0)
        .min_events(4),
    );
    let (e, t) = reg.with(|r| (r.counter("bench.canary.err"), r.counter("bench.canary.total")));
    for ms in 0..32u64 {
        reg.with(|r| {
            r.incr(t);
            r.incr(e);
        });
        mon.tick(SimTime::from_millis(ms));
    }
    CanaryResult {
        fired: mon.engine.fired_total(),
        alert_log: mon.canonical_alert_log(),
        bundle_jsonl: mon
            .recorder
            .bundles()
            .first()
            .map(|b| b.jsonl.clone())
            .unwrap_or_default(),
    }
}

/// Run E22: fault script × armed-SLO sweep + determinism check.
pub fn e22() -> Vec<Table> {
    let mut sweep = Table::new(
        "E22a: burn-rate alerts under scripted faults (3 replicas, fault [2s,4s), seed 22; \
         detect_ms is first fire minus injection)",
        &[
            "scenario",
            "fired",
            "cleared",
            "detect_ms",
            "cleared_by_end",
            "slos_fired",
            "bundles",
            "export_grows",
        ],
    );
    for &scenario in &[
        Scenario::Baseline,
        Scenario::LeaderCrash,
        Scenario::MinorityPartition,
        Scenario::WipeCrash,
    ] {
        let r = run_cell(scenario, 3, 22);
        let detect = match r.first_fire_ms {
            Some(ms) => n(ms.saturating_sub(FAULT_AT_MS)),
            None => "-".into(),
        };
        sweep.row(&[
            scenario.name().into(),
            n(r.fired),
            n(r.cleared),
            detect,
            if r.active_at_end == 0 { "yes".into() } else { "NO".into() },
            if r.slos_fired.is_empty() { "-".into() } else { r.slos_fired.join(",") },
            n(r.bundles as u64),
            n(r.export_grows),
        ]);
    }

    let mut det = Table::new(
        "E22b: same-seed alert logs and debug bundles are byte-identical (leader-crash, 3 \
         replicas)",
        &["seed", "alert_log_hash", "bundle_hash", "matches_rerun"],
    );
    for &seed in &[22u64, 1022] {
        let a = run_cell(Scenario::LeaderCrash, 3, seed);
        let b = run_cell(Scenario::LeaderCrash, 3, seed);
        let same = a.log_hash == b.log_hash && a.bundle_hash == b.bundle_hash;
        det.row(&[
            n(seed),
            format!("{:016x}", a.log_hash),
            format!("{:016x}", a.bundle_hash),
            if same { "yes".into() } else { "NO".into() },
        ]);
    }
    vec![sweep, det]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_fault_script_fires_within_bound_and_clears() {
        for &scenario in
            &[Scenario::LeaderCrash, Scenario::MinorityPartition, Scenario::WipeCrash]
        {
            let r = run_cell(scenario, 3, 22);
            let first = r
                .first_fire_ms
                .unwrap_or_else(|| panic!("{}: no alert fired\n{}", scenario.name(), r.alert_log));
            assert!(
                (FAULT_AT_MS..=FAULT_AT_MS + DETECT_BOUND_MS).contains(&first),
                "{}: first fire at {first} ms (fault at {FAULT_AT_MS})\n{}",
                scenario.name(),
                r.alert_log
            );
            assert_eq!(
                r.active_at_end,
                0,
                "{}: alerts still active at end\n{}",
                scenario.name(),
                r.alert_log
            );
            assert!(r.bundles >= 1, "{}: no debug bundle dumped", scenario.name());
        }
    }

    #[test]
    fn baseline_never_fires() {
        let r = run_cell(Scenario::Baseline, 3, 22);
        assert_eq!(r.fired, 0, "false positives on fault-free baseline:\n{}", r.alert_log);
        assert_eq!(r.bundles, 0);
    }

    #[test]
    fn alert_canary_fires_and_dumps() {
        let c = alert_canary();
        assert!(c.fired >= 1, "injected regression did not fire:\n{}", c.alert_log);
        assert!(c.alert_log.contains("slo=canary.availability kind=fire"), "{}", c.alert_log);
        assert!(
            c.bundle_jsonl.starts_with("{\"schema\":\"mv-debug-bundle/v1\""),
            "{}",
            c.bundle_jsonl
        );
    }

    #[test]
    fn per_tick_health_export_never_reallocates() {
        // Satellite 6: the preallocated windowed/SLO stats stream must
        // stay allocation-free across a whole faulted run — including
        // the ticks where alerts fire and the export gains lines.
        for &scenario in &[Scenario::Baseline, Scenario::LeaderCrash] {
            let r = run_cell(scenario, 3, 22);
            assert_eq!(
                r.export_grows,
                0,
                "{}: per-tick export reallocated",
                scenario.name()
            );
        }
    }

    #[test]
    fn e22_cells_are_deterministic() {
        let a = run_cell(Scenario::LeaderCrash, 3, 22);
        let b = run_cell(Scenario::LeaderCrash, 3, 22);
        assert_eq!(a.alert_log, b.alert_log);
        assert_eq!(a.log_hash, b.log_hash);
        assert_eq!(a.bundle_hash, b.bundle_hash);
    }
}
