//! E18 — end-to-end causal tracing under faults (observability).
//!
//! E16 proved the stack *reconverges* after a partition; E18 shows
//! *where the time went*. A client mints one `e18.update` trace per
//! update, ships it to the server over the reliable transport (through
//! E16's partition fault), and the server applies it to a
//! [`DurableMetaverse`] whose group-commit WAL shares the same tracer.
//! Every stage an update passes through — client queueing, transport
//! send/attempt/retry, delivery, WAL group-commit, engine apply —
//! leaves a span on the simulated clock, so the per-update critical
//! path is reconstructible as a tree, retransmissions included.
//!
//! * **E18a — stage breakdown.** Per-stage latency over all traced
//!   updates of a faulted run: queue (client buffer wait), transport
//!   (first send to first delivery), retry (time burned in
//!   retransmission timeouts), WAL (group-commit wait), apply
//!   (delivery to durable commit).
//! * **E18b — span tree.** The full tree of the worst (most-retried)
//!   partition-crossing update, rendered from the span log.
//! * **E18c — tick profile.** The engine loop's wall-clock cost per
//!   stage from [`TickProfiler`] (host-dependent; shape, not numbers).
//! * **E18d — overhead.** The E17 ingest path (group-commit WAL
//!   appends) with tracing off vs. sampled tracing on; acceptance is
//!   < 5% (the `traced_overhead_under_5_percent` test enforces it).
//! * **E18e — determinism.** Same-seed runs produce byte-identical
//!   span logs ([`mv_obs::Tracer::canonical_bytes`]); different seeds
//!   do not. Zero spans leak.

use mv_common::hash::FastMap;
use mv_common::id::{EntityId, NodeId};
use mv_common::seeded_rng;
use mv_common::table::{f2, n, pct, Table};
use mv_common::time::{SimDuration, SimTime};
use mv_core::{DurableMetaverse, EntityKind};
use mv_net::{FaultPlan, FaultTarget, LinkSpec, Network, ReliableTransport, RetryPolicy, Sim};
use mv_net::reliable::Event;
use mv_obs::{LogHistogram, SharedTracer, SpanRecord, TickProfiler, TraceCtx};
use mv_storage::wal::WalRecord;
use mv_storage::{GroupCommitPolicy, GroupCommitWal};
use std::time::Instant;

const SERVER: NodeId = NodeId::new(0);
const CLIENT: NodeId = NodeId::new(1);
const TICK_MS: u64 = 10;
/// Client buffers updates and flushes every this many ticks (the
/// "queue" stage exists because of this batching).
const FLUSH_TICKS: u64 = 3;
/// Updates are produced until here…
const PRODUCE_MS: u64 = 2_000;
/// …the partition opens here…
const PARTITION_AT_MS: u64 = 1_000;
/// …lasts this long…
const PART_MS: u64 = 500;
/// …and the sim runs this much longer so retries drain.
const TAIL_MS: u64 = 5_000;

/// One client→server update (payloads must be `Clone` for the
/// transport's retransmission buffer).
#[derive(Debug, Clone)]
struct Upd {
    entity: usize,
    value: f64,
}

struct World {
    net: Network,
    rng: rand::rngs::StdRng,
    transport: ReliableTransport<Upd>,
    dm: DurableMetaverse,
    ids: Vec<EntityId>,
    tracer: SharedTracer,
    /// Client-side buffer: updates wait here until the next flush.
    queue: Vec<(TraceCtx, Upd)>,
    /// trace id → its open root span, closed when the update becomes
    /// durable (or expires).
    roots: FastMap<u64, u64>,
    /// Traces applied since the last commit (their roots close at the
    /// commit that makes them durable).
    to_commit: Vec<u64>,
    tick: u64,
    expired: u64,
    profiler: TickProfiler,
}

impl FaultTarget for World {
    fn fault_network(&mut self) -> &mut Network {
        &mut self.net
    }
}

impl World {
    fn new(seed: u64, loss: f64) -> Self {
        let mut net = Network::new();
        net.add_node(SERVER, "server");
        net.add_node(CLIENT, "client");
        net.add_link_bidi(
            SERVER,
            CLIENT,
            LinkSpec::new(SimDuration::from_millis(5), 1e8).with_loss(loss),
        );
        net.set_group(CLIENT, 1).unwrap();
        let tracer = SharedTracer::new();
        let mut transport = ReliableTransport::new(RetryPolicy::default(), seed);
        transport.set_tracer(tracer.clone());
        let mut dm = DurableMetaverse::with_defaults(2);
        dm.set_tracer(tracer.clone());
        let ids = (0..8)
            .map(|i| {
                dm.spawn(
                    format!("obj{i}"),
                    EntityKind::SceneObject,
                    mv_common::geom::Point::new(i as f64, 0.0),
                    SimTime::ZERO,
                )
            })
            .collect();
        dm.commit(SimTime::ZERO);
        World {
            net,
            rng: seeded_rng(seed),
            transport,
            dm,
            ids,
            tracer,
            queue: Vec::new(),
            roots: FastMap::default(),
            to_commit: Vec::new(),
            tick: 0,
            expired: 0,
            profiler: TickProfiler::new(),
        }
    }

    fn step(&mut self, now: SimTime) {
        self.profiler.tick();
        let ms = now.as_millis_f64() as u64;

        // Ingest: mint one trace per produced update, buffer it.
        if ms < PRODUCE_MS {
            let _g = self.profiler.scope("ingest");
            let ctx = self.tracer.start_trace("e18.update", now);
            self.roots.insert(ctx.trace, ctx.span);
            let upd =
                Upd { entity: (self.tick % 8) as usize, value: self.tick as f64 };
            self.queue.push((ctx, upd));
            self.tick += 1;
        }

        // Flush: ship the buffered updates over the reliable transport.
        if self.tick.is_multiple_of(FLUSH_TICKS) || ms >= PRODUCE_MS {
            let _g = self.profiler.scope("flush");
            for (ctx, upd) in self.queue.drain(..) {
                self.transport.send_traced(
                    &mut self.net,
                    &mut self.rng,
                    CLIENT,
                    SERVER,
                    upd,
                    64,
                    now,
                    Some(ctx),
                );
            }
        }

        // Pump: deliver, apply into the durable engine under the
        // message's context (WAL span + apply event land in the trace).
        {
            let _g = self.profiler.scope("pump");
            for ev in self.transport.poll(&mut self.net, &mut self.rng, now) {
                match ev {
                    Event::Delivered { at, payload, ctx, .. } => {
                        let id = self.ids[payload.entity];
                        let pos = mv_common::geom::Point::new(payload.value, 0.0);
                        self.dm.update_position_traced(id, pos, at, ctx).unwrap();
                        if let Some(c) = ctx {
                            self.to_commit.push(c.trace);
                        }
                    }
                    Event::Expired { at, ctx, .. } => {
                        self.expired += 1;
                        if let Some(c) = ctx {
                            if let Some(root) = self.roots.remove(&c.trace) {
                                self.tracer.close(root, at, "expired");
                            }
                        }
                    }
                }
            }
        }

        // Commit: seal the WAL batch; the updates it made durable are
        // complete — their roots close here.
        if !self.to_commit.is_empty() {
            let _g = self.profiler.scope("commit");
            self.dm.commit(now);
            for trace in self.to_commit.drain(..) {
                if let Some(root) = self.roots.remove(&trace) {
                    self.tracer.close(root, now, "durable");
                }
            }
        }
        self.profiler.finish();
    }
}

/// Per-update stage latencies extracted from one trace's span records.
struct Stages {
    queue: f64,
    transport: f64,
    retry: f64,
    wal: f64,
    apply: f64,
    total: f64,
    retries: usize,
}

fn dur_ms(r: &SpanRecord) -> f64 {
    (r.end - r.start).as_millis_f64()
}

/// Reconstruct the stage breakdown of one durable update; `None` for
/// traces that expired or never completed.
fn stages_of(recs: &[SpanRecord]) -> Option<Stages> {
    let root = recs.iter().find(|r| r.parent == 0 && r.status == "durable")?;
    let send = recs.iter().find(|r| r.name == "net.transport.send")?;
    let deliver =
        recs.iter().find(|r| r.name == "net.transport.deliver" && r.status == "ok")?;
    let retries: Vec<&SpanRecord> =
        recs.iter().filter(|r| r.name == "net.transport.retry").collect();
    let wal = recs.iter().find(|r| r.name == "storage.wal.group_commit");
    Some(Stages {
        queue: (send.start - root.start).as_millis_f64(),
        transport: (deliver.start - send.start).as_millis_f64(),
        retry: retries.iter().map(|r| dur_ms(r)).sum(),
        wal: wal.map_or(0.0, dur_ms),
        apply: (root.end - deliver.start).as_millis_f64(),
        total: dur_ms(root),
        retries: retries.len(),
    })
}

struct RunResult {
    /// (trace id, stages) for every durable update.
    stages: Vec<(u64, Stages)>,
    expired: u64,
    open_spans: usize,
    log_hash: u64,
    tracer: SharedTracer,
    profile: Table,
}

fn run_cell(seed: u64, loss: f64) -> RunResult {
    let end_ms = PRODUCE_MS + TAIL_MS;
    let mut sim = Sim::new(World::new(seed, loss));
    let sched = sim.scheduler();
    FaultPlan::new()
        .partition_between(
            0,
            1,
            SimTime::from_millis(PARTITION_AT_MS),
            SimTime::from_millis(PARTITION_AT_MS + PART_MS),
        )
        .install(sched);
    for ms in (0..=end_ms).step_by(TICK_MS as usize) {
        sched.at(SimTime::from_millis(ms), |w: &mut World, s| w.step(s.now()));
    }
    sim.run_to_completion();

    let w = sim.world;
    let stages = (1..=w.tracer.trace_count())
        .filter_map(|t| stages_of(&w.tracer.trace_records(t)).map(|s| (t, s)))
        .collect();
    RunResult {
        stages,
        expired: w.expired,
        open_spans: w.tracer.open_count(),
        log_hash: w.tracer.with(|t| t.log_hash()),
        profile: w.profiler.table(
            "E18c: engine-loop tick profile (host wall clock; shape only)",
        ),
        tracer: w.tracer,
    }
}

/// E18d: the E17 ingest path (group-commit WAL appends, batch 256) with
/// tracing off vs. sampled tracing (1 in `sample`) on. Returns
/// `(plain_s, traced_s)` CPU seconds for `count` appends.
fn measure_overhead(count: usize, sample: u64) -> (f64, f64) {
    let recs: Vec<WalRecord> = (0..count)
        .map(|i| WalRecord::Put {
            key: (i as u64 % 4096).to_le_bytes().to_vec(),
            value: vec![(i % 251) as u8; 64],
        })
        .collect();

    let mut plain = GroupCommitWal::with_policy(GroupCommitPolicy::by_records(256));
    let t0 = Instant::now();
    for rec in &recs {
        plain.append(rec.clone(), SimTime::ZERO);
    }
    plain.sync();
    let plain_s = t0.elapsed().as_secs_f64();

    let tracer = SharedTracer::sampled(sample);
    let mut traced = GroupCommitWal::with_policy(GroupCommitPolicy::by_records(256));
    traced.set_tracer(tracer.clone());
    let t0 = Instant::now();
    for (i, rec) in recs.iter().enumerate() {
        let at = SimTime(i as u64);
        let ctx = tracer.maybe_trace("core.durable.ingest", at);
        traced.append_traced(rec.clone(), at, ctx);
        if let Some(c) = ctx {
            tracer.close(c.span, at, "applied");
        }
    }
    traced.sync();
    let traced_s = t0.elapsed().as_secs_f64();

    assert_eq!(plain.durable().len(), traced.durable().len());
    assert_eq!(tracer.open_count(), 0);
    (plain_s, traced_s)
}

/// Best-of-`rounds` relative overhead of the traced ingest path.
fn best_overhead(count: usize, sample: u64, rounds: usize) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..rounds {
        let (plain_s, traced_s) = measure_overhead(count, sample);
        best = best.min(traced_s / plain_s - 1.0);
    }
    best
}

/// Run E18: stage breakdown, worst-trace tree, tick profile, overhead,
/// determinism.
pub fn e18() -> Vec<Table> {
    e18_sized(40_000)
}

/// E18 at an explicit overhead-measurement size (CI smoke runs small).
pub fn e18_sized(overhead_records: usize) -> Vec<Table> {
    let r = run_cell(18, 0.05);

    let mut histos: std::collections::BTreeMap<&str, LogHistogram> = Default::default();
    for (_, s) in &r.stages {
        for (stage, ms) in [
            ("queue", s.queue),
            ("transport", s.transport),
            ("retry", s.retry),
            ("wal", s.wal),
            ("apply", s.apply),
            ("end_to_end", s.total),
        ] {
            histos.entry(stage).or_default().record(ms);
        }
    }
    let mut a = Table::new(
        format!(
            "E18a: per-stage latency of {} durable updates ({} expired) — \
             loss 0.05, partition {PARTITION_AT_MS}–{} ms, seed 18",
            r.stages.len(),
            r.expired,
            PARTITION_AT_MS + PART_MS,
        ),
        &["stage", "updates", "mean_ms", "p95_ms", "max_ms"],
    );
    for (stage, h) in &histos {
        a.row(&[
            (*stage).to_string(),
            n(h.count()),
            f2(h.mean()),
            f2(h.quantile(0.95)),
            f2(h.max()),
        ]);
    }

    // The worst partition-crossing update, as a span tree.
    let worst = r
        .stages
        .iter()
        .max_by(|(ta, sa), (tb, sb)| {
            sa.retries.cmp(&sb.retries).then(sa.total.total_cmp(&sb.total)).then(ta.cmp(tb))
        })
        .map(|(t, _)| *t)
        .expect("at least one durable update");
    let mut b = Table::new(
        format!("E18b: span tree of the most-retried update (trace {worst})"),
        &["span"],
    );
    for line in r.tracer.render_trace(worst) {
        b.row(&[line]);
    }

    let mut d = Table::new(
        format!(
            "E18d: tracing overhead on the E17 ingest path \
             ({overhead_records} WAL appends, batch 256, best of 3)"
        ),
        &["sampling", "overhead"],
    );
    for &sample in &[64u64, 1] {
        let over = best_overhead(overhead_records, sample, 3);
        d.row(&[format!("1 in {sample}"), pct(over.max(0.0))]);
    }

    let mut e = Table::new(
        "E18e: span-log determinism (canonical-bytes hash)",
        &["seed", "log_hash", "open_spans", "matches_rerun"],
    );
    for seed in [18u64, 19] {
        let first = run_cell(seed, 0.05);
        let second = run_cell(seed, 0.05);
        e.row(&[
            n(seed),
            format!("{:016x}", first.log_hash),
            n(first.open_spans as u64),
            (first.log_hash == second.log_hash).to_string(),
        ]);
    }

    vec![a, b, r.profile, d, e]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e18_reconstructs_partition_crossing_critical_path() {
        let r = run_cell(18, 0.05);
        assert_eq!(r.open_spans, 0, "no span may leak at sim end");
        assert!(!r.stages.is_empty(), "updates became durable");
        // The partition forces at least one update through a retry, and
        // its stage extraction must see the complete path.
        let crossed = r
            .stages
            .iter()
            .map(|(_, s)| s)
            .find(|s| s.retries > 0)
            .expect("some update crossed the partition via retries");
        assert!(crossed.retry > 0.0, "retry time visible in the breakdown");
        assert!(crossed.transport >= crossed.retry * 0.5, "retries inside transport window");
        assert!(
            crossed.total >= crossed.queue + crossed.transport,
            "end-to-end covers queue + transport"
        );
        // Every durable update has a WAL group-commit span.
        assert!(r.stages.iter().all(|(_, s)| s.wal >= 0.0 && s.total > 0.0));
    }

    #[test]
    fn e18_span_logs_are_seed_deterministic() {
        let a = run_cell(7, 0.05);
        let b = run_cell(7, 0.05);
        assert_eq!(a.log_hash, b.log_hash, "same seed, same canonical span log");
        let c = run_cell(8, 0.05);
        assert_ne!(a.log_hash, c.log_hash, "different seed, different log");
    }

    /// The PR's acceptance criterion: sampled tracing adds < 5% to the
    /// E17 ingest path. Best-of-3 on a small run absorbs CI noise.
    #[test]
    fn traced_overhead_under_5_percent() {
        let over = best_overhead(20_000, 64, 3);
        assert!(over < 0.05, "sampled tracing overhead {:.2}% ≥ 5%", over * 100.0);
    }
}
