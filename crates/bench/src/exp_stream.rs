//! E14 — multi-query QoS scheduling and parallel stream execution
//! (§IV-C, §IV-G).
//!
//! Claims reproduced: SJF/freshness policies beat FCFS on response and
//! staleness under heavy-tailed query costs (Sharaf-style), and
//! key-partitioned operator replication scales ingest.

use mv_common::sample::exp_sample;
use mv_common::seeded_rng;
use mv_common::table::{f2, n, Table};
use mv_common::time::{SimDuration, SimTime};
use mv_stream::ops::{AggKind, WindowAggOp, WindowKind};
use mv_stream::{MultiQueryScheduler, ParallelPipeline, Pipeline, Policy, QuerySpec, StreamRecord};

/// Run E14.
pub fn e14() -> Vec<Table> {
    // E14a: the Sharaf-style policy comparison.
    let specs = vec![
        QuerySpec::new(SimDuration::from_millis(50)),
        QuerySpec::new(SimDuration::from_millis(2)).with_deadline(SimDuration::from_millis(40)),
        QuerySpec::new(SimDuration::from_millis(2)),
        QuerySpec::new(SimDuration::from_millis(8)).with_weight(5.0),
    ];
    let mut rng = seeded_rng(14);
    let mut arrivals = Vec::new();
    let mut t_us = 0.0;
    for i in 0..2_000 {
        t_us += exp_sample(&mut rng, 18_000.0);
        arrivals.push((SimTime::from_micros(t_us as u64), i % 4));
    }
    let sched = MultiQueryScheduler::new(specs);
    let mut t = Table::new(
        "E14a: multi-query scheduling — 4 heterogeneous CQs, 2000 batches",
        &["policy", "mean_resp_ms", "p99_resp_ms", "mean_staleness_ms", "deadline_misses"],
    );
    for policy in Policy::ALL {
        let mut r = sched.run(arrivals.clone(), policy);
        t.row(&[
            policy.name().into(),
            f2(r.response_ms.mean()),
            f2(r.response_ms.p99()),
            f2(r.staleness_ms.mean()),
            n(r.deadline_misses),
        ]);
    }

    // E14b: parallel operator replication.
    let mut par_t = Table::new(
        "E14b: key-partitioned operator replication (500k records, window sum)",
        &["workers", "wall_ms", "records_per_sec"],
    );
    let records: Vec<StreamRecord> = (0..500_000u64)
        .map(|i| StreamRecord::physical(SimTime::from_micros(i), i % 256, (i % 100) as f64))
        .collect();
    let make = || {
        Pipeline::new().then(WindowAggOp::new(
            WindowKind::Tumbling(SimDuration::from_millis(10)),
            AggKind::Sum,
        ))
    };
    for &workers in &[1usize, 2, 4, 8] {
        let par = ParallelPipeline::new(workers);
        let start = std::time::Instant::now();
        let out = par.run(make, records.clone(), SimTime::from_secs(10));
        let wall = start.elapsed();
        assert!(!out.is_empty());
        par_t.row(&[
            n(workers as u64),
            f2(wall.as_secs_f64() * 1000.0),
            f2(records.len() as f64 / wall.as_secs_f64()),
        ]);
    }
    vec![t, par_t]
}

#[cfg(test)]
mod tests {
    #[test]
    fn policies_all_appear() {
        let tables = super::e14();
        let rendered = tables[0].render();
        for p in super::Policy::ALL {
            assert!(rendered.contains(p.name()), "{} missing", p.name());
        }
    }
}
