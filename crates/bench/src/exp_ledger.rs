//! E5 — verifiable ledger (§IV-D).
//!
//! Claims reproduced: proofs are O(log n) bytes and cheap to verify even
//! at a million entries; deferred (batched) verification amortizes the
//! per-read proof cost GlassDB-style; tampering is always caught.

use mv_common::table::{f2, n, Table};
use mv_ledger::ledger::DeferredVerifier;
use mv_ledger::merkle::{verify_inclusion, MerkleTree};
use mv_ledger::VerifiableKv;

/// Run E5.
pub fn e5() -> Vec<Table> {
    // E5a: proof size and verification cost vs. ledger size.
    let mut size_t = Table::new(
        "E5a: Merkle proof size & verification throughput vs. ledger size",
        &["entries", "proof_bytes", "append_us_per_entry", "prove_us", "verify_us"],
    );
    for &entries in &[1_000u64, 10_000, 100_000, 1_000_000] {
        let mut tree = MerkleTree::new();
        let t0 = std::time::Instant::now();
        for i in 0..entries {
            tree.append(format!("txn-{i}").as_bytes());
        }
        let append_us = t0.elapsed().as_micros() as f64 / entries as f64;
        let root = tree.root();
        let mid = entries / 2;
        let t1 = std::time::Instant::now();
        let proof = tree.prove_inclusion(mid, entries);
        let prove_us = t1.elapsed().as_micros() as f64;
        let t2 = std::time::Instant::now();
        let data = format!("txn-{mid}");
        let reps = 100;
        for _ in 0..reps {
            assert!(verify_inclusion(data.as_bytes(), &proof, &root));
        }
        let verify_us = t2.elapsed().as_micros() as f64 / reps as f64;
        size_t.row(&[
            n(entries),
            n(proof.size_bytes() as u64),
            f2(append_us),
            f2(prove_us),
            f2(verify_us),
        ]);
    }

    // E5b: sync vs. deferred read verification.
    let mut mode_t = Table::new(
        "E5b: synchronous vs. deferred read verification (10k-entry KV ledger, 1000 reads)",
        &["mode", "wall_ms", "us_per_read"],
    );
    let mut kv = VerifiableKv::new(b"e5-key");
    for i in 0..10_000 {
        kv.put(&format!("k{i}"), format!("v{i}").as_bytes());
    }
    {
        let t = std::time::Instant::now();
        for i in 0..1_000 {
            kv.get_verified(&format!("k{}", i * 7 % 10_000)).expect("key exists");
        }
        let wall = t.elapsed();
        mode_t.row(&[
            "synchronous (proof per read)".into(),
            f2(wall.as_secs_f64() * 1000.0),
            f2(wall.as_micros() as f64 / 1000.0),
        ]);
    }
    {
        let t = std::time::Instant::now();
        let mut verifier = DeferredVerifier::new();
        for i in 0..1_000 {
            let (_, promise) = kv.get(&format!("k{}", i * 7 % 10_000)).expect("key exists");
            verifier.collect(promise);
        }
        assert_eq!(verifier.settle(&mut kv).expect("all reads honest"), 1_000);
        let wall = t.elapsed();
        mode_t.row(&[
            "deferred (batch settle)".into(),
            f2(wall.as_secs_f64() * 1000.0),
            f2(wall.as_micros() as f64 / 1000.0),
        ]);
    }

    // E5c: tamper detection.
    let mut tamper_t = Table::new(
        "E5c: tamper detection",
        &["attack", "caught"],
    );
    {
        let mut kv = VerifiableKv::new(b"e5-key");
        kv.put("balance", b"100");
        kv.tamper_store("balance", b"999999");
        tamper_t.row(&[
            "server returns uncommitted value".into(),
            format!("{}", kv.get_verified("balance").is_err()),
        ]);
    }
    {
        use mv_ledger::{Auditor, TransparencyLog};
        let mut log = TransparencyLog::new(b"k");
        let mut auditor = Auditor::new(b"k");
        for i in 0..50u64 {
            log.append(format!("tx-{i}").as_bytes());
        }
        let head = log.head();
        auditor.check_head(&head, &log.prove_consistency(0, 50));
        // Rewritten history.
        let mut evil = TransparencyLog::new(b"k");
        for i in 0..60u64 {
            let d = if i == 3 { "tx-EVIL".into() } else { format!("tx-{i}") };
            evil.append(d.as_bytes());
        }
        let evil_head = evil.head();
        let rejected = !auditor.check_head(&evil_head, &evil.prove_consistency(50, 60));
        tamper_t.row(&["operator rewrites history".into(), format!("{rejected}")]);
    }
    vec![size_t, mode_t, tamper_t, e5d_replication()]
}

/// E5d: the §IV-D trade — BFT consensus vs. ledger + auditor.
fn e5d_replication() -> Table {
    use mv_common::time::SimDuration;
    use mv_ledger::consensus::ReplicationModel;
    let mut t = Table::new(
        "E5d: replication cost — PBFT-style BFT vs. verifiable ledger + auditor (40 ms one-way WAN)",
        &["scheme", "parties", "msgs_per_txn", "commit_latency_ms", "exposure", "guarantee"],
    );
    for model in [
        ReplicationModel::Bft { f: 1 },
        ReplicationModel::Bft { f: 2 },
        ReplicationModel::Bft { f: 4 },
        ReplicationModel::LedgerAudit { batch: 1 },
        ReplicationModel::LedgerAudit { batch: 100 },
    ] {
        t.row(&[
            model.name(),
            n(model.replicas() as u64),
            f2(model.messages_per_txn()),
            f2(model.commit_latency(SimDuration::from_millis(40)).as_millis_f64()),
            format!("{} txns", model.exposure_txns()),
            model.guarantee().into(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    #[test]
    fn proof_sizes_grow_logarithmically() {
        // Direct check without the 1M row (kept fast): 2^10 vs 2^20 leaves
        // must differ by ~10 siblings, not 1024x.
        use mv_ledger::merkle::MerkleTree;
        let mut small = MerkleTree::new();
        for i in 0..1024u64 {
            small.append(&i.to_le_bytes());
        }
        let p_small = small.prove_inclusion(0, 1024);
        assert_eq!(p_small.path.len(), 10);
    }
}
