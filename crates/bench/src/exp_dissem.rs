//! E3/E4 — coherency-bounded dissemination and transmission scheduling
//! (§IV-C).
//!
//! E3 claims: (a) incoherency bounds and LOD degradation cut bandwidth
//! dramatically vs. push-everything; (b) unlike the prior work the paper
//! cites ("assume a small number of distinct objects"), per-object
//! filtering scales to 100k objects with flat per-update cost.
//! E4 claims: priority/deadline scheduling delivers critical data first.

use mv_common::id::{ClientId, ObjectId};
use mv_common::sample::normal_sample;
use mv_common::seeded_rng;
use mv_common::table::{f2, n, pct, speedup, Table};
use mv_common::time::SimTime;
use mv_dissem::payload::MediaResolution;
use mv_dissem::{Bound, CoherencyServer, DeltaCodec, LinkScheduler, Priority, SchedPolicy, TxRequest};

/// Run E3: bound sweep, object-count scaling, delta/LOD payload savings.
pub fn e3() -> Vec<Table> {
    let mut rng = seeded_rng(31);

    // E3a: bound sweep on 1k objects / 20 clients, random walks.
    let mut bound_t = Table::new(
        "E3a: incoherency bound vs. push traffic (1k objects, 20 subscribers each, 100 updates/object)",
        &["bound", "updates", "pushes", "suppressed", "push_ratio"],
    );
    for bound in [Bound::Exact, Bound::Absolute(0.5), Bound::Absolute(2.0), Bound::Absolute(8.0)] {
        let mut server = CoherencyServer::new();
        for obj in 0..1_000u64 {
            for c in 0..20u64 {
                server.subscribe(ClientId::new(c), ObjectId::new(obj), bound);
            }
        }
        let mut walks = vec![0.0f64; 1_000];
        for _ in 0..100 {
            for (obj, w) in walks.iter_mut().enumerate() {
                *w += normal_sample(&mut rng, 0.0, 1.0);
                server.update(ObjectId::new(obj as u64), *w);
            }
        }
        let pushes = server.stats.get("pushes");
        let suppressed = server.stats.get("suppressed");
        bound_t.row(&[
            format!("{bound:?}"),
            n(server.stats.get("updates")),
            n(pushes),
            n(suppressed),
            pct(pushes as f64 / (pushes + suppressed) as f64),
        ]);
    }

    // E3b: object-count scaling — per-update cost must stay flat.
    let mut scale_t = Table::new(
        "E3b: per-object filtering scales with object count (bound 2.0, 1 subscriber)",
        &["objects", "updates", "wall_ms", "ns_per_update"],
    );
    for &objects in &[10_000usize, 50_000, 100_000] {
        let mut server = CoherencyServer::new();
        for obj in 0..objects as u64 {
            server.subscribe(ClientId::new(0), ObjectId::new(obj), Bound::Absolute(2.0));
        }
        let mut walks = vec![0.0f64; objects];
        let start = std::time::Instant::now();
        for _ in 0..10 {
            for (obj, w) in walks.iter_mut().enumerate() {
                *w += normal_sample(&mut rng, 0.0, 1.0);
                server.update(ObjectId::new(obj as u64), *w);
            }
        }
        let wall = start.elapsed();
        let updates = objects as u64 * 10;
        scale_t.row(&[
            n(objects as u64),
            n(updates),
            f2(wall.as_secs_f64() * 1000.0),
            f2(wall.as_nanos() as f64 / updates as f64),
        ]);
    }

    // E3c: delta encoding + media degradation.
    let mut payload_t = Table::new(
        "E3c: payload reduction — delta encoding and media LOD",
        &["mechanism", "full_bytes", "sent_bytes", "saving"],
    );
    {
        let mut codec = DeltaCodec::new();
        let mut state = vec![0.0f64; 64];
        for round in 0..200 {
            // A pose vector where only a few joints move per frame.
            for j in 0..4 {
                state[(round * 7 + j * 13) % 64] += 0.1;
            }
            codec.encode(1, &state);
        }
        payload_t.row(&[
            "delta encoding (64-dim pose, 4 joints/frame)".into(),
            n(codec.full_bytes),
            n(codec.sent_bytes),
            pct(codec.savings()),
        ]);
    }
    {
        // 100 clients stream 1 media object; bandwidth classes force LOD.
        let high_bps = 1_000_000u64;
        let budgets = [2_000_000u64, 150_000, 8_000];
        let mut full = 0u64;
        let mut sent = 0u64;
        for (i, &b) in budgets.iter().cycle().take(99).enumerate() {
            let _ = i;
            let res = MediaResolution::fit(high_bps, b);
            full += high_bps;
            sent += res.bytes_per_sec(high_bps);
        }
        payload_t.row(&[
            "media LOD (3 bandwidth classes)".into(),
            n(full),
            n(sent),
            pct(1.0 - sent as f64 / full as f64),
        ]);
    }
    vec![bound_t, scale_t, payload_t]
}

/// Run E4: transmission scheduling policies under a bulk burst.
pub fn e4() -> Vec<Table> {
    let mut t = Table::new(
        "E4: uplink scheduling — critical latency and deadline misses (1 MB/s link, bulk burst + critical trickle)",
        &["policy", "critical_p50_ms", "critical_p99_ms", "bulk_p50_ms", "deadline_misses", "critical_speedup_vs_fifo"],
    );
    let link = LinkScheduler::new(1e6);
    let mk = || {
        let mut reqs = Vec::new();
        for i in 0..200u64 {
            reqs.push(TxRequest {
                arrival: SimTime::from_millis(i / 4),
                bytes: 100_000,
                priority: Priority::Bulk,
                deadline: None,
            });
        }
        for i in 0..40u64 {
            reqs.push(TxRequest {
                arrival: SimTime::from_millis(i * 2),
                bytes: 2_000,
                priority: Priority::Critical,
                deadline: Some(SimTime::from_millis(i * 2 + 60)),
            });
        }
        reqs
    };
    let fifo_crit_p50 = {
        let mut r = link.run(mk(), SchedPolicy::Fifo);
        r.latency_ms.get_mut("critical").expect("class").p50()
    };
    for policy in SchedPolicy::ALL {
        let mut r = link.run(mk(), policy);
        let crit = r.latency_ms.get_mut("critical").expect("class").clone();
        let mut crit = crit;
        let mut bulk = r.latency_ms.get_mut("bulk").expect("class").clone();
        t.row(&[
            policy.name().into(),
            f2(crit.p50()),
            f2(crit.p99()),
            f2(bulk.p50()),
            n(r.deadline_misses),
            speedup(fifo_crit_p50 / crit.p50().max(1e-9)),
        ]);
    }
    // A scheduling aside: ICeDB-style resume merging accounting.
    let mut resume_t = Table::new(
        "E4b: disruption-tolerant outbox — newest-value merging on reconnect",
        &["updates_while_offline", "objects", "replayed_msgs", "msgs_saved"],
    );
    for &(updates, objects) in &[(1_000u64, 100u64), (10_000, 100), (10_000, 1_000)] {
        let mut mgr = mv_dissem::OutboxManager::new();
        let c = ClientId::new(1);
        mgr.register(c);
        mgr.disconnect(c);
        for i in 0..updates {
            mgr.push(c, ObjectId::new(i % objects), i as f64, Priority::Normal);
        }
        let replay = mgr.reconnect(c).len() as u64;
        resume_t.row(&[
            n(updates),
            n(objects),
            n(replay),
            pct(1.0 - replay as f64 / updates as f64),
        ]);
    }
    vec![t, resume_t]
}

#[cfg(test)]
mod tests {
    #[test]
    fn e4_strict_priority_beats_fifo_for_critical() {
        let tables = super::e4();
        let rendered = tables[0].render();
        assert!(rendered.contains("strict-priority"));
    }

    #[test]
    fn sched_policy_all_len() {
        assert_eq!(super::SchedPolicy::ALL.len(), 4);
    }
}
