//! E7/E8 — disaggregation and serverless (§IV-E2/3, Fig. 7).
//!
//! E7 claims: device-side offload cuts uplink bytes and cloud CPU by an
//! order of magnitude at a bounded freshness cost; the buffer pool hides
//! storage-layer latency, and the space-aware policy protects physical
//! pages. E8 claims: serverless elasticity absorbs the flash-sale burst
//! with pay-per-use cost far under peak provisioning, paying in cold
//! starts; TEE configurations trade security for throughput.

use mv_cloud::offload::{run as run_offload, OffloadParams};
use mv_cloud::tee::{TaskProfile, TeeConfig, TeeCostModel};
use mv_cloud::{ServerlessPool, WorkloadSpec};
use mv_common::seeded_rng;
use mv_common::table::{f2, n, pct, Table};
use mv_common::time::SimDuration;
use mv_common::Space;
use mv_storage::{BufferPool, EvictionPolicy, PageId};
use mv_workloads::marketplace::{FlashSale, MarketParams};
use rand::Rng;

/// Run E7.
pub fn e7() -> Vec<Table> {
    let mut off_t = Table::new(
        "E7a: device-side offload (1000 devices, 30 samples/s, 10 s, 500 ms windows)",
        &["config", "uplink_MB", "msgs", "cloud_cpu_s", "device_cpu_s", "freshness_ms"],
    );
    let (raw, off) = run_offload(&OffloadParams::default());
    for (name, r) in [("ship raw samples", raw), ("device aggregation", off)] {
        off_t.row(&[
            name.into(),
            f2(r.uplink_bytes as f64 / 1e6),
            n(r.messages),
            f2(r.cloud_cpu_us as f64 / 1e6),
            f2(r.device_cpu_us as f64 / 1e6),
            f2(r.freshness_ms),
        ]);
    }

    // E7b: buffer pool hit rate vs. capacity × policy. Workload: physical
    // pages are hot-revisited (sensed state), virtual pages are scanned
    // widely (walkthrough prefetch).
    let mut bp_t = Table::new(
        "E7b: buffer-pool hit rate — physical-hot / virtual-scan mix (100k accesses)",
        &["capacity_pages", "policy", "hit_rate", "physical_hit_rate"],
    );
    for &cap in &[256usize, 1024, 4096] {
        for policy in EvictionPolicy::ALL {
            let mut pool = BufferPool::new(cap, policy);
            let mut rng = seeded_rng(77);
            let mut phys_hits = 0u64;
            let mut phys_total = 0u64;
            for _ in 0..100_000 {
                let page = if rng.gen_bool(0.5) {
                    // Physical working set: 512 hot pages, zipf-ish.
                    let hot: u64 = rng.gen_range(0..512);
                    PageId::new(Space::Physical, hot * hot % 512)
                } else {
                    // Virtual scan: 50k pages touched round-robin-ish.
                    PageId::new(Space::Virtual, rng.gen_range(0..50_000))
                };
                let (hit, _) = pool.access(page);
                if page.space == Space::Physical {
                    phys_total += 1;
                    if hit {
                        phys_hits += 1;
                    }
                }
            }
            bp_t.row(&[
                n(cap as u64),
                policy.name().into(),
                pct(pool.hit_rate()),
                pct(phys_hits as f64 / phys_total as f64),
            ]);
        }
    }
    vec![off_t, bp_t]
}

/// Run E8.
pub fn e8() -> Vec<Table> {
    let sale = FlashSale::generate(&MarketParams::default());
    let requests: Vec<(mv_common::time::SimTime, SimDuration)> =
        sale.requests.iter().map(|r| (r.ts, r.service)).collect();

    let mut t = Table::new(
        "E8a: serverless vs. capped pools on the flash-sale burst (20x for 30 s)",
        &["config", "p50_ms", "p99_ms", "cold_frac", "peak_instances", "cost_vs_peak_provisioning"],
    );
    for (name, pool) in [
        (
            "serverless (unbounded, 250 ms cold start)",
            ServerlessPool { cold_start: SimDuration::from_millis(250), keep_alive: SimDuration::from_secs(30), max_instances: None },
        ),
        (
            "serverless (fast 50 ms cold start)",
            ServerlessPool { cold_start: SimDuration::from_millis(50), keep_alive: SimDuration::from_secs(30), max_instances: None },
        ),
        (
            "fixed pool sized for baseline (4)",
            ServerlessPool { cold_start: SimDuration::from_millis(250), keep_alive: SimDuration::from_secs(3600), max_instances: Some(4) },
        ),
    ] {
        let mut r = pool.run(&WorkloadSpec { requests: requests.clone() });
        t.row(&[
            name.into(),
            f2(r.latency_ms.p50()),
            f2(r.latency_ms.p99()),
            pct(r.cold_fraction()),
            n(r.peak_instances as u64),
            pct(r.cost_ratio()),
        ]);
    }

    let mut tee_t = Table::new(
        "E8b: TEE configurations (10 ms task, 30% trusted, 32 MiB working set)",
        &["config", "latency_ms", "throughput_per_sec", "overhead_vs_untrusted"],
    );
    let model = TeeCostModel::default();
    let task = TaskProfile {
        cpu: SimDuration::from_millis(10),
        trusted_fraction: 0.3,
        transitions: 50,
        working_set: 32 << 20,
    };
    let base = model.execute(&task, TeeConfig::Untrusted).as_micros() as f64;
    for cfg in TeeConfig::ALL {
        let lat = model.execute(&task, cfg);
        tee_t.row(&[
            cfg.name().into(),
            f2(lat.as_millis_f64()),
            f2(model.throughput(&task, cfg)),
            format!("{:.2}x", lat.as_micros() as f64 / base),
        ]);
    }
    vec![t, tee_t]
}

#[cfg(test)]
mod tests {
    #[test]
    fn e7_offload_rows_present() {
        let tables = super::e7();
        assert!(tables[0].render().contains("device aggregation"));
        assert_eq!(tables[1].len(), 9); // 3 capacities × 3 policies
    }
}
