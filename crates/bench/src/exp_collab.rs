//! E12/E12b — data collaboration, privacy, co-learning (§IV-B, §IV-H/I).
//!
//! E12 claims: contribution-weighted scoring separates contributors from
//! free-riders under Non-IID data; the LDP ε-vs-utility curve is the
//! privacy/utility "delicate balance". E12b claims: the Fig. 8c
//! co-learning loop converges tighter than the conventional and
//! self-interactive workflows.

use mv_collab::colearn::{run_workflow, ColearnParams, Workflow};
use mv_collab::federated::{FedParams, FederatedSim};
use mv_collab::incentive::{detect_free_riders, loo_scores, payments, shapley_scores};
use mv_collab::privacy::LdpAggregator;
use mv_common::table::{f2, f3, n, pct, Table};

/// Run E12.
pub fn e12() -> Vec<Table> {
    let sim = FederatedSim::generate(&FedParams::default());

    let mut score_t = Table::new(
        "E12a: contribution scores — 16 honest parties + 4 free-riders (Non-IID Dirichlet 0.3)",
        &["group", "mean_shapley", "mean_loo", "flagged_as_riders", "payment_share"],
    );
    let shap = shapley_scores(&sim, 40, 2);
    let loo = loo_scores(&sim);
    let flagged = detect_free_riders(&shap, 0.25);
    let pay = payments(&shap, 100.0);
    for (label, is_rider) in [("honest", false), ("free-riders", true)] {
        let idx: Vec<usize> = sim
            .parties
            .iter()
            .enumerate()
            .filter(|(_, p)| p.free_rider == is_rider)
            .map(|(i, _)| i)
            .collect();
        let m = idx.len() as f64;
        score_t.row(&[
            label.into(),
            f3(idx.iter().map(|&i| shap[i]).sum::<f64>() / m),
            f3(idx.iter().map(|&i| loo[i]).sum::<f64>() / m),
            format!("{}/{}", idx.iter().filter(|&&i| flagged[i]).count(), idx.len()),
            pct(idx.iter().map(|&i| pay[i]).sum::<f64>() / 100.0),
        ]);
    }

    let mut coal_t = Table::new(
        "E12b: coalition quality (RMSE of the federated estimate)",
        &["coalition", "rmse"],
    );
    let np = sim.party_count();
    coal_t.row(&["single party".into(), {
        let mut solo = vec![false; np];
        solo[0] = true;
        f3(sim.coalition_error(&solo))
    }]);
    coal_t.row(&["all (incl. riders)".into(), f3(sim.coalition_error(&vec![true; np]))]);
    let honest_only: Vec<bool> = sim.parties.iter().map(|p| !p.free_rider).collect();
    coal_t.row(&["honest only".into(), f3(sim.coalition_error(&honest_only))]);
    let unflagged: Vec<bool> = flagged.iter().map(|f| !f).collect();
    coal_t.row(&["score-filtered (unflagged)".into(), f3(sim.coalition_error(&unflagged))]);

    let mut ldp_t = Table::new(
        "E12c: local differential privacy — ε vs. aggregate error (2000 parties, Δ=1)",
        &["epsilon", "abs_error", "theory_std_error"],
    );
    let agg = LdpAggregator::new(1.0);
    let values: Vec<f64> = (0..2000).map(|i| (i % 10) as f64 / 10.0).collect();
    for &eps in &[0.1f64, 0.5, 1.0, 4.0, 10.0] {
        let (_, err) = agg.run_round(&values, eps, 7);
        ldp_t.row(&[f2(eps), f3(err), f3(agg.expected_std_error(values.len(), eps))]);
    }
    vec![score_t, coal_t, ldp_t]
}

/// Run E12b (Fig. 8 workflows).
pub fn e12b() -> Vec<Table> {
    let mut t = Table::new(
        "E12d: Fig. 8 learning workflows — threshold-concept error (mean over 20 seeds, 12 rounds)",
        &["workflow", "round_1_error", "final_error", "improvement"],
    );
    for wf in Workflow::ALL {
        let runs: Vec<_> = (0..20u64)
            .map(|seed| run_workflow(wf, &ColearnParams { seed, ..Default::default() }))
            .collect();
        let first = runs.iter().map(|r| r.error_per_round[0]).sum::<f64>() / 20.0;
        let last = runs.iter().map(|r| r.final_error()).sum::<f64>() / 20.0;
        t.row(&[
            wf.name().into(),
            f3(first),
            f3(last),
            pct(1.0 - last / first.max(1e-9)),
        ]);
    }
    let _ = n(0);
    vec![t]
}

#[cfg(test)]
mod tests {
    #[test]
    fn colearning_table_orders_workflows() {
        let tables = super::e12b();
        let rendered = tables[0].render();
        assert!(rendered.contains("co-learning"));
        assert!(rendered.contains("self-interactive"));
    }
}
