//! E9 — organization of data (§IV-F).
//!
//! Claim reproduced: each layout wins its own regime — unified makes
//! cross-space reads one probe but drags the other space's bytes into
//! single-space reads; separate is minimal for single-space operations
//! but doubles cross-space probes; hybrid routes per table and takes the
//! best of both on a mixed workload.

use mv_common::seeded_rng;
use mv_common::table::{f2, n, Table};
use mv_common::Space;
use mv_storage::{DataOrganization, Layout};
use rand::Rng;

fn layouts() -> Vec<Layout> {
    vec![
        Layout::Unified,
        Layout::Separate,
        Layout::Hybrid { unified_tables: vec!["inventory".into()] },
    ]
}

/// Run E9.
pub fn e9() -> Vec<Table> {
    // Two tables: "inventory" rows are read cross-space (the co-space
    // view), "telemetry" rows are read single-space (physical dashboards).
    // Physical telemetry payloads are small; virtual twins are bulky.
    let rows = 2_000u64;
    let mut t = Table::new(
        "E9: data organization across spaces (2k rows/table; 10k single-space + 10k cross-space reads)",
        &["layout", "probes", "bytes_read", "probes_single", "probes_cross"],
    );
    for layout in layouts() {
        let mut org = DataOrganization::new(layout.clone());
        for i in 0..rows {
            org.put(Space::Physical, "inventory", &format!("sku{i}"), &[1u8; 16]);
            org.put(Space::Virtual, "inventory", &format!("sku{i}"), &[2u8; 64]);
            org.put(Space::Physical, "telemetry", &format!("s{i}"), &[3u8; 16]);
            org.put(Space::Virtual, "telemetry", &format!("s{i}"), &[4u8; 512]);
        }
        // Reset accounting after the load phase.
        org.stats = mv_common::metrics::Counters::new();
        let mut rng = seeded_rng(9);
        let before_single = org.stats.get("probes");
        for _ in 0..10_000 {
            let k = format!("s{}", rng.gen_range(0..rows));
            org.get_single(Space::Physical, "telemetry", &k);
        }
        let probes_single = org.stats.get("probes") - before_single;
        let before_cross = org.stats.get("probes");
        for _ in 0..10_000 {
            let k = format!("sku{}", rng.gen_range(0..rows));
            org.get_cross("inventory", &k);
        }
        let probes_cross = org.stats.get("probes") - before_cross;
        t.row(&[
            layout.name().into(),
            n(org.stats.get("probes")),
            n(org.stats.get("bytes_read")),
            n(probes_single),
            n(probes_cross),
        ]);
    }

    // E9b: space-aware caching over the organized store (paper: "data
    // from the real space may be given higher priority").
    let mut cache_t = Table::new(
        "E9b: eviction policy vs. physical-read hit rate (pool = 512 pages)",
        &["policy", "overall_hit_rate", "physical_hit_rate"],
    );
    use mv_storage::{BufferPool, EvictionPolicy, PageId};
    for policy in EvictionPolicy::ALL {
        let mut pool = BufferPool::new(512, policy);
        let mut rng = seeded_rng(10);
        let (mut ph, mut pt) = (0u64, 0u64);
        for _ in 0..50_000 {
            let page = if rng.gen_bool(0.4) {
                PageId::new(Space::Physical, rng.gen_range(0..600))
            } else {
                PageId::new(Space::Virtual, rng.gen_range(0..20_000))
            };
            let (hit, _) = pool.access(page);
            if page.space == Space::Physical {
                pt += 1;
                ph += hit as u64;
            }
        }
        cache_t.row(&[
            policy.name().into(),
            f2(pool.hit_rate()),
            f2(ph as f64 / pt as f64),
        ]);
    }
    vec![t, cache_t]
}

#[cfg(test)]
mod tests {
    #[test]
    fn separate_wins_single_space_unified_wins_cross_space() {
        let tables = super::e9();
        let rendered = tables[0].render();
        // Extract rows: layout | probes | bytes | single | cross.
        let rows: Vec<Vec<String>> = rendered
            .lines()
            .filter(|l| l.starts_with('|') && !l.contains("layout"))
            .map(|l| l.split('|').map(|c| c.trim().to_string()).collect())
            .collect();
        let find = |name: &str| rows.iter().find(|r| r[1] == name).expect("row").clone();
        let unified = find("unified");
        let separate = find("separate");
        let cross = |r: &[String]| r[5].parse::<u64>().expect("cross probes");
        let single_bytes = |r: &[String]| r[3].parse::<u64>().expect("bytes");
        assert!(cross(&unified) < cross(&separate));
        assert!(single_bytes(&separate) < single_bytes(&unified));
    }
}
