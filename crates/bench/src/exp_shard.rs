//! E1d — sharded ingest scaling (§IV-C at "data deluge" rates).
//!
//! Claim reproduced: partitioning the co-space engine by entity
//! ownership scales the position-update path with the shard count,
//! because shards share nothing on the hot path (own entity map, own
//! truth/twin indexes, own event buffer) and the merge back to one
//! timeline is deterministic bookkeeping, not synchronization.
//!
//! Metrics: the sweep reports two throughput numbers per configuration.
//! `wall` is the threaded wall clock on *this* host — meaningful only
//! when the host grants the process that many cores (the archived run's
//! container pins a single core, so threaded wall stays flat). `crit`
//! is the critical-path model: shard queues are applied sequentially,
//! each shard's apply time measured in isolation, and a batch is
//! charged its *slowest shard* — the wall clock an adequately-cored
//! host would see. This is the same simulation substitution DESIGN.md
//! §2 applies to networks and storage, applied to cores.

use mv_common::geom::{Aabb, Point};
use mv_common::table::{f2, n, Table};
use mv_common::time::SimTime;
use mv_core::{EntityKind, ShardedMetaverse, SyncPolicy, WriteOp};
use mv_workloads::movement::MoverField;

const WORLD: f64 = 5_000.0;
const ENTITIES: usize = 2_000;
const STEPS: u64 = 50;

fn mover_field(entities: usize) -> MoverField {
    MoverField::new(
        Aabb::new(Point::ORIGIN, Point::new(WORLD, WORLD)),
        entities,
        (0.2, 3.0),
        42,
    )
}

fn build_world(shards: usize, entities: usize) -> ShardedMetaverse {
    let mut mv = ShardedMetaverse::new(SyncPolicy { position_bound: 1.0, attr_bound: 0.0 }, 100.0, shards);
    let field = mover_field(entities);
    let specs: Vec<(String, EntityKind, Point)> = field
        .positions()
        .into_iter()
        .enumerate()
        .map(|(i, p)| (format!("s{i}"), EntityKind::Person, p))
        .collect();
    mv.spawn_batch(&specs, SimTime::ZERO);
    mv
}

/// Drive `steps` mover ticks through `mv` in `batch`-sized write
/// batches. Returns `(threaded wall s, Σ per-batch max shard wall s)`;
/// the second term is only meaningful when `mv` is in serial-timed
/// apply mode.
fn run_batches(mv: &mut ShardedMetaverse, entities: usize, steps: u64, batch: usize) -> (f64, f64) {
    let mut field = mover_field(entities);
    let ids: Vec<_> = (0..entities as u64).map(mv_common::id::EntityId::new).collect();
    let mut critical_path = 0.0;
    let start = std::time::Instant::now();
    for step in 1..=steps {
        let ts = SimTime::from_secs(step);
        let moves: Vec<WriteOp> = field
            .step(1.0)
            .into_iter()
            .map(|(i, p)| WriteOp::Position { id: ids[i], position: p, ts })
            .collect();
        for chunk in moves.chunks(batch) {
            for r in mv.apply_batch(chunk) {
                r.expect("all entities live");
            }
            critical_path += mv
                .last_shard_walls()
                .iter()
                .cloned()
                .fold(0.0, f64::max);
        }
    }
    (start.elapsed().as_secs_f64(), critical_path)
}

/// One sweep point: returns `(threaded upd/s, critical-path upd/s)`.
fn measure(shards: usize, entities: usize, steps: u64, batch: usize) -> (f64, f64, f64, f64) {
    let updates = (entities as u64 * steps) as f64;
    // Threaded run: real wall clock with one worker thread per shard.
    let mut threaded = build_world(shards, entities);
    let (wall_s, _) = run_batches(&mut threaded, entities, steps, batch);
    // Serial-timed run: per-shard costs measured without the host's
    // scheduler interleaving threads on oversubscribed cores.
    let mut timed = build_world(shards, entities);
    timed.set_parallel_apply(false);
    let (_, crit_s) = run_batches(&mut timed, entities, steps, batch);
    (wall_s * 1e3, updates / wall_s, crit_s * 1e3, updates / crit_s)
}

/// Run E1d: shard count × batch size sweep over the E1a mover workload.
pub fn e1d() -> Vec<Table> {
    let mut table = Table::new(
        "E1d: sharded ingest — position-update throughput vs. shards × batch size \
         (2k entities, 50 steps, bound = 1 m; crit = per-shard critical-path model)",
        &[
            "shards",
            "batch",
            "updates",
            "wall_ms",
            "upd_per_sec_wall",
            "crit_ms",
            "upd_per_sec_crit",
            "speedup_crit",
        ],
    );
    for &batch in &[64usize, 512, 4096] {
        let mut base_crit = 0.0;
        for &shards in &[1usize, 2, 4, 8] {
            let (wall_ms, wall_tput, crit_ms, crit_tput) = measure(shards, ENTITIES, STEPS, batch);
            if shards == 1 {
                base_crit = crit_tput;
            }
            table.row(&[
                n(shards as u64),
                n(batch as u64),
                n(ENTITIES as u64 * STEPS),
                f2(wall_ms),
                f2(wall_tput),
                f2(crit_ms),
                f2(crit_tput),
                f2(crit_tput / base_crit),
            ]);
        }
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_shards_at_least_double_critical_path_throughput() {
        // The PR's acceptance criterion, at a CI-sized workload. Large
        // batches keep the per-batch shard-occupancy imbalance small
        // (binomial, ~±3σ of batch/shards). The 1- and 4-shard runs are
        // measured back-to-back within each round so CPU-state drift
        // (frequency, cache, a descheduled slice on a busy CI core)
        // cancels out of the ratio; best-of-5 rounds then discards the
        // rounds the machine disturbed.
        let entities = 2_000;
        let steps = 20;
        let batch = 2_048;
        let mut best = (0.0f64, 0.0f64, 0.0f64);
        for _ in 0..5 {
            let one = measure(1, entities, steps, batch).3;
            let four = measure(4, entities, steps, batch).3;
            let speedup = four / one;
            if speedup > best.0 {
                best = (speedup, one, four);
            }
            if speedup >= 2.0 {
                break;
            }
        }
        let (speedup, one, four) = best;
        assert!(
            speedup >= 2.0,
            "4-shard critical-path speedup {speedup:.2}× below 2×  \
             (1 shard: {one:.0} upd/s, 4 shards: {four:.0} upd/s)"
        );
    }

    #[test]
    fn sharded_run_preserves_engine_invariants() {
        let mut mv = build_world(4, 500);
        let (_, crit) = run_batches(&mut mv, 500, 5, 256);
        assert!(crit > 0.0);
        assert_eq!(mv.live_count(), 500);
        let stats = mv.stats();
        assert_eq!(stats.get("sync_msgs") + stats.get("suppressed_syncs"), 500 * 5);
        // Divergence stays under the 1 m coherency bound.
        assert!(mv.max_divergence() <= 1.0 + 1e-9, "{}", mv.max_divergence());
    }
}
