//! E15 — pub/sub matching and overlay covering (§IV-E).
//!
//! Claims reproduced: inverted-index matching evaluates a fraction of
//! the subscription base per event; broker-tree covering forwards events
//! only toward interested subtrees.

use mv_common::geom::{Aabb, Point};
use mv_common::id::ClientId;
use mv_common::seeded_rng;
use mv_common::table::{f2, n, pct, speedup, Table};
use mv_common::time::SimTime;
use mv_pubsub::{BrokerTree, IndexedMatcher, LinearMatcher, Matcher, Publication, Subscription};
use rand::Rng;

const TERMS: [&str; 12] = [
    "sale", "pastry", "game", "concert", "troop", "vr", "nft", "museum", "quest", "raid",
    "clinic", "transit",
];

fn random_sub(rng: &mut rand::rngs::StdRng, i: u64) -> Subscription {
    // Realistic mix: every subscription is constrained by a term, a
    // region, or both (an unconstrained subscription matches every event
    // and defeats any index by definition).
    let mut sub = Subscription::new(ClientId::new(i));
    let with_term = rng.gen_bool(0.7);
    if with_term {
        sub = sub.with_term(TERMS[rng.gen_range(0..TERMS.len())]);
    }
    if !with_term || rng.gen_bool(0.3) {
        let c = Point::new(rng.gen_range(0.0..2_000.0), rng.gen_range(0.0..2_000.0));
        sub = sub.in_region(Aabb::centered(c, rng.gen_range(10.0..60.0)));
    }
    sub
}

fn random_pub(rng: &mut rand::rngs::StdRng) -> Publication {
    let mut p = Publication::new(SimTime::ZERO)
        .at(Point::new(rng.gen_range(0.0..2_000.0), rng.gen_range(0.0..2_000.0)));
    for _ in 0..rng.gen_range(1..3) {
        p = p.term(TERMS[rng.gen_range(0..TERMS.len())]);
    }
    p
}

/// Run E15.
pub fn e15() -> Vec<Table> {
    let mut match_t = Table::new(
        "E15a: matching throughput — linear scan vs. indexed (1000 events)",
        &["subscriptions", "linear_us_per_event", "indexed_us_per_event", "speedup", "evaluated_frac"],
    );
    for &subs in &[10_000usize, 50_000, 100_000] {
        let mut rng = seeded_rng(15);
        let mut lin = LinearMatcher::new();
        let mut idx = IndexedMatcher::new();
        for i in 0..subs as u64 {
            let s = random_sub(&mut rng, i);
            lin.add(s.clone());
            idx.add(s);
        }
        let events: Vec<Publication> = (0..1_000).map(|_| random_pub(&mut rng)).collect();
        let t0 = std::time::Instant::now();
        let mut lin_hits = 0usize;
        for e in &events {
            lin_hits += lin.match_pub(e).len();
        }
        let lin_us = t0.elapsed().as_micros() as f64 / events.len() as f64;
        let t1 = std::time::Instant::now();
        let mut idx_hits = 0usize;
        for e in &events {
            idx_hits += idx.match_pub(e).len();
        }
        let idx_us = t1.elapsed().as_micros() as f64 / events.len() as f64;
        assert_eq!(lin_hits, idx_hits, "matchers must agree");
        let evaluated = idx.evaluations.get() as f64 / (subs as f64 * events.len() as f64);
        match_t.row(&[
            n(subs as u64),
            f2(lin_us),
            f2(idx_us),
            speedup(lin_us / idx_us.max(1e-9)),
            pct(evaluated),
        ]);
    }

    let mut broker_t = Table::new(
        "E15b: broker-tree covering vs. flooding (depth 5, fanout 3; 1000 events)",
        &["events_matching", "covering_forwards", "flood_forwards", "forwards_saved"],
    );
    {
        let mut rng = seeded_rng(16);
        let mut tree = BrokerTree::new(5, 3);
        let leaves = tree.leaves();
        for (i, &leaf) in leaves.iter().enumerate() {
            // Each leaf broker's clients focus on 2 terms.
            for j in 0..10u64 {
                let term = TERMS[(i * 2 + j as usize % 2) % TERMS.len()];
                tree.subscribe(leaf, Subscription::new(ClientId::new(j)).with_term(term));
            }
        }
        let mut total_matches = 0usize;
        for _ in 0..1_000 {
            let p = random_pub(&mut rng);
            total_matches += tree.publish(&p);
        }
        let covering = tree.stats.get("forwards");
        for _ in 0..1_000 {
            let p = random_pub(&mut rng);
            tree.publish_flood(&p);
        }
        let flood = tree.stats.get("flood_forwards");
        broker_t.row(&[
            n(total_matches as u64),
            n(covering),
            n(flood),
            pct(1.0 - covering as f64 / flood as f64),
        ]);
    }
    vec![match_t, broker_t, e15c_chord()]
}

/// E15c: structured P2P search (§IV-E "P2P search methods may be
/// applicable") — Chord-style finger routing vs. ring walking.
fn e15c_chord() -> Table {
    use mv_net::ChordRing;
    let mut t = Table::new(
        "E15c: P2P key lookup — Chord finger routing vs. ring walk (500 lookups/row)",
        &["peers", "chord_mean_hops", "chord_max_hops", "ring_walk_mean_hops"],
    );
    for &peers in &[128usize, 1_024, 8_192] {
        let ring = ChordRing::with_peers(peers);
        let mut rng = seeded_rng(44);
        let mut chord_total = 0u64;
        let mut chord_max = 0u32;
        let mut naive_total = 0u64;
        for _ in 0..500 {
            let key: u64 = rng.gen();
            let start = rng.gen_range(0..peers);
            let fast = ring.lookup(start, key);
            let slow = ring.lookup_naive(start, key);
            assert_eq!(fast.owner, slow.owner);
            chord_total += fast.hops as u64;
            chord_max = chord_max.max(fast.hops);
            naive_total += slow.hops as u64;
        }
        t.row(&[
            n(peers as u64),
            f2(chord_total as f64 / 500.0),
            n(chord_max as u64),
            f2(naive_total as f64 / 500.0),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    #[test]
    fn matchers_agree_is_enforced_inside() {
        use super::Matcher;
        // e15 itself asserts agreement; smoke a small version here.
        let mut rng = mv_common::seeded_rng(1);
        let mut lin = super::LinearMatcher::new();
        let mut idx = super::IndexedMatcher::new();
        for i in 0..200 {
            let s = super::random_sub(&mut rng, i);
            lin.add(s.clone());
            idx.add(s);
        }
        for _ in 0..50 {
            let p = super::random_pub(&mut rng);
            assert_eq!(lin.match_pub(&p), idx.match_pub(&p));
        }
    }
}
