#![forbid(unsafe_code)]
//! `mv-bench` — the experiment harness.
//!
//! One function per experiment in DESIGN.md §5; each returns the
//! [`mv_common::table::Table`]s recorded in EXPERIMENTS.md. The
//! `experiments` binary prints them (`cargo run --release -p mv-bench
//! --bin experiments -- e3` or `-- all`); integration tests under
//! `/tests` assert the *shape* claims (who wins, where crossovers fall)
//! so a regression that flips a conclusion fails CI.
//!
//! Criterion micro-benches live in `benches/` for the operations where
//! wall-clock per-op timing matters (index updates, proof generation,
//! match throughput).

pub mod exp_assets;
pub mod exp_cloud;
pub mod exp_collab;
pub mod exp_dissem;
pub mod exp_durable;
pub mod exp_fault;
pub mod exp_fusion;
pub mod exp_health;
pub mod exp_ledger;
pub mod exp_obs;
pub mod exp_pubsub;
pub mod exp_query;
pub mod exp_raft;
pub mod exp_shard;
pub mod exp_spatial;
pub mod exp_storage;
pub mod exp_stream;
pub mod exp_sync;
pub mod exp_txn;
pub mod macro_bench;

use mv_common::table::Table;

/// All experiment ids, in DESIGN.md order.
pub const ALL_IDS: [&str; 24] = [
    "e1", "e1d", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "e12", "e12b",
    "e13", "e14", "e15", "e16", "e17", "e18", "e19", "e20", "e21", "e22",
];

/// Run one experiment by id.
///
/// # Panics
/// Panics on an unknown id (the binary validates first).
pub fn run(id: &str) -> Vec<Table> {
    match id {
        "e1" => exp_sync::e1(),
        "e1d" => exp_shard::e1d(),
        "e2" => exp_fusion::e2(),
        "e3" => exp_dissem::e3(),
        "e4" => exp_dissem::e4(),
        "e5" => exp_ledger::e5(),
        "e6" => exp_txn::e6(),
        "e7" => exp_cloud::e7(),
        "e8" => exp_cloud::e8(),
        "e9" => exp_storage::e9(),
        "e10" => exp_spatial::e10(),
        "e11" => exp_query::e11(),
        "e12" => exp_collab::e12(),
        "e12b" => exp_collab::e12b(),
        "e13" => exp_assets::e13(),
        "e14" => exp_stream::e14(),
        "e15" => exp_pubsub::e15(),
        "e16" => exp_fault::e16(),
        "e17" => exp_durable::e17(),
        "e18" => exp_obs::e18(),
        "e19" => exp_txn::e19(),
        "e20" => exp_raft::e20(),
        "e21" => macro_bench::e21(),
        "e22" => exp_health::e22(),
        other => panic!("unknown experiment id {other}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_id_is_runnable() {
        // Smoke only the cheapest experiments here; the expensive ones are
        // covered by the integration tests and the binary itself.
        for id in ["e4", "e9", "e12b"] {
            let tables = run(id);
            assert!(!tables.is_empty(), "{id} produced no tables");
            for t in &tables {
                assert!(!t.is_empty(), "{id} produced an empty table");
            }
        }
    }

    #[test]
    #[should_panic(expected = "unknown experiment")]
    fn unknown_id_panics() {
        run("e99");
    }
}
