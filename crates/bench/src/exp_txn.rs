//! E6 — decentralized transactions (§IV-E1), and E19 — the *real*
//! cross-shard MVCC commit path over the durable engine.
//!
//! E6 claims reproduced: inter-DC latency dominates commit cost; the
//! single-round protocol (Carousel-style, \[86\]) halves latency vs. 2PC
//! and, because locks are held for a shorter window, aborts less under
//! contention.
//!
//! E19 measures the engine path that `tests/txn_differential.rs`
//! proves correct: snapshot-begin / serializable-validate / 2PC over
//! the group-commit WAL. Cross-shard commits pay two WAL syncs
//! (prepare barrier + decision); single-shard commits take the
//! one-sync fast path — the same 2:1 round structure E6's
//! `DistributedSim` models at WAN scale.

use mv_common::hash::fx_hash_one;
use mv_common::sample::Zipf;
use mv_common::table::{f2, n, pct, Table};
use mv_common::time::SimDuration;
use mv_txn::{CommitProtocol, DistributedSim, SimParams};

/// Run E6.
pub fn e6() -> Vec<Table> {
    let mut lat_t = Table::new(
        "E6a: commit latency vs. inter-DC RTT (3 DCs, 3 keys/txn, low contention)",
        &["one_way_ms", "protocol", "p50_ms", "p99_ms", "abort_rate"],
    );
    for &ms in &[5u64, 20, 40, 120] {
        for proto in CommitProtocol::ALL {
            let sim = DistributedSim::new(SimParams {
                inter_dc_latency: SimDuration::from_millis(ms),
                zipf_alpha: 0.2,
                keys: 100_000,
                mean_interarrival_us: 5_000.0,
                seed: 6,
                ..Default::default()
            });
            let mut r = sim.run(proto);
            lat_t.row(&[
                n(ms),
                proto.name().into(),
                f2(r.latency_ms.p50()),
                f2(r.latency_ms.p99()),
                pct(r.abort_rate()),
            ]);
        }
    }

    let mut cont_t = Table::new(
        "E6b: contention interaction (40 ms one-way, zipf sweep over 2k keys)",
        &["zipf_alpha", "protocol", "committed", "aborted", "abort_rate"],
    );
    for &alpha in &[0.4f64, 0.8, 1.2] {
        for proto in CommitProtocol::ALL {
            let sim = DistributedSim::new(SimParams {
                zipf_alpha: alpha,
                keys: 2_000,
                mean_interarrival_us: 2_000.0,
                seed: 6,
                ..Default::default()
            });
            let r = sim.run(proto);
            cont_t.row(&[
                f2(alpha),
                proto.name().into(),
                n(r.committed),
                n(r.aborted),
                pct(r.abort_rate()),
            ]);
        }
    }
    vec![lat_t, cont_t, e6c_partition()]
}

/// E6c: network partitions (§IV-E1 "due to the network partition…"):
/// availability of single-DC vs. cross-DC transactions while one DC is
/// cut off.
fn e6c_partition() -> Table {
    use mv_common::table::pct;
    use mv_common::time::SimTime;
    use mv_net::topology::MultiDcTopology;
    use rand::Rng;
    let mut t = Table::new(
        "E6c: availability under a partition (3 DCs, DC2 severed; 1000 txns, keys uniform over DCs)",
        &["keys_per_txn", "txns_unaffected", "txns_blocked", "availability"],
    );
    for &keys_per_txn in &[1usize, 2, 3] {
        let mut topo = MultiDcTopology::build(3, 0, mv_common::time::SimDuration::from_millis(40));
        // DC 2 is partitioned away.
        topo.net.sever(0, 2);
        topo.net.sever(1, 2);
        let mut rng = mv_common::seeded_rng(66);
        let mut ok = 0u64;
        let mut blocked = 0u64;
        for _ in 0..1_000 {
            let client_dc = rng.gen_range(0..3usize);
            let participant_dcs: Vec<usize> =
                (0..keys_per_txn).map(|_| rng.gen_range(0..3)).collect();
            // A txn can commit iff the client can reach every participant.
            let reachable = participant_dcs.iter().all(|&p| {
                p == client_dc
                    || topo
                        .net
                        .transfer(
                            topo.coordinators[client_dc],
                            topo.coordinators[p],
                            64,
                            SimTime::ZERO,
                            &mut rng,
                        )
                        .is_ok()
            });
            if reachable {
                ok += 1;
            } else {
                blocked += 1;
            }
        }
        t.row(&[
            n(keys_per_txn as u64),
            n(ok),
            n(blocked),
            pct(ok as f64 / 1000.0),
        ]);
    }
    t
}

/// One measured E19 cell.
#[derive(Debug, Clone, Copy)]
pub struct E19Cell {
    /// Transactions attempted.
    pub offered: u64,
    /// Transactions that validated and committed.
    pub committed: u64,
    /// First-committer-wins / serializable-read aborts.
    pub aborted: u64,
    /// Fraction of commits whose write set spanned >1 KV shard.
    pub cross_share: f64,
    /// Modelled mean commit latency (µs): one WAL sync for
    /// single-shard commits, two for cross-shard, at
    /// [`crate::exp_durable::SYNC_LATENCY_US`] each.
    pub mean_commit_us: f64,
    /// Engine bytes ⊕ MVCC chain digest — the determinism witness.
    pub digest: u64,
}

/// Run one E19 cell: `groups` rounds of `GROUP` interleaved zipf(0.9)
/// gold transfers against a `DurableMetaverse` with `shards` shards
/// and `pool` hot entities. Every transaction in a round begins on the
/// same snapshot before any of them commits, so overlapping write sets
/// conflict and serializable read validation gets exercised — the
/// abort rate is a real contention measurement, not a model.
pub fn e19_cell(shards: usize, pool: usize, groups: usize, seed: u64) -> E19Cell {
    use mv_common::geom::Point;
    use mv_common::time::SimTime;
    use mv_core::{DurableMetaverse, EntityKind};
    use rand::Rng;
    const GROUP: usize = 8;

    let mut dm = DurableMetaverse::new(
        shards,
        shards,
        mv_storage::KvConfig::default(),
        // Explicit-sync-only WAL: every sync E19 charges for is one the
        // commit path itself issued.
        mv_storage::GroupCommitPolicy::by_records(1_000_000),
    );
    let mut now_ms = 1u64;
    let ids: Vec<_> = (0..pool)
        .map(|i| {
            dm.spawn(
                format!("p{i}"),
                EntityKind::Avatar,
                Point::new(i as f64, 0.0),
                SimTime::from_millis(now_ms),
            )
        })
        .collect();
    dm.commit(SimTime::from_millis(now_ms));
    now_ms += 1;
    // Seed the gold transactionally so every balance lives in a version
    // chain from the start.
    let mut init = dm.txn(SimTime::from_millis(now_ms));
    for &id in &ids {
        init.write_attr(id, "gold", 1_000.0, SimTime::from_millis(now_ms));
    }
    dm.commit_txn(init, SimTime::from_millis(now_ms))
        .expect("seed txn runs alone");
    let base_single = dm.txn_stats().get("single_shard_commits");
    let base_cross = dm.txn_stats().get("cross_shard_commits");

    let zipf = Zipf::new(pool, 0.9);
    let mut rng = mv_common::seeded_rng(seed);
    let (mut committed, mut aborted) = (0u64, 0u64);
    for _ in 0..groups {
        now_ms += 1;
        let now = SimTime::from_millis(now_ms);
        // Begin the whole group on one snapshot generation...
        let mut batch = Vec::new();
        for _ in 0..GROUP {
            let mut txn = dm.txn(now);
            let from = ids[zipf.sample(&mut rng) % pool];
            let to = ids[zipf.sample(&mut rng) % pool];
            let amt = 1.0 + rng.gen_range(0..8) as f64;
            let a = dm.txn_read_attr(&mut txn, from, "gold").unwrap_or(0.0);
            if from == to {
                txn.write_attr(from, "gold", a, now);
            } else {
                let b = dm.txn_read_attr(&mut txn, to, "gold").unwrap_or(0.0);
                txn.write_attr(from, "gold", a - amt, now);
                txn.write_attr(to, "gold", b + amt, now);
            }
            batch.push(txn);
        }
        // ...then race them through commit: first committer wins.
        for txn in batch {
            match dm.commit_txn(txn, now) {
                Ok(_) => committed += 1,
                Err(_) => aborted += 1,
            }
        }
    }

    let single = dm.txn_stats().get("single_shard_commits") - base_single;
    let cross = dm.txn_stats().get("cross_shard_commits") - base_cross;
    let done = (single + cross).max(1);
    E19Cell {
        offered: (groups * GROUP) as u64,
        committed,
        aborted,
        cross_share: cross as f64 / done as f64,
        mean_commit_us: (single as f64 + 2.0 * cross as f64)
            * crate::exp_durable::SYNC_LATENCY_US
            / done as f64,
        digest: fx_hash_one(&dm.state_encoding()) ^ dm.txn_digest(),
    }
}

/// Run E19.
pub fn e19() -> Vec<Table> {
    let mut t = Table::new(
        "E19: durable MVCC commit — abort rate and modelled latency vs. contention × shard count \
         (zipf 0.9, groups of 8 same-snapshot txns, sync = 20 µs)",
        &[
            "shards",
            "keys",
            "offered",
            "committed",
            "aborted",
            "abort_rate",
            "cross_shard",
            "mean_commit_us",
            "digest",
        ],
    );
    for &shards in &[1usize, 2, 4, 8] {
        for &pool in &[8usize, 64, 512] {
            let c = e19_cell(shards, pool, 250, 19);
            t.row(&[
                n(shards as u64),
                n(pool as u64),
                n(c.offered),
                n(c.committed),
                n(c.aborted),
                pct(c.aborted as f64 / c.offered as f64),
                pct(c.cross_share),
                f2(c.mean_commit_us),
                format!("{:016x}", c.digest),
            ]);
        }
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    #[test]
    fn tables_cover_both_protocols() {
        let tables = super::e6();
        let rendered = tables[0].render();
        assert!(rendered.contains("2pc") && rendered.contains("single-round"));
    }

    #[test]
    fn e19_is_deterministic_across_runs() {
        let a = super::e19_cell(4, 64, 40, 19);
        let b = super::e19_cell(4, 64, 40, 19);
        assert_eq!(a.digest, b.digest, "same seed, same bytes");
        assert_eq!((a.committed, a.aborted), (b.committed, b.aborted));
        assert!(a.committed + a.aborted == a.offered);
        assert!(a.aborted > 0, "same-snapshot groups must collide sometimes");
    }

    #[test]
    fn e19_contention_and_sharding_move_the_right_way() {
        // Hotter pool → more aborts.
        let hot = super::e19_cell(4, 8, 60, 7);
        let cold = super::e19_cell(4, 512, 60, 7);
        assert!(
            hot.aborted > cold.aborted,
            "8-key pool ({}) must abort more than 512-key pool ({})",
            hot.aborted,
            cold.aborted
        );
        // One shard → everything is a fast-path commit at 1 sync.
        let one = super::e19_cell(1, 64, 40, 7);
        assert!(one.cross_share == 0.0);
        assert!((one.mean_commit_us - crate::exp_durable::SYNC_LATENCY_US).abs() < 1e-9);
        // More shards → more cross-shard commits → pricier mean commit.
        let many = super::e19_cell(8, 64, 40, 7);
        assert!(many.cross_share > 0.5, "8 shards: most 2-key txns span shards");
        assert!(many.mean_commit_us > one.mean_commit_us);
    }
}
