//! E6 — decentralized transactions (§IV-E1).
//!
//! Claims reproduced: inter-DC latency dominates commit cost; the
//! single-round protocol (Carousel-style, \[86\]) halves latency vs. 2PC
//! and, because locks are held for a shorter window, aborts less under
//! contention.

use mv_common::table::{f2, n, pct, Table};
use mv_common::time::SimDuration;
use mv_txn::{CommitProtocol, DistributedSim, SimParams};

/// Run E6.
pub fn e6() -> Vec<Table> {
    let mut lat_t = Table::new(
        "E6a: commit latency vs. inter-DC RTT (3 DCs, 3 keys/txn, low contention)",
        &["one_way_ms", "protocol", "p50_ms", "p99_ms", "abort_rate"],
    );
    for &ms in &[5u64, 20, 40, 120] {
        for proto in CommitProtocol::ALL {
            let sim = DistributedSim::new(SimParams {
                inter_dc_latency: SimDuration::from_millis(ms),
                zipf_alpha: 0.2,
                keys: 100_000,
                mean_interarrival_us: 5_000.0,
                seed: 6,
                ..Default::default()
            });
            let mut r = sim.run(proto);
            lat_t.row(&[
                n(ms),
                proto.name().into(),
                f2(r.latency_ms.p50()),
                f2(r.latency_ms.p99()),
                pct(r.abort_rate()),
            ]);
        }
    }

    let mut cont_t = Table::new(
        "E6b: contention interaction (40 ms one-way, zipf sweep over 2k keys)",
        &["zipf_alpha", "protocol", "committed", "aborted", "abort_rate"],
    );
    for &alpha in &[0.4f64, 0.8, 1.2] {
        for proto in CommitProtocol::ALL {
            let sim = DistributedSim::new(SimParams {
                zipf_alpha: alpha,
                keys: 2_000,
                mean_interarrival_us: 2_000.0,
                seed: 6,
                ..Default::default()
            });
            let r = sim.run(proto);
            cont_t.row(&[
                f2(alpha),
                proto.name().into(),
                n(r.committed),
                n(r.aborted),
                pct(r.abort_rate()),
            ]);
        }
    }
    vec![lat_t, cont_t, e6c_partition()]
}

/// E6c: network partitions (§IV-E1 "due to the network partition…"):
/// availability of single-DC vs. cross-DC transactions while one DC is
/// cut off.
fn e6c_partition() -> Table {
    use mv_common::table::pct;
    use mv_common::time::SimTime;
    use mv_net::topology::MultiDcTopology;
    use rand::Rng;
    let mut t = Table::new(
        "E6c: availability under a partition (3 DCs, DC2 severed; 1000 txns, keys uniform over DCs)",
        &["keys_per_txn", "txns_unaffected", "txns_blocked", "availability"],
    );
    for &keys_per_txn in &[1usize, 2, 3] {
        let mut topo = MultiDcTopology::build(3, 0, mv_common::time::SimDuration::from_millis(40));
        // DC 2 is partitioned away.
        topo.net.sever(0, 2);
        topo.net.sever(1, 2);
        let mut rng = mv_common::seeded_rng(66);
        let mut ok = 0u64;
        let mut blocked = 0u64;
        for _ in 0..1_000 {
            let client_dc = rng.gen_range(0..3usize);
            let participant_dcs: Vec<usize> =
                (0..keys_per_txn).map(|_| rng.gen_range(0..3)).collect();
            // A txn can commit iff the client can reach every participant.
            let reachable = participant_dcs.iter().all(|&p| {
                p == client_dc
                    || topo
                        .net
                        .transfer(
                            topo.coordinators[client_dc],
                            topo.coordinators[p],
                            64,
                            SimTime::ZERO,
                            &mut rng,
                        )
                        .is_ok()
            });
            if reachable {
                ok += 1;
            } else {
                blocked += 1;
            }
        }
        t.row(&[
            n(keys_per_txn as u64),
            n(ok),
            n(blocked),
            pct(ok as f64 / 1000.0),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    #[test]
    fn tables_cover_both_protocols() {
        let tables = super::e6();
        let rendered = tables[0].render();
        assert!(rendered.contains("2pc") && rendered.contains("single-round"));
    }
}
