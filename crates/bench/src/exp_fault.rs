//! E16 — fault injection and reliable delivery (§IV-C "disruptive
//! networks").
//!
//! A server pushes round-robin object updates to a client replica over
//! the reliable transport while a [`FaultPlan`] partitions the link.
//! Sweeping loss × partition duration measures the two quantities the
//! robustness story turns on: how far the replica diverges *during* the
//! fault (bounded by update rate × outage, not by luck) and how long
//! after the heal the transport's retransmissions need to reconverge the
//! replica to *exact* equality. Every cell is a pure function of its
//! seed — the determinism table runs one cell twice and compares the
//! full event-log hash.

use mv_common::hash::fx_hash_one;
use mv_common::id::{ClientId, NodeId, ObjectId};
use mv_common::seeded_rng;
use mv_common::table::{f2, n, Table};
use mv_common::time::{SimDuration, SimTime};
use mv_dissem::sched::Priority;
use mv_dissem::{PushServer, Replica};
use mv_net::{FaultPlan, FaultTarget, LinkSpec, Network, RetryPolicy, Sim};
use std::collections::BTreeMap;

const SERVER: NodeId = NodeId::new(0);
const CLIENT_NODE: NodeId = NodeId::new(1);
const CLIENT: ClientId = ClientId::new(1);
const OBJECTS: u64 = 8;
const TICK_MS: u64 = 10;
/// Partition opens here; updates flow until the heal.
const PARTITION_AT_MS: u64 = 1_000;
/// Convergence budget after the heal.
const TAIL_MS: u64 = 5_000;

struct World {
    net: Network,
    rng: rand::rngs::StdRng,
    ps: PushServer,
    replica: Replica,
    truth: BTreeMap<u64, f64>,
    tick: u64,
    heal_ms: u64,
    max_div_during_fault: f64,
    /// First post-heal millisecond at which the replica exactly equals
    /// the truth (and updates have stopped).
    reconverged_at_ms: Option<u64>,
    log: Vec<String>,
}

impl FaultTarget for World {
    fn fault_network(&mut self) -> &mut Network {
        &mut self.net
    }
}

impl World {
    fn new(seed: u64, loss: f64) -> Self {
        let mut net = Network::new();
        net.add_node(SERVER, "server");
        net.add_node(CLIENT_NODE, "client");
        net.add_link_bidi(
            SERVER,
            CLIENT_NODE,
            LinkSpec::new(SimDuration::from_millis(5), 1e8).with_loss(loss),
        );
        net.set_group(CLIENT_NODE, 1).unwrap();
        let mut ps = PushServer::new(SERVER, RetryPolicy::default(), seed, 64);
        ps.register(CLIENT, CLIENT_NODE);
        World {
            net,
            rng: seeded_rng(seed),
            ps,
            replica: Replica::new(),
            truth: BTreeMap::new(),
            tick: 0,
            heal_ms: 0,
            max_div_during_fault: 0.0,
            reconverged_at_ms: None,
            log: Vec::new(),
        }
    }

    fn update(&mut self, now: SimTime) {
        let obj = self.tick % OBJECTS;
        let value = self.tick as f64;
        self.tick += 1;
        self.truth.insert(obj, value);
        self.ps.push(
            &mut self.net,
            &mut self.rng,
            CLIENT,
            ObjectId::new(obj),
            value,
            Priority::Normal,
            now,
        );
    }

    fn divergence(&self) -> f64 {
        self.truth
            .iter()
            .map(|(&o, &v)| match self.replica.get(ObjectId::new(o)) {
                Some(r) => (v - r).abs(),
                None => v.abs(),
            })
            .fold(0.0, f64::max)
    }

    fn pump(&mut self, now: SimTime) {
        for (_client, msg) in self.ps.poll(&mut self.net, &mut self.rng, now) {
            if self.replica.apply(&msg) {
                self.log.push(format!("apply obj={} seq={}", msg.object.raw(), msg.seq));
            }
        }
        let ms = now.as_millis_f64() as u64;
        if (PARTITION_AT_MS..self.heal_ms).contains(&ms) {
            self.max_div_during_fault = self.max_div_during_fault.max(self.divergence());
        } else if ms >= self.heal_ms && self.reconverged_at_ms.is_none() && self.divergence() == 0.0
        {
            self.reconverged_at_ms = Some(ms);
        }
    }
}

struct CellResult {
    max_div: f64,
    reconverge_ms: Option<u64>,
    transport_stats: String,
    fault_counters: String,
    log_hash: u64,
}

/// Run one sweep cell: `loss` on the link, partition of `part_ms`.
fn run_cell(seed: u64, loss: f64, part_ms: u64) -> CellResult {
    let heal_ms = PARTITION_AT_MS + part_ms;
    let end_ms = heal_ms + TAIL_MS;
    let mut sim = Sim::new(World::new(seed, loss));
    sim.world.heal_ms = heal_ms;
    let sched = sim.scheduler();

    FaultPlan::new()
        .partition_between(0, 1, SimTime::from_millis(PARTITION_AT_MS), SimTime::from_millis(heal_ms))
        .install(sched);

    // Updates flow until the heal; the tail measures pure reconvergence.
    for ms in (0..heal_ms).step_by(TICK_MS as usize) {
        sched.at(SimTime::from_millis(ms), |w: &mut World, s| w.update(s.now()));
    }
    for ms in 0..=end_ms {
        sched.at(SimTime::from_millis(ms), |w: &mut World, s| w.pump(s.now()));
    }
    sim.run_to_completion();

    let w = &sim.world;
    let t = &w.ps.transport.stats;
    CellResult {
        max_div: w.max_div_during_fault,
        reconverge_ms: w.reconverged_at_ms.map(|at| at - heal_ms),
        transport_stats: format!(
            "sent={} retx={} expired={} dup={}",
            t.get("sent"),
            t.get("retransmits"),
            t.get("expired"),
            t.get("duplicates"),
        ),
        fault_counters: format!(
            "severed={} healed={}",
            w.net.stats.get("faults_severed"),
            w.net.stats.get("faults_healed"),
        ),
        log_hash: fx_hash_one(&w.log),
    }
}

/// Run E16: loss × partition-duration sweep + determinism check.
pub fn e16() -> Vec<Table> {
    let mut sweep = Table::new(
        "E16a: divergence during partition and reconvergence after heal \
         (8 objects, 1 update/10ms until heal, seed 16)",
        &["loss", "partition_ms", "max_div_ticks", "reconverge_ms", "transport", "faults"],
    );
    for &loss in &[0.0, 0.05, 0.2] {
        for &part_ms in &[500u64, 1_000, 2_000] {
            let r = run_cell(16, loss, part_ms);
            sweep.row(&[
                f2(loss),
                n(part_ms),
                f2(r.max_div),
                r.reconverge_ms.map_or("never".into(), n),
                r.transport_stats,
                r.fault_counters,
            ]);
        }
    }

    // Byte-reproducibility: the full apply-log of a lossy cell hashes
    // identically across runs of the same seed, and differs across seeds.
    let mut det = Table::new(
        "E16b: same-seed runs are byte-identical (loss 0.2, partition 1000 ms)",
        &["seed", "log_hash", "matches_rerun"],
    );
    for seed in [16u64, 17] {
        let first = run_cell(seed, 0.2, 1_000);
        let second = run_cell(seed, 0.2, 1_000);
        det.row(&[
            n(seed),
            format!("{:016x}", first.log_hash),
            (first.log_hash == second.log_hash).to_string(),
        ]);
    }

    vec![sweep, det]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e16_cells_reconverge_and_are_deterministic() {
        let r = run_cell(3, 0.2, 500);
        assert!(r.reconverge_ms.is_some(), "lossy cell must reconverge after heal");
        assert!(r.max_div > 0.0, "a partition must open a divergence gap");
        // ~50 ticks fit in a 500 ms partition; allow retransmission lag.
        assert!(r.max_div <= 110.0, "divergence bounded by update rate: {}", r.max_div);
        let again = run_cell(3, 0.2, 500);
        assert_eq!(r.log_hash, again.log_hash);
        assert_eq!(r.transport_stats, again.transport_stats);
    }
}
