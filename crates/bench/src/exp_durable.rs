//! E17 — durable ingest fast path (§IV-F: persisting the deluge).
//!
//! Claims reproduced:
//!
//! * **E17a — group commit.** Syncing the WAL record-at-a-time charges
//!   every record a full frame encode, a checksum pass, and a device
//!   flush. Coalescing records into one checksum-framed batch per sync
//!   amortizes all three; on the critical-path model the durable ingest
//!   rate rises ≥ 5× by batch 256.
//! * **E17b — sharded durable apply.** Draining the log into a
//!   key-hash-sharded LSM scales the apply stage with the shard count
//!   (per-batch critical path = slowest shard), the same ownership
//!   discipline E1d proved for the engine.
//! * **E17c — bloom filters.** Point gets for absent keys probe every
//!   run without filters; 10-bit-per-key blooms absorb ≥ 80% of those
//!   probes.
//!
//! **Critical-path model.** CPU work is measured on this host; each
//! `sync()` is additionally charged a fixed [`SYNC_LATENCY_US`]
//! (≈ an NVMe flush) that the in-memory WAL does not actually pay —
//! the DESIGN.md §2 substitution (simulate the device, measure the
//! compute), applied to storage exactly as E1d applies it to cores.
//! The `cpu_ms` column keeps the measured part visible next to the
//! modelled totals, and the single-core caveat from E1d applies to the
//! sharded rows.

use bytes::Bytes;
use mv_common::table::{f2, n, pct, Table};
use mv_common::time::SimTime;
use mv_storage::kv::KvConfig;
use mv_storage::{GroupCommitPolicy, GroupCommitWal, KvStore, ShardedKv, Wal, WalRecord};
use std::time::Instant;

/// Modelled device-flush latency charged per `sync()`, in microseconds
/// (an NVMe-class flush; the DESIGN.md §2 device substitution).
pub const SYNC_LATENCY_US: f64 = 20.0;

/// Deterministic synthetic ingest records (entity-snapshot shaped:
/// 8-byte id key, ~64-byte value).
fn records(count: usize) -> Vec<WalRecord> {
    (0..count)
        .map(|i| WalRecord::Put {
            key: (i as u64 % 4096).to_le_bytes().to_vec(),
            value: vec![(i % 251) as u8; 64],
        })
        .collect()
}

/// Record-at-a-time baseline: append + sync per record. Returns
/// `(cpu seconds, sync count)`.
fn run_record_at_a_time(recs: &[WalRecord]) -> (f64, u64) {
    let mut wal = Wal::new();
    let t0 = Instant::now();
    for rec in recs {
        wal.append(rec.clone());
        wal.sync();
    }
    let cpu = t0.elapsed().as_secs_f64();
    assert_eq!(wal.durable().len(), recs.len());
    (cpu, recs.len() as u64)
}

/// Group commit at a fixed record trigger. Returns
/// `(cpu seconds, sync count)`.
fn run_group_commit(recs: &[WalRecord], batch: usize) -> (f64, u64) {
    let mut wal = GroupCommitWal::with_policy(GroupCommitPolicy::by_records(batch));
    let t0 = Instant::now();
    for rec in recs {
        wal.append(rec.clone(), SimTime::ZERO);
    }
    wal.sync();
    let cpu = t0.elapsed().as_secs_f64();
    assert_eq!(wal.durable().len(), recs.len());
    (cpu, wal.stats.get("batches"))
}

/// Model seconds for a run: measured CPU + `syncs` modelled flushes.
fn model_s(cpu_s: f64, syncs: u64) -> f64 {
    cpu_s + syncs as f64 * SYNC_LATENCY_US * 1e-6
}

/// One E17a sweep: group-commit speedup over record-at-a-time on
/// `count` records at `batch`. Returns (baseline tput, grouped tput).
fn measure_group_commit(count: usize, batch: usize) -> (f64, f64) {
    let recs = records(count);
    let (base_cpu, base_syncs) = run_record_at_a_time(&recs);
    let (grp_cpu, grp_syncs) = run_group_commit(&recs, batch);
    let base = count as f64 / model_s(base_cpu, base_syncs);
    let grp = count as f64 / model_s(grp_cpu, grp_syncs);
    (base, grp)
}

/// One E17b sweep point: critical-path seconds to apply `recs` into a
/// `shards`-way [`ShardedKv`] in `batch`-sized chunks, plus one modelled
/// flush per chunk.
fn measure_sharded_apply(recs: &[WalRecord], shards: usize, batch: usize) -> f64 {
    let mut kv = ShardedKv::new(
        shards,
        KvConfig { memtable_budget: 32 << 10, ..KvConfig::default() },
    );
    kv.set_parallel_apply(false);
    let mut crit_s = 0.0;
    let mut chunks = 0u64;
    for chunk in recs.chunks(batch) {
        kv.apply_batch(chunk);
        crit_s += kv.last_shard_walls().iter().cloned().fold(0.0, f64::max);
        chunks += 1;
    }
    model_s(crit_s, chunks)
}

/// E17c: absent-key point gets against a run-heavy store, with and
/// without filters. Returns `(probes without, probes with, savings)`.
fn measure_bloom_savings(keys: usize, gets: usize) -> (u64, u64, f64) {
    let build = |bits: usize| {
        let mut kv = KvStore::with_config(KvConfig {
            memtable_budget: 2 << 10,
            bloom_bits_per_key: bits,
            tier_fanout: 4,
        });
        for i in 0..keys {
            kv.put(
                Bytes::from(format!("present-{i:06}")),
                Bytes::from(vec![(i % 251) as u8; 32]),
            );
        }
        for g in 0..gets {
            assert_eq!(kv.get(format!("absent-{g:06}").as_bytes()), None);
        }
        kv.stats().get("run_probes")
    };
    let without = build(0);
    let with = build(10);
    let savings = 1.0 - with as f64 / without.max(1) as f64;
    (without, with, savings)
}

/// Run E17: group-commit batch sweep, shard sweep, bloom savings.
pub fn e17() -> Vec<Table> {
    e17_sized(40_000, 40_000, 20_000, 10_000)
}

/// E17 at explicit sizes (the CI smoke runs a small sweep).
pub fn e17_sized(
    wal_records: usize,
    apply_records: usize,
    bloom_keys: usize,
    bloom_gets: usize,
) -> Vec<Table> {
    let mut a = Table::new(
        format!(
            "E17a: durable WAL ingest — group commit vs record-at-a-time \
             ({wal_records} records, modelled {SYNC_LATENCY_US} µs/sync; \
             critical-path model, single core)"
        ),
        &["batch", "records", "base_rec_per_s", "grouped_rec_per_s", "speedup"],
    );
    for &batch in &[16usize, 64, 256, 1024] {
        let (base, grp) = measure_group_commit(wal_records, batch);
        a.row(&[
            n(batch as u64),
            n(wal_records as u64),
            f2(base),
            f2(grp),
            f2(grp / base),
        ]);
    }

    let mut b = Table::new(
        format!(
            "E17b: sharded LSM durable apply — critical-path throughput vs shards \
             ({apply_records} records, batch 1024, modelled {SYNC_LATENCY_US} µs/sync per batch; \
             single-core caveat as E1d)"
        ),
        &["shards", "records", "model_ms", "rec_per_s", "speedup"],
    );
    let recs = records(apply_records);
    let mut base_tput = 0.0;
    for &shards in &[1usize, 2, 4, 8] {
        let secs = measure_sharded_apply(&recs, shards, 1024);
        let tput = apply_records as f64 / secs;
        if shards == 1 {
            base_tput = tput;
        }
        b.row(&[
            n(shards as u64),
            n(apply_records as u64),
            f2(secs * 1e3),
            f2(tput),
            f2(tput / base_tput),
        ]);
    }

    let (without, with, savings) = measure_bloom_savings(bloom_keys, bloom_gets);
    let mut c = Table::new(
        format!(
            "E17c: bloom filters — run probes on {bloom_gets} absent-key point gets \
             over {bloom_keys} resident keys (10 bits/key vs none)"
        ),
        &["bits_per_key", "run_probes", "probe_savings"],
    );
    c.row(&[n(0), n(without), pct(0.0)]);
    c.row(&[n(10), n(with), pct(savings)]);

    vec![a, b, c]
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The PR's acceptance criterion: ≥ 5× durable-ingest speedup at
    /// batch ≥ 256 on the critical-path model. The modelled sync counts
    /// (n vs n/256) dominate the ratio, so this is stable on busy CI
    /// hosts; best-of-3 absorbs the rest.
    #[test]
    fn group_commit_at_batch_256_is_at_least_5x() {
        let mut best = 0.0f64;
        for _ in 0..3 {
            let (base, grp) = measure_group_commit(8_000, 256);
            best = best.max(grp / base);
            if best >= 5.0 {
                break;
            }
        }
        assert!(best >= 5.0, "group-commit speedup {best:.2}× below 5×");
    }

    /// The PR's acceptance criterion: filters absorb ≥ 80% of absent-key
    /// run probes.
    #[test]
    fn bloom_filters_cut_point_get_probes_by_80_percent() {
        let (without, with, savings) = measure_bloom_savings(4_000, 2_000);
        assert!(without > 0);
        assert!(
            savings >= 0.8,
            "bloom savings {:.1}% below 80% ({} → {} probes)",
            savings * 100.0,
            without,
            with
        );
    }

    #[test]
    fn sharded_apply_model_is_positive_and_finite() {
        let recs = records(4_000);
        for shards in [1usize, 4] {
            let secs = measure_sharded_apply(&recs, shards, 512);
            assert!(secs.is_finite() && secs > 0.0);
        }
    }
}
