//! E13 — AR/VR data explosion and shared representations (§IV-I).
//!
//! Claims reproduced: per-avatar storage explodes linearly; shared
//! (base + delta) representations grow with *archetypes*, not avatars;
//! progressive LOD streaming bounds what a viewer must download.

use mv_assets::repr::{AssetCatalog, ReprStrategy};
use mv_assets::streaming::{stream_scene, SceneParams};
use mv_common::geom::Point;
use mv_common::table::{f2, n, pct, Table};

/// Run E13.
pub fn e13() -> Vec<Table> {
    let mut repr_t = Table::new(
        "E13a: avatar storage — independent vs. shared representations (6.4 MB avatars, 2% deltas)",
        &["avatars", "archetypes", "independent_GB", "shared_GB", "reduction"],
    );
    for &(avatars, archetypes) in &[(1_000usize, 20u32), (10_000, 20), (10_000, 200)] {
        let mut ind = AssetCatalog::new(ReprStrategy::Independent);
        let mut sh = AssetCatalog::new(ReprStrategy::Shared);
        for i in 0..avatars {
            ind.ingest(i as u32 % archetypes);
            sh.ingest(i as u32 % archetypes);
        }
        let gi = ind.physical_bytes_full_scale() as f64 / 1e9;
        let gs = sh.physical_bytes_full_scale() as f64 / 1e9;
        repr_t.row(&[
            n(avatars as u64),
            n(archetypes as u64),
            f2(gi),
            f2(gs),
            pct(1.0 - gs / gi),
        ]);
    }

    let mut stream_t = Table::new(
        "E13b: progressive LOD streaming (10k-object scene, viewer at centre)",
        &["metric", "bytes_MB", "vs_naive"],
    );
    let r = stream_scene(&SceneParams::default(), Point::new(500.0, 500.0));
    let mb = |b: u64| f2(b as f64 / 1e6);
    stream_t.row(&[
        "naive: ship all objects full".into(),
        mb(r.naive_bytes),
        pct(1.0),
    ]);
    stream_t.row(&[
        format!("LOD refined frame ({} visible)", r.visible),
        mb(r.full_bytes),
        pct(r.full_bytes as f64 / r.naive_bytes as f64),
    ]);
    stream_t.row(&[
        "progressive first frame".into(),
        mb(r.startup_bytes),
        pct(r.startup_bytes as f64 / r.naive_bytes as f64),
    ]);
    vec![repr_t, stream_t]
}

#[cfg(test)]
mod tests {
    #[test]
    fn shared_reduction_is_reported() {
        let tables = super::e13();
        assert_eq!(tables.len(), 2);
        assert_eq!(tables[0].len(), 3);
        assert_eq!(tables[1].len(), 3);
    }
}
