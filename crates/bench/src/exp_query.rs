//! E11 — query processing and optimization (§IV-G).
//!
//! Claims reproduced: (a) rank-ordering expensive predicates cuts
//! evaluation work by the analytic factor; (b) space-aware allocation
//! hands contested last items to the physical shopper; (c) safe-region
//! maintenance of moving queries slashes index probes; (d) approximate
//! answers trade bounded error for an order less work.

use mv_common::geom::Point;
use mv_common::id::EntityId;
use mv_common::seeded_rng;
use mv_common::table::{f2, n, pct, speedup, Table};
use mv_common::time::{SimDuration, SimTime};
use mv_common::Space;
use mv_query::predicate::{expected_cost, optimal_order, PredicateExecutor, PredicateSpec};
use mv_query::space_aware::{AllocPolicy, ContendedAllocator, PurchaseRequest};
use mv_query::ApproxAggregator;
use mv_spatial::{MovingQueryEngine, QueryStrategy};
use rand::Rng;

/// Run E11.
pub fn e11() -> Vec<Table> {
    // E11a: predicate ordering.
    let specs = vec![
        PredicateSpec::new("classify_image", 100.0, 0.9),
        PredicateSpec::new("in_region", 1.0, 0.1),
        PredicateSpec::new("sentiment", 10.0, 0.5),
        PredicateSpec::new("fresh_enough", 2.0, 0.6),
    ];
    let exec = PredicateExecutor::generate(&specs, 50_000, 5);
    let mut pred_t = Table::new(
        "E11a: expensive-predicate ordering (4 predicates, 50k tuples)",
        &["ordering", "expected_cost_per_tuple", "measured_work", "qualifying", "speedup"],
    );
    let (q_naive, w_naive) = exec.run(&specs);
    pred_t.row(&[
        "as written".into(),
        f2(expected_cost(&specs)),
        f2(w_naive),
        n(q_naive as u64),
        speedup(1.0),
    ]);
    let opt = optimal_order(&specs);
    let (q_opt, w_opt) = exec.run(&opt);
    pred_t.row(&[
        "rank order (sel-1)/cost".into(),
        f2(expected_cost(&opt)),
        f2(w_opt),
        n(q_opt as u64),
        speedup(w_naive / w_opt),
    ]);

    // E11b: space-aware last-item allocation.
    let mut alloc_t = Table::new(
        "E11b: contested last items — who wins under each policy (500 contests, online shopper 5 ms faster)",
        &["policy", "physical_wins", "virtual_wins"],
    );
    for policy in [
        AllocPolicy::Fifo,
        AllocPolicy::PhysicalFirst { window: SimDuration::from_millis(20) },
    ] {
        let mut alloc = ContendedAllocator::new(policy);
        for item in 0..500u64 {
            alloc.stock(item, 1);
            // The online shopper's packet wins the network race.
            alloc.resolve(&[
                PurchaseRequest {
                    client: mv_common::id::ClientId::new(item * 2),
                    space: Space::Virtual,
                    item,
                    ts: SimTime::from_micros(item * 1000),
                },
                PurchaseRequest {
                    client: mv_common::id::ClientId::new(item * 2 + 1),
                    space: Space::Physical,
                    item,
                    ts: SimTime::from_micros(item * 1000 + 5),
                },
            ]);
        }
        let name = match policy {
            AllocPolicy::Fifo => "fifo",
            AllocPolicy::PhysicalFirst { .. } => "physical-first (20 ms window)",
        };
        alloc_t.row(&[
            name.into(),
            n(alloc.stats.get("physical_wins")),
            n(alloc.stats.get("virtual_wins")),
        ]);
    }

    // E11c: moving queries over moving objects.
    let mut mq_t = Table::new(
        "E11c: moving queries over moving objects (2k objects, 50 queries, 200 ticks)",
        &["strategy", "index_probes", "cache_patches", "probe_reduction"],
    );
    let mut naive_probes = 0u64;
    for strategy in [QueryStrategy::NaiveReeval, QueryStrategy::SafeRegion { buffer: 15.0 }] {
        let mut eng = MovingQueryEngine::new(strategy, 50.0);
        let mut rng = seeded_rng(12);
        let mut pos = Vec::new();
        for i in 0..2_000u64 {
            let p = Point::new(rng.gen_range(0.0..1_000.0), rng.gen_range(0.0..1_000.0));
            eng.update_object(EntityId::new(i), p);
            pos.push(p);
        }
        let mut observers = Vec::new();
        let mut qids = Vec::new();
        for _ in 0..50 {
            let o = Point::new(rng.gen_range(0.0..1_000.0), rng.gen_range(0.0..1_000.0));
            qids.push(eng.register_query(o, 40.0));
            observers.push(o);
        }
        for _ in 0..200 {
            for (qi, qid) in qids.iter().enumerate() {
                observers[qi] = Point::new(
                    (observers[qi].x + rng.gen_range(-2.0..2.0)).clamp(0.0, 1_000.0),
                    (observers[qi].y + rng.gen_range(-2.0..2.0)).clamp(0.0, 1_000.0),
                );
                eng.move_observer(*qid, observers[qi]).unwrap();
            }
            for _ in 0..20 {
                let i = rng.gen_range(0..2_000u64);
                let p = Point::new(
                    (pos[i as usize].x + rng.gen_range(-3.0..3.0)).clamp(0.0, 1_000.0),
                    (pos[i as usize].y + rng.gen_range(-3.0..3.0)).clamp(0.0, 1_000.0),
                );
                pos[i as usize] = p;
                eng.update_object(EntityId::new(i), p);
            }
            for qid in &qids {
                eng.result(*qid).unwrap();
            }
        }
        let probes = eng.stats.get("index_probes");
        if matches!(strategy, QueryStrategy::NaiveReeval) {
            naive_probes = probes;
        }
        let name = match strategy {
            QueryStrategy::NaiveReeval => "naive re-evaluation",
            QueryStrategy::SafeRegion { .. } => "safe region (15 m buffer)",
        };
        mq_t.row(&[
            name.into(),
            n(probes),
            n(eng.stats.get("cache_patches")),
            pct(1.0 - probes as f64 / naive_probes as f64),
        ]);
    }

    // E11d: approximate aggregation for the virtual space.
    let mut ap_t = Table::new(
        "E11d: approximate aggregation (1M values, mean query)",
        &["mode", "touched", "abs_error", "std_error_estimate"],
    );
    let mut rng = seeded_rng(13);
    let values: Vec<f64> =
        (0..1_000_000).map(|_| mv_common::sample::normal_sample(&mut rng, 50.0, 15.0)).collect();
    let agg = ApproxAggregator::new(values);
    let exact = agg.mean_exact();
    ap_t.row(&["exact".into(), n(exact.touched as u64), f2(0.0), f2(0.0)]);
    for &frac in &[0.001f64, 0.01, 0.1] {
        let a = agg.mean_sampled(frac, 99);
        ap_t.row(&[
            format!("sample {:.1}%", frac * 100.0),
            n(a.touched as u64),
            f2((a.value - exact.value).abs()),
            f2(a.std_error),
        ]);
    }
    vec![pred_t, alloc_t, mq_t, ap_t, e11e_sketch()]
}

/// E11e: distributed optimizer metadata — per-site HLL sketches vs.
/// shipping raw values to the coordinator.
fn e11e_sketch() -> Table {
    use mv_query::Hll;
    let mut t = Table::new(
        "E11e: distributed distinct-count — 8 sites, overlapping key sets, HLL(b=12) vs. ship-all",
        &["values_per_site", "true_distinct", "sketch_estimate", "rel_error", "bytes_shipped_raw", "bytes_shipped_sketch"],
    );
    for &per_site in &[10_000usize, 100_000] {
        let sites = 8;
        let mut rng = seeded_rng(45);
        let mut truth = std::collections::BTreeSet::new();
        let mut merged = Hll::new(12);
        let mut sketch_bytes = 0usize;
        for _ in 0..sites {
            let mut local = Hll::new(12);
            for _ in 0..per_site {
                // Sites overlap heavily: keys drawn from a shared hot
                // domain plus a site-local tail.
                let v: u64 = rng.gen_range(0..(per_site as u64 * 3));
                local.insert(&v);
                truth.insert(v);
            }
            sketch_bytes += local.bytes();
            merged.merge(&local);
        }
        let est = merged.estimate();
        t.row(&[
            n(per_site as u64),
            n(truth.len() as u64),
            f2(est),
            pct((est - truth.len() as f64).abs() / truth.len() as f64),
            n(sites as u64 * per_site as u64 * 8),
            n(sketch_bytes as u64),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    #[test]
    fn physical_first_wins_all_contests() {
        let tables = super::e11();
        let rendered = tables[1].render();
        let lines: Vec<&str> = rendered.lines().filter(|l| l.contains("physical-first")).collect();
        assert_eq!(lines.len(), 1);
        // physical-first row: 500 physical wins, 0 virtual.
        assert!(lines[0].contains("500"));
    }
}
