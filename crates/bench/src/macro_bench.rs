//! E21 / BENCH_8 — the million-entity macro-benchmark (DESIGN.md §13).
//!
//! Drives the *full* pipeline end to end on one world:
//!
//! ```text
//! deluge workload → sharded ingest → group-commit WAL → KV snapshots
//!        → pubsub fanout → modelled dissemination → spatial/visibility
//!        queries → divergence analytics → crash recovery
//! ```
//!
//! at up to 1M+ entities with Zipf(0.9) entity skew and flash-crowd
//! bursts ([`mv_workloads::deluge`]), attributing wall time per stage
//! with [`TickProfiler`] and emitting the numbers behind `BENCH_8.json`
//! (rendered by [`render_bench_json`], regenerated with `cargo run
//! --release -p mv-bench --bin bench_check -- --write`).
//!
//! **Determinism contract.** The report splits in two:
//!
//! * `deterministic` — op/byte/delivery counts, modelled sim-clock
//!   latencies, and the engine state digest. Same seed ⇒ byte-identical
//!   on any machine; the CI gate (`bench_check`) re-derives this block
//!   and fails on >10% regression of a headline metric against the
//!   committed `BENCH_8.json`.
//! * `measured` — wall-clock throughput and the per-stage profile.
//!   Machine-dependent by nature (the E1d sim-vs-wall caveat); recorded
//!   for trajectory reading, never gated.
//!
//! The modelled end-to-end latency is *stage-additive*: per-op group
//! commit wait (analytic, from the op's position in its batch) plus the
//! E17 sync cost ([`SYNC_LATENCY_US`]) plus the link-scheduler
//! dissemination latency; headline p50/p99 compose the stage quantiles.

use crate::exp_durable::SYNC_LATENCY_US;
use mv_common::geom::{Aabb, Point};
use mv_common::id::{ClientId, EntityId};
use mv_common::metrics::Histogram;
use mv_common::sample::Zipf;
use mv_common::seeded_rng;
use mv_common::table::Table;
use mv_common::time::{SimDuration, SimTime};
use mv_common::Space;
use mv_core::{DurableMetaverse, WriteOp};
use mv_dissem::{LinkScheduler, Priority, SchedPolicy, TxRequest};
use mv_obs::export::JsonlSink;
use mv_obs::profile::TickProfiler;
use mv_obs::{HealthMonitor, SharedRegistry, SloSpec, StatSet};
use mv_pubsub::{BrokerTree, Publication, Subscription};
use mv_storage::{GroupCommitPolicy, KvConfig};
use mv_workloads::deluge::{self, DelugeOp, DelugeParams, ATTR_NAMES};

/// Modelled per-update dissemination payload (position + attrs +
/// envelope — the client-facing wire form, not the 40-byte WAL op).
/// Chosen so the service time (`bytes / link`) lands well above the
/// sim clock's 1 µs resolution; at 64 B / 1.25 GB/s the service time
/// truncates to zero and the link can never queue.
const UPDATE_BYTES: u64 = 512;

/// One macro-benchmark profile.
#[derive(Debug, Clone)]
pub struct MacroParams {
    /// Profile name (`smoke` gates CI; `full` is the 1M-entity run).
    pub name: &'static str,
    /// Concurrently active entities.
    pub entities: usize,
    /// Ticks driven.
    pub ticks: u64,
    /// Base update ops per tick (bursts multiply this ×4).
    pub ops_per_tick: usize,
    /// AoI probes per tick.
    pub queries_per_tick: usize,
    /// Pubsub subscribers.
    pub subscribers: usize,
    /// Fanout region grid side (regions = side²).
    pub regions_per_side: usize,
    /// Engine and KV shards.
    pub shards: usize,
    /// Group-commit batch size (records per WAL sync).
    pub wal_batch: usize,
    /// Modelled per-subscriber edge link, bytes/second. Each subscriber
    /// drains its own downlink; an aggregate-link model either
    /// saturates unrealistically at 1M entities or quantizes the
    /// per-message service time to zero on the µs sim clock.
    pub link_bytes_per_sec: f64,
    /// RNG seed.
    pub seed: u64,
}

/// The CI smoke profile: small enough to run in seconds, same shape.
pub fn smoke_profile() -> MacroParams {
    MacroParams {
        name: "smoke",
        entities: 20_000,
        ticks: 10,
        ops_per_tick: 5_000,
        queries_per_tick: 64,
        subscribers: 64,
        regions_per_side: 8,
        shards: 8,
        wal_batch: 256,
        link_bytes_per_sec: 1.0e8,
        seed: 8,
    }
}

/// The headline profile: 1M+ entities, §III deluge scale.
pub fn full_profile() -> MacroParams {
    MacroParams {
        name: "full",
        entities: 1_000_000,
        ticks: 12,
        ops_per_tick: 125_000,
        queries_per_tick: 256,
        subscribers: 256,
        regions_per_side: 8,
        shards: 8,
        wal_batch: 256,
        link_bytes_per_sec: 1.0e8,
        seed: 8,
    }
}

/// A tiny profile for debug-mode unit tests.
pub fn tiny_profile() -> MacroParams {
    MacroParams {
        name: "tiny",
        entities: 1_500,
        ticks: 6,
        ops_per_tick: 400,
        queries_per_tick: 16,
        subscribers: 16,
        regions_per_side: 4,
        shards: 4,
        wal_batch: 64,
        link_bytes_per_sec: 1.0e8,
        seed: 8,
    }
}

/// One profile's results: ordered key → rendered-JSON-value pairs for
/// the two report blocks, plus human tables.
#[derive(Debug)]
pub struct MacroReport {
    /// Gated block (same seed ⇒ byte-identical).
    pub det: Vec<(&'static str, String)>,
    /// Machine-dependent block (never gated).
    pub measured: Vec<(&'static str, String)>,
    /// Pretty tables for the `experiments` binary / EXPERIMENTS.md.
    pub tables: Vec<Table>,
}

impl MacroReport {
    /// A deterministic metric's rendered value, if present.
    pub fn det_value(&self, key: &str) -> Option<&str> {
        self.det.iter().find(|(k, _)| *k == key).map(|(_, v)| v.as_str())
    }

    /// Canonical rendering of the gated block — the byte-identity
    /// witness `bench_check` compares across same-seed reruns.
    pub fn det_bytes(&self) -> String {
        let mut out = String::new();
        for (k, v) in &self.det {
            out.push_str(k);
            out.push('=');
            out.push_str(v);
            out.push('\n');
        }
        out
    }
}

/// Headline deterministic metrics and their regression direction:
/// `true` = lower is better (gate fires when the new value exceeds the
/// committed one by >10%).
pub const HEADLINES: [(&str, bool); 5] = [
    ("e2e_p50_ms", true),
    ("e2e_p99_ms", true),
    ("durable_wait_p99_ms", true),
    ("dissem_p99_ms", true),
    ("bytes_per_entity", true),
];

fn num(v: f64, decimals: usize) -> String {
    format!("{v:.decimals$}")
}

/// Run one macro-benchmark profile.
pub fn run_macro(params: &MacroParams) -> MacroReport {
    let dparams = DelugeParams {
        entities: params.entities,
        ticks: params.ticks,
        ops_per_tick: params.ops_per_tick,
        seed: params.seed,
        ..Default::default()
    };
    let side = dparams.world_side;
    let tick_us = dparams.tick.as_micros();
    let trace = deluge::generate(&dparams);

    let mut dm = DurableMetaverse::new(
        params.shards,
        params.shards,
        KvConfig::default(),
        GroupCommitPolicy::by_records(params.wal_batch),
    );
    // Single-core host: serial apply keeps per-stage wall attribution
    // honest (same results either way — CI proves serial ≡ parallel).
    dm.set_parallel_apply(false);

    let mut profiler = TickProfiler::new();
    let mut sink = JsonlSink::with_capacity(1 << 12);

    // ── Health layer: lenient SLOs armed for the whole run. The perf
    // gate doubles as a health gate — `bench_check` fails if the smoke
    // profile fires a single alert (`slo_alerts_fired` below). ────────
    let health_reg = SharedRegistry::new();
    let mut health_stats = StatSet::in_registry("bench.macro", &health_reg);
    let e2e_id = health_reg.with(|r| r.histo("bench.macro.e2e_ms"));
    let mut health = HealthMonitor::new(&health_reg, 16, 8);
    health.arm(
        SloSpec::availability(
            "bench.apply-errors",
            "bench.macro.apply_errors",
            "bench.macro.ops",
            0.01,
        )
        .windows(2, 8)
        .min_events(64),
    );
    health.arm(
        SloSpec::latency("bench.e2e-latency", "bench.macro.e2e_ms", 4096.0, 0.10)
            .windows(2, 8)
            .min_events(64),
    );
    health.arm(
        SloSpec::staleness("bench.compaction-debt", "bench.macro.compaction_debt", 64.0, 0.5)
            .windows(2, 8)
            .min_events(2),
    );

    let wall_start = std::time::Instant::now();

    // ── Spawn phase (before tick 0; logged + committed durably) ──────
    let spawn_wall = std::time::Instant::now();
    for (name, kind, p) in &trace.spawns {
        dm.spawn(name.clone(), *kind, *p, SimTime::ZERO);
    }
    dm.commit(SimTime::ZERO);
    let spawn_s = spawn_wall.elapsed().as_secs_f64();
    let ids: Vec<EntityId> = dm.ids().to_vec();

    // ── Fanout plumbing: region grid, broker tree, subscribers ───────
    let rside = params.regions_per_side;
    let regions = rside * rside;
    let region_side = side / rside as f64;
    let region_of = |p: Point| -> usize {
        let gx = ((p.x / region_side) as usize).min(rside - 1);
        let gy = ((p.y / region_side) as usize).min(rside - 1);
        gy * rside + gx
    };
    let terms: Vec<String> = (0..regions).map(|r| format!("r{}x{}", r % rside, r / rside)).collect();
    let mut broker = BrokerTree::new(2, 4);
    let leaves = broker.leaves();
    for s in 0..params.subscribers {
        let r = s % regions;
        let lo = Point::new((r % rside) as f64 * region_side, (r / rside) as f64 * region_side);
        let sub = Subscription::new(ClientId::new(s as u64))
            .with_term(&terms[r])
            .in_region(Aabb::new(lo, Point::new(lo.x + region_side, lo.y + region_side)));
        broker.subscribe(leaves[s % leaves.len()], sub);
    }
    let link = LinkScheduler::new(params.link_bytes_per_sec);
    let sync_lat = SimDuration::from_micros(SYNC_LATENCY_US as u64);
    // One downlink queue per subscriber; deliveries are spread
    // round-robin (the broker reports a count, not a recipient list).
    let edge_count = params.subscribers.max(1);
    let mut edge_queues: Vec<Vec<TxRequest>> = vec![Vec::new(); edge_count];
    let mut delivery_rr = 0usize;

    // ── Tick loop ─────────────────────────────────────────────────────
    let mut durable_h = Histogram::new();
    let mut dissem_h = Histogram::new();
    let (mut moves, mut attrs) = (0u64, 0u64);
    let (mut publications, mut deliveries) = (0u64, 0u64);
    let (mut query_probes, mut query_hits) = (0u64, 0u64);
    let mut apply_errs = 0u64;
    let mut last_divergence = 0.0f64;
    let mut write_ops: Vec<WriteOp> = Vec::new();
    let qzipf = Zipf::new(params.entities.max(1), dparams.zipf_alpha);
    let mut qrng = seeded_rng(params.seed ^ 0x9E37_79B9_7F4A_7C15);

    for tick in &trace.ticks {
        profiler.tick();
        let nops = tick.ops.len().max(1) as u64;
        let tick_end = tick.start + dparams.tick;
        // Op i's arrival, spread uniformly across the tick.
        let ts_of = |i: usize| tick.start + SimDuration::from_micros(i as u64 * tick_us / nops);
        // Op i's group-commit seal instant: the arrival of the last op
        // in its record-count batch, or the end-of-tick commit for the
        // tail batch.
        let seal_of = |i: usize| {
            let last = (i / params.wal_batch + 1) * params.wal_batch - 1;
            if last < tick.ops.len() { ts_of(last) } else { tick_end }
        };

        // workload: trace ops → engine write ops with per-op arrivals.
        {
            let _g = profiler.scope("workload");
            write_ops.clear();
            for (i, op) in tick.ops.iter().enumerate() {
                write_ops.push(match *op {
                    DelugeOp::Move { entity, to } => WriteOp::Position {
                        id: ids[entity as usize],
                        position: to,
                        ts: ts_of(i),
                    },
                    DelugeOp::Attr { entity, name, value } => WriteOp::Attr {
                        id: ids[entity as usize],
                        name: ATTR_NAMES[name as usize].to_string(),
                        value,
                        ts: ts_of(i),
                    },
                });
            }
        }

        // ingest: log to the WAL, apply to the sharded engine.
        let results = profiler.time("ingest", || dm.apply_batch(&write_ops));
        let tick_errs = results.iter().filter(|r| r.is_err()).count() as u64;
        apply_errs += tick_errs;

        // Modelled durability latency per op: group-commit wait + sync.
        // Also recorded into the health registry (one lock per tick)
        // so the armed latency SLO watches the same tail.
        health_reg.with(|r| {
            for (i, op) in write_ops.iter().enumerate() {
                let wait_us = seal_of(i).since(op.ts()).as_micros() as f64;
                let ms = (wait_us + SYNC_LATENCY_US) / 1_000.0;
                durable_h.record(ms);
                r.record(e2e_id, ms);
            }
        });

        // commit: seal the WAL batch, snapshot touched entities to KV.
        profiler.time("commit", || dm.commit(tick_end));

        // fanout: one publication per move, routed through the broker
        // tree; each delivery becomes a dissemination request on a
        // subscriber downlink, arriving at its op's durability instant.
        profiler.time("fanout", || {
            for (i, op) in tick.ops.iter().enumerate() {
                match *op {
                    DelugeOp::Move { to, .. } => {
                        moves += 1;
                        let p = Publication::new(ts_of(i))
                            .term(&terms[region_of(to)])
                            .at(to)
                            .in_space(Space::Physical);
                        publications += 1;
                        let delivered = broker.publish(&p) as u64;
                        deliveries += delivered;
                        let durable_at = seal_of(i) + sync_lat;
                        for _ in 0..delivered {
                            edge_queues[delivery_rr % edge_count].push(TxRequest {
                                arrival: durable_at,
                                bytes: UPDATE_BYTES,
                                priority: Priority::Normal,
                                deadline: None,
                            });
                            delivery_rr += 1;
                        }
                    }
                    DelugeOp::Attr { .. } => attrs += 1,
                }
            }
        });

        // dissem: modelled downlink transmission of the tick's
        // deliveries, one scheduler pass per subscriber edge.
        profiler.time("dissem", || {
            for q in &mut edge_queues {
                if q.is_empty() {
                    continue;
                }
                let report = link.run(std::mem::take(q), SchedPolicy::WeightedFair);
                for h in report.latency_ms.values() {
                    dissem_h.merge(h);
                }
            }
        });

        // query: Zipf-hot AoI probes against truth + twin indexes. The
        // whole tick's probe set goes through `query_visible_batch` —
        // one shard fan-out and one grid pass per index for all probes,
        // instead of per probe (the E21 query-stage rewrite).
        profiler.time("query", || {
            let areas: Vec<Aabb> = (0..params.queries_per_tick)
                .map(|_| {
                    let rank = qzipf.sample(&mut qrng);
                    Aabb::centered(trace.spawns[rank].2, 100.0)
                })
                .collect();
            for hits in dm.engine().query_visible_batch(Space::Physical, &areas) {
                query_hits += hits.len() as u64;
                query_probes += 1;
            }
        });

        // analytics: full divergence sweep (the twin-sync health metric).
        last_divergence = profiler.time("analytics", || dm.engine().mean_divergence());

        // health: publish this tick's probe values and pump the
        // armed monitor on the tick boundary.
        health_stats.add("ops", write_ops.len() as u64);
        health_stats.add("apply_errors", tick_errs);
        dm.publish_health_gauges(&mut health_stats);
        health.tick(tick_end);

        // Per-tick profile export through the reused sink — the
        // satellite-2 claim: the exporter stays off the profile.
        sink.clear();
        profiler.export_jsonl(&mut sink);
    }
    profiler.finish();
    let loop_wall_s = wall_start.elapsed().as_secs_f64() - spawn_s;

    // ── Recovery: replay the WAL from bytes, prove byte-identity ─────
    let digest_before = dm.state_digest();
    let recover_wall = std::time::Instant::now();
    let recovery = dm.crash_and_recover();
    let recover_s = recover_wall.elapsed().as_secs_f64();
    let digest_after = dm.state_digest();

    // ── Assemble the report ───────────────────────────────────────────
    let total_ops = trace.total_ops() as u64;
    let wal_stats = dm.wal.stats.clone();
    let kv_stats = dm.kv().stats();
    let engine_stats = dm.engine().stats();
    let durable_bytes =
        wal_stats.get("synced_bytes") + dm.kv().run_bytes() as u64 + dm.kv().memtable_bytes() as u64;
    let bytes_per_entity = durable_bytes as f64 / params.entities as f64;
    let (d_p50, d_p99) = (durable_h.p50(), durable_h.p99());
    let (x_p50, x_p99) = (dissem_h.p50(), dissem_h.p99());

    let mut det: Vec<(&'static str, String)> = Vec::new();
    det.push(("entities", params.entities.to_string()));
    det.push(("ticks", params.ticks.to_string()));
    det.push(("ops", total_ops.to_string()));
    det.push(("moves", moves.to_string()));
    det.push(("attr_writes", attrs.to_string()));
    det.push(("apply_errors", apply_errs.to_string()));
    det.push(("wal_batches", wal_stats.get("batches").to_string()));
    det.push(("wal_synced_bytes", wal_stats.get("synced_bytes").to_string()));
    det.push(("kv_flushes", kv_stats.get("flushes").to_string()));
    det.push(("kv_compactions", kv_stats.get("compactions").to_string()));
    det.push(("kv_compaction_write_bytes", kv_stats.get("compaction_write_bytes").to_string()));
    det.push(("kv_run_bytes", dm.kv().run_bytes().to_string()));
    det.push(("bytes_per_entity", num(bytes_per_entity, 2)));
    det.push(("durable_wait_p50_ms", num(d_p50, 4)));
    det.push(("durable_wait_p99_ms", num(d_p99, 4)));
    det.push(("dissem_p50_ms", num(x_p50, 4)));
    det.push(("dissem_p99_ms", num(x_p99, 4)));
    det.push(("e2e_p50_ms", num(d_p50 + x_p50, 4)));
    det.push(("e2e_p99_ms", num(d_p99 + x_p99, 4)));
    det.push(("publications", publications.to_string()));
    det.push(("deliveries", deliveries.to_string()));
    det.push(("query_probes", query_probes.to_string()));
    det.push(("query_hits", query_hits.to_string()));
    det.push(("sync_msgs", engine_stats.get("sync_msgs").to_string()));
    det.push(("suppressed_syncs", engine_stats.get("suppressed_syncs").to_string()));
    det.push(("mean_divergence", num(last_divergence, 4)));
    det.push(("wal_records_recovered", recovery.replayed.to_string()));
    det.push(("recovery_digest_matches", (digest_before == digest_after).to_string()));
    // Growth while the sink warms up is expected; the satellite-2 claim
    // is zero growth on every steady-state export.
    det.push(("jsonl_sink_grows_after_tick1", sink_steady_growth(&profiler).to_string()));
    // Health gate: the macro-bench must never burn an SLO budget — a
    // fired alert here is a perf *and* health regression (bench_check
    // fails on nonzero; the alert log hash is seed-stable).
    det.push(("slo_alerts_fired", health.engine.fired_total().to_string()));
    det.push(("slo_active_at_end", health.active_alerts().to_string()));
    det.push(("slo_log_hash", format!("\"{:016x}\"", health.engine.log_hash())));
    det.push(("state_digest", format!("\"{:016x}\"", digest_before)));
    // Lint coverage rides in the deterministic block (headlines
    // untouched): reviewers see findings appear/disappear in the same
    // diff as the perf numbers they paid for.
    let (lint_findings, lint_rules) = lint_coverage();
    det.push(("lint_findings_total", lint_findings.to_string()));
    det.push(("lint_rules_active", lint_rules.to_string()));

    let ingest_s: f64 = profiler.stage("ingest").map_or(0.0, |h| h.sum());
    let commit_s: f64 = profiler.stage("commit").map_or(0.0, |h| h.sum());
    let ingest_ops_per_sec = total_ops as f64 / (ingest_s + commit_s).max(1e-9);
    let mut measured: Vec<(&'static str, String)> = vec![
        ("wall_s", num(wall_start.elapsed().as_secs_f64(), 2)),
        ("spawn_s", num(spawn_s, 2)),
        ("tick_loop_s", num(loop_wall_s, 2)),
        ("ingest_ops_per_sec", num(ingest_ops_per_sec, 0)),
        ("recover_s", num(recover_s, 3)),
    ];
    for (name, h) in profiler.stages() {
        let key: &'static str = stage_key(name);
        measured.push((key, num(h.sum() * 1_000.0, 1)));
    }

    let mut det_table = Table::new(
        format!(
            "E21 {}: deterministic macro-bench metrics ({} entities, {} ticks, {} ops)",
            params.name, params.entities, params.ticks, total_ops
        ),
        &["metric", "value"],
    );
    for (k, v) in &det {
        det_table.row(&[(*k).to_string(), v.trim_matches('"').to_string()]);
    }
    let profile_table = profiler.table(format!(
        "E21 {}: per-stage wall profile (measured; machine-dependent)",
        params.name
    ));

    MacroReport { det, measured, tables: vec![det_table, profile_table] }
}

/// Stable `&'static str` keys for per-stage measured totals.
fn stage_key(name: &str) -> &'static str {
    match name {
        "workload" => "stage_workload_total_ms",
        "ingest" => "stage_ingest_total_ms",
        "commit" => "stage_commit_total_ms",
        "fanout" => "stage_fanout_total_ms",
        "dissem" => "stage_dissem_total_ms",
        "query" => "stage_query_total_ms",
        "analytics" => "stage_analytics_total_ms",
        _ => "stage_other_total_ms",
    }
}

/// Lint coverage of the source tree at bench time: total findings
/// (denied and allowed alike) plus the number of active rules, so the
/// static-analysis trajectory diffs alongside the perf trajectory in
/// BENCH_8.json. Source-derived, not seed-derived — still deterministic
/// for a given commit. Falls back to zero findings when the sources are
/// not on disk (a relocated binary outside the repo).
fn lint_coverage() -> (usize, usize) {
    let rules = mv_lint::RULES.len();
    let start = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let Some(root) = mv_lint::scan::find_workspace_root(&start) else {
        return (0, rules);
    };
    let Ok(files) = mv_lint::scan::rust_files(&root) else {
        return (0, rules);
    };
    let sources: Vec<(String, String)> = files
        .into_iter()
        .filter_map(|rel| {
            std::fs::read_to_string(root.join(&rel)).ok().map(|text| (rel, text))
        })
        .collect();
    (mv_lint::lint_workspace(&sources).len(), rules)
}

/// Steady-state sink growth: exports happen once per tick; the stage
/// set is fixed after tick 1, so every growth past the first export is
/// steady-state churn. Returns that count (claimed zero).
fn sink_steady_growth(profiler: &TickProfiler) -> u64 {
    // Re-derive: replay the final profile into a sink twice; growth on
    // the second pass is steady-state churn by construction.
    let mut sink = JsonlSink::default();
    profiler.export_jsonl(&mut sink);
    let warm = sink.grows();
    sink.clear();
    profiler.export_jsonl(&mut sink);
    sink.grows() - warm
}

/// Render `BENCH_8.json` from named profile reports (stable key order,
/// 2-space indent — the deterministic blocks are byte-stable per seed).
pub fn render_bench_json(profiles: &[(&str, &MacroReport)]) -> String {
    let mut out = String::from("{\n  \"schema\": \"mv-bench-macro/v1\",\n  \"bench\": 8,\n  \"profiles\": {\n");
    for (pi, (name, report)) in profiles.iter().enumerate() {
        out.push_str(&format!("    \"{name}\": {{\n      \"deterministic\": {{\n"));
        for (i, (k, v)) in report.det.iter().enumerate() {
            let comma = if i + 1 == report.det.len() { "" } else { "," };
            out.push_str(&format!("        \"{k}\": {v}{comma}\n"));
        }
        out.push_str("      },\n      \"measured\": {\n");
        for (i, (k, v)) in report.measured.iter().enumerate() {
            let comma = if i + 1 == report.measured.len() { "" } else { "," };
            out.push_str(&format!("        \"{k}\": {v}{comma}\n"));
        }
        let comma = if pi + 1 == profiles.len() { "" } else { "," };
        out.push_str(&format!("      }}\n    }}{comma}\n"));
    }
    out.push_str("  }\n}\n");
    out
}

/// E21: run the smoke profile and return its tables (the full profile
/// is run by `bench_check --write` when regenerating `BENCH_8.json`).
pub fn e21() -> Vec<Table> {
    run_macro(&smoke_profile()).tables
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_profile_is_deterministic_and_coherent() {
        let a = run_macro(&tiny_profile());
        let b = run_macro(&tiny_profile());
        assert_eq!(a.det_bytes(), b.det_bytes(), "same seed must be byte-identical");

        // Coherence: counts add up and the pipeline actually ran.
        let get = |k: &str| a.det_value(k).unwrap().parse::<f64>().unwrap();
        assert_eq!(get("ops"), get("moves") + get("attr_writes"));
        assert_eq!(get("apply_errors"), 0.0);
        assert!(get("wal_batches") > 0.0);
        assert!(get("publications") > 0.0);
        assert!(get("deliveries") > 0.0, "subscribers must receive fanout");
        assert!(get("query_probes") > 0.0);
        assert!(get("bytes_per_entity") > 0.0);
        assert!(get("e2e_p99_ms") >= get("e2e_p50_ms"));
        assert_eq!(a.det_value("recovery_digest_matches"), Some("true"));
        assert_eq!(get("jsonl_sink_grows_after_tick1"), 0.0, "satellite-2: exporter off the profile");
        assert_eq!(get("slo_alerts_fired"), 0.0, "macro-bench must not burn an SLO budget");
        assert_eq!(get("slo_active_at_end"), 0.0);
    }

    #[test]
    fn bench_json_renders_all_headlines() {
        let r = run_macro(&tiny_profile());
        let json = render_bench_json(&[("tiny", &r)]);
        assert!(json.starts_with("{\n  \"schema\": \"mv-bench-macro/v1\""));
        for (key, _) in HEADLINES {
            assert!(json.contains(&format!("\"{key}\": ")), "missing headline {key}");
        }
        // Same-seed rerun renders byte-identically (full determinism of
        // the gated block; measured values are excluded from this check
        // by re-rendering only `deterministic`).
        let r2 = run_macro(&tiny_profile());
        assert_eq!(r.det_bytes(), r2.det_bytes());
    }

    #[test]
    fn burst_ticks_raise_modelled_dissemination_tail() {
        // The flash crowd quadruples per-tick volume; the link scheduler
        // must see it as queueing (p99 > p50 across the run).
        let r = run_macro(&tiny_profile());
        let p50: f64 = r.det_value("dissem_p50_ms").unwrap().parse().unwrap();
        let p99: f64 = r.det_value("dissem_p99_ms").unwrap().parse().unwrap();
        assert!(p99 >= p50);
    }
}
