//! E20 — raft-replicated region failover (§IV disaggregation, fault
//! tolerance for the durable co-space engine).
//!
//! A client spawns one entity every 10 ms into a [`ReplicatedMetaverse`]
//! region while a scripted fault fires mid-run: crash the current
//! leader, partition it into a minority, or crash-and-wipe a fixed
//! replica (disk loss — it must catch up via snapshot install). The
//! sweep crosses replica count {1, 3, 5} with the three fault scripts;
//! the 1-replica column is the unreplicated baseline the paper's
//! robustness argument is measured against: it is unavailable for the
//! *entire* fault window and *loses acknowledged writes* under disk
//! loss, where the replicated regions bound unavailability to one
//! election and never lose an acked write. Reconvergence is checked
//! byte-identically (engine `state_encoding` digests must agree across
//! replicas at the end), and the determinism table reruns a cell to
//! show the whole region — elections included — is a pure function of
//! its seed.

use mv_common::geom::Point;
use mv_common::hash::fx_hash_one;
use mv_common::id::NodeId;
use mv_common::table::{n, Table};
use mv_common::time::SimTime;
use mv_core::entity::EntityKind;
use mv_core::replicated::RegionConfig;
use mv_core::{DurableOp, ReplicatedMetaverse};
use mv_net::fault::{apply, Fault, FaultTarget};
use mv_net::{FaultPlan, Network, Sim};

/// Writes flow over `[WRITE_START, WRITE_END)`, one per 10 ms. Shared
/// with E22 (`crate::exp_health`), which reruns these fault scripts
/// with SLOs armed.
pub const WRITE_START_MS: u64 = 1_000;
/// End of the write window (exclusive).
pub const WRITE_END_MS: u64 = 6_000;
/// Fault injection time.
pub const FAULT_AT_MS: u64 = 2_000;
/// Fault heal time.
pub const HEAL_AT_MS: u64 = 4_000;
/// Quiet tail for reconvergence.
pub const END_MS: u64 = 9_000;

#[derive(Clone, Copy)]
enum Scenario {
    LeaderCrash,
    MinorityPartition,
    WipeCrash,
}

impl Scenario {
    fn name(self) -> &'static str {
        match self {
            Scenario::LeaderCrash => "leader-crash",
            Scenario::MinorityPartition => "minority-partition",
            Scenario::WipeCrash => "wipe-crash",
        }
    }
}

struct World {
    region: ReplicatedMetaverse,
    victim: Option<NodeId>,
    next_write: u64,
    submitted: usize,
    unavail_ticks: u64,
}

impl FaultTarget for World {
    fn fault_network(&mut self) -> &mut Network {
        self.region.fault_network()
    }
    fn on_node_crash(&mut self, node: NodeId) {
        self.region.on_node_crash(node);
    }
    fn on_node_restart(&mut self, node: NodeId) {
        self.region.on_node_restart(node);
    }
}

impl World {
    fn tick(&mut self, now: SimTime) {
        self.region.tick(now);
        let ms = now.as_micros() / 1_000;
        if (WRITE_START_MS..WRITE_END_MS).contains(&ms) && ms.is_multiple_of(10) {
            let op = DurableOp::Spawn {
                name: format!("w{}", self.next_write),
                kind: EntityKind::Avatar,
                position: Point::new(self.next_write as f64, 0.0),
                ts: now,
            };
            match self.region.submit(&op, now) {
                Some(_) => {
                    self.submitted += 1;
                    self.next_write += 1;
                }
                None => self.unavail_ticks += 1,
            }
        }
    }
}

struct CellResult {
    submitted: usize,
    acked: usize,
    /// Write attempts that found no available leader (10 ms each).
    unavail_ticks: u64,
    /// Acked commands missing from at least one replica at the end.
    lost_acked: usize,
    /// Every replica's engine digest equal at the end of the run.
    reconverged: bool,
    /// Raft terms that elected a leader over the run.
    terms: usize,
    violations: usize,
    log_hash: u64,
}

fn run_cell(scenario: Scenario, replicas: usize, seed: u64) -> CellResult {
    let cfg = RegionConfig { replicas, compact_threshold: 32, ..RegionConfig::default() };
    // Members are numbered from 0; wipe a follower when one exists, the
    // lone node in the unreplicated baseline.
    let fixed_victim = NodeId::new(u64::from(replicas > 1));
    let mut world = World {
        region: ReplicatedMetaverse::new(cfg, seed),
        victim: None,
        next_write: 0,
        submitted: 0,
        unavail_ticks: 0,
    };
    if matches!(scenario, Scenario::WipeCrash) {
        world.region.set_wipe_on_crash(fixed_victim, true);
    }
    let mut sim = Sim::new(world);
    let sched = sim.scheduler();

    match scenario {
        Scenario::LeaderCrash => {
            sched.at(SimTime::from_millis(FAULT_AT_MS), |w: &mut World, _s| {
                if let Some(leader) = w.region.leader() {
                    w.victim = Some(leader);
                    apply(w, &Fault::Crash { node: leader });
                }
            });
            sched.at(SimTime::from_millis(HEAL_AT_MS), |w: &mut World, _s| {
                if let Some(victim) = w.victim.take() {
                    apply(w, &Fault::Restart { node: victim });
                }
            });
        }
        Scenario::MinorityPartition => {
            sched.at(SimTime::from_millis(FAULT_AT_MS), |w: &mut World, _s| {
                w.region.partition_minority_with_leader();
            });
            sched.at(SimTime::from_millis(HEAL_AT_MS), |w: &mut World, _s| {
                w.region.heal_partition();
            });
        }
        Scenario::WipeCrash => {
            FaultPlan::new()
                .crash_window(
                    fixed_victim,
                    SimTime::from_millis(FAULT_AT_MS),
                    SimTime::from_millis(HEAL_AT_MS),
                )
                .install(sched);
        }
    }
    for ms in 0..=END_MS {
        sched.at(SimTime::from_millis(ms), |w: &mut World, s| w.tick(s.now()));
    }
    sim.run_to_completion();

    let w = &sim.world;
    let members = w.region.members().len();
    let lost_acked = w
        .region
        .acked()
        .iter()
        .filter(|cmd| !(0..members).all(|i| w.region.replica_applied(i, cmd)))
        .count();
    let digests = w.region.replica_digests();
    CellResult {
        submitted: w.submitted,
        acked: w.region.acked().len(),
        unavail_ticks: w.unavail_ticks,
        lost_acked,
        reconverged: digests.iter().all(|d| d.is_some() && *d == digests[0]),
        terms: w.region.elected_terms(),
        violations: w.region.violations().len(),
        log_hash: fx_hash_one(&w.region.log),
    }
}

/// Run E20: replica count × fault script sweep + determinism check.
pub fn e20() -> Vec<Table> {
    let mut sweep = Table::new(
        "E20a: failover under scripted faults (1 write/10ms over [1s,6s), fault [2s,4s), \
         seed 20; replicas=1 is the unreplicated baseline)",
        &[
            "replicas",
            "scenario",
            "submitted",
            "acked",
            "unavail_ms",
            "lost_acked",
            "reconverged",
            "terms",
            "violations",
        ],
    );
    for &replicas in &[1usize, 3, 5] {
        for &scenario in
            &[Scenario::LeaderCrash, Scenario::MinorityPartition, Scenario::WipeCrash]
        {
            let r = run_cell(scenario, replicas, 20);
            sweep.row(&[
                n(replicas as u64),
                scenario.name().into(),
                n(r.submitted as u64),
                n(r.acked as u64),
                n(r.unavail_ticks * 10),
                n(r.lost_acked as u64),
                if r.reconverged { "yes".into() } else { "NO".into() },
                n(r.terms as u64),
                n(r.violations as u64),
            ]);
        }
    }

    let mut det = Table::new(
        "E20b: same-seed runs are byte-identical (leader-crash, 3 replicas)",
        &["seed", "log_hash", "matches_rerun"],
    );
    for &seed in &[20u64, 1020] {
        let a = run_cell(Scenario::LeaderCrash, 3, seed);
        let b = run_cell(Scenario::LeaderCrash, 3, seed);
        det.row(&[
            n(seed),
            format!("{:016x}", a.log_hash),
            if a.log_hash == b.log_hash { "yes".into() } else { "NO".into() },
        ]);
    }
    vec![sweep, det]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replicated_regions_never_lose_acked_writes_but_the_baseline_does() {
        // 3 replicas: disk loss on one node loses nothing and the
        // region reconverges byte-identically.
        let r3 = run_cell(Scenario::WipeCrash, 3, 20);
        assert_eq!(r3.lost_acked, 0);
        assert_eq!(r3.violations, 0);
        assert!(r3.reconverged);
        assert!(r3.acked > 0 && r3.acked <= r3.submitted);
        // The unreplicated baseline loses every write acked before the
        // wipe — the point of E20's comparison column.
        let r1 = run_cell(Scenario::WipeCrash, 1, 20);
        assert!(r1.lost_acked > 0, "a wiped single node must lose acked writes");
    }

    #[test]
    fn e20_cells_are_deterministic() {
        let a = run_cell(Scenario::LeaderCrash, 3, 20);
        let b = run_cell(Scenario::LeaderCrash, 3, 20);
        assert_eq!(a.log_hash, b.log_hash);
        assert_eq!(a.acked, b.acked);
        assert_eq!(a.unavail_ticks, b.unavail_ticks);
    }
}
