//! Deterministic fault injection on the discrete-event simulator.
//!
//! §IV-C points at "methods developed for intermittently-connected and
//! disruptive networks", and the fabrics the platform spans (cellular
//! uplinks §I, inter-DC WANs §IV-E1) are exactly the ones that flap,
//! partition, and crash. A [`FaultPlan`] is a *script*: a list of
//! `(virtual time, fault)` pairs built up front and installed into the
//! [`Scheduler`], so faults are ordinary simulation events — two runs of
//! the same plan over the same seed are byte-identical, and every
//! injected fault is counted in `Network::stats` (`faults_*` counters).
//!
//! The plan mutates the world through the [`FaultTarget`] trait: the
//! world hands out its [`Network`], and optionally reacts to node
//! crash/restart (dropping volatile state, re-syncing after restart) —
//! that is where the *state loss* half of a crash lives, since the
//! network itself only models reachability.

use crate::link::LinkSpec;
use crate::network::Network;
use crate::sim::Scheduler;
use mv_common::id::NodeId;
use mv_common::time::SimTime;

/// One injectable fault.
#[derive(Debug, Clone, PartialEq)]
pub enum Fault {
    /// Replace a link's spec (both directions) — e.g. spike latency/loss.
    DegradeLink {
        /// One endpoint.
        a: NodeId,
        /// Other endpoint.
        b: NodeId,
        /// The degraded spec.
        spec: LinkSpec,
    },
    /// Restore a degraded link (both directions) to its healthy spec.
    RestoreLink {
        /// One endpoint.
        a: NodeId,
        /// Other endpoint.
        b: NodeId,
    },
    /// Sever two partition groups bidirectionally.
    Partition {
        /// First group.
        group_a: u32,
        /// Second group.
        group_b: u32,
    },
    /// Heal two previously severed groups.
    Heal {
        /// First group.
        group_a: u32,
        /// Second group.
        group_b: u32,
    },
    /// Crash a node: unreachable until restarted, volatile state lost
    /// (the world's [`FaultTarget::on_node_crash`] drops it).
    Crash {
        /// The victim.
        node: NodeId,
    },
    /// Restart a crashed node (state must be rebuilt by the world).
    Restart {
        /// The restarting node.
        node: NodeId,
    },
}

/// What a fault plan needs from the simulated world.
pub trait FaultTarget {
    /// The network faults apply to.
    fn fault_network(&mut self) -> &mut Network;

    /// Called after `node` crashes — drop its volatile state here.
    fn on_node_crash(&mut self, _node: NodeId) {}

    /// Called after `node` restarts — schedule recovery here.
    fn on_node_restart(&mut self, _node: NodeId) {}
}

/// A scripted schedule of faults. Build it up front (possibly from a
/// seeded RNG), then [`install`](FaultPlan::install) it into the
/// scheduler; the plan is consumed and each fault fires as a simulation
/// event at its virtual timestamp.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    events: Vec<(SimTime, Fault)>,
}

impl FaultPlan {
    /// An empty plan.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedule one fault at an absolute virtual time.
    pub fn at(mut self, at: SimTime, fault: Fault) -> Self {
        self.events.push((at, fault));
        self
    }

    /// Sever groups over `[from, until)`, healing at `until`.
    pub fn partition_between(
        self,
        group_a: u32,
        group_b: u32,
        from: SimTime,
        until: SimTime,
    ) -> Self {
        self.at(from, Fault::Partition { group_a, group_b })
            .at(until, Fault::Heal { group_a, group_b })
    }

    /// Degrade a link over `[from, until)`, restoring at `until`.
    pub fn degrade_window(
        self,
        a: NodeId,
        b: NodeId,
        spec: LinkSpec,
        from: SimTime,
        until: SimTime,
    ) -> Self {
        self.at(from, Fault::DegradeLink { a, b, spec }).at(until, Fault::RestoreLink { a, b })
    }

    /// Crash a node over `[from, until)`, restarting at `until`.
    pub fn crash_window(self, node: NodeId, from: SimTime, until: SimTime) -> Self {
        self.at(from, Fault::Crash { node }).at(until, Fault::Restart { node })
    }

    /// Number of scheduled fault events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Install every fault as a scheduler event. Events are sorted by
    /// `(time, insertion order)` first, so ties fire in the order the
    /// plan listed them regardless of how it was assembled.
    pub fn install<W: FaultTarget + 'static>(mut self, sched: &mut Scheduler<W>) {
        // Stable sort keeps same-timestamp faults in plan order.
        self.events.sort_by_key(|(t, _)| *t);
        for (at, fault) in self.events {
            sched.at(at, move |w: &mut W, _s| apply(w, &fault));
        }
    }
}

/// Apply one fault to the world. Faults referencing unknown nodes/links
/// are counted (`faults_invalid`) rather than panicking: a plan written
/// against a sweep-varied topology may legitimately name absent links.
pub fn apply<W: FaultTarget + ?Sized>(w: &mut W, fault: &Fault) {
    let invalid = match fault {
        Fault::DegradeLink { a, b, spec } => {
            w.fault_network().degrade_link_bidi(*a, *b, *spec).is_err()
        }
        Fault::RestoreLink { a, b } => w.fault_network().restore_link_bidi(*a, *b).is_err(),
        Fault::Partition { group_a, group_b } => {
            w.fault_network().sever(*group_a, *group_b);
            false
        }
        Fault::Heal { group_a, group_b } => {
            w.fault_network().heal(*group_a, *group_b);
            false
        }
        Fault::Crash { node } => {
            let bad = w.fault_network().crash_node(*node).is_err();
            if !bad {
                w.on_node_crash(*node);
            }
            bad
        }
        Fault::Restart { node } => {
            let bad = w.fault_network().restart_node(*node).is_err();
            if !bad {
                w.on_node_restart(*node);
            }
            bad
        }
    };
    if invalid {
        w.fault_network().stats.incr("faults_invalid");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::LinkClass;
    use crate::sim::Sim;
    use mv_common::seeded_rng;

    struct World {
        net: Network,
        crash_log: Vec<(NodeId, &'static str)>,
    }

    impl FaultTarget for World {
        fn fault_network(&mut self) -> &mut Network {
            &mut self.net
        }
        fn on_node_crash(&mut self, node: NodeId) {
            self.crash_log.push((node, "crash"));
        }
        fn on_node_restart(&mut self, node: NodeId) {
            self.crash_log.push((node, "restart"));
        }
    }

    fn world() -> World {
        let mut net = Network::new();
        for i in 0..2 {
            net.add_node(NodeId::new(i), "n");
        }
        net.add_link_bidi(NodeId::new(0), NodeId::new(1), LinkClass::Lan.spec());
        net.set_group(NodeId::new(1), 1).unwrap();
        World { net, crash_log: Vec::new() }
    }

    #[test]
    fn plan_fires_at_virtual_timestamps() {
        let mut sim = Sim::new(world());
        FaultPlan::new()
            .partition_between(0, 1, SimTime::from_secs(1), SimTime::from_secs(2))
            .crash_window(NodeId::new(1), SimTime::from_secs(3), SimTime::from_secs(4))
            .install(sim.scheduler());

        let mut rng = seeded_rng(5);
        let (a, b) = (NodeId::new(0), NodeId::new(1));
        // Before the partition: reachable.
        sim.run_until(SimTime::from_millis(500));
        assert!(sim.world.net.transfer(a, b, 1, sim.now(), &mut rng).is_ok());
        // During the partition: severed.
        sim.run_until(SimTime::from_millis(1_500));
        assert!(sim.world.net.transfer(a, b, 1, sim.now(), &mut rng).is_err());
        // After heal, before crash: reachable again.
        sim.run_until(SimTime::from_millis(2_500));
        assert!(sim.world.net.transfer(a, b, 1, sim.now(), &mut rng).is_ok());
        // During the crash window: node 1 down, hooks fired in order.
        sim.run_until(SimTime::from_millis(3_500));
        assert!(!sim.world.net.is_up(b));
        sim.run_to_completion();
        assert!(sim.world.net.is_up(b));
        assert_eq!(sim.world.crash_log, vec![(b, "crash"), (b, "restart")]);
    }

    #[test]
    fn fault_counters_audit_every_injection() {
        let mut sim = Sim::new(world());
        FaultPlan::new()
            .degrade_window(
                NodeId::new(0),
                NodeId::new(1),
                LinkClass::Cellular4G.spec(),
                SimTime::from_millis(10),
                SimTime::from_millis(20),
            )
            .partition_between(0, 1, SimTime::from_millis(30), SimTime::from_millis(40))
            .at(SimTime::from_millis(50), Fault::Crash { node: NodeId::new(7) }) // unknown
            .install(sim.scheduler());
        sim.run_to_completion();
        let s = &sim.world.net.stats;
        assert_eq!(s.get("faults_link_degraded"), 2); // bidi = two directed links
        assert_eq!(s.get("faults_link_restored"), 2);
        assert_eq!(s.get("faults_severed"), 1);
        assert_eq!(s.get("faults_healed"), 1);
        assert_eq!(s.get("faults_invalid"), 1);
        assert!(sim.world.crash_log.is_empty());
    }

    #[test]
    fn same_plan_same_seed_is_reproducible() {
        let run = || {
            let mut sim = Sim::new(world());
            FaultPlan::new()
                .partition_between(0, 1, SimTime::from_millis(5), SimTime::from_millis(9))
                .install(sim.scheduler());
            // A probe that records outcomes interleaved with the faults.
            let mut log: Vec<(u64, bool)> = Vec::new();
            let mut rng = seeded_rng(11);
            for ms in (0..12).step_by(2) {
                sim.run_until(SimTime::from_millis(ms));
                let ok = sim
                    .world
                    .net
                    .transfer(NodeId::new(0), NodeId::new(1), 8, sim.now(), &mut rng)
                    .is_ok();
                log.push((ms, ok));
            }
            sim.run_to_completion();
            (log, format!("{:?}", sim.world.net.stats))
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn zero_length_crash_window_restarts_in_the_same_instant() {
        // `from == until` degenerates to crash+restart at one timestamp;
        // plan order resolves the tie, so the node is up afterwards and
        // both hooks fired (in order) and were counted.
        let t = SimTime::from_millis(2);
        let b = NodeId::new(1);
        let mut sim = Sim::new(world());
        FaultPlan::new().crash_window(b, t, t).install(sim.scheduler());
        sim.run_to_completion();
        assert!(sim.world.net.is_up(b), "zero-length window leaves the node up");
        assert_eq!(sim.world.crash_log, vec![(b, "crash"), (b, "restart")]);
        assert_eq!(sim.world.net.stats.get("faults_node_crash"), 1);
        assert_eq!(sim.world.net.stats.get("faults_node_restart"), 1);
    }

    #[test]
    fn overlapping_partitions_on_one_pair_heal_at_the_first_until() {
        // Two overlapping windows on the same group pair: severed state
        // is a set, not a counter, so the first window's heal reconnects
        // the pair even though the second window is still "open" — and
        // every injection (including the no-op second heal) is audited.
        let (a, b) = (NodeId::new(0), NodeId::new(1));
        let mut sim = Sim::new(world());
        FaultPlan::new()
            .partition_between(0, 1, SimTime::from_millis(10), SimTime::from_millis(30))
            .partition_between(0, 1, SimTime::from_millis(20), SimTime::from_millis(40))
            .install(sim.scheduler());
        let mut rng = seeded_rng(3);
        sim.run_until(SimTime::from_millis(25));
        assert!(sim.world.net.transfer(a, b, 1, sim.now(), &mut rng).is_err(), "both open");
        sim.run_until(SimTime::from_millis(35));
        assert!(
            sim.world.net.transfer(a, b, 1, sim.now(), &mut rng).is_ok(),
            "first heal reconnects the pair (set semantics, not refcounts)"
        );
        sim.run_to_completion();
        assert_eq!(sim.world.net.stats.get("faults_severed"), 2);
        assert_eq!(sim.world.net.stats.get("faults_healed"), 2);
    }

    #[test]
    fn fault_scheduled_at_the_current_tick_still_fires() {
        // Installing a fault at the scheduler's current instant (t = 0,
        // before any run) must fire it on the next drain, not drop it.
        let b = NodeId::new(1);
        let mut sim = Sim::new(world());
        FaultPlan::new()
            .at(SimTime::ZERO, Fault::Crash { node: b })
            .install(sim.scheduler());
        assert!(sim.world.net.is_up(b), "nothing fires before the scheduler drains");
        sim.run_until(SimTime::ZERO);
        assert!(!sim.world.net.is_up(b), "a current-tick fault fires on the next drain");
        assert_eq!(sim.world.crash_log, vec![(b, "crash")]);
        assert_eq!(sim.world.net.stats.get("faults_node_crash"), 1);
    }

    #[test]
    fn simultaneous_faults_fire_in_plan_order() {
        // Heal listed before sever at the same instant: sever wins the
        // tie because plan order is preserved; listed the other way the
        // window closes immediately.
        let t = SimTime::from_millis(1);
        let mut sim = Sim::new(world());
        FaultPlan::new()
            .at(t, Fault::Heal { group_a: 0, group_b: 1 })
            .at(t, Fault::Partition { group_a: 0, group_b: 1 })
            .install(sim.scheduler());
        sim.run_to_completion();
        let mut rng = seeded_rng(1);
        assert!(sim
            .world
            .net
            .transfer(NodeId::new(0), NodeId::new(1), 1, sim.now(), &mut rng)
            .is_err());
        // Empty plans are fine.
        assert!(FaultPlan::new().is_empty());
        assert_eq!(FaultPlan::new().at(t, Fault::Heal { group_a: 0, group_b: 1 }).len(), 1);
    }
}
