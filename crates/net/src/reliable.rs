//! Reliable (at-least-once) delivery over the lossy [`Network`].
//!
//! Nothing above `Network::transfer` could previously survive a lost
//! message, a partition, or a crashed peer — a gap the paper's own
//! deployment story (cellular uplinks §I, inter-DC WANs §IV-E1,
//! intermittently-connected clients §IV-C) cannot afford. This module
//! adds the classic reliable-delivery machinery as a *simulation-time*
//! state machine:
//!
//! * per-`(src, dst)` **sender sequence numbers** and a retransmission
//!   window (timeout → capped exponential backoff → bounded retries →
//!   give-up event the application can act on);
//! * **receiver-side dedup** so retransmissions deliver each sequence
//!   number to the application exactly once *per sender incarnation*;
//! * **acks** that travel back over the same lossy network (a lost ack
//!   causes a retransmission, which dedup absorbs);
//! * **crash epochs**: [`ReliableTransport::on_node_crash`] drops the
//!   node's sender/receiver state and bumps its incarnation, so a
//!   restarted sender's fresh sequence numbers are not mistaken for
//!   duplicates and stale in-flight traffic is discarded.
//!
//! Everything is driven by virtual time: the owner calls
//! [`ReliableTransport::poll`] whenever the clock reaches
//! [`ReliableTransport::next_wakeup`] (discrete-event worlds schedule a
//! pump event there). Backoff jitter is a pure function of
//! `(seed, src, dst, seq, attempt)` — no RNG state — so two runs with the
//! same seed produce identical retransmission schedules.

use crate::network::{Delivery, Network};
use mv_common::hash::FastMap;
use mv_common::id::NodeId;
use mv_common::time::{SimDuration, SimTime};
use mv_obs::{SharedRegistry, SharedTracer, StatSet, TraceCtx};
use rand::Rng;
use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap};

/// Wire size charged for an ack.
const ACK_BYTES: u64 = 16;

/// Timeout/retry policy for one transport.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Retransmission timeout for the first attempt.
    pub initial_rto: SimDuration,
    /// Multiplier applied per retry (capped by `max_rto`).
    pub backoff: f64,
    /// Upper bound on the (pre-jitter) timeout.
    pub max_rto: SimDuration,
    /// Total transmission attempts before giving up (≥ 1).
    pub max_attempts: u32,
    /// Jitter as a fraction of the timeout, drawn deterministically in
    /// `[0, jitter_frac * rto)` per `(message, attempt)`.
    pub jitter_frac: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            initial_rto: SimDuration::from_millis(100),
            backoff: 2.0,
            max_rto: SimDuration::from_secs(2),
            max_attempts: 8,
            jitter_frac: 0.1,
        }
    }
}

impl RetryPolicy {
    /// The timeout armed after transmission attempt `attempt` (0-based),
    /// jittered deterministically by `key`.
    pub fn rto(&self, attempt: u32, key: u64) -> SimDuration {
        let factor = self.backoff.max(1.0).powi(attempt.min(30) as i32);
        let base = self.initial_rto.mul_f64(factor).min(self.max_rto);
        if self.jitter_frac <= 0.0 {
            return base;
        }
        base + base.mul_f64(self.jitter_frac * unit_f64(mix(key, attempt as u64)))
    }
}

/// SplitMix64-style finalizer (same family as `shard_of`): maps a key to
/// a well-mixed u64 with no state.
#[inline]
fn mix(a: u64, b: u64) -> u64 {
    let mut z = a ^ b.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Map a u64 to `[0, 1)`.
#[inline]
fn unit_f64(x: u64) -> f64 {
    (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// What the transport reports back to the application from [`poll`].
///
/// [`poll`]: ReliableTransport::poll
#[derive(Debug, Clone, PartialEq)]
pub enum Event<P> {
    /// A payload reached `dst` for the first time (dedup already done).
    Delivered {
        /// Sending node.
        src: NodeId,
        /// Receiving node.
        dst: NodeId,
        /// Sender sequence number within the stream.
        seq: u64,
        /// Arrival (virtual) time.
        at: SimTime,
        /// The payload.
        payload: P,
        /// Causal context the message carried, for the application to
        /// continue the trace downstream.
        ctx: Option<TraceCtx>,
    },
    /// A message exhausted its retries without an ack. The payload is
    /// handed back so the application can retain/re-route it.
    Expired {
        /// Sending node.
        src: NodeId,
        /// Receiving node.
        dst: NodeId,
        /// Sender sequence number within the stream.
        seq: u64,
        /// Give-up (virtual) time.
        at: SimTime,
        /// The payload, returned to the sender's application layer.
        payload: P,
        /// Causal context the message carried, so the application's
        /// retain/re-route path stays on the same trace.
        ctx: Option<TraceCtx>,
    },
}

#[derive(Debug)]
struct InFlight<P> {
    payload: P,
    bytes: u64,
    /// Transmissions performed so far (≥ 1 once sent).
    attempts: u32,
    /// Causal context the payload carries (propagated on every retry).
    ctx: Option<TraceCtx>,
    /// Open `net.transport.send` span, closed at ack/expiry/crash.
    send_span: Option<u64>,
    /// Open span of the current transmission attempt.
    attempt_span: Option<u64>,
}

#[derive(Debug)]
struct SenderStream<P> {
    epoch: u32,
    next_seq: u64,
    window: BTreeMap<u64, InFlight<P>>,
}

// Hand-written so `P` needs no `Default` bound.
impl<P> Default for SenderStream<P> {
    fn default() -> Self {
        SenderStream { epoch: 0, next_seq: 0, window: BTreeMap::new() }
    }
}

#[derive(Debug, Default)]
struct ReceiverStream {
    epoch: u32,
    /// Everything below this was delivered (contiguous prefix).
    next_expected: u64,
    /// Delivered out-of-order seqs at/above `next_expected`.
    out_of_order: BTreeSet<u64>,
}

impl ReceiverStream {
    fn already_delivered(&self, seq: u64) -> bool {
        seq < self.next_expected || self.out_of_order.contains(&seq)
    }

    fn mark_delivered(&mut self, seq: u64) {
        self.out_of_order.insert(seq);
        while self.out_of_order.remove(&self.next_expected) {
            self.next_expected += 1;
        }
    }
}

#[derive(Debug, Clone)]
enum Wire<P> {
    Data { src: NodeId, dst: NodeId, seq: u64, epoch: u32, payload: P, ctx: Option<TraceCtx> },
    Ack { src: NodeId, dst: NodeId, seq: u64, epoch: u32 },
    RetryTimer { src: NodeId, dst: NodeId, seq: u64, epoch: u32 },
}

#[derive(Debug)]
struct Pending<P> {
    at: SimTime,
    tick: u64,
    wire: Wire<P>,
}

impl<P> PartialEq for Pending<P> {
    fn eq(&self, other: &Self) -> bool {
        (self.at, self.tick) == (other.at, other.tick)
    }
}
impl<P> Eq for Pending<P> {}
impl<P> PartialOrd for Pending<P> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<P> Ord for Pending<P> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.tick).cmp(&(other.at, other.tick))
    }
}

/// The reliable transport: many concurrent `(src, dst)` streams over one
/// [`Network`]. See the module docs for the guarantees.
#[derive(Debug)]
pub struct ReliableTransport<P> {
    policy: RetryPolicy,
    /// Seed folded into every jitter draw.
    seed: u64,
    senders: FastMap<(NodeId, NodeId), SenderStream<P>>,
    receivers: FastMap<(NodeId, NodeId), ReceiverStream>,
    /// Current incarnation per node (bumped by crashes).
    epochs: FastMap<NodeId, u32>,
    queue: BinaryHeap<Reverse<Pending<P>>>,
    tick: u64,
    /// Span collector (off by default; see [`Self::set_tracer`]).
    tracer: Option<SharedTracer>,
    /// Delivery/retry accounting (`sent`, `retransmits`, `delivered`,
    /// `duplicates`, `expired`, …). Registry-backed (`net.transport.*`).
    pub stats: StatSet,
}

impl<P: Clone> ReliableTransport<P> {
    /// A transport with the given policy; `seed` pins the jitter stream.
    pub fn new(policy: RetryPolicy, seed: u64) -> Self {
        ReliableTransport {
            policy: RetryPolicy { max_attempts: policy.max_attempts.max(1), ..policy },
            seed,
            senders: FastMap::default(),
            receivers: FastMap::default(),
            epochs: FastMap::default(),
            queue: BinaryHeap::new(),
            tick: 0,
            tracer: None,
            stats: StatSet::new("net.transport"),
        }
    }

    /// Collect spans for traced messages into `tracer`. Messages sent
    /// via [`Self::send_traced`] with a context then get a
    /// `net.transport.send` span per message, an
    /// `attempt`/`retry` child per transmission, and deliver/duplicate
    /// events at the receiver.
    pub fn set_tracer(&mut self, tracer: SharedTracer) {
        self.tracer = Some(tracer);
    }

    /// The tracer, if one is attached.
    pub fn tracer(&self) -> Option<&SharedTracer> {
        self.tracer.as_ref()
    }

    /// Re-home this transport's counters onto a shared registry.
    pub fn attach_registry(&mut self, registry: &SharedRegistry) {
        self.stats.attach(registry);
    }

    /// The configured policy.
    pub fn policy(&self) -> RetryPolicy {
        self.policy
    }

    /// Messages awaiting an ack on the `src → dst` stream.
    pub fn in_flight(&self, src: NodeId, dst: NodeId) -> usize {
        self.senders.get(&(src, dst)).map_or(0, |s| s.window.len())
    }

    /// Earliest pending wire arrival or timer, if any. Drive the clock
    /// here and call [`poll`](Self::poll).
    pub fn next_wakeup(&self) -> Option<SimTime> {
        self.queue.peek().map(|Reverse(p)| p.at)
    }

    /// True when no wire traffic or timers remain.
    pub fn is_idle(&self) -> bool {
        self.queue.is_empty()
    }

    fn push(&mut self, at: SimTime, wire: Wire<P>) {
        let tick = self.tick;
        self.tick += 1;
        self.queue.push(Reverse(Pending { at, tick, wire }));
    }

    fn jitter_key(&self, src: NodeId, dst: NodeId, seq: u64) -> u64 {
        mix(mix(self.seed, src.raw()), mix(dst.raw(), seq))
    }

    /// Send `payload` (`bytes` on the wire) from `src` to `dst`. Returns
    /// the stream sequence number. The message is retried until acked,
    /// expired ([`Event::Expired`]) or the sender crashes.
    #[allow(clippy::too_many_arguments)]
    pub fn send<R: Rng + ?Sized>(
        &mut self,
        net: &mut Network,
        rng: &mut R,
        src: NodeId,
        dst: NodeId,
        payload: P,
        bytes: u64,
        now: SimTime,
    ) -> u64 {
        self.send_traced(net, rng, src, dst, payload, bytes, now, None)
    }

    /// [`Self::send`] carrying a causal context. With a tracer attached,
    /// opens a `net.transport.send` span (child of `ctx`) that stays
    /// open until the message is acked, expires, or dies with a crash,
    /// plus one `attempt`/`retry` child per transmission — so the span
    /// log shows exactly where a message's latency went.
    #[allow(clippy::too_many_arguments)]
    pub fn send_traced<R: Rng + ?Sized>(
        &mut self,
        net: &mut Network,
        rng: &mut R,
        src: NodeId,
        dst: NodeId,
        payload: P,
        bytes: u64,
        now: SimTime,
        ctx: Option<TraceCtx>,
    ) -> u64 {
        let epoch = self.epochs.get(&src).copied().unwrap_or(0);
        let (ctx, send_span, attempt_span) = match (&self.tracer, ctx) {
            (Some(tr), Some(parent)) => {
                let send_span = tr.child(parent, "net.transport.send", now);
                let sub = parent.with_span(send_span);
                let attempt = tr.child(sub, "net.transport.attempt", now);
                // Downstream (receiver side) hangs off the send span.
                (Some(sub), Some(send_span), Some(attempt))
            }
            (_, ctx) => (ctx, None, None),
        };
        let stream = self.senders.entry((src, dst)).or_default();
        stream.epoch = epoch;
        let seq = stream.next_seq;
        stream.next_seq += 1;
        stream.window.insert(
            seq,
            InFlight { payload: payload.clone(), bytes, attempts: 1, ctx, send_span, attempt_span },
        );
        self.stats.incr("sent");
        self.transmit(net, rng, src, dst, seq, epoch, payload, bytes, now, ctx);
        let rto = self.policy.rto(0, self.jitter_key(src, dst, seq));
        self.push(now + rto, Wire::RetryTimer { src, dst, seq, epoch });
        seq
    }

    #[allow(clippy::too_many_arguments)]
    fn transmit<R: Rng + ?Sized>(
        &mut self,
        net: &mut Network,
        rng: &mut R,
        src: NodeId,
        dst: NodeId,
        seq: u64,
        epoch: u32,
        payload: P,
        bytes: u64,
        now: SimTime,
        ctx: Option<TraceCtx>,
    ) {
        self.stats.incr("transmissions");
        match net.transfer(src, dst, bytes, now, rng) {
            Ok(Delivery::At(t)) => {
                self.push(t, Wire::Data { src, dst, seq, epoch, payload, ctx });
            }
            Ok(Delivery::Lost) => self.stats.incr("data_lost"),
            Err(_) => self.stats.incr("data_unreachable"),
        }
    }

    /// Process every arrival and timer due at or before `now`, in
    /// deterministic `(time, enqueue order)` order. Returns the
    /// application-visible events, oldest first.
    pub fn poll<R: Rng + ?Sized>(
        &mut self,
        net: &mut Network,
        rng: &mut R,
        now: SimTime,
    ) -> Vec<Event<P>> {
        let mut events = Vec::new();
        while let Some(Reverse(head)) = self.queue.peek() {
            if head.at > now {
                break;
            }
            let Some(Reverse(Pending { at, wire, .. })) = self.queue.pop() else {
                break; // unreachable: the peek above saw a head
            };
            match wire {
                Wire::Data { src, dst, seq, epoch, payload, ctx } => {
                    self.on_data(net, rng, src, dst, seq, epoch, payload, at, ctx, &mut events);
                }
                Wire::Ack { src, dst, seq, epoch } => {
                    self.on_ack(src, dst, seq, epoch, at);
                }
                Wire::RetryTimer { src, dst, seq, epoch } => {
                    self.on_timer(net, rng, src, dst, seq, epoch, at, &mut events);
                }
            }
        }
        events
    }

    #[allow(clippy::too_many_arguments)]
    fn on_data<R: Rng + ?Sized>(
        &mut self,
        net: &mut Network,
        rng: &mut R,
        src: NodeId,
        dst: NodeId,
        seq: u64,
        epoch: u32,
        payload: P,
        at: SimTime,
        ctx: Option<TraceCtx>,
        events: &mut Vec<Event<P>>,
    ) {
        if !net.is_up(dst) {
            self.stats.incr("dropped_dst_down");
            return;
        }
        let stream = self.receivers.entry((src, dst)).or_default();
        if epoch < stream.epoch {
            // Traffic from a previous incarnation of the sender.
            self.stats.incr("stale_epoch");
            return;
        }
        if epoch > stream.epoch {
            // The sender restarted: its sequence space starts over.
            *stream = ReceiverStream { epoch, ..ReceiverStream::default() };
        }
        let duplicate = stream.already_delivered(seq);
        if duplicate {
            self.stats.incr("duplicates");
            if let (Some(tr), Some(c)) = (&self.tracer, ctx) {
                tr.event(c, "net.transport.deliver", at, "duplicate");
            }
        } else {
            stream.mark_delivered(seq);
            self.stats.incr("delivered");
            if let (Some(tr), Some(c)) = (&self.tracer, ctx) {
                tr.event(c, "net.transport.deliver", at, "ok");
            }
            events.push(Event::Delivered { src, dst, seq, at, payload, ctx });
        }
        // Always (re-)ack — the sender may have missed the first ack.
        self.stats.incr("acks_sent");
        match net.transfer(dst, src, ACK_BYTES, at, rng) {
            Ok(Delivery::At(t)) => self.push(t, Wire::Ack { src, dst, seq, epoch }),
            Ok(Delivery::Lost) => self.stats.incr("ack_lost"),
            Err(_) => self.stats.incr("ack_unreachable"),
        }
    }

    fn on_ack(&mut self, src: NodeId, dst: NodeId, seq: u64, epoch: u32, at: SimTime) {
        let Some(stream) = self.senders.get_mut(&(src, dst)) else {
            return; // sender crashed since
        };
        if stream.epoch != epoch {
            self.stats.incr("stale_epoch");
            return;
        }
        if let Some(inflight) = stream.window.remove(&seq) {
            self.stats.incr("acked");
            if let Some(tr) = &self.tracer {
                if let Some(span) = inflight.attempt_span {
                    tr.close(span, at, "acked");
                }
                if let Some(span) = inflight.send_span {
                    tr.close(span, at, "acked");
                }
            }
        } else {
            self.stats.incr("dup_acks");
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn on_timer<R: Rng + ?Sized>(
        &mut self,
        net: &mut Network,
        rng: &mut R,
        src: NodeId,
        dst: NodeId,
        seq: u64,
        epoch: u32,
        at: SimTime,
        events: &mut Vec<Event<P>>,
    ) {
        let Some(stream) = self.senders.get_mut(&(src, dst)) else {
            return; // sender crashed; window gone
        };
        if stream.epoch != epoch {
            return; // a previous incarnation's timer
        }
        let Some(attempts) = stream.window.get(&seq).map(|w| w.attempts) else {
            return; // acked already
        };
        if attempts >= self.policy.max_attempts {
            let Some(inflight) = stream.window.remove(&seq) else {
                return; // unreachable: presence checked just above
            };
            self.stats.incr("expired");
            if let Some(tr) = &self.tracer {
                if let Some(span) = inflight.attempt_span {
                    tr.close(span, at, "timeout");
                }
                if let Some(span) = inflight.send_span {
                    tr.close(span, at, "expired");
                }
            }
            events.push(Event::Expired {
                src,
                dst,
                seq,
                at,
                payload: inflight.payload,
                ctx: inflight.ctx,
            });
            return;
        }
        let Some(entry) = stream.window.get_mut(&seq) else {
            return; // unreachable: presence checked just above
        };
        entry.attempts += 1;
        let (payload, bytes, ctx) = (entry.payload.clone(), entry.bytes, entry.ctx);
        // The previous attempt timed out; its successor is a `retry`
        // child of the same send span.
        if let Some(tr) = &self.tracer {
            if let Some(span) = entry.attempt_span.take() {
                tr.close(span, at, "timeout");
            }
            if let (Some(c), Some(send_span)) = (ctx, entry.send_span) {
                entry.attempt_span =
                    Some(tr.child(c.with_span(send_span), "net.transport.retry", at));
            }
        }
        self.stats.incr("retransmits");
        self.transmit(net, rng, src, dst, seq, epoch, payload, bytes, at, ctx);
        let rto = self.policy.rto(attempts, self.jitter_key(src, dst, seq));
        self.push(at + rto, Wire::RetryTimer { src, dst, seq, epoch });
    }

    /// The node crashed: its sender windows and receiver dedup state are
    /// volatile and lost, and its incarnation is bumped so post-restart
    /// streams restart cleanly (fresh sequence space, stale in-flight
    /// traffic discarded). Call this from `FaultTarget::on_node_crash`.
    pub fn on_node_crash(&mut self, node: NodeId) {
        *self.epochs.entry(node).or_insert(0) += 1;
        let tracer = self.tracer.clone();
        self.senders.retain(|(src, _), stream| {
            if *src != node {
                return true;
            }
            // The window dies with the node: abort its open spans so
            // nothing leaks (no meaningful end time exists — the state
            // that would have closed them is gone).
            if let Some(tr) = &tracer {
                for inflight in stream.window.values_mut() {
                    if let Some(span) = inflight.attempt_span.take() {
                        tr.abort(span, "crashed");
                    }
                    if let Some(span) = inflight.send_span.take() {
                        tr.abort(span, "crashed");
                    }
                }
            }
            false
        });
        self.receivers.retain(|(_, dst), _| *dst != node);
        self.stats.incr("endpoint_resets");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::LinkSpec;
    use mv_common::seeded_rng;

    fn pair(loss: f64) -> (Network, NodeId, NodeId) {
        let mut net = Network::new();
        let (a, b) = (NodeId::new(0), NodeId::new(1));
        net.add_node(a, "n");
        net.add_node(b, "n");
        net.add_link_bidi(a, b, LinkSpec::new(SimDuration::from_millis(5), 1e9).with_loss(loss));
        net.set_group(b, 1).unwrap();
        (net, a, b)
    }

    fn drain<P: Clone>(
        t: &mut ReliableTransport<P>,
        net: &mut Network,
        rng: &mut rand::rngs::StdRng,
    ) -> Vec<Event<P>> {
        let mut all = Vec::new();
        while let Some(at) = t.next_wakeup() {
            all.extend(t.poll(net, rng, at));
        }
        all
    }

    #[test]
    fn lossless_delivery_is_exactly_once_and_acked() {
        let (mut net, a, b) = pair(0.0);
        let mut t = ReliableTransport::new(RetryPolicy::default(), 1);
        let mut rng = seeded_rng(1);
        for i in 0..5u64 {
            let seq = t.send(&mut net, &mut rng, a, b, i, 100, SimTime::ZERO);
            assert_eq!(seq, i);
        }
        let events = drain(&mut t, &mut net, &mut rng);
        let delivered: Vec<u64> = events
            .iter()
            .filter_map(|e| match e {
                Event::Delivered { payload, .. } => Some(*payload),
                _ => None,
            })
            .collect();
        assert_eq!(delivered, vec![0, 1, 2, 3, 4]);
        assert_eq!(t.stats.get("delivered"), 5);
        assert_eq!(t.stats.get("acked"), 5);
        assert_eq!(t.stats.get("retransmits"), 0);
        assert_eq!(t.in_flight(a, b), 0);
        assert!(t.is_idle());
    }

    #[test]
    fn loss_is_survived_by_retransmission_without_duplicate_delivery() {
        let (mut net, a, b) = pair(0.4);
        let mut t = ReliableTransport::new(
            RetryPolicy { max_attempts: 30, ..RetryPolicy::default() },
            7,
        );
        let mut rng = seeded_rng(7);
        for i in 0..50u64 {
            t.send(&mut net, &mut rng, a, b, i, 64, SimTime::ZERO);
        }
        let events = drain(&mut t, &mut net, &mut rng);
        let mut delivered: Vec<u64> = events
            .iter()
            .filter_map(|e| match e {
                Event::Delivered { payload, .. } => Some(*payload),
                _ => None,
            })
            .collect();
        delivered.sort_unstable();
        assert_eq!(delivered, (0..50).collect::<Vec<_>>(), "each payload exactly once");
        assert!(t.stats.get("retransmits") > 0, "40% loss must retransmit");
        assert_eq!(t.stats.get("expired"), 0);
        // Lost data and lost acks were both exercised at this loss rate.
        assert!(t.stats.get("data_lost") + t.stats.get("ack_lost") > 0);
    }

    #[test]
    fn unreachable_peer_expires_after_bounded_attempts() {
        let (mut net, a, b) = pair(0.0);
        net.sever(0, 1);
        let policy = RetryPolicy { max_attempts: 3, ..RetryPolicy::default() };
        let mut t = ReliableTransport::new(policy, 1);
        let mut rng = seeded_rng(1);
        t.send(&mut net, &mut rng, a, b, 42u64, 10, SimTime::ZERO);
        let events = drain(&mut t, &mut net, &mut rng);
        assert_eq!(events.len(), 1);
        assert!(matches!(events[0], Event::Expired { payload: 42, .. }));
        assert_eq!(t.stats.get("transmissions"), 3);
        assert_eq!(t.stats.get("data_unreachable"), 3);
        assert_eq!(t.in_flight(a, b), 0);
    }

    #[test]
    fn partition_heal_mid_retry_recovers_the_message() {
        let (mut net, a, b) = pair(0.0);
        net.sever(0, 1);
        let mut t = ReliableTransport::new(RetryPolicy::default(), 3);
        let mut rng = seeded_rng(3);
        t.send(&mut net, &mut rng, a, b, 9u64, 10, SimTime::ZERO);
        // Let two retries fail, then heal and drain.
        for _ in 0..2 {
            let at = t.next_wakeup().unwrap();
            t.poll(&mut net, &mut rng, at);
        }
        net.heal(0, 1);
        let events = drain(&mut t, &mut net, &mut rng);
        assert!(matches!(events[0], Event::Delivered { payload: 9, .. }));
        assert_eq!(t.stats.get("expired"), 0);
    }

    #[test]
    fn backoff_grows_and_caps_deterministically() {
        let p = RetryPolicy {
            initial_rto: SimDuration::from_millis(100),
            backoff: 2.0,
            max_rto: SimDuration::from_millis(500),
            max_attempts: 8,
            jitter_frac: 0.0,
        };
        assert_eq!(p.rto(0, 1), SimDuration::from_millis(100));
        assert_eq!(p.rto(1, 1), SimDuration::from_millis(200));
        assert_eq!(p.rto(2, 1), SimDuration::from_millis(400));
        assert_eq!(p.rto(3, 1), SimDuration::from_millis(500), "capped");
        assert_eq!(p.rto(30, 1), SimDuration::from_millis(500));
        // Jitter is deterministic per (key, attempt) and bounded.
        let pj = RetryPolicy { jitter_frac: 0.5, ..p };
        for attempt in 0..5 {
            let a = pj.rto(attempt, 99);
            let bexp = p.rto(attempt, 99);
            assert_eq!(a, pj.rto(attempt, 99));
            assert!(a >= bexp && a <= bexp + bexp.mul_f64(0.5));
        }
        assert_ne!(pj.rto(0, 1), pj.rto(0, 2), "different keys, different jitter");
    }

    #[test]
    fn receiver_crash_loses_dedup_state_but_epochs_keep_streams_clean() {
        let (mut net, a, b) = pair(0.0);
        let mut t = ReliableTransport::new(RetryPolicy::default(), 5);
        let mut rng = seeded_rng(5);
        t.send(&mut net, &mut rng, a, b, 1u64, 10, SimTime::ZERO);
        drain(&mut t, &mut net, &mut rng);
        assert_eq!(t.stats.get("delivered"), 1);

        // Sender crashes: its stream restarts at seq 0 under a new epoch;
        // the receiver must treat that as fresh, not as a duplicate.
        net.crash_node(a).unwrap();
        t.on_node_crash(a);
        net.restart_node(a).unwrap();
        t.send(&mut net, &mut rng, a, b, 2u64, 10, SimTime::from_secs(1));
        let events = drain(&mut t, &mut net, &mut rng);
        assert!(
            matches!(events[0], Event::Delivered { payload: 2, seq: 0, .. }),
            "fresh epoch restarts the sequence space: {events:?}"
        );
        assert_eq!(t.stats.get("duplicates"), 0);
    }

    #[test]
    fn traced_send_closes_spans_on_ack_and_crash() {
        use mv_obs::SharedTracer;
        let (mut net, a, b) = pair(0.0);
        let mut t = ReliableTransport::new(RetryPolicy::default(), 1);
        let tracer = SharedTracer::new();
        t.set_tracer(tracer.clone());
        let mut rng = seeded_rng(1);

        // Acked message: send + attempt spans close with "acked", and the
        // receiver logs a deliver event carrying the downstream context.
        let root = tracer.start_trace("test.op", SimTime::ZERO);
        t.send_traced(&mut net, &mut rng, a, b, 1u64, 64, SimTime::ZERO, Some(root));
        let events = drain(&mut t, &mut net, &mut rng);
        assert!(matches!(
            events[0],
            Event::Delivered { payload: 1, ctx: Some(c), .. } if c.trace == root.trace
        ));
        tracer.close(root.span, SimTime::from_millis(20), "ok");
        assert_eq!(tracer.open_count(), 0, "ack path must close every span");
        let names: Vec<&str> = tracer.records().iter().map(|r| r.name).collect();
        assert!(names.contains(&"net.transport.send"));
        assert!(names.contains(&"net.transport.attempt"));
        assert!(names.contains(&"net.transport.deliver"));

        // Crashed sender: the window dies, but its spans are aborted —
        // never leaked.
        let root2 = tracer.start_trace("test.op2", SimTime::from_secs(1));
        net.sever(0, 1); // keep it in flight
        t.send_traced(&mut net, &mut rng, a, b, 2u64, 64, SimTime::from_secs(1), Some(root2));
        assert!(tracer.open_count() > 1);
        t.on_node_crash(a);
        tracer.close(root2.span, SimTime::from_secs(1), "crashed");
        assert_eq!(tracer.open_count(), 0, "crash path must abort every span");
        let crashed = tracer
            .records()
            .iter()
            .filter(|r| r.trace == root2.trace && r.status == "crashed")
            .count();
        assert!(crashed >= 2, "send + attempt aborted: {crashed}");

        // Untraced sends on a traced transport stay span-free.
        net.heal(0, 1);
        t.send(&mut net, &mut rng, a, b, 3u64, 64, SimTime::from_secs(2));
        drain(&mut t, &mut net, &mut rng);
        assert_eq!(tracer.open_count(), 0);
    }

    #[test]
    fn two_runs_same_seed_are_identical() {
        let run = || {
            let (mut net, a, b) = pair(0.25);
            let mut t = ReliableTransport::new(RetryPolicy::default(), 21);
            let mut rng = seeded_rng(21);
            for i in 0..20u64 {
                t.send(&mut net, &mut rng, a, b, i, 128, SimTime::from_millis(i));
            }
            let log: Vec<String> =
                drain(&mut t, &mut net, &mut rng).iter().map(|e| format!("{e:?}")).collect();
            (log, format!("{:?}", t.stats))
        };
        assert_eq!(run(), run());
    }
}
