//! Topology builders for the paper's deployment shapes.
//!
//! * [`MultiDcTopology`] — a mesh of data centers for the decentralized
//!   database experiments (§IV-E1): one coordinator node per DC, WAN links
//!   between DCs, plus `replicas_per_dc` LAN-attached replica nodes.
//! * [`DisaggTopology`] — the device–cloud–storage architecture of Fig. 7
//!   (§IV-E2): metaverse devices on cellular uplinks, a pool of cloud
//!   executors on a LAN, and storage servers reached over RDMA-class links.

use crate::link::{LinkClass, LinkSpec};
use crate::network::Network;
use mv_common::id::{IdGen, NodeId};
use mv_common::time::SimDuration;

/// A mesh of data centers with LAN-attached replicas.
#[derive(Debug)]
pub struct MultiDcTopology {
    /// The shared network.
    pub net: Network,
    /// One coordinator per DC.
    pub coordinators: Vec<NodeId>,
    /// `replicas[dc]` lists that DC's replica nodes.
    pub replicas: Vec<Vec<NodeId>>,
}

impl MultiDcTopology {
    /// Build `dcs` data centers, fully meshed with symmetric WAN links of
    /// the given one-way latency (bandwidth 1 Gb/s), each with
    /// `replicas_per_dc` replicas attached over LAN links.
    pub fn build(dcs: usize, replicas_per_dc: usize, inter_dc_latency: SimDuration) -> Self {
        let mut net = Network::new();
        let ids = IdGen::new();
        let wan = LinkSpec::new(inter_dc_latency, 125e6);
        let lan = LinkClass::Lan.spec();

        let mut coordinators = Vec::with_capacity(dcs);
        let mut replicas = Vec::with_capacity(dcs);
        for dc in 0..dcs {
            let coord: NodeId = ids.next();
            net.add_node(coord, "coordinator");
            net.set_group(coord, dc as u32).expect("just added");
            coordinators.push(coord);
            let mut reps = Vec::with_capacity(replicas_per_dc);
            for _ in 0..replicas_per_dc {
                let rep: NodeId = ids.next();
                net.add_node(rep, "replica");
                net.set_group(rep, dc as u32).expect("just added");
                net.add_link_bidi(coord, rep, lan);
                reps.push(rep);
            }
            replicas.push(reps);
        }
        for i in 0..dcs {
            for j in (i + 1)..dcs {
                net.add_link_bidi(coordinators[i], coordinators[j], wan);
            }
        }
        MultiDcTopology { net, coordinators, replicas }
    }

    /// Number of data centers.
    pub fn dc_count(&self) -> usize {
        self.coordinators.len()
    }
}

/// The device–cloud–storage disaggregation of Fig. 7.
#[derive(Debug)]
pub struct DisaggTopology {
    /// The shared network.
    pub net: Network,
    /// Metaverse devices (VR goggles, handsets) on cellular uplinks.
    pub devices: Vec<NodeId>,
    /// Cloud gateway/load-balancer node devices talk to.
    pub gateway: NodeId,
    /// Elastic transaction/query executors (cloud computing layer).
    pub executors: Vec<NodeId>,
    /// Storage-layer servers (KV/object/block stores).
    pub storage: Vec<NodeId>,
}

impl DisaggTopology {
    /// Build `devices` devices (5G uplinks), `executors` cloud executors
    /// (LAN behind the gateway), and `storage` storage servers (RDMA-class
    /// links from executors).
    pub fn build(devices: usize, executors: usize, storage: usize) -> Self {
        let mut net = Network::new();
        let ids = IdGen::new();
        let gateway: NodeId = ids.next();
        net.add_node(gateway, "gateway");

        let mut dev_ids = Vec::with_capacity(devices);
        for _ in 0..devices {
            let d: NodeId = ids.next();
            net.add_node(d, "device");
            net.add_link_bidi(d, gateway, LinkClass::Cellular5G.spec());
            dev_ids.push(d);
        }
        let mut exec_ids = Vec::with_capacity(executors);
        for _ in 0..executors {
            let e: NodeId = ids.next();
            net.add_node(e, "executor");
            net.add_link_bidi(e, gateway, LinkClass::Lan.spec());
            exec_ids.push(e);
        }
        let mut sto_ids = Vec::with_capacity(storage);
        for _ in 0..storage {
            let s: NodeId = ids.next();
            net.add_node(s, "storage");
            for &e in &exec_ids {
                net.add_link_bidi(e, s, LinkClass::Rdma.spec());
            }
            sto_ids.push(s);
        }
        DisaggTopology { net, devices: dev_ids, gateway, executors: exec_ids, storage: sto_ids }
    }

    /// The executor assigned to a device by static round-robin (a stand-in
    /// for the gateway's load balancing when no autoscaler is in play).
    pub fn executor_for(&self, device_idx: usize) -> NodeId {
        self.executors[device_idx % self.executors.len()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mv_common::seeded_rng;
    use mv_common::time::SimTime;

    #[test]
    fn multi_dc_mesh_latency() {
        let mut topo = MultiDcTopology::build(3, 2, SimDuration::from_millis(50));
        assert_eq!(topo.dc_count(), 3);
        // Coordinator-to-coordinator is one WAN hop.
        let lat = topo
            .net
            .path_latency(topo.coordinators[0], topo.coordinators[2])
            .unwrap();
        assert_eq!(lat, SimDuration::from_millis(50));
        // Replica in DC0 to replica in DC1: LAN + WAN + LAN.
        let lat = topo.net.path_latency(topo.replicas[0][0], topo.replicas[1][0]).unwrap();
        assert_eq!(lat.as_micros(), 50_000 + 2 * 100);
    }

    #[test]
    fn multi_dc_partition_isolates_dc() {
        let mut topo = MultiDcTopology::build(2, 1, SimDuration::from_millis(10));
        topo.net.sever(0, 1);
        let mut rng = seeded_rng(1);
        assert!(topo
            .net
            .transfer(topo.coordinators[0], topo.coordinators[1], 8, SimTime::ZERO, &mut rng)
            .is_err());
        // Intra-DC still works.
        assert!(topo
            .net
            .transfer(topo.coordinators[0], topo.replicas[0][0], 8, SimTime::ZERO, &mut rng)
            .is_ok());
    }

    #[test]
    fn disagg_layers_have_expected_cost_ordering() {
        let mut topo = DisaggTopology::build(4, 2, 2);
        // Device → executor crosses the cellular uplink; executor → storage
        // is RDMA-class. The former must dominate by orders of magnitude.
        let dev_exec = topo.net.path_latency(topo.devices[0], topo.executors[0]).unwrap();
        let exec_sto = topo.net.path_latency(topo.executors[0], topo.storage[0]).unwrap();
        assert!(dev_exec.as_micros() > 100 * exec_sto.as_micros());
    }

    #[test]
    fn round_robin_executor_assignment() {
        let topo = DisaggTopology::build(5, 2, 1);
        assert_eq!(topo.executor_for(0), topo.executors[0]);
        assert_eq!(topo.executor_for(1), topo.executors[1]);
        assert_eq!(topo.executor_for(2), topo.executors[0]);
    }
}
