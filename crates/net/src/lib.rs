#![forbid(unsafe_code)]
//! `mv-net` — discrete-event simulation substrate and network model.
//!
//! The paper's challenges (§IV-C consistency, §IV-E1 decentralized
//! transactions, §IV-E2 disaggregation) are all *quantitative functions of
//! network latency and bandwidth*. Since we have no SmartNICs, RDMA
//! fabrics, or multi-continent deployments on hand, we substitute a
//! deterministic discrete-event simulator (see DESIGN.md §2): the trade-off
//! curves the paper predicts depend on latency/bandwidth *ratios*, which
//! the simulator reproduces and can sweep.
//!
//! * [`sim`] — a generic discrete-event loop ([`sim::Sim`]) over a virtual
//!   clock; events are closures over a user-supplied world type.
//! * [`link`] — link specifications (latency, bandwidth, jitter, loss) and
//!   canned link classes (RDMA-ish, LAN, WAN, cellular).
//! * [`network`] — a routed message-level network: nodes, links, BFS
//!   routing with a route cache, store-and-forward transfer-time
//!   computation with per-link serialization, and group partitions.
//! * [`topology`] — builders for the paper's deployment shapes: multi-DC
//!   meshes (§IV-E1) and the device–cloud–storage disaggregation of
//!   Fig. 7 (§IV-E2);
//! * [`p2p`] — a Chord-style structured overlay for the P2P search
//!   methods §IV-E points at (O(log n) key lookup vs. ring walking);
//! * [`fault`] — deterministic fault injection: a [`fault::FaultPlan`]
//!   scripts link degradation, partitions and node crash/restart as
//!   ordinary scheduler events, counted in `Network::stats`;
//! * [`reliable`] — at-least-once delivery over the lossy network:
//!   sender sequence numbers, timeouts with capped exponential backoff
//!   and deterministic jitter, bounded retries, receiver-side dedup and
//!   crash epochs (§IV-C's "disruptive networks" machinery).

pub mod fault;
pub mod link;
pub mod network;
pub mod p2p;
pub mod reliable;
pub mod sim;
pub mod topology;

pub use fault::{Fault, FaultPlan, FaultTarget};
pub use link::{LinkClass, LinkSpec};
pub use network::{Delivery, Network};
pub use p2p::ChordRing;
pub use reliable::{Event as ReliableEvent, ReliableTransport, RetryPolicy};
pub use sim::Sim;
pub use topology::{DisaggTopology, MultiDcTopology};
