//! Structured P2P key lookup (Chord-style).
//!
//! §IV-E: *"For queries that access static data that are stored locally,
//! techniques that can facilitate search/discovery of relevant
//! information are critical. P2P search methods may be applicable here
//! \[42\], \[45\], \[83\]."* — and the architecture vision closes with
//! *"publish/subscribe system over peer-to-peer networks"*.
//!
//! This module implements the canonical structured overlay: peers sit on
//! a 64-bit identifier ring, every key is owned by its successor, and
//! each peer keeps a logarithmic finger table. Greedy finger routing
//! reaches any key's owner in O(log n) hops; the naive baseline walks
//! the ring successor-by-successor in O(n). E15c measures both.

use mv_common::hash::fx_hash_one;

/// A Chord-style ring over the given peer ids.
#[derive(Debug)]
pub struct ChordRing {
    /// Sorted peer ids on the 64-bit ring.
    peers: Vec<u64>,
    /// fingers[i][k] = index (into `peers`) of the peer owning
    /// `peers[i] + 2^k`.
    fingers: Vec<Vec<usize>>,
}

/// Result of a lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lookup {
    /// Index (into the peer list) of the key's owner.
    pub owner: usize,
    /// Overlay hops taken.
    pub hops: u32,
}

impl ChordRing {
    /// Build a ring from peer ids (deduplicated, sorted internally).
    ///
    /// # Panics
    /// Panics on an empty peer set.
    pub fn new(mut peer_ids: Vec<u64>) -> Self {
        peer_ids.sort_unstable();
        peer_ids.dedup();
        assert!(!peer_ids.is_empty(), "a ring needs at least one peer");
        let mut ring = ChordRing { peers: peer_ids, fingers: Vec::new() };
        ring.rebuild_fingers();
        ring
    }

    /// Build a ring of `n` synthetic peers (ids hashed from indices, so
    /// the ring is uniformly populated).
    pub fn with_peers(n: usize) -> Self {
        ChordRing::new((0..n as u64).map(|i| fx_hash_one(&(i, "peer"))).collect())
    }

    /// Number of peers.
    pub fn len(&self) -> usize {
        self.peers.len()
    }

    /// True when the ring has no peers (construction forbids it).
    pub fn is_empty(&self) -> bool {
        self.peers.is_empty()
    }

    /// Index of the peer owning `key` (its successor on the ring).
    pub fn owner_of(&self, key: u64) -> usize {
        match self.peers.binary_search(&key) {
            Ok(i) => i,
            Err(i) => i % self.peers.len(),
        }
    }

    fn rebuild_fingers(&mut self) {
        let n = self.peers.len();
        self.fingers = (0..n)
            .map(|i| {
                (0..64)
                    .map(|k| self.owner_of(self.peers[i].wrapping_add(1u64 << k)))
                    .collect()
            })
            .collect();
    }

    /// Peer joins; fingers are rebuilt (a real deployment stabilizes
    /// incrementally; correctness is what the experiments need).
    pub fn join(&mut self, peer_id: u64) {
        if let Err(i) = self.peers.binary_search(&peer_id) {
            self.peers.insert(i, peer_id);
            self.rebuild_fingers();
        }
    }

    /// Peer leaves; its keys fall to its successor.
    pub fn leave(&mut self, peer_id: u64) -> bool {
        match self.peers.binary_search(&peer_id) {
            Ok(i) if self.peers.len() > 1 => {
                self.peers.remove(i);
                self.rebuild_fingers();
                true
            }
            _ => false,
        }
    }

    /// Clockwise distance from `a` to `b` on the ring.
    #[inline]
    fn dist(a: u64, b: u64) -> u64 {
        b.wrapping_sub(a)
    }

    /// Greedy finger routing from peer index `start` to `key`'s owner.
    pub fn lookup(&self, start: usize, key: u64) -> Lookup {
        let owner = self.owner_of(key);
        let mut cur = start;
        let mut hops = 0u32;
        while cur != owner {
            // Jump to the finger that gets closest to the key without
            // overshooting it (classic closest-preceding-finger rule).
            let mut best = cur;
            let mut best_dist = Self::dist(self.peers[cur], key);
            for &f in &self.fingers[cur] {
                if f == cur {
                    continue;
                }
                let d = Self::dist(self.peers[f], key);
                if d < best_dist {
                    best = f;
                    best_dist = d;
                }
            }
            if best == cur {
                // No finger improves: the successor owns the key.
                cur = owner;
            } else {
                cur = best;
            }
            hops += 1;
        }
        Lookup { owner, hops }
    }

    /// Baseline: walk the ring successor-by-successor.
    pub fn lookup_naive(&self, start: usize, key: u64) -> Lookup {
        let owner = self.owner_of(key);
        let n = self.peers.len();
        let hops = ((owner + n) - start) % n;
        Lookup { owner, hops: hops as u32 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mv_common::seeded_rng;
    use rand::Rng;

    #[test]
    fn owner_is_successor_on_the_ring() {
        let ring = ChordRing::new(vec![10, 20, 30]);
        assert_eq!(ring.owner_of(10), 0);
        assert_eq!(ring.owner_of(15), 1);
        assert_eq!(ring.owner_of(30), 2);
        assert_eq!(ring.owner_of(31), 0, "wraps to the smallest id");
    }

    #[test]
    fn lookup_agrees_with_naive_and_is_logarithmic() {
        let ring = ChordRing::with_peers(1024);
        let mut rng = seeded_rng(77);
        let mut max_hops = 0;
        for _ in 0..300 {
            let key: u64 = rng.gen();
            let start = rng.gen_range(0..ring.len());
            let fast = ring.lookup(start, key);
            let slow = ring.lookup_naive(start, key);
            assert_eq!(fast.owner, slow.owner, "both must find the true owner");
            max_hops = max_hops.max(fast.hops);
        }
        // log2(1024) = 10; greedy routing stays within a small multiple.
        assert!(max_hops <= 14, "max hops {max_hops} for 1024 peers");
    }

    #[test]
    fn hops_grow_logarithmically_with_ring_size() {
        let mut rng = seeded_rng(78);
        let mean_hops = |n: usize, rng: &mut rand::rngs::StdRng| -> f64 {
            let ring = ChordRing::with_peers(n);
            let total: u32 = (0..200)
                .map(|_| ring.lookup(rng.gen_range(0..n), rng.gen()).hops)
                .sum();
            total as f64 / 200.0
        };
        let small = mean_hops(64, &mut rng);
        let big = mean_hops(4096, &mut rng);
        // 64× more peers, hops grow by roughly log ratio (~2×), not 64×.
        assert!(big < small * 3.0, "small {small}, big {big}");
        assert!(big > small, "more peers must take more hops");
    }

    #[test]
    fn join_and_leave_preserve_correctness() {
        let mut ring = ChordRing::new(vec![100, 200, 300]);
        ring.join(250);
        assert_eq!(ring.len(), 4);
        assert_eq!(ring.peers[ring.owner_of(220)], 250);
        assert!(ring.leave(250));
        assert_eq!(ring.peers[ring.owner_of(220)], 300, "keys fall to the successor");
        assert!(!ring.leave(999));
        // The last peer cannot leave.
        let mut solo = ChordRing::new(vec![5]);
        assert!(!solo.leave(5));
        assert_eq!(solo.lookup(0, 42).hops, 0);
    }

    #[test]
    fn duplicate_ids_are_deduplicated() {
        let ring = ChordRing::new(vec![7, 7, 9]);
        assert_eq!(ring.len(), 2);
    }
}
