//! Link specifications and canned link classes.
//!
//! A link is characterized by propagation latency, bandwidth, jitter and a
//! loss probability. The canned classes approximate the fabrics the paper
//! names: RDMA/InfiniBand inside the cloud (§IV-E2), data-center LANs,
//! inter-DC WANs (§IV-E1), and 5G/cellular device uplinks (§I).

use mv_common::time::SimDuration;
use serde::{Deserialize, Serialize};

/// Static properties of a network link.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkSpec {
    /// One-way propagation latency.
    pub latency: SimDuration,
    /// Bandwidth in bytes per simulated second.
    pub bandwidth_bps: f64,
    /// Jitter as a fraction of latency; each transfer draws a uniform
    /// extra delay in `[0, jitter_frac * latency]`.
    pub jitter_frac: f64,
    /// Independent per-transfer loss probability in `[0, 1]`.
    pub loss: f64,
}

impl LinkSpec {
    /// A deterministic, lossless link with the given latency/bandwidth.
    pub fn new(latency: SimDuration, bandwidth_bps: f64) -> Self {
        LinkSpec { latency, bandwidth_bps, jitter_frac: 0.0, loss: 0.0 }
    }

    /// Builder: set jitter fraction.
    pub fn with_jitter(mut self, frac: f64) -> Self {
        self.jitter_frac = frac.max(0.0);
        self
    }

    /// Builder: set loss probability.
    pub fn with_loss(mut self, p: f64) -> Self {
        self.loss = p.clamp(0.0, 1.0);
        self
    }

    /// Serialization (transmission) delay for a payload of `bytes`.
    pub fn serialization_delay(&self, bytes: u64) -> SimDuration {
        if self.bandwidth_bps <= 0.0 {
            return SimDuration::ZERO; // modelled as infinite bandwidth
        }
        SimDuration::from_secs_f64(bytes as f64 / self.bandwidth_bps)
    }
}

/// Canned link classes approximating the fabrics named in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LinkClass {
    /// RDMA / InfiniBand inside a rack: ~3 µs, 100 Gb/s.
    Rdma,
    /// Data-center LAN: ~100 µs, 10 Gb/s.
    Lan,
    /// Metro WAN between nearby DCs: ~5 ms, 1 Gb/s.
    Metro,
    /// Continental WAN: ~40 ms, 1 Gb/s.
    Wan,
    /// Inter-continental WAN: ~120 ms, 300 Mb/s.
    InterContinental,
    /// 5G device uplink: ~15 ms, 100 Mb/s, jittery and lossy.
    Cellular5G,
    /// Legacy 4G device uplink: ~50 ms, 20 Mb/s, jittery and lossy.
    Cellular4G,
}

impl LinkClass {
    /// The spec for this class.
    pub fn spec(self) -> LinkSpec {
        // Bandwidths converted from bits to bytes per second.
        match self {
            LinkClass::Rdma => LinkSpec::new(SimDuration::from_micros(3), 12.5e9),
            LinkClass::Lan => LinkSpec::new(SimDuration::from_micros(100), 1.25e9),
            LinkClass::Metro => LinkSpec::new(SimDuration::from_millis(5), 125e6),
            LinkClass::Wan => LinkSpec::new(SimDuration::from_millis(40), 125e6),
            LinkClass::InterContinental => {
                LinkSpec::new(SimDuration::from_millis(120), 37.5e6)
            }
            LinkClass::Cellular5G => LinkSpec::new(SimDuration::from_millis(15), 12.5e6)
                .with_jitter(0.3)
                .with_loss(0.001),
            LinkClass::Cellular4G => LinkSpec::new(SimDuration::from_millis(50), 2.5e6)
                .with_jitter(0.5)
                .with_loss(0.005),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serialization_delay_scales_with_size() {
        let spec = LinkSpec::new(SimDuration::from_millis(1), 1_000_000.0); // 1 MB/s
        assert_eq!(spec.serialization_delay(1_000_000).as_micros(), 1_000_000);
        assert_eq!(spec.serialization_delay(1_000).as_micros(), 1_000);
        assert_eq!(spec.serialization_delay(0).as_micros(), 0);
    }

    #[test]
    fn zero_bandwidth_means_infinite() {
        let spec = LinkSpec::new(SimDuration::ZERO, 0.0);
        assert_eq!(spec.serialization_delay(u64::MAX), SimDuration::ZERO);
    }

    #[test]
    fn class_ordering_sanity() {
        // Faster fabrics must have strictly lower latency.
        let l = |c: LinkClass| c.spec().latency;
        assert!(l(LinkClass::Rdma) < l(LinkClass::Lan));
        assert!(l(LinkClass::Lan) < l(LinkClass::Metro));
        assert!(l(LinkClass::Metro) < l(LinkClass::Wan));
        assert!(l(LinkClass::Wan) < l(LinkClass::InterContinental));
    }

    #[test]
    fn builders_clamp() {
        let s = LinkSpec::new(SimDuration::ZERO, 1.0).with_loss(7.0).with_jitter(-1.0);
        assert_eq!(s.loss, 1.0);
        assert_eq!(s.jitter_frac, 0.0);
    }
}
