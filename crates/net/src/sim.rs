//! A generic discrete-event simulation loop.
//!
//! Events are `FnOnce(&mut W, &mut Sim<W>)` closures scheduled at virtual
//! timestamps; the loop pops them in (time, insertion-order) order, so
//! simultaneous events fire deterministically in scheduling order. The
//! whole workspace's experiments run on this loop — there is no wall-clock
//! anywhere, which is what makes the EXPERIMENTS.md tables reproducible.

use mv_common::time::{SimDuration, SimTime};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// An event: a one-shot closure over the world and the scheduler.
pub type EventFn<W> = Box<dyn FnOnce(&mut W, &mut Scheduler<W>)>;

struct Entry<W> {
    at: SimTime,
    seq: u64,
    f: EventFn<W>,
}

impl<W> PartialEq for Entry<W> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<W> Eq for Entry<W> {}
impl<W> PartialOrd for Entry<W> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<W> Ord for Entry<W> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// The scheduling half of the simulator, passed to firing events so they
/// can enqueue follow-up events while the world is mutably borrowed.
pub struct Scheduler<W> {
    now: SimTime,
    seq: u64,
    queue: BinaryHeap<Reverse<Entry<W>>>,
    fired: u64,
}

impl<W> Scheduler<W> {
    fn new() -> Self {
        Scheduler { now: SimTime::ZERO, seq: 0, queue: BinaryHeap::new(), fired: 0 }
    }

    /// Current virtual time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule `f` at absolute time `at`; times in the past are clamped
    /// to "now" (they fire next, preserving causality).
    pub fn at(&mut self, at: SimTime, f: impl FnOnce(&mut W, &mut Scheduler<W>) + 'static) {
        let at = at.max(self.now);
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Reverse(Entry { at, seq, f: Box::new(f) }));
    }

    /// Schedule `f` after a delay from now.
    pub fn after(
        &mut self,
        delay: SimDuration,
        f: impl FnOnce(&mut W, &mut Scheduler<W>) + 'static,
    ) {
        let at = self.now + delay;
        self.at(at, f);
    }

    /// Number of events fired so far.
    pub fn events_fired(&self) -> u64 {
        self.fired
    }

    /// Number of events still pending.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }
}

/// A discrete-event simulator over world state `W`.
pub struct Sim<W> {
    /// The simulated world, freely accessible between runs.
    pub world: W,
    sched: Scheduler<W>,
}

impl<W> Sim<W> {
    /// Create a simulator owning `world`, clock at zero.
    pub fn new(world: W) -> Self {
        Sim { world, sched: Scheduler::new() }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.sched.now()
    }

    /// Access the scheduler (to seed initial events).
    pub fn scheduler(&mut self) -> &mut Scheduler<W> {
        &mut self.sched
    }

    /// Schedule an event at absolute time `at`.
    pub fn schedule_at(&mut self, at: SimTime, f: impl FnOnce(&mut W, &mut Scheduler<W>) + 'static) {
        self.sched.at(at, f);
    }

    /// Schedule an event after `delay`.
    pub fn schedule_after(
        &mut self,
        delay: SimDuration,
        f: impl FnOnce(&mut W, &mut Scheduler<W>) + 'static,
    ) {
        self.sched.after(delay, f);
    }

    /// Run until the queue drains or virtual time would exceed `until`.
    /// Returns the number of events fired by this call. Events scheduled
    /// later than `until` remain queued; the clock stops at the last fired
    /// event (or `until` if nothing fired beyond it).
    pub fn run_until(&mut self, until: SimTime) -> u64 {
        let mut fired = 0u64;
        while let Some(Reverse(head)) = self.sched.queue.peek() {
            if head.at > until {
                break;
            }
            let Reverse(entry) = self.sched.queue.pop().expect("peeked entry vanished");
            debug_assert!(entry.at >= self.sched.now, "event queue went backwards");
            self.sched.now = entry.at;
            self.sched.fired += 1;
            fired += 1;
            (entry.f)(&mut self.world, &mut self.sched);
        }
        // Advance the clock to the horizon, except for the MAX sentinel
        // used by `run_to_completion` (the clock then rests at the last
        // fired event).
        if until != SimTime::MAX && self.sched.now < until {
            self.sched.now = until;
        }
        fired
    }

    /// Run until the event queue is completely drained.
    pub fn run_to_completion(&mut self) -> u64 {
        self.run_until(SimTime::MAX)
    }

    /// Total events fired over the simulator's lifetime.
    pub fn events_fired(&self) -> u64 {
        self.sched.fired
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_fire_in_time_order() {
        let mut sim = Sim::new(Vec::<u32>::new());
        sim.schedule_at(SimTime::from_millis(30), |w, _| w.push(3));
        sim.schedule_at(SimTime::from_millis(10), |w, _| w.push(1));
        sim.schedule_at(SimTime::from_millis(20), |w, _| w.push(2));
        sim.run_to_completion();
        assert_eq!(sim.world, vec![1, 2, 3]);
        assert_eq!(sim.now(), SimTime::from_millis(30));
    }

    #[test]
    fn simultaneous_events_fire_in_scheduling_order() {
        let mut sim = Sim::new(Vec::<u32>::new());
        for i in 0..10 {
            sim.schedule_at(SimTime::from_millis(5), move |w, _| w.push(i));
        }
        sim.run_to_completion();
        assert_eq!(sim.world, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn events_can_schedule_followups() {
        // A self-perpetuating tick that counts to 5.
        fn tick(w: &mut u32, s: &mut Scheduler<u32>) {
            *w += 1;
            if *w < 5 {
                s.after(SimDuration::from_millis(1), tick);
            }
        }
        let mut sim = Sim::new(0u32);
        sim.schedule_at(SimTime::ZERO, tick);
        sim.run_to_completion();
        assert_eq!(sim.world, 5);
        assert_eq!(sim.now(), SimTime::from_millis(4));
        assert_eq!(sim.events_fired(), 5);
    }

    #[test]
    fn run_until_stops_at_horizon() {
        let mut sim = Sim::new(Vec::<u32>::new());
        sim.schedule_at(SimTime::from_millis(10), |w, _| w.push(1));
        sim.schedule_at(SimTime::from_millis(100), |w, _| w.push(2));
        let fired = sim.run_until(SimTime::from_millis(50));
        assert_eq!(fired, 1);
        assert_eq!(sim.world, vec![1]);
        assert_eq!(sim.now(), SimTime::from_millis(50));
        // The remaining event is still queued and fires later.
        sim.run_to_completion();
        assert_eq!(sim.world, vec![1, 2]);
    }

    #[test]
    fn past_scheduling_clamps_to_now() {
        let mut sim = Sim::new(Vec::<u32>::new());
        sim.schedule_at(SimTime::from_millis(10), |w, s| {
            w.push(1);
            // Attempt to schedule in the past; must fire at "now", not panic.
            s.at(SimTime::from_millis(1), |w, _| w.push(2));
        });
        sim.run_to_completion();
        assert_eq!(sim.world, vec![1, 2]);
        assert_eq!(sim.now(), SimTime::from_millis(10));
    }
}
